//! Determinism of the parallel executor: a reduction-heavy graph run
//! repeatedly at varying thread counts must produce results **bitwise
//! identical** to the single-threaded executor. The scheduler
//! parallelizes across nodes and splits kernels into disjoint index
//! chunks, but never changes any per-element accumulation order and
//! never accumulates through atomics — so floating-point results cannot
//! drift with the thread count.

use autograph::graph::builder::GraphBuilder;
use autograph::graph::ir::{Graph, NodeId, OpKind};
use autograph::prelude::*;

/// A wide graph of independent reduction chains folded into one scalar:
/// `sum_k reduce_sum(tanh(x W_k + b_k))`, plus a reduce-mean/max mix so
/// several reduction kernels are on the hot path.
fn reduction_heavy_graph(branches: usize) -> (Graph, Vec<NodeId>) {
    let mut rng = Rng64::new(1234);
    let mut b = GraphBuilder::new();
    let x = b.placeholder("x");
    let mut partials = Vec::with_capacity(branches);
    for _ in 0..branches {
        let w = b.constant(rng.normal_tensor(&[16, 16], 0.5));
        let bias = b.constant(rng.normal_tensor(&[16], 0.1));
        let xw = b.matmul(x, w);
        let act0 = b.add_op(xw, bias);
        let act = b.tanh(act0);
        let s = b.add(OpKind::ReduceSum(None), vec![act]);
        let m = b.add(OpKind::ReduceMean(None), vec![act]);
        let mx = b.add(OpKind::ReduceMax(None), vec![act]);
        let sm = b.add_op(s, m);
        partials.push(b.add_op(sm, mx));
    }
    // fold in fixed left-to-right order (the addition order is part of
    // the determinism contract)
    let mut total = partials[0];
    for &p in &partials[1..] {
        total = b.add_op(total, p);
    }
    (b.finish(), vec![total])
}

#[test]
fn parallel_runs_bitwise_identical_to_sequential() {
    let (g, fetches) = reduction_heavy_graph(12);
    let mut rng = Rng64::new(77);
    let x = rng.normal_tensor(&[16, 16], 1.0);
    let feeds = [("x", x)];

    let mut seq = Session::new(g.clone());
    seq.set_threads(1);
    let reference = seq.run(&feeds, &fetches).expect("sequential run");
    let ref_bits: Vec<u32> = reference[0]
        .as_f32()
        .expect("f32 output")
        .iter()
        .map(|v| v.to_bits())
        .collect();

    // 50 parallel runs across varying thread counts, every one must
    // reproduce the sequential bits exactly
    let thread_counts = [2usize, 3, 4, 8];
    for run in 0..50 {
        let threads = thread_counts[run % thread_counts.len()];
        let mut sess = Session::new(g.clone());
        sess.set_threads(threads);
        let out = sess.run(&feeds, &fetches).expect("parallel run");
        let bits: Vec<u32> = out[0]
            .as_f32()
            .expect("f32 output")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            bits, ref_bits,
            "run {run} at threads={threads} diverged from sequential"
        );
    }
}

#[test]
fn parallel_staged_loop_bitwise_identical() {
    // the same guarantee through the full pipeline: a staged while loop
    // with several independent expressions per iteration
    let src = "\
def f(x, w):
    i = 0
    while i < 8:
        a = tf.tanh(tf.matmul(x, w))
        b = tf.sigmoid(tf.matmul(x, w))
        c = tf.relu(x - w)
        x = a + b * 0.5 + c * 0.25
        i = i + 1
    return x
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph(
            "f",
            vec![
                GraphArg::Placeholder("x".into()),
                GraphArg::Placeholder("w".into()),
            ],
        )
        .expect("stage");
    let mut rng = Rng64::new(9);
    let feeds = [
        ("x", rng.normal_tensor(&[8, 8], 1.0)),
        ("w", rng.normal_tensor(&[8, 8], 0.5)),
    ];
    let mut seq = Session::new(staged.graph.clone());
    seq.set_threads(1);
    let reference = seq.run(&feeds, &staged.outputs).expect("sequential run");
    for threads in [2usize, 4, 8] {
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(threads);
        let out = sess.run(&feeds, &staged.outputs).expect("parallel run");
        for (r, o) in reference.iter().zip(&out) {
            assert_eq!(r.shape(), o.shape());
            for (a, b) in r.as_f32().unwrap().iter().zip(o.as_f32().unwrap()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads} diverged");
            }
        }
    }
}
