//! Edge-case coverage for the PyLite interpreter: Python semantics the
//! models rely on implicitly.

use autograph::prelude::*;

fn run(src: &str, f: &str, args: Vec<Value>) -> Value {
    let mut rt = Runtime::load(src, false).expect("load");
    rt.call(f, args).expect("call")
}

fn run_err(src: &str, f: &str, args: Vec<Value>) -> String {
    let mut rt = Runtime::load(src, false).expect("load");
    rt.call(f, args).unwrap_err().to_string()
}

#[test]
fn string_operations() {
    assert_eq!(
        run(
            "def f(a, b):\n    return a + b\n",
            "f",
            vec![Value::str("py"), Value::str("lite")]
        )
        .render(),
        "pylite"
    );
    assert!(run(
        "def f(s):\n    return 'li' in s\n",
        "f",
        vec![Value::str("pylite")]
    )
    .truthy()
    .unwrap());
    assert_eq!(
        run(
            "def f(s):\n    return s[2]\n",
            "f",
            vec![Value::str("pylite")]
        )
        .render(),
        "l"
    );
    assert_eq!(
        run(
            "def f(s):\n    return len(s)\n",
            "f",
            vec![Value::str("pylite")]
        )
        .as_int()
        .unwrap(),
        6
    );
    assert!(run(
        "def f(a, b):\n    return a < b\n",
        "f",
        vec![Value::str("abc"), Value::str("abd")]
    )
    .truthy()
    .unwrap());
}

#[test]
fn range_semantics() {
    let v = run(
        "def f():\n    out = []\n    for i in range(10, 2, -3):\n        out.append(i)\n    return out\n",
        "f",
        vec![],
    );
    assert_eq!(v.render(), "[10, 7, 4]");
    assert_eq!(
        run("def f():\n    return len(range(0, 10, 3))\n", "f", vec![])
            .as_int()
            .unwrap(),
        4
    );
    let msg = run_err("def f():\n    return range(1, 2, 0)\n", "f", vec![]);
    assert!(msg.contains("step"), "{msg}");
}

#[test]
fn builtin_conversions_and_min_max() {
    assert_eq!(
        run("def f():\n    return int('  42 ')\n", "f", vec![])
            .as_int()
            .unwrap(),
        42
    );
    assert_eq!(
        run("def f():\n    return float('2.5')\n", "f", vec![])
            .as_float()
            .unwrap(),
        2.5
    );
    assert_eq!(
        run(
            "def f():\n    return min(3, 1, 2) + max([5, 9, 7])\n",
            "f",
            vec![]
        )
        .as_int()
        .unwrap(),
        10
    );
    assert_eq!(
        run("def f():\n    return abs(-7) + abs(2.5)\n", "f", vec![])
            .as_float()
            .unwrap(),
        9.5
    );
    let msg = run_err("def f():\n    return int('nope')\n", "f", vec![]);
    assert!(msg.contains("invalid int literal"), "{msg}");
}

#[test]
fn tuple_and_list_structure() {
    // nested unpacking via sequential unpacks
    let v = run(
        "def f():\n    pair = (1, (2, 3))\n    a, bc = pair\n    b, c = bc\n    return a + b + c\n",
        "f",
        vec![],
    );
    assert_eq!(v.as_int().unwrap(), 6);
    // list concat and equality
    assert!(run(
        "def f():\n    return [1, 2] + [3] == [1, 2, 3]\n",
        "f",
        vec![]
    )
    .truthy()
    .unwrap());
    // negative indexing and slicing interplay
    assert_eq!(
        run(
            "def f():\n    l = [0, 1, 2, 3, 4]\n    return l[-2] + l[1:-1][0]\n",
            "f",
            vec![]
        )
        .as_int()
        .unwrap(),
        4
    );
}

#[test]
fn is_vs_eq_identity() {
    let src = "\
def f():
    a = [1]
    b = [1]
    c = a
    return (a is b, a is c, a == b, a is not b)
";
    assert_eq!(run(src, "f", vec![]).render(), "(False, True, True, True)");
}

#[test]
fn division_and_modulo_python_semantics() {
    // floor division truncates toward negative infinity in Python;
    // PyLite uses Euclidean semantics, identical for positive divisors
    assert_eq!(
        run("def f():\n    return (-7) // 2\n", "f", vec![])
            .as_int()
            .unwrap(),
        -4
    );
    assert_eq!(
        run("def f():\n    return (-7) % 3\n", "f", vec![])
            .as_int()
            .unwrap(),
        2
    );
    let msg = run_err("def f(x):\n    return 1 // x\n", "f", vec![Value::Int(0)]);
    assert!(msg.contains("division"), "{msg}");
    let msg = run_err(
        "def f(x):\n    return 1.0 / x\n",
        "f",
        vec![Value::Float(0.0)],
    );
    assert!(msg.contains("division"), "{msg}");
}

#[test]
fn keyword_arguments_full_matrix() {
    let src = "def f(a, b=10, c=100):\n    return a + b * 2 + c * 3\n";
    assert_eq!(run(src, "f", vec![Value::Int(1)]).as_int().unwrap(), 321);
    let mut rt = Runtime::load(src, false).unwrap();
    // kwargs by name through the interpreter
    let v = rt
        .call("f", vec![Value::Int(1)])
        .and_then(|_| {
            // direct kw call exercised through PyLite source instead
            let mut rt2 = Runtime::load(
                &format!("{src}def g():\n    return f(1, c=0, b=2)\n"),
                false,
            )
            .unwrap();
            rt2.call("g", vec![])
        })
        .unwrap();
    assert_eq!(v.as_int().unwrap(), 5);
    // duplicate / unknown kwargs error
    let msg = {
        let mut rt3 =
            Runtime::load(&format!("{src}def h():\n    return f(1, a=2)\n"), false).unwrap();
        rt3.call("h", vec![]).unwrap_err().to_string()
    };
    assert!(msg.contains("multiple values"), "{msg}");
}

#[test]
fn shadowing_and_closures() {
    // lenient scoping: reads fall through, writes shadow (DESIGN.md #1)
    let src = "\
def f():
    x = 1
    def g():
        y = x + 1
        x = 99
        return y + x
    return g() + x
";
    // g reads outer x (1) -> y = 2; shadows x = 99 -> returns 101;
    // outer x still 1, so f returns 102
    assert_eq!(run(src, "f", vec![]).as_int().unwrap(), 102);
}

#[test]
fn print_renders_values() {
    // print must not fail on any value kind
    let src = "\
def f():
    print(1, 2.5, 'text', True, None)
    print([1, (2, 3)])
    print(tf.constant([1.0, 2.0]))
    return 0
";
    assert_eq!(run(src, "f", vec![]).as_int().unwrap(), 0);
}

#[test]
fn comparison_chain_short_circuits() {
    // middle comparison fails -> third operand must not be evaluated
    let src = "\
def boom():
    assert False, 'should not evaluate'

def f(x):
    return 0 < x < boom()
";
    let mut rt = Runtime::load(src, false).unwrap();
    let v = rt.call("f", vec![Value::Int(-1)]).unwrap();
    assert!(!v.truthy().unwrap());
    assert!(rt.call("f", vec![Value::Int(1)]).is_err());
}

#[test]
fn augmented_assignment_on_attributes() {
    let src = "def f(o):\n    o.n += 5\n    o.n *= 2\n    return o.n\n";
    let obj = Value::record(vec![("n", Value::Int(3))]);
    assert_eq!(run(src, "f", vec![obj]).as_int().unwrap(), 16);
}

#[test]
fn del_unbinds() {
    let msg = run_err(
        "def f():\n    x = 1\n    del x\n    return x\n",
        "f",
        vec![],
    );
    assert!(msg.contains("not defined"), "{msg}");
}

#[test]
fn errors_for_wrong_types() {
    for (src, needle) in [
        ("def f():\n    return 1 + 'a'\n", "unsupported operand"),
        ("def f():\n    return len(3)\n", "has no len"),
        (
            "def f():\n    x = 3\n    return x[0]\n",
            "not subscriptable",
        ),
        ("def f():\n    x = 3\n    return x.attr\n", "no attribute"),
        ("def f():\n    x = 3\n    return x()\n", "not callable"),
        ("def f():\n    for i in 3:\n        pass\n", "not iterable"),
    ] {
        let msg = run_err(src, "f", vec![]);
        assert!(msg.contains(needle), "{src} -> {msg}");
    }
}

#[test]
fn interned_module_attrs_error_helpfully() {
    let msg = run_err("def f():\n    return tf.made_up_op(1)\n", "f", vec![]);
    assert!(
        msg.contains("module 'tf' has no attribute 'made_up_op'"),
        "{msg}"
    );
    let msg = run_err("def f():\n    return ag.nope()\n", "f", vec![]);
    assert!(msg.contains("module 'ag' has no attribute 'nope'"), "{msg}");
}
