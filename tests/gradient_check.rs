//! Gradient correctness via central finite differences: the symbolic
//! graph gradients (`tf.gradients`, staged) and the eager tape gradients
//! (`tf.tape_begin`/`tf.watch`/`tf.grad`) are both checked against a
//! numerical derivative of the same loss for (1) a matmul MSE loss,
//! (2) softmax cross-entropy, and (3) a staged loop (host-counter loops
//! unroll at staging time, which is the differentiable path — `While`
//! nodes have no symbolic adjoint).

use autograph::prelude::*;

#[path = "support/check.rs"]
mod check;
use check::assert_close_rel;

/// Evaluate `fname` eagerly and return its scalar f32 value.
fn eager_scalar(rt: &mut Runtime, fname: &str, feeds: &[(&str, Tensor)]) -> f32 {
    let args: Vec<Value> = feeds
        .iter()
        .map(|(_, t)| Value::tensor(t.clone()))
        .collect();
    rt.call(fname, args)
        .expect("eager loss")
        .as_eager_tensor()
        .expect("tensor loss")
        .scalar_value_f32()
        .expect("scalar loss")
}

/// Central finite-difference gradient of `fname` w.r.t. `feeds[wrt]`.
fn fd_grad(
    rt: &mut Runtime,
    fname: &str,
    feeds: &[(&str, Tensor)],
    wrt: usize,
    eps: f32,
) -> Vec<f32> {
    let base = &feeds[wrt].1;
    let data = base.as_f32().expect("f32 param").to_vec();
    let shape = base.shape().to_vec();
    let mut grad = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        let mut eval_at = |delta: f32| {
            let mut bumped = data.clone();
            bumped[i] += delta;
            let mut feeds2: Vec<(&str, Tensor)> = feeds.to_vec();
            feeds2[wrt].1 = Tensor::from_vec(bumped, &shape).expect("bumped tensor");
            eager_scalar(rt, fname, &feeds2)
        };
        let plus = eval_at(eps);
        let minus = eval_at(-eps);
        grad.push((plus - minus) / (2.0 * eps));
    }
    grad
}

/// Run `grad_fname` staged (symbolic `tf.gradients`) and eagerly
/// (`tape_fname`, the tape), then check both against finite differences.
fn check_gradients(
    src: &str,
    loss_fname: &str,
    grad_fname: &str,
    tape_fname: &str,
    feeds: &[(&str, Tensor)],
) {
    let mut rt = Runtime::load(src, true).expect("load");

    // symbolic: stage the gradient-returning function, run via Session
    let args: Vec<GraphArg> = feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
        .collect();
    let staged = rt.stage_to_graph(grad_fname, args).expect("stage grads");
    let mut sess = Session::new(staged.graph);
    let symbolic = sess.run(feeds, &staged.outputs).expect("staged grad run");
    let symbolic = symbolic[0].as_f32().expect("f32 grads");

    // eager tape on the same loss
    let tape_args: Vec<Value> = feeds
        .iter()
        .map(|(_, t)| Value::tensor(t.clone()))
        .collect();
    let tape = rt
        .call(tape_fname, tape_args)
        .expect("tape grad")
        .as_eager_tensor()
        .expect("tensor grad");
    let tape = tape.as_f32().expect("f32 grads");

    // numerical reference
    let fd = fd_grad(&mut rt, loss_fname, feeds, 0, 5e-3);

    // FD sets the achievable precision against the numerical reference;
    // symbolic and tape differentiate identical kernels — tight match
    assert_close_rel(grad_fname, "symbolic vs fd", symbolic, &fd, 1e-2);
    assert_close_rel(tape_fname, "tape vs fd", tape, &fd, 1e-2);
    assert_close_rel(grad_fname, "symbolic vs tape", symbolic, tape, 1e-5);
}

#[test]
fn matmul_mse_gradients_match_finite_differences() {
    let src = "\
def loss(w, x, y):
    err = tf.matmul(x, w) - y
    return tf.reduce_mean(tf.square(err))

def loss_grad(w, x, y):
    err = tf.matmul(x, w) - y
    l = tf.reduce_mean(tf.square(err))
    g = tf.gradients(l, [w])
    return g[0]

def loss_tape(w, x, y):
    tf.tape_begin()
    w = tf.watch(w)
    err = tf.matmul(x, w) - y
    l = tf.reduce_mean(tf.square(err))
    g = tf.grad(l, [w])
    return g[0]
";
    let mut rng = Rng64::new(3);
    let feeds = [
        ("w", rng.normal_tensor(&[3, 2], 0.5)),
        ("x", rng.normal_tensor(&[4, 3], 1.0)),
        ("y", rng.normal_tensor(&[4, 2], 1.0)),
    ];
    check_gradients(src, "loss", "loss_grad", "loss_tape", &feeds);
}

#[test]
fn softmax_cross_entropy_gradients_match_finite_differences() {
    let src = "\
def loss(w, x, labels):
    logits = tf.matmul(x, w)
    return tf.softmax_cross_entropy(logits, labels)

def loss_grad(w, x, labels):
    logits = tf.matmul(x, w)
    l = tf.softmax_cross_entropy(logits, labels)
    g = tf.gradients(l, [w])
    return g[0]

def loss_tape(w, x, labels):
    tf.tape_begin()
    w = tf.watch(w)
    logits = tf.matmul(x, w)
    l = tf.softmax_cross_entropy(logits, labels)
    g = tf.grad(l, [w])
    return g[0]
";
    let mut rng = Rng64::new(11);
    // integer class labels over 3 classes for 4 examples (the kernel
    // takes indices and returns the batch mean directly)
    let labels = Tensor::from_vec_i64(vec![0, 1, 2, 1], &[4]).unwrap();
    let feeds = [
        ("w", rng.normal_tensor(&[5, 3], 0.4)),
        ("x", rng.normal_tensor(&[4, 5], 1.0)),
        ("labels", labels),
    ];
    check_gradients(src, "loss", "loss_grad", "loss_tape", &feeds);
}

#[test]
fn broadcasted_div_sub_gradients_match_finite_differences() {
    // w is rank-1 [3] against x, y of shape [4, 3]: the sub and div both
    // broadcast, so the backward pass must sum the adjoint back down to
    // w's shape (SumToShape on the graph, sum_to on the eager tape). The
    // divisor is square(w) + 1 >= 1, keeping the quotient well-conditioned
    // for finite differences.
    let src = "\
def loss(w, x, y):
    pred = x / (tf.square(w) + 1.0) - w
    err = pred - y
    return tf.reduce_mean(tf.square(err))

def loss_grad(w, x, y):
    pred = x / (tf.square(w) + 1.0) - w
    err = pred - y
    l = tf.reduce_mean(tf.square(err))
    g = tf.gradients(l, [w])
    return g[0]

def loss_tape(w, x, y):
    tf.tape_begin()
    w = tf.watch(w)
    pred = x / (tf.square(w) + 1.0) - w
    err = pred - y
    l = tf.reduce_mean(tf.square(err))
    g = tf.grad(l, [w])
    return g[0]
";
    let mut rng = Rng64::new(5);
    let feeds = [
        ("w", rng.normal_tensor(&[3], 0.6)),
        ("x", rng.normal_tensor(&[4, 3], 1.0)),
        ("y", rng.normal_tensor(&[4, 3], 1.0)),
    ];
    check_gradients(src, "loss", "loss_grad", "loss_tape", &feeds);
}

#[test]
fn axis_reduction_gradients_match_finite_differences() {
    // Axis reductions in both positions: a column mean (axis 0) and a row
    // sum (axis 1) feed the scalar loss, so the backward pass has to
    // re-expand the reduced dimension and (for the mean) divide by its
    // size — symbolically via ExpandDims/BroadcastLike and on the eager
    // tape via the reduce_*_axis registry ops.
    let src = "\
def loss(w, x):
    h = tf.tanh(tf.matmul(x, w))
    col = tf.reduce_mean(h, 0)
    row = tf.reduce_sum(tf.square(h), 1)
    return tf.reduce_sum(tf.square(col)) + tf.reduce_mean(row)

def loss_grad(w, x):
    h = tf.tanh(tf.matmul(x, w))
    col = tf.reduce_mean(h, 0)
    row = tf.reduce_sum(tf.square(h), 1)
    l = tf.reduce_sum(tf.square(col)) + tf.reduce_mean(row)
    g = tf.gradients(l, [w])
    return g[0]

def loss_tape(w, x):
    tf.tape_begin()
    w = tf.watch(w)
    h = tf.tanh(tf.matmul(x, w))
    col = tf.reduce_mean(h, 0)
    row = tf.reduce_sum(tf.square(h), 1)
    l = tf.reduce_sum(tf.square(col)) + tf.reduce_mean(row)
    g = tf.grad(l, [w])
    return g[0]
";
    let mut rng = Rng64::new(13);
    let feeds = [
        ("w", rng.normal_tensor(&[3, 3], 0.5)),
        ("x", rng.normal_tensor(&[4, 3], 1.0)),
    ];
    check_gradients(src, "loss", "loss_grad", "loss_tape", &feeds);
}

#[test]
fn staged_loop_gradients_match_finite_differences() {
    // The eager tape differentiates through the actual while loop (it
    // unrolls as it executes). Staging converts the loop into a `While`
    // node, which has no symbolic adjoint, so the staged gradient
    // function writes the three iterations out explicitly — the same
    // computation the loop performs, differentiated symbolically.
    let src = "\
def loss(w, x):
    i = 0
    while i < 3:
        x = tf.tanh(tf.matmul(x, w))
        i = i + 1
    return tf.reduce_mean(tf.square(x))

def loss_grad(w, x):
    x = tf.tanh(tf.matmul(x, w))
    x = tf.tanh(tf.matmul(x, w))
    x = tf.tanh(tf.matmul(x, w))
    l = tf.reduce_mean(tf.square(x))
    g = tf.gradients(l, [w])
    return g[0]

def loss_tape(w, x):
    tf.tape_begin()
    w = tf.watch(w)
    i = 0
    while i < 3:
        x = tf.tanh(tf.matmul(x, w))
        i = i + 1
    l = tf.reduce_mean(tf.square(x))
    g = tf.grad(l, [w])
    return g[0]
";
    let mut rng = Rng64::new(21);
    let feeds = [
        ("w", rng.normal_tensor(&[3, 3], 0.4)),
        ("x", rng.normal_tensor(&[2, 3], 1.0)),
    ];
    check_gradients(src, "loss", "loss_grad", "loss_tape", &feeds);
}
