//! End-to-end observability: convert imperative source, stage it to a
//! graph, run it under an installed recorder, and check the metrics the
//! executor reported — most importantly the staged `While` iteration
//! count, which is invisible from the outside (one `Session::run` call
//! regardless of trip count).

use autograph::prelude::*;
use autograph_obs as obs;
use std::sync::Arc;

// One test function: the recorder registry is process-global, and the
// default test harness runs #[test] fns in parallel threads.
#[test]
fn staged_while_loop_reports_iteration_count() {
    let src = "\
def f(x):
    while tf.reduce_sum(x) < 7.0:
        x = x + 1.0
    return x
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".to_string())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);

    let rec = Arc::new(obs::AggregateRecorder::new());
    assert!(!obs::enabled(), "no recorder installed yet");
    obs::install(rec.clone());

    let feeds = [("x", Tensor::scalar_f32(0.0))];
    let out = sess.run(&feeds, &staged.outputs).expect("staged run");
    sess.run(&feeds, &staged.outputs).expect("second run");

    obs::uninstall();
    assert!(!obs::enabled(), "uninstall disables recording");

    assert_eq!(out[0].scalar_value_f32().unwrap(), 7.0);

    let summary = rec.summary();
    // x goes 0→7 one step at a time: exactly 7 iterations, both runs
    let iters = summary
        .row("graph/while_iters")
        .expect("while_iters recorded");
    assert_eq!(iters.count, 2, "one While execution per run");
    assert_eq!(iters.total_ns, 14, "7 iterations each run");

    // per-op kernel spans were recorded under graph_op/<mnemonic>
    assert!(
        summary.rows.iter().any(|r| r.key.starts_with("graph_op/")),
        "expected graph_op spans, got: {:?}",
        summary.rows.iter().map(|r| &r.key).collect::<Vec<_>>()
    );

    // the session compiled the fetch set once and reused it once
    assert_eq!(summary.counter("session/plan_cache_miss"), Some(1));
    assert_eq!(summary.counter("session/plan_cache_hit"), Some(1));
    assert_eq!(sess.stats().plan_cache_misses, 1);
    assert_eq!(sess.stats().plan_cache_hits, 1);

    // nothing leaks into later runs: a fresh run records nothing new
    let before = rec.summary().counter("graph/node_evals");
    sess.run(&feeds, &staged.outputs)
        .expect("uninstrumented run");
    assert_eq!(rec.summary().counter("graph/node_evals"), before);

    // ---- failed runs still produce a well-formed trace --------------------
    // The loop-carried matmul succeeds on iteration 1 and fails on
    // iteration 2 ([1,3] x [2,3]); every span opened before the failure
    // must still close (drop guards), and the pre-failure While iteration
    // count must be flushed despite the error.
    let src = "\
def f(x, w):
    i = 0
    while i < 3:
        x = tf.matmul(x, w)
        i = i + 1
    return x
";
    let mut rt = Runtime::load(src, true).expect("load failing program");
    let staged = rt
        .stage_to_graph(
            "f",
            vec![
                GraphArg::Placeholder("x".into()),
                GraphArg::Placeholder("w".into()),
            ],
        )
        .expect("stage failing program");
    let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
    let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
    for threads in [1, 4] {
        let rec = Arc::new(obs::AggregateRecorder::new());
        obs::install(rec.clone());
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(threads);
        let err = sess
            .run(&[("x", x.clone()), ("w", w.clone())], &staged.outputs)
            .unwrap_err();
        obs::uninstall();
        assert!(err.to_string().contains("matmul"), "t{threads}: {err}");

        let summary = rec.summary();
        // kernel spans before the failure were recorded and closed
        assert!(
            summary.rows.iter().any(|r| r.key.starts_with("graph_op/")),
            "t{threads}: failed run recorded no kernel spans: {:?}",
            summary.rows.iter().map(|r| &r.key).collect::<Vec<_>>()
        );
        // the completed first iteration was flushed despite the error
        let iters = summary
            .row("graph/while_iters")
            .unwrap_or_else(|| panic!("t{threads}: while_iters missing after failed run"));
        assert!(
            iters.total_ns >= 1,
            "t{threads}: pre-failure iterations lost: {iters:?}"
        );
        // the session's own stats agree
        assert!(sess.stats().while_iters >= 1, "t{threads}");
        assert!(sess.stats().nodes_executed > 0, "t{threads}");
    }
}
