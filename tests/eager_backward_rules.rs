//! Finite-difference validation of every differentiable op in the eager
//! registry (the tape AD used by the Eager/PyTorch baselines).

use autograph::eager::{Eager, EagerTensor};
use autograph::prelude::*;

/// Check d(loss)/d(x) for `loss = reduce_sum(f(x))` via central finite
/// differences, where `f` is built from registry ops.
fn check(build: impl Fn(&Eager, &EagerTensor) -> EagerTensor, x0: Vec<f32>, tol: f32) {
    let e = Eager::new();
    let n = x0.len();
    let xt = Tensor::from_vec(x0.clone(), &[n]).unwrap();

    e.start_tape();
    let x = e.watch(&EagerTensor::from(xt.clone())).unwrap();
    let y = build(&e, &x);
    let loss = e.op("reduce_sum", &[&y]).unwrap();
    let analytic = e.gradient(&loss, &[&x]).unwrap()[0].clone();

    let eval = |v: Vec<f32>| -> f32 {
        let t = EagerTensor::from(Tensor::from_vec(v, &[n]).unwrap());
        let y = build(&e, &t);
        e.op("reduce_sum", &[&y])
            .unwrap()
            .tensor()
            .scalar_value_f32()
            .unwrap()
    };
    let eps = 1e-3;
    for i in 0..n {
        let mut plus = x0.clone();
        plus[i] += eps;
        let mut minus = x0.clone();
        minus[i] -= eps;
        let numeric = (eval(plus) - eval(minus)) / (2.0 * eps);
        let a = analytic.as_f32().unwrap()[i];
        assert!(
            (a - numeric).abs() < tol * (1.0 + numeric.abs()),
            "component {i}: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn unary_rules() {
    for name in [
        "tanh", "sigmoid", "relu", "exp", "square", "neg", "abs", "identity",
    ] {
        check(
            move |e, x| e.op(name, &[x]).unwrap(),
            vec![0.5, -0.7, 1.3],
            3e-2,
        );
    }
    // log and sqrt need positive inputs
    for name in ["log", "sqrt"] {
        check(
            move |e, x| e.op(name, &[x]).unwrap(),
            vec![0.5, 1.2, 3.0],
            3e-2,
        );
    }
}

#[test]
fn binary_rules_with_constant_rhs() {
    let c = EagerTensor::from(Tensor::from_vec(vec![2.0, -1.5, 0.5], &[3]).unwrap());
    for name in ["add", "sub", "mul", "div", "maximum", "minimum"] {
        let c = c.clone();
        check(
            move |e, x| e.op(name, &[x, &c]).unwrap(),
            vec![0.6, -0.9, 1.1],
            3e-2,
        );
    }
}

#[test]
fn pow_rule_both_sides() {
    // base gradient (positive base)
    let exp = EagerTensor::from(Tensor::scalar_f32(2.5));
    check(
        move |e, x| e.op("pow", &[x, &exp]).unwrap(),
        vec![0.8, 1.5, 2.2],
        3e-2,
    );
}

#[test]
fn matmul_rule_both_operands() {
    // dL/dA with constant B
    let e = Eager::new();
    let a0 = vec![0.5f32, -0.2, 0.7, 1.1, 0.3, -0.6];
    let b_const = Tensor::from_vec(vec![0.4, -0.9, 1.2, 0.1, -0.5, 0.8], &[3, 2]).unwrap();

    e.start_tape();
    let a = e
        .watch(&EagerTensor::from(
            Tensor::from_vec(a0.clone(), &[2, 3]).unwrap(),
        ))
        .unwrap();
    let b = e.watch(&EagerTensor::from(b_const.clone())).unwrap();
    let y = e.matmul(&a, &b).unwrap();
    let loss = e.op("reduce_sum", &[&y]).unwrap();
    let grads = e.gradient(&loss, &[&a, &b]).unwrap();

    // analytic: dL/dA = ones @ B^T; dL/dB = A^T @ ones
    let ones = Tensor::ones(DType::F32, &[2, 2]);
    let expect_a = ones.matmul(&b_const.t().unwrap()).unwrap();
    let a_mat = Tensor::from_vec(a0, &[2, 3]).unwrap();
    let expect_b = a_mat.t().unwrap().matmul(&ones).unwrap();
    for (g, e_) in grads[0]
        .as_f32()
        .unwrap()
        .iter()
        .zip(expect_a.as_f32().unwrap())
    {
        assert!((g - e_).abs() < 1e-5);
    }
    for (g, e_) in grads[1]
        .as_f32()
        .unwrap()
        .iter()
        .zip(expect_b.as_f32().unwrap())
    {
        assert!((g - e_).abs() < 1e-5);
    }
}

#[test]
fn select_rule_routes_gradient() {
    let e = Eager::new();
    let cond = EagerTensor::from(Tensor::from_vec_bool(vec![true, false, true], &[3]).unwrap());
    e.start_tape();
    let a = e
        .watch(&EagerTensor::from(
            Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
        ))
        .unwrap();
    let b = e
        .watch(&EagerTensor::from(
            Tensor::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap(),
        ))
        .unwrap();
    let y = e.op("select", &[&cond, &a, &b]).unwrap();
    let loss = e.op("reduce_sum", &[&y]).unwrap();
    let grads = e.gradient(&loss, &[&a, &b]).unwrap();
    assert_eq!(grads[0].as_f32().unwrap(), &[1.0, 0.0, 1.0]);
    assert_eq!(grads[1].as_f32().unwrap(), &[0.0, 1.0, 0.0]);
}

#[test]
fn broadcast_gradients_reduce_correctly() {
    // y = x + bias, bias scalar: d/d(bias) = count of elements
    let e = Eager::new();
    e.start_tape();
    let x = EagerTensor::from(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
    let bias = e
        .watch(&EagerTensor::from(Tensor::scalar_f32(0.5)))
        .unwrap();
    let y = e.add(&x, &bias).unwrap();
    let loss = e.op("reduce_sum", &[&y]).unwrap();
    let grads = e.gradient(&loss, &[&bias]).unwrap();
    assert_eq!(grads[0].scalar_value_f32().unwrap(), 4.0);
}

#[test]
fn cross_entropy_gradient_direction() {
    // moving the true-class logit up must reduce the loss
    let e = Eager::new();
    e.start_tape();
    let logits = e
        .watch(&EagerTensor::from(
            Tensor::from_vec(vec![0.2, -0.1, 0.5], &[1, 3]).unwrap(),
        ))
        .unwrap();
    let labels = EagerTensor::from(Tensor::from_vec_i64(vec![1], &[1]).unwrap());
    let loss = e.op("softmax_cross_entropy", &[&logits, &labels]).unwrap();
    let grads = e.gradient(&loss, &[&logits]).unwrap();
    let g = grads[0].as_f32().unwrap();
    assert!(g[1] < 0.0, "true class gradient negative: {g:?}");
    assert!(g[0] > 0.0 && g[2] > 0.0, "{g:?}");
    let sum: f32 = g.iter().sum();
    assert!(sum.abs() < 1e-5, "rows sum to zero: {g:?}");
}
