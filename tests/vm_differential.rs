//! The VM-vs-interpreter differential test wall: every corpus program,
//! staged once and executed through both tiers ([`ExecMode::Interp`]
//! and [`ExecMode::Vm`]) at 1 and 4 threads, must produce **bitwise
//! identical** outputs. The compiled tier (register bytecode, fused
//! elementwise kernels, buffer recycling) is pure cost model — it is
//! never allowed to change a result.
//!
//! Alongside raw outputs, the wall also locks down:
//!
//! * conversion warnings (staging happens before mode selection, so the
//!   sets must match exactly);
//! * `RunReport` invariants per mode — the memory ledger balances
//!   (allocated − freed == live delta, so arena recycling can't leak),
//!   the run executes the same number of nodes and while-iterations in
//!   both modes, and every node cost resolves to a real source span
//!   (fused kernels split costs across their covered nodes).

use autograph::prelude::*;

#[path = "support/check.rs"]
mod check;
#[path = "support/corpus.rs"]
mod corpus;

use corpus::programs;

/// Stage a corpus program and run it in the given mode/threads with
/// reporting on; returns the outputs, the report, and the session stats.
fn run_mode(
    graph: &autograph::graph::Graph,
    outputs: &[autograph::graph::NodeId],
    feeds: &[(&str, Tensor)],
    mode: ExecMode,
    threads: usize,
) -> (
    Vec<Tensor>,
    autograph::graph::RunReport,
    autograph::graph::session::SessionStats,
) {
    let mut sess = Session::new(graph.clone());
    sess.set_threads(threads);
    sess.set_exec_mode(mode);
    sess.set_reporting(true);
    let out = sess
        .run(feeds, outputs)
        .unwrap_or_else(|e| panic!("{mode:?} t{threads}: {e}"));
    let report = sess.last_report().expect("reporting enabled").clone();
    (out, report, sess.stats())
}

#[test]
fn vm_outputs_bitwise_identical_to_interpreter() {
    for p in programs() {
        let mut rt = Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));
        let args: Vec<GraphArg> = p
            .feeds
            .iter()
            .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
            .collect();
        let staged = rt
            .stage_to_graph("f", args)
            .unwrap_or_else(|e| panic!("{}: stage: {e}", p.name));
        let warnings_before: Vec<String> = rt.warnings().iter().map(|w| format!("{w:?}")).collect();

        let (reference, ref_report, ref_stats) = run_mode(
            &staged.graph,
            &staged.outputs,
            &p.feeds,
            ExecMode::Interp,
            1,
        );

        for mode in [ExecMode::Interp, ExecMode::Vm] {
            for threads in [1usize, 4] {
                let (out, report, stats) =
                    run_mode(&staged.graph, &staged.outputs, &p.feeds, mode, threads);
                check::assert_bitwise_eq(
                    p.name,
                    &format!("{mode:?} t{threads} vs Interp t1"),
                    &out,
                    &reference,
                );

                // the exec mode is a run-time choice; staging already
                // happened, so the warning set cannot have changed
                let warnings_now: Vec<String> =
                    rt.warnings().iter().map(|w| format!("{w:?}")).collect();
                assert_eq!(
                    warnings_now, warnings_before,
                    "{}: {mode:?} t{threads}: conversion warnings drifted",
                    p.name
                );

                // ledger balance: every byte the run allocated (arena
                // reuse included) is either freed or still live
                let alloc_delta =
                    report.mem.allocated_bytes as i128 - report.mem.freed_bytes as i128;
                let live_delta =
                    report.mem.live_bytes_end as i128 - report.mem.live_bytes_start as i128;
                assert_eq!(
                    alloc_delta, live_delta,
                    "{}: {mode:?} t{threads}: ledger imbalance",
                    p.name
                );

                // same work accounting: the VM is linear on the calling
                // thread at any thread count, so its dispatch counts
                // must match the sequential interpreter exactly (the
                // parallel interpreter's scheduler accounts differently
                // and is not part of this contract)
                if mode == ExecMode::Vm {
                    assert_eq!(
                        stats.nodes_executed, ref_stats.nodes_executed,
                        "{}: {mode:?} t{threads}: dispatch count drifted",
                        p.name
                    );
                }
                assert_eq!(
                    stats.while_iters, ref_stats.while_iters,
                    "{}: {mode:?} t{threads}: while iterations drifted",
                    p.name
                );
                assert_eq!(
                    report.while_iters, ref_report.while_iters,
                    "{}: {mode:?} t{threads}: report while_iters drifted",
                    p.name
                );

                // every attributed cost keeps a real source span — the
                // provenance/explain contract through fused kernels
                for c in &report.node_costs {
                    assert!(
                        !c.span.is_synthetic(),
                        "{}: {mode:?} t{threads}: node {} '{}' ({}) lost its span",
                        p.name,
                        c.node,
                        c.name,
                        c.op
                    );
                    assert!(c.evals > 0, "{}: zero-eval cost entry", p.name);
                }
                assert!(report.succeeded);
            }
        }
    }
}

#[test]
fn vm_repeated_runs_are_bitwise_stable() {
    // plan + bytecode caching across session runs: re-running the same
    // fetch set must reuse the compiled program and reproduce bits
    for p in programs() {
        let mut rt = Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));
        let args: Vec<GraphArg> = p
            .feeds
            .iter()
            .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
            .collect();
        let staged = rt
            .stage_to_graph("f", args)
            .unwrap_or_else(|e| panic!("{}: stage: {e}", p.name));
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(1);
        sess.set_exec_mode(ExecMode::Vm);
        let first = sess
            .run(&p.feeds, &staged.outputs)
            .unwrap_or_else(|e| panic!("{}: first run: {e}", p.name));
        for i in 0..3 {
            let again = sess
                .run(&p.feeds, &staged.outputs)
                .unwrap_or_else(|e| panic!("{}: run {i}: {e}", p.name));
            check::assert_bitwise_eq(p.name, &format!("vm rerun {i}"), &again, &first);
        }
        assert_eq!(sess.stats().plan_cache_misses, 1, "{}", p.name);
        assert_eq!(sess.stats().plan_cache_hits, 3, "{}", p.name);
    }
}

#[test]
fn vm_live_memory_returns_to_baseline() {
    // the VM's arena recycles buffers within a run but owns nothing
    // beyond it: after the session drops, live bytes return to where
    // they started
    autograph::tensor::mem::track_begin();
    let p = &programs()[0];
    let mut rt = Runtime::load(p.src, true).expect("load");
    let args: Vec<GraphArg> = p
        .feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
        .collect();
    let staged = rt.stage_to_graph("f", args).expect("stage");
    let live0 = autograph::tensor::mem::snapshot().live_bytes;
    {
        let mut sess = Session::new(staged.graph.clone());
        sess.set_exec_mode(ExecMode::Vm);
        sess.set_threads(1);
        for _ in 0..5 {
            sess.run(&p.feeds, &staged.outputs).expect("run");
        }
    }
    let live1 = autograph::tensor::mem::snapshot().live_bytes;
    assert_eq!(
        live0, live1,
        "live bytes did not return to baseline after VM session drop"
    );
}
