//! Property-based tests over core data structures and invariants:
//! tensor algebra, symbolic-vs-numeric gradients, structured-vs-CFG
//! liveness, and codegen round-trips.

use autograph::analysis;
use autograph::graph::builder::GraphBuilder;
use autograph::graph::grad::gradients;
use autograph::graph::ir::OpKind;
use autograph::prelude::*;
use proptest::prelude::*;

fn vec_tensor(max: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, 1..=max).prop_map(|v| {
        let n = v.len();
        Tensor::from_vec(v, &[n]).expect("shape")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- tensor algebra -----------------------------------------------------

    #[test]
    fn add_commutes((a, b) in (1usize..16).prop_flat_map(|n| (
        proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |v| Tensor::from_vec(v, &[n]).unwrap()),
        proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |v| Tensor::from_vec(v, &[n]).unwrap()),
    ))) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.as_f32().unwrap(), ba.as_f32().unwrap());
    }

    #[test]
    fn mul_distributes_over_add((a, b, c) in (1usize..8).prop_flat_map(|n| (
        proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |v| Tensor::from_vec(v, &[n]).unwrap()),
        proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |v| Tensor::from_vec(v, &[n]).unwrap()),
        proptest::collection::vec(-10.0f32..10.0, n).prop_map(move |v| Tensor::from_vec(v, &[n]).unwrap()),
    ))) {
        let lhs = a.mul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.mul(&b).unwrap().add(&a.mul(&c).unwrap()).unwrap();
        for (x, y) in lhs.as_f32().unwrap().iter().zip(rhs.as_f32().unwrap()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn broadcast_scalar_matches_elementwise(a in vec_tensor(16), s in -5.0f32..5.0) {
        let scalar = Tensor::scalar_f32(s);
        let out = a.add(&scalar).unwrap();
        for (x, y) in a.as_f32().unwrap().iter().zip(out.as_f32().unwrap()) {
            prop_assert_eq!(x + s, *y);
        }
    }

    #[test]
    fn stack_then_index_recovers(rows in (1usize..6).prop_flat_map(|n|
        proptest::collection::vec(
            proptest::collection::vec(-10.0f32..10.0, n)
                .prop_map(move |v| Tensor::from_vec(v, &[n]).unwrap()),
            1..5,
        ))) {
        let stacked = Tensor::stack(&rows).unwrap();
        for (i, r) in rows.iter().enumerate() {
            let back = stacked.index_axis0(i as i64).unwrap();
            prop_assert_eq!(back.as_f32().unwrap(), r.as_f32().unwrap());
        }
    }

    #[test]
    fn top_k_is_sorted_and_members(a in vec_tensor(24), k in 1usize..6) {
        prop_assume!(k <= a.num_elements());
        let (vals, idxs) = a.top_k(k).unwrap();
        let v = vals.as_f32().unwrap();
        prop_assert!(v.windows(2).all(|w| w[0] >= w[1]), "sorted descending");
        let data = a.as_f32().unwrap();
        for (val, idx) in v.iter().zip(idxs.as_i64().unwrap()) {
            prop_assert_eq!(*val, data[*idx as usize]);
        }
        // the k-th value is >= every non-selected element
        let selected: std::collections::HashSet<i64> =
            idxs.as_i64().unwrap().iter().copied().collect();
        let kth = v[k - 1];
        for (i, x) in data.iter().enumerate() {
            if !selected.contains(&(i as i64)) {
                prop_assert!(*x <= kth, "{} > kth {}", x, kth);
            }
        }
    }

    #[test]
    fn setitem_then_getitem(a in vec_tensor(10), v in -5.0f32..5.0, i in 0usize..10) {
        prop_assume!(i < a.num_elements());
        let updated = a.set_index_axis0(i as i64, &Tensor::scalar_f32(v)).unwrap();
        prop_assert_eq!(updated.index_axis0(i as i64).unwrap().scalar_value_f32().unwrap(), v);
        // all other elements untouched
        for j in 0..a.num_elements() {
            if j != i {
                prop_assert_eq!(
                    updated.as_f32().unwrap()[j],
                    a.as_f32().unwrap()[j]
                );
            }
        }
        // original unchanged (value semantics)
        prop_assert_ne!(a.as_f32().unwrap()[i].to_bits(), f32::to_bits(v + 100.0));
    }

    #[test]
    fn softmax_is_distribution(a in vec_tensor(12)) {
        let s = a.softmax().unwrap();
        let v = s.as_f32().unwrap();
        prop_assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let total: f32 = v.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-4);
    }

    // ---- symbolic gradients vs finite differences ------------------------------

    #[test]
    fn graph_gradient_matches_finite_difference(x0 in proptest::collection::vec(-2.0f32..2.0, 3)) {
        // loss = sum(tanh(x)^2 + 0.5 x)
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let t = b.tanh(x);
        let sq = b.add(OpKind::Square, vec![t]);
        let half = b.scalar(0.5);
        let lin = b.mul(x, half);
        let s = b.add_op(sq, lin);
        let loss = b.add(OpKind::ReduceSum(None), vec![s]);
        let grads = gradients(&mut b, loss, &[x]).unwrap();
        let gx = grads[0];
        let mut sess = Session::new(b.finish());

        let base = Tensor::from_vec(x0.clone(), &[3]).unwrap();
        let analytic = sess.run(&[("x", base)], &[gx]).unwrap()[0].clone();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut plus = x0.clone();
            plus[i] += eps;
            let mut minus = x0.clone();
            minus[i] -= eps;
            let lp = sess
                .run(&[("x", Tensor::from_vec(plus, &[3]).unwrap())], &[loss])
                .unwrap()[0]
                .scalar_value_f32()
                .unwrap();
            let lm = sess
                .run(&[("x", Tensor::from_vec(minus, &[3]).unwrap())], &[loss])
                .unwrap()[0]
                .scalar_value_f32()
                .unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_f32().unwrap()[i];
            prop_assert!((a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()), "{} vs {}", a, numeric);
        }
    }

    // ---- optimization soundness --------------------------------------------------

    #[test]
    fn optimization_preserves_results(x0 in proptest::collection::vec(-3.0f32..3.0, 4)) {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        // build redundancy on purpose: duplicate subexpressions + constants
        let c1 = b.scalar(2.0);
        let c2 = b.scalar(3.0);
        let c3 = b.add_op(c1, c2);
        let t1 = b.tanh(x);
        let t2 = b.tanh(x);
        let m1 = b.mul(t1, c3);
        let m2 = b.mul(t2, c3);
        let out = b.add_op(m1, m2);
        let _dead = b.sigmoid(x);
        let g = b.finish();

        let input = Tensor::from_vec(x0, &[4]).unwrap();
        let mut sess_raw = Session::new(g.clone());
        let raw = sess_raw.run(&[("x", input.clone())], &[out]).unwrap();
        let (og, keep, stats) = autograph::graph::optimize::optimize(&g, &[out]);
        prop_assert!(stats.deduped >= 1 && stats.folded >= 1 && stats.eliminated >= 1);
        let mut sess_opt = Session::new(og);
        let opt = sess_opt.run(&[("x", input)], &[keep[0]]).unwrap();
        prop_assert_eq!(raw[0].as_f32().unwrap(), opt[0].as_f32().unwrap());
    }
}

// ---- analysis invariants (non-proptest fixtures + random programs) ----------

#[test]
fn structured_liveness_superset_of_cfg_liveness() {
    // on arbitrary (break-free) programs the structured analysis must be a
    // superset of (usually equal to) the CFG fixpoint
    let programs = [
        "x = a\ny = x + b\nz = y\n",
        "if c:\n    x = 1\nelse:\n    x = d\ny = x\n",
        "while c:\n    x = x + d\n    if e:\n        x = 0\nr = x\n",
        "for i in xs:\n    if i:\n        s = s + i\n    else:\n        t = t + 1\nr = s + t\n",
    ];
    for src in programs {
        let body = autograph::pylang::parse_module(src).unwrap().body;
        let out: analysis::SymbolSet = ["r", "y", "z"].iter().map(|s| s.to_string()).collect();
        let structured = analysis::liveness::live_into(&body, &out);
        let cfg = analysis::cfg::Cfg::build(&body);
        let fix = analysis::dataflow::liveness(&cfg, &out);
        for s in &fix.live_in[analysis::cfg::ENTRY] {
            assert!(
                structured.contains(s),
                "{src}: {s} missing from structured result"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Codegen is a fix-point: parse(render(ast)) renders identically.
    #[test]
    fn codegen_round_trip_on_random_programs(seed in 0u64..10_000) {
        // reuse the tensor RNG to synthesize small programs deterministically
        let mut rng = Rng64::new(seed);
        let mut src = String::from("def f(a, b):\n");
        let vars = ["a", "b", "x", "y"];
        for i in 0..(1 + rng.next_below(4)) {
            let v = vars[rng.next_below(4) as usize];
            let w = vars[rng.next_below(4) as usize];
            let op = ["+", "-", "*"][rng.next_below(3) as usize];
            match rng.next_below(3) {
                0 => src.push_str(&format!("    x = {v} {op} {w}\n")),
                1 => src.push_str(&format!(
                    "    if {v} < {w}:\n        y = {v} {op} {w}\n    else:\n        y = {}\n",
                    rng.next_below(50)
                )),
                _ => src.push_str(&format!(
                    "    for i{i} in range({}):\n        x = x {op} i{i}\n",
                    1 + rng.next_below(4)
                )),
            }
        }
        src.push_str("    return x + y\n");
        let m1 = autograph::pylang::parse_module(&src).unwrap();
        let r1 = autograph::pylang::codegen::ast_to_source(&m1);
        let m2 = autograph::pylang::parse_module(&r1).unwrap();
        let r2 = autograph::pylang::codegen::ast_to_source(&m2);
        prop_assert_eq!(r1, r2, "not a fixpoint for\n{}", src);
    }

    /// The frontend never panics: arbitrary byte soup either parses or
    /// returns a located error.
    #[test]
    fn parser_never_panics(input in r"[ -~\n\t]{0,200}") {
        match autograph::pylang::parse_module(&input) {
            Ok(m) => {
                // whatever parsed must render and re-parse
                let rendered = autograph::pylang::codegen::ast_to_source(&m);
                prop_assert!(autograph::pylang::parse_module(&rendered).is_ok(),
                    "codegen of parsed input must re-parse:\n{}", rendered);
            }
            Err(e) => {
                prop_assert!(e.span.line >= 1 || e.span.is_synthetic());
            }
        }
    }

    /// Neither does the full conversion pipeline.
    #[test]
    fn converter_never_panics(input in r"[a-z0-9 :=+*()<>\n-]{0,150}") {
        let _ = autograph::convert_source(&input); // Ok or Err, never panic
    }

    /// Conversion is idempotent: converting already-converted code leaves
    /// artifacts untouched (functions keep single markers and behaviour).
    #[test]
    fn conversion_artifact_marking_idempotent(n in 1i64..20) {
        let src = "def f(x):\n    if x > 0:\n        return x * 2\n    return x\n";
        let once = autograph::convert_source(src).unwrap();
        let mut rt = Runtime::load(&once, false).unwrap(); // already converted
        let v = rt.call("f", vec![Value::Int(n)]).unwrap();
        prop_assert_eq!(v.as_int().unwrap(), n * 2);
    }
}
