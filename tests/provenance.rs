//! Provenance completeness over the differential corpus: every executed
//! top-level plan node must resolve to a PyLite source span (at 1 and 4
//! threads), and the whole provenance layer — node chains, optimizer
//! trace, spans — must reproduce bitwise when the same function is
//! staged and optimized a second time.

use autograph::prelude::*;
use autograph_graph::optimize::optimize_traced;

#[path = "support/corpus.rs"]
mod corpus;
use corpus::{programs, Program};

fn stage_optimized(
    rt: &mut Runtime,
    p: &Program,
) -> (
    autograph_graph::Graph,
    Vec<autograph_graph::NodeId>,
    autograph_graph::OptTrace,
) {
    let placeholder_args: Vec<GraphArg> = p
        .feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
        .collect();
    let staged = rt
        .stage_to_graph("f", placeholder_args)
        .unwrap_or_else(|e| panic!("{}: stage: {e}", p.name));
    let (graph, outputs, _stats, trace) = optimize_traced(&staged.graph, &staged.outputs);
    (graph, outputs, trace)
}

#[test]
fn every_executed_node_resolves_to_a_source_span() {
    // both execution tiers must keep attribution complete: the VM's
    // fused kernels split their cost across covered source nodes, so
    // every absorbed op still surfaces with its real span
    for p in programs() {
        let mut rt = Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));
        let (graph, outputs, _trace) = stage_optimized(&mut rt, &p);
        for mode in [ExecMode::Interp, ExecMode::Vm] {
            for threads in [1usize, 4] {
                let mut sess = Session::new(graph.clone());
                sess.set_threads(threads);
                sess.set_exec_mode(mode);
                sess.set_reporting(true);
                sess.run(&p.feeds, &outputs)
                    .unwrap_or_else(|e| panic!("{}: run {mode:?} t{threads}: {e}", p.name));
                let report = sess
                    .last_report()
                    .unwrap_or_else(|| panic!("{}: reporting was enabled", p.name));
                for c in &report.node_costs {
                    assert!(
                        !c.span.is_synthetic(),
                        "{}: {mode:?} t{threads}: executed node {} '{}' ({}, {} evals) has no source span",
                        p.name,
                        c.node,
                        c.name,
                        c.op,
                        c.evals,
                    );
                }
            }
        }
    }
}

#[test]
fn provenance_survives_restaging_bitwise() {
    for p in programs() {
        let mut rt = Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));
        let (g1, o1, t1) = stage_optimized(&mut rt, &p);
        let (g2, o2, t2) = stage_optimized(&mut rt, &p);
        assert_eq!(o1, o2, "{}: outputs differ across restaging", p.name);
        assert_eq!(
            g1, g2,
            "{}: optimized graph (nodes, spans, provenance chains) differs across restaging",
            p.name
        );
        assert_eq!(
            t1, t2,
            "{}: optimizer trace differs across restaging",
            p.name
        );
        // belt and braces: the rendered lineage strings match too
        for (a, b) in g1.nodes.iter().zip(g2.nodes.iter()) {
            assert_eq!(a.lineage(), b.lineage(), "{}: lineage text differs", p.name);
        }
    }
}
