//! Appendix B: the three error classes — conversion, staging, runtime —
//! each attributed to the user's *original* source via span inheritance
//! and the generated-source map.

use autograph::prelude::*;
use autograph::transforms::srcmap::SourceMap;

// ---- conversion errors ------------------------------------------------------

#[test]
fn conversion_error_locates_offending_idiom() {
    let src = "def f():\n    x = 1\n    global y\n    return x\n";
    let err = autograph::convert_source(src).unwrap_err();
    assert_eq!(err.span.line, 3, "points at the `global`");
    let msg = err.with_source(src).to_string();
    assert!(msg.contains("global y"), "quotes the line: {msg}");
}

#[test]
fn conversion_error_for_slice_write() {
    let err = autograph::convert_source("def f(x):\n    x[1:3] = 0\n    return x\n").unwrap_err();
    assert_eq!(err.span.line, 2);
    assert!(err.to_string().contains("slice-range assignment"));
}

#[test]
fn parse_error_located() {
    let err = autograph::convert_source("def f(:\n").unwrap_err();
    assert_eq!(err.span.line, 1);
}

// ---- staging errors ----------------------------------------------------------

#[test]
fn staging_error_tensor_as_python_bool() {
    // an UNCONVERTED data-dependent conditional hit during staging — the
    // classic TF error, raised with the user's line number
    let src = "\
def raw(x):
    if x > 0:
        return x
    return -x
";
    // load unconverted AND disable control-flow conversion so the `if`
    // keeps Python semantics — then staging hits the tensor-as-bool error
    let mut rt = Runtime::load(src, false).expect("load");
    rt.interp.config.convert_control_flow = false;
    let err = rt
        .stage_to_graph("raw", vec![GraphArg::Placeholder("x".into())])
        .unwrap_err();
    assert!(
        err.to_string().contains("staged tensor as a Python bool"),
        "{err}"
    );
    assert_eq!(err.span.line, 2, "points at the unconverted `if`: {err}");
}

#[test]
fn staging_error_inconsistent_branch_values() {
    let src = "def f(x):\n    if x > 0:\n        y = x\n    return y\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let err = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .unwrap_err();
    assert!(err.to_string().contains("all code paths"), "{err}");
    // the error points back into the user's function
    assert!(err.span.line >= 1 && err.span.line <= 4, "{err}");
}

#[test]
fn staging_error_iterating_staged_tensor_imperatively() {
    // `for` over a staged tensor inside an unconverted lambda
    let src = "def f(xs):\n    g = lambda: [v for v in xs]\n    return g()\n";
    // comprehension is a parse error; use a different unconvertible path:
    let _ = src;
    let src = "def f(xs):\n    g = lambda v: len(v)\n    return g(xs)\n";
    let mut rt = Runtime::load(src, true).expect("load");
    // len() of a staged tensor is fine (stages Shape); this should succeed
    assert!(rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("xs".into())])
        .is_ok());
}

// ---- runtime errors -----------------------------------------------------------

#[test]
fn runtime_error_carries_original_span_through_staged_code() {
    // division by zero inside a staged graph: the executed node carries
    // the span of the user's original line
    let src = "\
def f(x):
    y = x + 1.0
    z = y / (x - x)
    return z
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    // f32 division by zero yields inf, not an error — use an op that does
    // fail at runtime instead: matmul shape mismatch
    let src2 = "\
def g(a, b):
    c = a + 0.0
    return tf.matmul(c, b)
";
    let mut rt2 = Runtime::load(src2, true).expect("load");
    let staged2 = rt2
        .stage_to_graph(
            "g",
            vec![
                GraphArg::Placeholder("a".into()),
                GraphArg::Placeholder("b".into()),
            ],
        )
        .expect("stage");
    let mut sess2 = Session::new(staged2.graph);
    let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
    let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
    let err = sess2
        .run(&[("a", a), ("b", b)], &staged2.outputs)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("matmul"), "{msg}");
    assert!(msg.contains("original source 3:"), "span rewritten: {msg}");
    let _ = sess.run(&[("x", Tensor::scalar_f32(1.0))], &staged.outputs);
}

#[test]
fn runtime_error_interpreted_code_has_span_and_stack() {
    let src = "\
def inner(x):
    return x / 0
def outer(x):
    return inner(x)
";
    let mut rt = Runtime::load(src, false).expect("load");
    let err = rt.call("outer", vec![Value::Int(1)]).unwrap_err();
    assert_eq!(err.span.line, 2);
    let msg = err.to_string();
    assert!(msg.contains("in inner"), "{msg}");
    assert!(msg.contains("in outer"), "{msg}");
}

#[test]
fn staged_assert_fires_at_graph_execution() {
    let src = "def f(x):\n    assert x > 0.0, 'x must be positive'\n    return x * 2.0\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    for mode in [ExecMode::Interp, ExecMode::Vm] {
        let mut sess = Session::new(staged.graph.clone());
        sess.set_exec_mode(mode);
        // passing assert
        let ok = sess.run(&[("x", Tensor::scalar_f32(2.0))], &staged.outputs);
        assert!(ok.is_ok(), "{mode:?}");
        // failing assert at runtime, not staging
        let err = sess
            .run(&[("x", Tensor::scalar_f32(-2.0))], &staged.outputs)
            .unwrap_err();
        assert!(
            err.to_string().contains("x must be positive"),
            "{mode:?}: {err}"
        );
    }
}

// ---- runtime-phase failures: loops, deadlines, cancellation -------------------

#[test]
fn runtime_shape_mismatch_inside_while_loop_attributed() {
    // the first matmul [1,2]x[2,3] succeeds; the loop-carried second
    // iteration tries [1,3]x[2,3] and fails at *runtime*, inside the
    // staged While body — the error must still point at the user's line
    let src = "\
def f(x, w):
    i = 0
    while i < 3:
        x = tf.matmul(x, w)
        i = i + 1
    return x
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph(
            "f",
            vec![
                GraphArg::Placeholder("x".into()),
                GraphArg::Placeholder("w".into()),
            ],
        )
        .expect("stage");
    let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
    let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
    for mode in [ExecMode::Interp, ExecMode::Vm] {
        for threads in [1, 4] {
            let mut sess = Session::new(staged.graph.clone());
            sess.set_threads(threads);
            sess.set_exec_mode(mode);
            let err = sess
                .run(&[("x", x.clone()), ("w", w.clone())], &staged.outputs)
                .unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("matmul"), "{mode:?} t{threads}: {msg}");
            assert!(
                msg.contains("original source 4:"),
                "{mode:?} t{threads}: span rewritten: {msg}"
            );
        }
    }
}

/// Stage `def f(x): while tf.reduce_sum(x) > 0.0: x = x + 1.0` — an
/// infinite loop for any positive feed.
fn staged_infinite_loop() -> (autograph::graph::Graph, Vec<autograph::graph::NodeId>) {
    let src = "\
def f(x):
    while tf.reduce_sum(x) > 0.0:
        x = x + 1.0
    return x
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    (staged.graph, staged.outputs)
}

#[test]
fn deadline_exceeded_reported_with_user_span() {
    let (graph, outputs) = staged_infinite_loop();
    for mode in [ExecMode::Interp, ExecMode::Vm] {
        for threads in [1, 4] {
            let mut sess = Session::new(graph.clone());
            sess.set_threads(threads);
            sess.set_exec_mode(mode);
            let opts = RunOptions::default().with_deadline(std::time::Duration::from_millis(40));
            let err = sess
                .run_with_options(&[("x", Tensor::scalar_f32(1.0))], &outputs, &opts)
                .unwrap_err();
            assert!(err.is_deadline_exceeded(), "{mode:?} t{threads}: {err}");
            let msg = err.to_string();
            assert!(
                msg.contains("deadline exceeded"),
                "{mode:?} t{threads}: {msg}"
            );
            // the check trips at whichever loop node runs next — condition
            // (line 2) or body (line 3) — but always carries a user span
            assert!(
                msg.contains("original source 2:") || msg.contains("original source 3:"),
                "{mode:?} t{threads}: deadline error must point inside the staged loop: {msg}"
            );
            // partial work is visible even though the run failed
            assert!(sess.stats().while_iters > 0, "{mode:?} t{threads}");
        }
    }
}

#[test]
fn cancelled_run_reported_with_user_span() {
    let (graph, outputs) = staged_infinite_loop();
    for mode in [ExecMode::Interp, ExecMode::Vm] {
        for threads in [1, 4] {
            let mut sess = Session::new(graph.clone());
            sess.set_threads(threads);
            sess.set_exec_mode(mode);
            let token = CancelToken::new();
            let canceller = {
                let token = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    token.cancel();
                })
            };
            let opts = RunOptions::default().with_cancel(token);
            let err = sess
                .run_with_options(&[("x", Tensor::scalar_f32(1.0))], &outputs, &opts)
                .unwrap_err();
            canceller.join().expect("canceller thread");
            assert!(err.is_cancelled(), "{mode:?} t{threads}: {err}");
            let msg = err.to_string();
            assert!(
                msg.contains("original source 2:") || msg.contains("original source 3:"),
                "{mode:?} t{threads}: cancel error must point inside the staged loop: {msg}"
            );
        }
    }
}

// ---- graceful degradation: FallbackToEager ------------------------------------

/// Three deliberately-unsupported programs: each fails strict conversion,
/// yet runs end-to-end under `FallbackToEager` with results identical to
/// the unconverted eager reference.
#[test]
fn fallback_to_eager_runs_unsupported_programs_end_to_end() {
    struct Case {
        name: &'static str,
        src: &'static str,
        rejected: &'static str,
    }
    let cases = [
        Case {
            name: "pop_buried_in_expression",
            src: "\
def f(x):
    acc = []
    acc.append(x * 2.0)
    y = tf.reduce_sum(acc.pop()) + 1.0
    return y
",
            rejected: "statement or simple assignment",
        },
        Case {
            name: "break_outside_loop",
            src: "\
def f(x):
    i = 0
    if i > 0:
        break
    return x * 3.0
",
            rejected: "'break' outside of a loop",
        },
        Case {
            name: "directive_on_non_name",
            src: "\
def f(x):
    acc = [[]]
    ag.set_element_type(acc[0], tf.float32)
    return x * 2.0 + 1.0
",
            rejected: "must be a variable name",
        },
    ];
    let feed = Tensor::from_vec(vec![1.5, -2.5, 4.0], &[3]).unwrap();
    for case in &cases {
        // strict conversion rejects the program outright
        let strict = Runtime::load(case.src, true);
        let err = strict
            .err()
            .unwrap_or_else(|| panic!("{}: strict load must fail", case.name));
        assert!(
            err.to_string().contains(case.rejected),
            "{}: {err}",
            case.name
        );

        // fallback keeps the function, records a warning, and runs it
        let cfg = ConversionConfig {
            policy: ConversionPolicy::FallbackToEager,
            ..Default::default()
        };
        let mut rt = Runtime::load_with(case.src, &cfg)
            .unwrap_or_else(|e| panic!("{}: fallback load: {e}", case.name));
        assert_eq!(rt.warnings().len(), 1, "{}", case.name);
        assert_eq!(rt.warnings()[0].function, "f", "{}", case.name);
        let got = rt
            .call("f", vec![Value::tensor(feed.clone())])
            .unwrap_or_else(|e| panic!("{}: fallback call: {e}", case.name))
            .as_eager_tensor()
            .expect("tensor result");

        // unconverted eager reference
        let mut reference = Runtime::load(case.src, false)
            .unwrap_or_else(|e| panic!("{}: reference load: {e}", case.name));
        let want = reference
            .call("f", vec![Value::tensor(feed.clone())])
            .unwrap_or_else(|e| panic!("{}: reference call: {e}", case.name))
            .as_eager_tensor()
            .expect("tensor result");
        assert_eq!(got.shape(), want.shape(), "{}", case.name);
        for (a, b) in got.to_f32_vec().iter().zip(want.to_f32_vec()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{}: fallback {a} vs eager {b}",
                case.name
            );
        }
    }
}

// ---- source maps ---------------------------------------------------------------

#[test]
fn source_map_attributes_generated_lines() {
    let src = "def f(x):\n    if x > 0:\n        x = x * x\n    return x\n";
    let module = autograph::pylang::parse_module(src).expect("parse");
    let conv = autograph::convert_module(module, &autograph::ConversionConfig::default())
        .expect("convert");
    let rendered = autograph::pylang::codegen::ast_to_source(&conv.module);
    // every generated line maps to one of the 4 original lines
    for (i, line) in rendered.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let span = conv.source_map.lookup(i as u32 + 1);
        if let Some(span) = span {
            assert!(
                (1..=4).contains(&span.line),
                "line {} ('{}') mapped to {span}",
                i + 1,
                line
            );
        }
    }
    // and the Appendix B "error rewriting" helper renders usably
    let loc = conv.source_map.rewrite_location(3);
    assert!(loc.contains("original source"), "{loc}");
}

#[test]
fn source_map_fresh_build_matches_codegen_layout() {
    let src = "def f(a, b):\n    while a > b:\n        a = a - b\n    return a\n";
    let module = autograph::pylang::parse_module(src).expect("parse");
    let map = SourceMap::build(&module);
    // unconverted module: identity mapping
    for line in 1..=4u32 {
        assert_eq!(map.lookup(line).map(|s| s.line), Some(line));
    }
}
