//! Appendix B: the three error classes — conversion, staging, runtime —
//! each attributed to the user's *original* source via span inheritance
//! and the generated-source map.

use autograph::prelude::*;
use autograph::transforms::srcmap::SourceMap;

// ---- conversion errors ------------------------------------------------------

#[test]
fn conversion_error_locates_offending_idiom() {
    let src = "def f():\n    x = 1\n    global y\n    return x\n";
    let err = autograph::convert_source(src).unwrap_err();
    assert_eq!(err.span.line, 3, "points at the `global`");
    let msg = err.with_source(src).to_string();
    assert!(msg.contains("global y"), "quotes the line: {msg}");
}

#[test]
fn conversion_error_for_slice_write() {
    let err = autograph::convert_source("def f(x):\n    x[1:3] = 0\n    return x\n").unwrap_err();
    assert_eq!(err.span.line, 2);
    assert!(err.to_string().contains("slice-range assignment"));
}

#[test]
fn parse_error_located() {
    let err = autograph::convert_source("def f(:\n").unwrap_err();
    assert_eq!(err.span.line, 1);
}

// ---- staging errors ----------------------------------------------------------

#[test]
fn staging_error_tensor_as_python_bool() {
    // an UNCONVERTED data-dependent conditional hit during staging — the
    // classic TF error, raised with the user's line number
    let src = "\
def raw(x):
    if x > 0:
        return x
    return -x
";
    // load unconverted AND disable control-flow conversion so the `if`
    // keeps Python semantics — then staging hits the tensor-as-bool error
    let mut rt = Runtime::load(src, false).expect("load");
    rt.interp.config.convert_control_flow = false;
    let err = rt
        .stage_to_graph("raw", vec![GraphArg::Placeholder("x".into())])
        .unwrap_err();
    assert!(
        err.to_string().contains("staged tensor as a Python bool"),
        "{err}"
    );
    assert_eq!(err.span.line, 2, "points at the unconverted `if`: {err}");
}

#[test]
fn staging_error_inconsistent_branch_values() {
    let src = "def f(x):\n    if x > 0:\n        y = x\n    return y\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let err = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .unwrap_err();
    assert!(err.to_string().contains("all code paths"), "{err}");
    // the error points back into the user's function
    assert!(err.span.line >= 1 && err.span.line <= 4, "{err}");
}

#[test]
fn staging_error_iterating_staged_tensor_imperatively() {
    // `for` over a staged tensor inside an unconverted lambda
    let src = "def f(xs):\n    g = lambda: [v for v in xs]\n    return g()\n";
    // comprehension is a parse error; use a different unconvertible path:
    let _ = src;
    let src = "def f(xs):\n    g = lambda v: len(v)\n    return g(xs)\n";
    let mut rt = Runtime::load(src, true).expect("load");
    // len() of a staged tensor is fine (stages Shape); this should succeed
    assert!(rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("xs".into())])
        .is_ok());
}

// ---- runtime errors -----------------------------------------------------------

#[test]
fn runtime_error_carries_original_span_through_staged_code() {
    // division by zero inside a staged graph: the executed node carries
    // the span of the user's original line
    let src = "\
def f(x):
    y = x + 1.0
    z = y / (x - x)
    return z
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    // f32 division by zero yields inf, not an error — use an op that does
    // fail at runtime instead: matmul shape mismatch
    let src2 = "\
def g(a, b):
    c = a + 0.0
    return tf.matmul(c, b)
";
    let mut rt2 = Runtime::load(src2, true).expect("load");
    let staged2 = rt2
        .stage_to_graph(
            "g",
            vec![
                GraphArg::Placeholder("a".into()),
                GraphArg::Placeholder("b".into()),
            ],
        )
        .expect("stage");
    let mut sess2 = Session::new(staged2.graph);
    let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
    let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3, 1]).unwrap();
    let err = sess2
        .run(&[("a", a), ("b", b)], &staged2.outputs)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("matmul"), "{msg}");
    assert!(msg.contains("original source 3:"), "span rewritten: {msg}");
    let _ = sess.run(&[("x", Tensor::scalar_f32(1.0))], &staged.outputs);
}

#[test]
fn runtime_error_interpreted_code_has_span_and_stack() {
    let src = "\
def inner(x):
    return x / 0
def outer(x):
    return inner(x)
";
    let mut rt = Runtime::load(src, false).expect("load");
    let err = rt.call("outer", vec![Value::Int(1)]).unwrap_err();
    assert_eq!(err.span.line, 2);
    let msg = err.to_string();
    assert!(msg.contains("in inner"), "{msg}");
    assert!(msg.contains("in outer"), "{msg}");
}

#[test]
fn staged_assert_fires_at_graph_execution() {
    let src = "def f(x):\n    assert x > 0.0, 'x must be positive'\n    return x * 2.0\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    // passing assert
    let ok = sess.run(&[("x", Tensor::scalar_f32(2.0))], &staged.outputs);
    assert!(ok.is_ok());
    // failing assert at runtime, not staging
    let err = sess
        .run(&[("x", Tensor::scalar_f32(-2.0))], &staged.outputs)
        .unwrap_err();
    assert!(err.to_string().contains("x must be positive"), "{err}");
}

// ---- source maps ---------------------------------------------------------------

#[test]
fn source_map_attributes_generated_lines() {
    let src = "def f(x):\n    if x > 0:\n        x = x * x\n    return x\n";
    let module = autograph::pylang::parse_module(src).expect("parse");
    let conv = autograph::convert_module(module, &autograph::ConversionConfig::default())
        .expect("convert");
    let rendered = autograph::pylang::codegen::ast_to_source(&conv.module);
    // every generated line maps to one of the 4 original lines
    for (i, line) in rendered.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let span = conv.source_map.lookup(i as u32 + 1);
        if let Some(span) = span {
            assert!(
                (1..=4).contains(&span.line),
                "line {} ('{}') mapped to {span}",
                i + 1,
                line
            );
        }
    }
    // and the Appendix B "error rewriting" helper renders usably
    let loc = conv.source_map.rewrite_location(3);
    assert!(loc.contains("original source"), "{loc}");
}

#[test]
fn source_map_fresh_build_matches_codegen_layout() {
    let src = "def f(a, b):\n    while a > b:\n        a = a - b\n    return a\n";
    let module = autograph::pylang::parse_module(src).expect("parse");
    let map = SourceMap::build(&module);
    // unconverted module: identity mapping
    for line in 1..=4u32 {
        assert_eq!(map.lookup(line).map(|s| s.line), Some(line));
    }
}
