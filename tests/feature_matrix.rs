//! Appendix E conformance: one test per row of Tables 4–6, checking the
//! documented conversion trigger, Python semantics, and staged semantics
//! (or the documented rejection).

use autograph::graph::ir::OpKind;
use autograph::prelude::*;

fn load(src: &str) -> Runtime {
    Runtime::load(src, true).expect("load")
}

fn stage(rt: &mut Runtime, f: &str, names: &[&str]) -> autograph::StagedGraph {
    rt.stage_to_graph(
        f,
        names
            .iter()
            .map(|n| GraphArg::Placeholder((*n).to_string()))
            .collect(),
    )
    .expect("stage")
}

fn has_op(g: &autograph::graph::Graph, pred: fn(&OpKind) -> bool) -> bool {
    fn walk(g: &autograph::graph::Graph, pred: fn(&OpKind) -> bool) -> bool {
        g.nodes.iter().any(|n| {
            pred(&n.op)
                || match &n.op {
                    OpKind::Cond { then_g, else_g } => {
                        walk(&then_g.graph, pred) || walk(&else_g.graph, pred)
                    }
                    OpKind::While { cond_g, body_g, .. } => {
                        walk(&cond_g.graph, pred) || walk(&body_g.graph, pred)
                    }
                    _ => false,
                }
        })
    }
    walk(g, pred)
}

// ---- Table 4: control flow --------------------------------------------------

#[test]
fn t4_if_tensor_condition_becomes_cond() {
    let mut rt = load("def f(x):\n    if x > 0:\n        x = x + 1.0\n    return x\n");
    let staged = stage(&mut rt, "f", &["x"]);
    assert!(has_op(&staged.graph, |op| matches!(
        op,
        OpKind::Cond { .. }
    )));
}

#[test]
fn t4_if_python_condition_stays_imperative() {
    let mut rt = load("def f(x, flag):\n    if flag:\n        x = tf.tanh(x)\n    return x\n");
    let staged = rt
        .stage_to_graph(
            "f",
            vec![
                GraphArg::Placeholder("x".into()),
                GraphArg::Value(Value::Bool(true)),
            ],
        )
        .expect("stage");
    assert!(!has_op(&staged.graph, |op| matches!(
        op,
        OpKind::Cond { .. }
    )));
}

#[test]
fn t4_if_all_paths_must_produce_consistent_values() {
    let mut rt = load("def f(x):\n    if x > 0:\n        y = x\n    return y\n");
    let err = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .unwrap_err();
    assert!(err.to_string().contains("all code paths"), "{err}");
}

#[test]
fn t4_for_over_tensor_becomes_while_loop() {
    let mut rt = load(
        "def f(xs):\n    s = xs[0] * 0.0\n    for v in xs:\n        s = s + v\n    return s\n",
    );
    let staged = stage(&mut rt, "f", &["xs"]);
    assert!(has_op(&staged.graph, |op| matches!(
        op,
        OpKind::While { .. }
    )));
}

#[test]
fn t4_while_on_tensor_condition_stages() {
    let mut rt = load("def f(x):\n    while x < 100.0:\n        x = x * 2.0\n    return x\n");
    let staged = stage(&mut rt, "f", &["x"]);
    assert!(has_op(&staged.graph, |op| matches!(
        op,
        OpKind::While { .. }
    )));
}

#[test]
fn t4_break_continue_return_lowered() {
    let out = convert_source(
        "def f(n):\n    for i in range(n):\n        if i == 2:\n            continue\n        if i == 5:\n            break\n        if i == 7:\n            return i\n    return -1\n",
    )
    .expect("convert");
    assert!(!out.contains("break\n") && !out.contains("continue\n"));
    // the in-loop return took the guard fallback; a single trailing return
    // of the retval variable remains
    assert!(out.contains("do_return"), "{out}");
    assert!(out.contains("return retval"), "{out}");
}

#[test]
fn t4_try_except_outside_subset() {
    // our PyLite subset rejects try at parse time (documented deviation:
    // real AutoGraph passes it through unconverted)
    assert!(Runtime::load("try:\n    pass\n", true).is_err());
}

#[test]
fn t4_yield_not_allowed() {
    assert!(Runtime::load("def f():\n    yield 1\n", true).is_err());
}

#[test]
fn t4_ternary_with_tensor_stages() {
    let mut rt = load("def f(x):\n    y = x * 2.0 if x > 0 else x\n    return y\n");
    let staged = stage(&mut rt, "f", &["x"]);
    assert!(has_op(&staged.graph, |op| matches!(
        op,
        OpKind::Cond { .. }
    )));
}

#[test]
fn t4_lazy_boolean_semantics_preserved() {
    // `0 or 5` must return 5 (the operand, not a bool)
    let mut rt = load("def f():\n    return 0 or 5\n");
    assert_eq!(rt.call("f", vec![]).unwrap().as_int().unwrap(), 5);
}

#[test]
fn t4_equality_dispatches_on_tensor() {
    let mut rt = load("def f(x):\n    return x == 3.0\n");
    let staged = stage(&mut rt, "f", &["x"]);
    assert!(has_op(&staged.graph, |op| matches!(op, OpKind::Equal)));
}

// ---- Table 5: functions and collections -------------------------------------

#[test]
fn t5_user_functions_converted_recursively() {
    // `helper` is defined without conversion markers but called through
    // converted code: converted at runtime, its tensor `if` stages
    let src = "\
def helper(v):
    if v > 0:
        return v * 2.0
    return v

def f(x):
    return helper(x)
";
    let mut rt = load(src);
    let staged = stage(&mut rt, "f", &["x"]);
    assert!(has_op(&staged.graph, |op| matches!(
        op,
        OpKind::Cond { .. }
    )));
}

#[test]
fn t5_lambdas_supported() {
    let mut rt = load("def f(x):\n    g = lambda v: v * 3\n    return g(x)\n");
    assert_eq!(
        rt.call("f", vec![Value::Int(4)]).unwrap().as_int().unwrap(),
        12
    );
}

#[test]
fn t5_builtins_print_len_range_int_float() {
    let mut rt = load(
        "def f(l):\n    n = len(l)\n    r = range(n)\n    total = 0\n    for i in r:\n        total = total + int(l[i])\n    return float(total)\n",
    );
    let l = Value::list(vec![Value::Float(1.9), Value::Float(2.9)]);
    assert_eq!(rt.call("f", vec![l]).unwrap().as_float().unwrap(), 3.0);
}

#[test]
fn t5_list_append_staged_as_tensor_list() {
    let mut rt = load(
        "def f(xs):\n    out = []\n    for v in xs:\n        out.append(v * 2.0)\n    return ag.stack(out)\n",
    );
    let staged = stage(&mut rt, "f", &["xs"]);
    assert!(has_op(&staged.graph, |op| matches!(op, OpKind::ArrayPush)));
    assert!(has_op(&staged.graph, |op| matches!(op, OpKind::ArrayStack)));
}

#[test]
fn t5_list_pop_value_semantics() {
    let mut rt =
        load("def f():\n    l = [1, 2, 3]\n    v = l.pop()\n    return v + len(l) * 100\n");
    assert_eq!(rt.call("f", vec![]).unwrap().as_int().unwrap(), 203);
}

#[test]
fn t5_dict_set_literals_not_converted() {
    assert!(Runtime::load("def f():\n    d = {}\n    return d\n", true).is_err());
}

#[test]
fn t5_getitem_setitem_on_tensors() {
    let mut rt = load("def f(x):\n    x[0] = x[1] + x[2]\n    return x\n");
    let staged = stage(&mut rt, "f", &["x"]);
    assert!(has_op(&staged.graph, |op| matches!(
        op,
        OpKind::SetItemAxis0
    )));
    let mut sess = Session::new(staged.graph);
    let x = Tensor::from_vec(vec![0.0, 2.0, 3.0], &[3]).unwrap();
    let out = sess.run(&[("x", x)], &staged.outputs).unwrap();
    assert_eq!(out[0].as_f32().unwrap(), &[5.0, 2.0, 3.0]);
}

#[test]
fn t5_comprehensions_not_in_subset() {
    // list comprehensions are outside the PyLite grammar
    assert!(Runtime::load("def f(l):\n    return [x for x in l]\n", true).is_err());
}

// ---- Table 6: variables, classes, power features ----------------------------

#[test]
fn t6_undefined_variables_reified() {
    // a variable defined in one branch only errors when staged...
    let mut rt = load("def f(x):\n    if x > 0:\n        y = x\n    return y\n");
    assert!(rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .is_err());
    // ...and errors at use when the defining branch was not taken
    let mut rt2 = load("def f(x):\n    if x > 0:\n        y = x\n    return y\n");
    let err = rt2.call("f", vec![Value::Int(-1)]).unwrap_err();
    assert!(
        err.to_string().contains("may be used before assignment"),
        "{err}"
    );
    // but succeeds when it was taken
    let mut rt3 = load("def f(x):\n    if x > 0:\n        y = x\n    return y\n");
    assert_eq!(
        rt3.call("f", vec![Value::Int(2)])
            .unwrap()
            .as_int()
            .unwrap(),
        2
    );
}

#[test]
fn t6_global_not_allowed() {
    match Runtime::load("def f():\n    global a\n    a = 1\n", true) {
        Err(err) => assert!(err.to_string().contains("global")),
        Ok(_) => panic!("global must be rejected"),
    }
}

#[test]
fn t6_nonlocal_not_allowed() {
    assert!(Runtime::load("def f():\n    nonlocal a\n", true).is_err());
}

#[test]
fn t6_records_and_attribute_access() {
    let mut rt = load("def f(obj):\n    obj.count = obj.count + 1\n    return obj.count\n");
    let obj = Value::record(vec![("count", Value::Int(41))]);
    assert_eq!(rt.call("f", vec![obj]).unwrap().as_int().unwrap(), 42);
}

#[test]
fn t6_callable_objects_via_closures() {
    let mut rt = load(
        "def make_counter(start):\n    def step(n):\n        return start + n\n    return step\n\ndef f(x):\n    c = make_counter(100)\n    return c(x)\n",
    );
    assert_eq!(
        rt.call("f", vec![Value::Int(5)]).unwrap().as_int().unwrap(),
        105
    );
}

#[test]
fn t6_decorators_preserved() {
    // the artifact marker is a decorator; user decorators parse and are
    // retained on the AST (conversion is idempotent on artifacts)
    let out = convert_source("def f(x):\n    return x\n").expect("convert");
    let out2 = {
        let m = autograph::pylang::parse_module(&out).expect("reparse");
        let conv = autograph::convert_module(m, &autograph::ConversionConfig::default())
            .expect("reconvert");
        autograph::pylang::codegen::ast_to_source(&conv.module)
    };
    assert_eq!(
        out.matches("@ag.autograph_artifact").count(),
        out2.matches("@ag.autograph_artifact").count()
    );
}
