//! Differential test harness: every small PyLite program runs through
//! (1) the eager interpreter, (2) the staged graph executor at
//! `threads = 1`, (3) the staged graph executor at `threads = 4`, and —
//! where the op set allows — (4) the Lantern backend. All backends must
//! agree to 1e-6; the two graph configurations must agree **bitwise**
//! (the parallel scheduler's determinism guarantee).

use autograph::prelude::*;

#[path = "support/corpus.rs"]
mod corpus;
use corpus::{programs, Program};

#[path = "support/check.rs"]
mod check;
use check::{assert_bitwise_eq, assert_close};

fn run_differential(p: &Program) {
    let mut rt = Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));

    // eager reference
    let eager_args: Vec<Value> = p
        .feeds
        .iter()
        .map(|(_, t)| Value::tensor(t.clone()))
        .collect();
    let eager = rt
        .call("f", eager_args)
        .unwrap_or_else(|e| panic!("{}: eager: {e}", p.name));
    let eager_flat: Vec<Tensor> = match eager {
        Value::Tuple(items) => items
            .iter()
            .map(|x| x.as_eager_tensor().expect("tensor result"))
            .collect(),
        single => vec![single.as_eager_tensor().expect("tensor result")],
    };

    // staged graph, single-threaded
    let placeholder_args: Vec<GraphArg> = p
        .feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
        .collect();
    let staged = rt
        .stage_to_graph("f", placeholder_args)
        .unwrap_or_else(|e| panic!("{}: stage: {e}", p.name));
    let mut sess1 = Session::new(staged.graph.clone());
    sess1.set_threads(1);
    let out1 = sess1
        .run(&p.feeds, &staged.outputs)
        .unwrap_or_else(|e| panic!("{}: graph t1: {e}", p.name));

    // staged graph, parallel scheduler
    let mut sess4 = Session::new(staged.graph);
    sess4.set_threads(4);
    let out4 = sess4
        .run(&p.feeds, &staged.outputs)
        .unwrap_or_else(|e| panic!("{}: graph t4: {e}", p.name));

    assert_close(p.name, "eager vs graph", &eager_flat, &out1);
    assert_bitwise_eq(p.name, "graph t1 vs t4", &out1, &out4);

    if p.lantern {
        let lantern_args: Vec<LanternArg> = p
            .feeds
            .iter()
            .map(|(n, _)| LanternArg::Extern((*n).to_string()))
            .collect();
        let program = rt
            .stage_to_lantern("f", lantern_args)
            .unwrap_or_else(|e| panic!("{}: lantern stage: {e}", p.name));
        let engine = autograph::lantern::Engine::new(program);
        let out = engine
            .run(&p.feeds, &[])
            .unwrap_or_else(|e| panic!("{}: lantern run: {e}", p.name));
        let lantern_flat: Vec<Tensor> = match out {
            autograph::lantern::value::LValue::Tuple(items) => items
                .iter()
                .map(|x| x.as_tensor().expect("tensor result").clone())
                .collect(),
            single => vec![single.as_tensor().expect("tensor result").clone()],
        };
        assert_close(p.name, "eager vs lantern", &eager_flat, &lantern_flat);
    }
}

#[test]
fn differential_all_backends_agree() {
    let all = programs();
    assert!(all.len() >= 30, "expected ~30 programs, got {}", all.len());
    for p in &all {
        run_differential(p);
    }
}
