//! Staged execution matches eager execution: the same converted function,
//! run once imperatively on eager tensors and once as a staged graph
//! through `Session::run`, produces identical numerics.

use autograph::prelude::*;

/// Run `fname(tensor)` eagerly and staged; compare scalars/vectors.
fn check_staged(src: &str, fname: &str, feeds: &[(&str, Tensor)]) {
    let mut rt = Runtime::load(src, true).expect("load");
    // eager pass
    let eager_args: Vec<Value> = feeds
        .iter()
        .map(|(_, t)| Value::tensor(t.clone()))
        .collect();
    let eager = rt.call(fname, eager_args).expect("eager run");

    // staged pass
    let placeholder_args: Vec<GraphArg> = feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
        .collect();
    let staged = rt.stage_to_graph(fname, placeholder_args).expect("stage");
    let mut sess = Session::new(staged.graph);
    let out = sess.run(feeds, &staged.outputs).expect("staged run");

    let eager_flat: Vec<Tensor> = match eager {
        Value::Tuple(items) => items
            .iter()
            .map(|v| v.as_eager_tensor().expect("tensor result"))
            .collect(),
        single => vec![single.as_eager_tensor().expect("tensor result")],
    };
    assert_eq!(eager_flat.len(), out.len());
    for (e, s) in eager_flat.iter().zip(&out) {
        assert_eq!(e.shape(), s.shape(), "shape mismatch in {fname}");
        for (a, b) in e.to_f32_vec().iter().zip(s.to_f32_vec()) {
            assert!((a - b).abs() < 1e-4, "{fname}: {a} vs {b}");
        }
    }
}

#[test]
fn staged_conditional() {
    check_staged(
        "def f(x):\n    if tf.reduce_sum(x) > 0:\n        x = x * x\n    return x\n",
        "f",
        &[("x", Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap())],
    );
    check_staged(
        "def f(x):\n    if tf.reduce_sum(x) > 0:\n        x = x * x\n    return x\n",
        "f",
        &[("x", Tensor::from_vec(vec![-1.0, -2.0], &[2]).unwrap())],
    );
}

#[test]
fn staged_while_accumulation() {
    check_staged(
        "def f(x):\n    total = x * 0.0\n    while tf.reduce_sum(total) < 100.0:\n        total = total + x\n    return total\n",
        "f",
        &[("x", Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap())],
    );
}

#[test]
fn staged_for_with_lists() {
    check_staged(
        "def f(xs):\n    acc = []\n    run = tf.reduce_sum(xs[0]) * 0.0\n    for row in xs:\n        run = run + tf.reduce_sum(row)\n        acc.append(run)\n    return ag.stack(acc)\n",
        "f",
        &[(
            "xs",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap(),
        )],
    );
}

#[test]
fn staged_nested_control_flow() {
    check_staged(
        "def f(x):\n    i = 0\n    while i < 4:\n        if x[0] > 0.0:\n            x = x * 2.0\n        else:\n            x = x - 1.0\n        i = i + 1\n    return x\n",
        "f",
        &[("x", Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap())],
    );
    check_staged(
        "def f(x):\n    i = 0\n    while i < 4:\n        if x[0] > 0.0:\n            x = x * 2.0\n        else:\n            x = x - 1.0\n        i = i + 1\n    return x\n",
        "f",
        &[("x", Tensor::from_vec(vec![-0.5, 0.5], &[2]).unwrap())],
    );
}

#[test]
fn staged_break_and_continue() {
    check_staged(
        "def f(x):\n    i = 0\n    total = x * 0.0\n    while True:\n        i = i + 1\n        if i % 2 == 0:\n            continue\n        total = total + x * float(i)\n        if i >= 9:\n            break\n    return total\n",
        "f",
        &[("x", Tensor::from_vec(vec![1.0, 10.0], &[2]).unwrap())],
    );
}

#[test]
fn staged_early_return() {
    for v in [3.0f32, -3.0] {
        check_staged(
            "def f(x):\n    if tf.reduce_sum(x) > 0:\n        return x * 2.0\n    return x - 1.0\n",
            "f",
            &[("x", Tensor::scalar_f32(v))],
        );
    }
}

#[test]
fn staged_helper_calls() {
    check_staged(
        "def square_if_positive(v):\n    if tf.reduce_sum(v) > 0:\n        return v * v\n    return v\n\ndef f(x):\n    a = square_if_positive(x)\n    b = square_if_positive(x - 10.0)\n    return a + b\n",
        "f",
        &[("x", Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap())],
    );
}

#[test]
fn staged_tensor_indexing_and_slicing() {
    check_staged(
        "def f(m):\n    first = m[0]\n    rest = m[1:]\n    return first + tf.reduce_sum(rest, 0)\n",
        "f",
        &[(
            "m",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap(),
        )],
    );
}

#[test]
fn staged_math_ops() {
    check_staged(
        "def f(x):\n    a = tf.tanh(x) + tf.sigmoid(x) - tf.relu(x)\n    b = tf.exp(x * 0.1) * tf.sqrt(tf.abs(x) + 1.0)\n    c = tf.maximum(a, b) + tf.minimum(a, b)\n    return tf.reduce_mean(c)\n",
        "f",
        &[("x", Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap())],
    );
}

#[test]
fn staged_gradients_match_eager_tape() {
    // the same loss differentiated symbolically (staged) and via the tape
    let src = "\
def loss_staged(w, x, y):
    pred = tf.matmul(x, w)
    err = pred - y
    loss = tf.reduce_mean(tf.square(err))
    g = tf.gradients(loss, [w])
    return g[0]

def loss_eager(w, x, y):
    tf.tape_begin()
    w = tf.watch(w)
    pred = tf.matmul(x, w)
    err = pred - y
    loss = tf.reduce_mean(tf.square(err))
    g = tf.grad(loss, [w])
    return g[0]
";
    let mut rt = Runtime::load(src, true).expect("load");
    let mut rng = Rng64::new(5);
    let w = rng.normal_tensor(&[3, 1], 1.0);
    let x = rng.normal_tensor(&[4, 3], 1.0);
    let y = rng.normal_tensor(&[4, 1], 1.0);

    let eager = rt
        .call(
            "loss_eager",
            vec![
                Value::tensor(w.clone()),
                Value::tensor(x.clone()),
                Value::tensor(y.clone()),
            ],
        )
        .expect("eager")
        .as_eager_tensor()
        .expect("tensor");

    let staged = rt
        .stage_to_graph(
            "loss_staged",
            vec![
                GraphArg::Placeholder("w".into()),
                GraphArg::Placeholder("x".into()),
                GraphArg::Placeholder("y".into()),
            ],
        )
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    let out = sess
        .run(&[("w", w), ("x", x), ("y", y)], &staged.outputs)
        .expect("run");
    for (a, b) in eager.as_f32().unwrap().iter().zip(out[0].as_f32().unwrap()) {
        assert!((a - b).abs() < 1e-4, "{a} vs {b}");
    }
}

#[test]
fn optimized_graph_same_results() {
    // Note: a host-level `1.0 + 2.0` folds in the *interpreter* before
    // staging (dynamic dispatch only stages tensor ops), so the constant
    // expression here is built from staged constants.
    let src = "def f(x):\n    a = tf.tanh(x)\n    b = tf.tanh(x)\n    c = (tf.constant(1.0) + tf.constant(2.0)) * a\n    return c + b\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let x = Tensor::from_vec(vec![0.3, -0.7], &[2]).unwrap();
    let mut sess = Session::new(staged.graph.clone());
    let raw = sess.run(&[("x", x.clone())], &staged.outputs).expect("raw");

    let (og, outs, stats) = autograph::graph::optimize::optimize(&staged.graph, &staged.outputs);
    assert!(stats.folded >= 1, "constant 1+2 should fold");
    assert!(stats.deduped >= 1, "duplicate tanh should merge");
    let mut sess2 = Session::new(og);
    let opt = sess2.run(&[("x", x)], &outs).expect("opt");
    assert_eq!(raw[0].as_f32().unwrap(), opt[0].as_f32().unwrap());
}
