//! Extension-surface tests: compilation directives, the `tf.function`-like
//! compiled callable, the functional `tf.cond`/`tf.while_loop` API that
//! AutoGraph replaces, staged print/assert effects, and second-order
//! symbolic gradients.

use autograph::graph::builder::GraphBuilder;
use autograph::graph::grad::gradients;
use autograph::graph::ir::OpKind;
use autograph::prelude::*;

#[test]
fn set_loop_options_limits_staged_iterations() {
    // the §7.2 directive: an iteration budget enforced by the staged loop
    let src = "\
def f(x):
    while x < 1000000.0:
        ag.set_loop_options(max_iterations=10)
        x = x + 1.0
    return x
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    // directive reached the IR
    fn find_limit(g: &autograph::graph::Graph) -> Option<u64> {
        g.nodes.iter().find_map(|n| match &n.op {
            OpKind::While { max_iters, .. } => *max_iters,
            _ => None,
        })
    }
    assert_eq!(find_limit(&staged.graph), Some(10));
    let mut sess = Session::new(staged.graph);
    let err = sess
        .run(&[("x", Tensor::scalar_f32(0.0))], &staged.outputs)
        .unwrap_err();
    assert!(err.to_string().contains("max_iters"), "{err}");
    // a loop that finishes within the budget is unaffected
    let src_ok = src.replace("1000000.0", "5.0");
    let mut rt2 = Runtime::load(&src_ok, true).expect("load");
    let staged2 = rt2
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let mut sess2 = Session::new(staged2.graph);
    let out = sess2
        .run(&[("x", Tensor::scalar_f32(0.0))], &staged2.outputs)
        .expect("run");
    assert_eq!(out[0].scalar_value_f32().unwrap(), 5.0);
}

#[test]
fn loop_options_on_for_and_no_leak_from_imperative_loops() {
    // the directive inside a staged for-loop applies to its lowered While
    let src = "\
def f(xs):
    s = xs[0] * 0.0
    for v in xs:
        ag.set_loop_options(max_iterations=3)
        s = s + v
    return s
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("xs".into())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    // 2 elements: within budget
    let small = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
    assert!(sess.run(&[("xs", small)], &staged.outputs).is_ok());
    // 5 elements: exceeds the 3-iteration budget at run time
    let big = Tensor::from_vec(vec![1.0; 5], &[5]).unwrap();
    let err = sess.run(&[("xs", big)], &staged.outputs).unwrap_err();
    assert!(err.to_string().contains("max_iters"), "{err}");

    // a directive inside an IMPERATIVE (python) loop must not leak into a
    // later staged loop
    let src2 = "\
def g(x, n):
    i = 0
    while i < n:
        ag.set_loop_options(max_iterations=1)
        i = i + 1
    while x < 100.0:
        x = x + 1.0
    return x
";
    let mut rt2 = Runtime::load(src2, true).expect("load");
    let staged2 = rt2
        .stage_to_graph(
            "g",
            vec![
                GraphArg::Placeholder("x".into()),
                GraphArg::Value(Value::Int(4)), // python loop runs 4 times
            ],
        )
        .expect("stage");
    let mut sess2 = Session::new(staged2.graph);
    let out = sess2
        .run(&[("x", Tensor::scalar_f32(0.0))], &staged2.outputs)
        .expect("the staged loop must not inherit the leaked budget");
    assert_eq!(out[0].scalar_value_f32().unwrap(), 100.0);
}

#[test]
fn compiled_function_is_a_cached_callable() {
    let src = "\
def norm_clip(x, limit):
    total = tf.sqrt(tf.reduce_sum(tf.square(x)))
    if total > limit:
        x = x * (limit / total)
    return x
";
    let mut rt = Runtime::load(src, true).expect("load");
    let mut f = rt.compile("norm_clip", &["x", "limit"]).expect("compile");
    // big vector clipped to norm 1
    let x = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
    let out = f.call(&[x, Tensor::scalar_f32(1.0)]).expect("call");
    let v = out[0].as_f32().unwrap();
    assert!(
        (v[0] - 0.6).abs() < 1e-5 && (v[1] - 0.8).abs() < 1e-5,
        "{v:?}"
    );
    // small vector passes through (other branch, same compiled graph)
    let x = Tensor::from_vec(vec![0.1, 0.2], &[2]).unwrap();
    let out = f.call(&[x.clone(), Tensor::scalar_f32(1.0)]).expect("call");
    assert_eq!(out[0].as_f32().unwrap(), x.as_f32().unwrap());
    // arity errors reported
    assert!(f.call(&[Tensor::scalar_f32(1.0)]).is_err());
    // the staged graph is inspectable
    assert!(f.graph().to_dot().contains("digraph"));
}

#[test]
fn functional_tf_cond_and_while_loop_api() {
    // the cumbersome functional style AutoGraph replaces (§3) still works
    let src = "\
def f(x):
    y = tf.cond(x > 0.0, lambda: x * x, lambda: x)
    r = tf.while_loop(lambda v: v < 100.0, lambda v: v * 2.0, (y,))
    return r
";
    let mut rt = Runtime::load(src, true).expect("load");
    // eager
    let out = rt
        .call("f", vec![Value::tensor(Tensor::scalar_f32(3.0))])
        .expect("eager");
    match out {
        Value::Tuple(items) => {
            assert_eq!(
                items[0]
                    .as_eager_tensor()
                    .unwrap()
                    .scalar_value_f32()
                    .unwrap(),
                144.0 // 9 -> 18 -> 36 -> 72 -> 144
            );
        }
        other => panic!("expected tuple, got {}", other.render()),
    }
    // staged
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let mut sess = Session::new(staged.graph);
    let out = sess
        .run(&[("x", Tensor::scalar_f32(3.0))], &staged.outputs)
        .expect("run");
    assert_eq!(out[0].scalar_value_f32().unwrap(), 144.0);
}

#[test]
fn second_order_symbolic_gradients() {
    // d²/dx² of sum(x³) = 6x — gradients of gradients, mechanically
    let mut b = GraphBuilder::new();
    let x = b.placeholder("x");
    let x2 = b.mul(x, x);
    let x3 = b.mul(x2, x);
    let loss = b.add(OpKind::ReduceSum(None), vec![x3]);
    let g1 = gradients(&mut b, loss, &[x]).expect("first order")[0];
    let g1_sum = b.add(OpKind::ReduceSum(None), vec![g1]);
    let g2 = gradients(&mut b, g1_sum, &[x]).expect("second order")[0];
    let mut sess = Session::new(b.finish());
    let out = sess
        .run(
            &[("x", Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]).unwrap())],
            &[g2],
        )
        .expect("run");
    let v = out[0].as_f32().unwrap();
    for (got, x) in v.iter().zip([1.0f32, -2.0, 0.5]) {
        assert!((got - 6.0 * x).abs() < 1e-3, "{got} vs {}", 6.0 * x);
    }
}

#[test]
fn staged_print_executes_without_fetch() {
    // prints are effectful: the plan runs them even though nothing fetches
    // their value (the control-dependency wiring)
    let src = "def f(x):\n    print(x)\n    return x + 1.0\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    assert!(staged
        .graph
        .nodes
        .iter()
        .any(|n| matches!(n.op, OpKind::Print(_))));
    let mut sess = Session::new(staged.graph);
    let out = sess
        .run(&[("x", Tensor::scalar_f32(1.0))], &staged.outputs)
        .expect("run");
    assert_eq!(out[0].scalar_value_f32().unwrap(), 2.0);
}

#[test]
fn staged_node_names_carry_function_scopes() {
    // §7.2 Function Wrappers: converted functions stage under name scopes
    let src = "\
def inner(v):
    return tf.tanh(v)

def outer(x):
    return inner(x) + 1.0
";
    let mut rt = Runtime::load(src, true).expect("load");
    let staged = rt
        .stage_to_graph("outer", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let names: Vec<&str> = staged.graph.nodes.iter().map(|n| n.name.as_str()).collect();
    assert!(
        names.iter().any(|n| n.starts_with("outer/inner/tanh")),
        "{names:?}"
    );
    assert!(
        names.iter().any(|n| n.starts_with("outer/add")),
        "{names:?}"
    );
}

#[test]
fn graphviz_dump_of_staged_function() {
    let mut rt = Runtime::load(
        "def f(x):\n    if x > 0:\n        x = x * 2.0\n    return x\n",
        true,
    )
    .expect("load");
    let staged = rt
        .stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])
        .expect("stage");
    let dot = staged.graph.to_dot();
    assert!(dot.contains("digraph"));
    assert!(dot.contains("cond"), "{dot}");
    assert!(dot.contains("placeholder"), "{dot}");
}

#[test]
fn shape_validation_catches_errors_at_compile_time() {
    // constant weight shapes are statically known: the matmul mismatch is
    // reported by Runtime::compile (staging phase) with the user's line,
    // before any Session::run
    let src = "\
def f(x):
    a = tf.matmul(x, w1)
    return tf.matmul(a, w2)
";
    let mut rt = Runtime::load(src, true).expect("load");
    rt.globals
        .set("w1", Value::tensor(Tensor::zeros(DType::F32, &[3, 4])));
    rt.globals
        .set("w2", Value::tensor(Tensor::zeros(DType::F32, &[5, 2]))); // 4 != 5
    let err = match rt.compile("f", &["x"]) {
        Err(e) => e,
        Ok(_) => panic!("shape mismatch must fail at compile time"),
    };
    let msg = err.to_string();
    assert!(msg.contains("staging error"), "{msg}");
    assert!(msg.contains("inner dimensions"), "{msg}");
    assert!(msg.contains("3:"), "points at line 3: {msg}");
    // fixing the weight compiles fine even though x stays unknown
    let mut rt2 = Runtime::load(src, true).expect("load");
    rt2.globals
        .set("w1", Value::tensor(Tensor::zeros(DType::F32, &[3, 4])));
    rt2.globals
        .set("w2", Value::tensor(Tensor::zeros(DType::F32, &[4, 2])));
    assert!(rt2.compile("f", &["x"]).is_ok());
}

#[test]
fn compiled_function_beats_repeated_staging() {
    // sanity: reusing the compiled callable gives the same result as
    // fresh staging each time
    let src = "def f(x):\n    s = x\n    i = 0\n    while i < 5:\n        s = s + x\n        i = i + 1\n    return s\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let mut compiled = rt.compile("f", &["x"]).expect("compile");
    for v in [1.0f32, 2.5, -3.0] {
        let out = compiled.call(&[Tensor::scalar_f32(v)]).expect("call");
        assert_eq!(out[0].scalar_value_f32().unwrap(), 6.0 * v);
    }
}
