//! Chaos suite: deterministic fault injection across the whole corpus.
//!
//! Every injected fault — kernel errors, allocation failures, panics,
//! scheduler delays — must surface as a structured, node- and
//! span-attributed `Err` from `Session::run` (never a process abort), at
//! `threads = 1` (sequential executor) and `threads = 4` (wavefront
//! scheduler). After a faulted run, clearing the plan and re-running must
//! produce bitwise-identical results: chaos must not leave residue.
//!
//! The fault plan is process-global, so every test here serializes on one
//! mutex; the driver (`scripts/ci.sh`) runs this suite as its own process
//! with two seeds (`AUTOGRAPH_CHAOS_SEED`) at both thread counts.

use autograph::faults::{self, FaultPlan};
use autograph::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

#[path = "support/corpus.rs"]
mod corpus;
use corpus::{programs, Program};

#[path = "support/check.rs"]
mod check;
use check::assert_bitwise_eq;

/// Serialize tests: `faults::install` is process-global state. Also
/// silences the default panic hook for *injected* panics — they fire on
/// pool worker threads, whose stderr libtest cannot capture, and every
/// one of them is expected and caught.
fn chaos_lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected panic fault") {
                prev(info);
            }
        }));
    });
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Clears the installed plan even when an assertion unwinds.
struct PlanGuard;
impl PlanGuard {
    fn install(spec: &str) -> PlanGuard {
        faults::install(FaultPlan::parse(spec).expect("chaos spec"));
        PlanGuard
    }
}
impl Drop for PlanGuard {
    fn drop(&mut self) {
        faults::clear();
    }
}

/// The two seeds for this process: from `AUTOGRAPH_CHAOS_SEED` when the
/// driver sets it, defaults otherwise.
fn seeds() -> [u64; 2] {
    match std::env::var("AUTOGRAPH_CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        Some(s) => [s, s.wrapping_mul(6364136223846793005).wrapping_add(1)],
        None => [7, 40499],
    }
}

struct StagedProgram {
    name: &'static str,
    feeds: Vec<(&'static str, Tensor)>,
    graph: autograph::graph::Graph,
    outputs: Vec<autograph::graph::NodeId>,
}

/// Stage the whole corpus once, with no faults active.
fn stage_corpus() -> Vec<StagedProgram> {
    programs()
        .into_iter()
        .map(|p: Program| {
            let mut rt =
                Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));
            let args: Vec<GraphArg> = p
                .feeds
                .iter()
                .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
                .collect();
            let staged = rt
                .stage_to_graph("f", args)
                .unwrap_or_else(|e| panic!("{}: stage: {e}", p.name));
            StagedProgram {
                name: p.name,
                feeds: p.feeds,
                graph: staged.graph,
                outputs: staged.outputs,
            }
        })
        .collect()
}

fn run_at(
    p: &StagedProgram,
    threads: usize,
    mode: ExecMode,
) -> Result<Vec<Tensor>, autograph::GraphError> {
    let mut sess = Session::new(p.graph.clone());
    sess.set_threads(threads);
    sess.set_exec_mode(mode);
    sess.run(&p.feeds, &p.outputs)
}

/// Every (threads, exec-mode) combination the chaos contract covers.
const EXEC_GRID: [(usize, ExecMode); 4] = [
    (1, ExecMode::Interp),
    (4, ExecMode::Interp),
    (1, ExecMode::Vm),
    (4, ExecMode::Vm),
];

/// Kernel errors and allocation failures at every graph kernel: every run
/// must fail with a structured, attributed error on both executors.
#[test]
fn injected_kernel_errors_surface_attributed_on_both_executors() {
    let _l = chaos_lock();
    let staged = stage_corpus();
    for seed in seeds() {
        for kind in ["error", "alloc"] {
            let _g = PlanGuard::install(&format!("{kind}@graph/*:{seed}"));
            for p in &staged {
                for (threads, mode) in EXEC_GRID {
                    let err = run_at(p, threads, mode).expect_err(p.name);
                    let msg = err.to_string();
                    assert!(
                        msg.contains("injected"),
                        "{}: {mode:?} t{threads}: not an injected fault: {msg}",
                        p.name
                    );
                    assert!(
                        msg.contains("(node '"),
                        "{}: {mode:?} t{threads}: missing node attribution: {msg}",
                        p.name
                    );
                    assert!(
                        msg.contains("[from original source"),
                        "{}: {mode:?} t{threads}: missing span attribution: {msg}",
                        p.name
                    );
                }
            }
        }
    }
}

/// Injected panics must be caught at the kernel boundary — never abort
/// the process, never poison the pool — and attribute like errors.
#[test]
fn injected_panics_are_isolated_on_both_executors() {
    let _l = chaos_lock();
    let staged = stage_corpus();
    for seed in seeds() {
        let _g = PlanGuard::install(&format!("panic@graph/*:{seed}"));
        for p in &staged {
            for (threads, mode) in EXEC_GRID {
                let err = run_at(p, threads, mode).expect_err(p.name);
                let msg = err.to_string();
                assert!(
                    msg.contains("kernel panicked") && msg.contains("injected panic fault"),
                    "{}: {mode:?} t{threads}: {msg}",
                    p.name
                );
                assert!(
                    msg.contains("(node '") && msg.contains("[from original source"),
                    "{}: {mode:?} t{threads}: missing attribution: {msg}",
                    p.name
                );
            }
        }
    }
}

/// Probabilistic faults: a run either completes with reference-identical
/// values or fails with a well-formed injected error — nothing in between,
/// and the same seed makes the same choice on the sequential executor
/// every time.
#[test]
fn partial_rate_faults_fail_cleanly_or_not_at_all() {
    let _l = chaos_lock();
    let staged = stage_corpus();
    let reference: Vec<Vec<Tensor>> = staged
        .iter()
        .map(|p| {
            run_at(p, 1, ExecMode::Interp).unwrap_or_else(|e| panic!("{}: reference: {e}", p.name))
        })
        .collect();
    for seed in seeds() {
        let spec = format!("error@graph/*@0.02:{seed}");
        // fused groups fire their injection sites at the kernel's
        // position, so the per-site decision sequence is a per-mode
        // contract: replay within a mode must agree; modes may differ
        for mode in [ExecMode::Interp, ExecMode::Vm] {
            let mut failed = 0usize;
            for (p, r) in staged.iter().zip(&reference) {
                let outcome = {
                    let _g = PlanGuard::install(&spec);
                    run_at(p, 1, mode)
                };
                match outcome {
                    Ok(out) => assert_bitwise_eq(p.name, "survived faulted run", &out, r),
                    Err(e) => {
                        failed += 1;
                        let msg = e.to_string();
                        assert!(msg.contains("injected"), "{}: {mode:?}: {msg}", p.name);
                    }
                }
                // determinism of the injection decision itself: the counter
                // restarts at install, so the same plan re-run from scratch
                // fails (or survives) identically on the sequential path
                let outcome2 = {
                    let _g = PlanGuard::install(&spec);
                    run_at(p, 1, mode)
                };
                match outcome2 {
                    Ok(out) => assert_bitwise_eq(p.name, "replayed faulted run", &out, r),
                    Err(_) => assert!(failed > 0, "{}: {mode:?}: replay diverged", p.name),
                }
            }
        }
    }
}

/// Delay faults perturb scheduling only — values stay bitwise identical
/// on both executors.
#[test]
fn delay_faults_never_change_values() {
    let _l = chaos_lock();
    let staged = stage_corpus();
    let reference: Vec<Vec<Tensor>> = staged
        .iter()
        .map(|p| {
            run_at(p, 1, ExecMode::Interp).unwrap_or_else(|e| panic!("{}: reference: {e}", p.name))
        })
        .collect();
    let seed = seeds()[0];
    let _g = PlanGuard::install(&format!("delay@*/*@0.25:{seed}"));
    for (p, r) in staged.iter().zip(&reference) {
        for (threads, mode) in EXEC_GRID {
            let out = run_at(p, threads, mode)
                .unwrap_or_else(|e| panic!("{}: delayed {mode:?} t{threads}: {e}", p.name));
            assert_bitwise_eq(p.name, "delayed run", &out, r);
        }
    }
}

/// After any amount of chaos, clearing the plan restores bitwise-identical
/// results at both thread counts — twice, to catch lingering state.
#[test]
fn non_faulted_reruns_are_bitwise_identical_after_chaos() {
    let _l = chaos_lock();
    let staged = stage_corpus();
    let reference: Vec<Vec<Tensor>> = staged
        .iter()
        .map(|p| {
            run_at(p, 1, ExecMode::Interp).unwrap_or_else(|e| panic!("{}: reference: {e}", p.name))
        })
        .collect();
    for seed in seeds() {
        {
            let _g = PlanGuard::install(&format!(
                "panic@graph/*@0.5,error@graph/*@0.5,delay@par/*@0.5:{seed}"
            ));
            for p in &staged {
                for (threads, mode) in EXEC_GRID {
                    // outcome irrelevant — only that it never aborts
                    let _ = run_at(p, threads, mode);
                }
            }
        }
        // plan cleared by the guard: everything must be pristine again
        for (p, r) in staged.iter().zip(&reference) {
            for (threads, mode) in EXEC_GRID {
                for rerun in 0..2 {
                    let out = run_at(p, threads, mode).unwrap_or_else(|e| {
                        panic!("{}: clean rerun {rerun} {mode:?} t{threads}: {e}", p.name)
                    });
                    assert_bitwise_eq(p.name, "clean rerun", &out, r);
                }
            }
        }
    }
}

/// Faults at the eager site surface as structured runtime errors from the
/// op-by-op interpreter too.
#[test]
fn eager_site_faults_surface_as_errors() {
    let _l = chaos_lock();
    let seed = seeds()[0];
    for kind in ["error", "panic"] {
        let mut rt = Runtime::load("def f(x):\n    return x * 2.0 + 1.0\n", true).expect("load");
        let _g = PlanGuard::install(&format!("{kind}@eager/*:{seed}"));
        let err = rt
            .call("f", vec![Value::tensor(Tensor::scalar_f32(3.0))])
            .expect_err("eager fault must surface");
        let msg = err.to_string();
        assert!(msg.contains("injected"), "{kind}: {msg}");
    }
}

/// The serve axis: faults at the `serve` site (admission, batcher,
/// respond) plus injected graph panics, under concurrent in-flight
/// requests, must yield clean HTTP error responses — never a hung
/// connection, never a poisoned session. Once the plan clears, the
/// same request serves a bitwise-identical response again.
#[test]
fn serve_faults_yield_clean_errors_never_hung_connections() {
    let _l = chaos_lock();
    use autograph_serve::client::{wait_ready, Client};
    use autograph_serve::{ModelRegistry, RegistryConfig, Server, ServerConfig};
    use std::time::{Duration, Instant};

    let src = "def f(x):\n    return x * 2.0 + 1.0\n";
    let reg_cfg = RegistryConfig {
        // `f` batchable so the batcher fault site is actually reachable
        batch_fns: Some(vec!["f".to_string()]),
        breaker_cooldown: Duration::from_millis(50),
        ..RegistryConfig::default()
    };
    let reg = ModelRegistry::load(src, &reg_cfg).expect("load");
    let cfg = ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(reg, cfg).expect("start");
    let addr = server.addr().to_string();
    assert!(wait_ready(&addr, Duration::from_secs(10)));

    // pristine reference response
    let pre = {
        let mut c = Client::connect(&addr).expect("connect");
        let r = c.run("f", "{\"args\":[3.0]}", Some(10_000)).expect("pre");
        assert_eq!(r.status, 200, "{}", r.text());
        r.text()
    };

    for seed in seeds() {
        let _g = PlanGuard::install(&format!(
            "error@serve/admission@0.3,error@serve/respond@0.3,\
             error@serve/batcher@0.5,panic@graph/*@0.3:{seed}"
        ));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    for i in 0..8 {
                        let resp = match c.run("f", "{\"args\":[3.0]}", Some(5_000)) {
                            Ok(r) => r,
                            Err(_) => {
                                // the server closed this connection after a
                                // failed response write; reconnecting must
                                // always work — refusal yes, hanging no
                                c = Client::connect(&addr).expect("reconnect");
                                continue;
                            }
                        };
                        assert!(
                            matches!(resp.status, 200 | 500 | 503 | 504),
                            "request {i}: unclean status {}: {}",
                            resp.status,
                            resp.text()
                        );
                    }
                });
            }
        });
    }

    // chaos must leave no residue: the injected panics may have tripped
    // the breaker, so allow it its (shortened) cooldown, then demand a
    // bitwise-identical response.
    let mut c = Client::connect(&addr).expect("connect");
    let t0 = Instant::now();
    let post = loop {
        let r = c.run("f", "{\"args\":[3.0]}", Some(10_000)).expect("post");
        if r.status == 200 {
            break r.text();
        }
        assert_eq!(
            r.status,
            503,
            "only breaker cooldown may delay recovery: {}",
            r.text()
        );
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "breaker never recovered after chaos: {}",
            r.text()
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(post, pre, "post-chaos response differs from pre-chaos");
    let report = server.shutdown(Duration::from_secs(10));
    assert!(
        report.clean,
        "drain left {} request(s) in flight",
        report.abandoned
    );
}
