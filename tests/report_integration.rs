//! Run-report integration suite: memory-ledger invariants over the
//! differential corpus at threads 1 and 4, self-time-vs-wall accuracy on
//! a chunky single-threaded chain, partial reports from cancelled and
//! deadline-exceeded runs, the `autograph-report` diff gate against a
//! freshly generated report, and the injected-delay span category.
//!
//! One test function: the tensor memory ledger, the worker-pool meters
//! and the obs recorder registry are all process-global, and the default
//! test harness runs `#[test]` fns in parallel threads — splitting these
//! checks up would make every assertion race against a sibling's
//! allocations.

use autograph::prelude::*;
use autograph_graph::RunReport;

#[path = "support/corpus.rs"]
mod corpus;
use corpus::{programs, v, Program};

#[test]
fn run_reports_end_to_end() {
    corpus_memory_invariants();
    live_bytes_return_to_baseline_after_drop();
    chunky_chain_self_time_tracks_wall();
    failed_runs_yield_partial_reports();
    report_diff_against_itself_is_clean();
    injected_delays_get_their_own_span_category();
}

/// Stage `p` and run it once with reporting on; return the report.
fn reported_run(p: &Program, threads: usize) -> RunReport {
    let mut rt = Runtime::load(p.src, true).unwrap_or_else(|e| panic!("{}: load: {e}", p.name));
    let placeholder_args: Vec<GraphArg> = p
        .feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder((*n).to_string()))
        .collect();
    let staged = rt
        .stage_to_graph("f", placeholder_args)
        .unwrap_or_else(|e| panic!("{}: stage: {e}", p.name));
    let mut sess = Session::new(staged.graph);
    sess.set_threads(threads);
    sess.set_reporting(true);
    sess.run(&p.feeds, &staged.outputs)
        .unwrap_or_else(|e| panic!("{}: run: {e}", p.name));
    sess.last_report()
        .unwrap_or_else(|| panic!("{}: reporting was enabled", p.name))
        .clone()
}

/// Ledger invariants that must hold for every corpus program on both
/// executor paths: the run's allocation delta balances against the live
/// delta, the peak bounds both live watermarks, tensor-producing
/// programs show a nonzero working set, and the JSON round-trips through
/// a parser.
fn corpus_memory_invariants() {
    for p in &programs() {
        for threads in [1usize, 4] {
            let r = reported_run(p, threads);
            let ctx = format!("{} (threads={threads})", p.name);
            assert!(r.succeeded, "{ctx}: report marked failed");
            assert_eq!(r.threads, threads, "{ctx}: threads");
            assert!(r.wall_ns > 0, "{ctx}: wall_ns");
            assert!(r.nodes_executed > 0, "{ctx}: nodes_executed");
            assert!(r.total_self_ns > 0, "{ctx}: total_self_ns");
            assert!(!r.node_costs.is_empty(), "{ctx}: node_costs");
            assert!(!r.critical_path.nodes.is_empty(), "{ctx}: critical path");
            assert!(
                r.critical_path.path_ns <= r.total_self_ns,
                "{ctx}: path {} exceeds total self-time {}",
                r.critical_path.path_ns,
                r.total_self_ns
            );

            // allocated − freed == live_end − live_start, exactly: the
            // ledger counts a free only for storage it counted at
            // allocation, so toggling tracking mid-flight cannot skew
            // the balance (see autograph_tensor::mem docs)
            let alloc_delta = r.mem.allocated_bytes as i128 - r.mem.freed_bytes as i128;
            let live_delta = r.mem.live_bytes_end as i128 - r.mem.live_bytes_start as i128;
            assert_eq!(
                alloc_delta, live_delta,
                "{ctx}: ledger imbalance: allocated-freed={alloc_delta} live delta={live_delta}"
            );
            // every corpus program materializes at least one tensor
            assert!(r.mem.allocated_bytes > 0, "{ctx}: no allocations counted");
            assert!(r.mem.allocs > 0, "{ctx}: alloc count");
            // the peak is reset to the live level at run start and only
            // raised by allocations, so it bounds both ends of the run
            assert!(
                r.mem.peak_bytes >= r.mem.live_bytes_start
                    && r.mem.peak_bytes >= r.mem.live_bytes_end,
                "{ctx}: peak {} below live start {} / end {}",
                r.mem.peak_bytes,
                r.mem.live_bytes_start,
                r.mem.live_bytes_end
            );
            assert!(r.mem.peak_bytes > 0, "{ctx}: zero peak working set");

            let doc = serde_json::from_str(&r.to_json())
                .unwrap_or_else(|e| panic!("{ctx}: report JSON does not parse: {e}"));
            assert_eq!(
                doc.get("kind").and_then(|k| k.as_str()),
                Some("autograph_run_report"),
                "{ctx}: kind"
            );
            assert_eq!(
                doc.get("wall_ns").and_then(|w| w.as_u64()),
                Some(r.wall_ns),
                "{ctx}: wall_ns round-trip"
            );
            assert_eq!(
                doc.get("mem")
                    .and_then(|m| m.get("peak_bytes"))
                    .and_then(|b| b.as_u64()),
                Some(r.mem.peak_bytes),
                "{ctx}: peak round-trip"
            );
            assert!(!r.render_text().is_empty(), "{ctx}: text rendering");
        }
    }
}

/// Everything a run allocates must come back: with tracking held open
/// across the whole lifecycle (load → stage → run → drop), the ledger's
/// live level returns to its starting point once the session, its
/// outputs and the staged graph are gone.
fn live_bytes_return_to_baseline_after_drop() {
    autograph::tensor::mem::track_begin();
    let live0 = autograph::tensor::mem::snapshot().live_bytes;
    {
        let p = &programs()[0];
        let _r = reported_run(p, 1);
    }
    let live1 = autograph::tensor::mem::snapshot().live_bytes;
    autograph::tensor::mem::track_end();
    assert_eq!(
        live0, live1,
        "live bytes did not return to baseline after drop: {live0} -> {live1}"
    );
}

/// At threads=1 on a compute-bound chain, the per-node self-time sum
/// must explain the wall time: the executor's own overhead (dispatch,
/// readiness bookkeeping) is bounded by 10% of the run. Noisy shared
/// machines get three attempts; the best run must clear the bar.
fn chunky_chain_self_time_tracks_wall() {
    let n = 128usize;
    let data = |seed: u32| -> Vec<f32> {
        (0..n * n)
            .map(|i| {
                (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 1000) as f32
                    / 10000.0
                    - 0.05
            })
            .collect()
    };
    let p = Program {
        name: "chunky_matmul_chain",
        src: "def f(x, w):\n    i = 0\n    while i < 20:\n        x = tf.tanh(tf.matmul(x, w))\n        i = i + 1\n    return x\n",
        feeds: vec![
            ("x", v(data(1), &[n, n])),
            ("w", v(data(2), &[n, n])),
        ],
        lantern: false,
    };
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let r = reported_run(&p, 1);
        let wall = r.wall_ns as f64;
        let gap = (wall - r.total_self_ns as f64).abs() / wall;
        best = best.min(gap);
        if best <= 0.10 {
            break;
        }
    }
    assert!(
        best <= 0.10,
        "self-time sum strays {:.1}% from wall at threads=1 (limit 10%)",
        best * 100.0
    );
}

/// Cancelled and deadline-exceeded runs still produce a well-formed
/// partial report: marked failed, carrying the error text, with valid
/// JSON — the profile of the work done *before* the abort.
fn failed_runs_yield_partial_reports() {
    let src = "def f(x):\n    while tf.reduce_sum(x) > 0.0:\n        x = x + 1.0\n    return x\n";
    let feeds: Vec<(&str, Tensor)> = vec![("x", v(vec![1.0, 2.0], &[2]))];

    for threads in [1usize, 4] {
        // deadline
        let mut rt = Runtime::load(src, true).expect("load");
        let staged = rt
            .stage_to_graph("f", vec![GraphArg::Placeholder("x".to_string())])
            .expect("stage");
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(threads);
        sess.set_reporting(true);
        let opts = RunOptions::default().with_deadline(std::time::Duration::from_millis(40));
        let err = sess
            .run_with_options(&feeds, &staged.outputs, &opts)
            .expect_err("infinite loop must hit the deadline");
        assert!(err.is_deadline_exceeded(), "threads={threads}: {err}");
        let r = sess
            .last_report()
            .expect("failed run still reports")
            .clone();
        assert!(!r.succeeded, "threads={threads}: deadline report succeeded");
        let msg = r.error.as_deref().unwrap_or("");
        assert!(
            msg.to_lowercase().contains("deadline"),
            "threads={threads}: error text: {msg:?}"
        );
        assert!(r.while_iters > 0, "threads={threads}: no progress recorded");
        serde_json::from_str(&r.to_json())
            .unwrap_or_else(|e| panic!("threads={threads}: partial report JSON: {e}"));

        // pre-cancelled token: aborts immediately, report still forms
        let token = CancelToken::new();
        token.cancel();
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(threads);
        sess.set_reporting(true);
        let err = sess
            .run_with_options(
                &feeds,
                &staged.outputs,
                &RunOptions::default().with_cancel(token),
            )
            .expect_err("cancelled run must fail");
        assert!(err.is_cancelled(), "threads={threads}: {err}");
        let r = sess.last_report().expect("cancelled run still reports");
        assert!(!r.succeeded, "threads={threads}: cancel report succeeded");
        serde_json::from_str(&r.to_json())
            .unwrap_or_else(|e| panic!("threads={threads}: cancelled report JSON: {e}"));
    }
}

/// A report diffed against itself through the perf-gate engine must
/// produce zero regressions at any tolerance — the same property the CI
/// gate relies on when baselines are regenerated on the same machine.
fn report_diff_against_itself_is_clean() {
    let r = reported_run(&programs()[0], 4);
    let doc = serde_json::from_str(&r.to_json()).expect("report JSON");
    let tol = autograph_report::Tolerance {
        rel: 0.0,
        abs: 0.0,
        overrides: Vec::new(),
    };
    let d = autograph_report::diff(&doc, &doc, &tol);
    assert!(d.compared > 0, "diff compared no metrics");
    assert!(
        d.passed(),
        "self-diff regressed: {:?}",
        d.regressions().map(|f| f.path.clone()).collect::<Vec<_>>()
    );
}

/// Injected scheduler delays (`AUTOGRAPH_FAULTS` delay rules) show up
/// under their own `fault_delay` span category, so traces distinguish
/// injected stalls from real work.
fn injected_delays_get_their_own_span_category() {
    use std::sync::Arc;
    let agg = Arc::new(autograph_obs::AggregateRecorder::new());
    autograph_obs::install(agg.clone());
    autograph::faults::install(
        autograph::faults::FaultPlan::parse("delay@graph/*@1.0:7").expect("plan"),
    );
    let _ = reported_run(&programs()[0], 1);
    autograph::faults::clear();
    autograph_obs::uninstall();
    let summary = agg.summary();
    assert!(
        summary
            .rows
            .iter()
            .any(|row| row.key.starts_with("fault_delay/")),
        "no fault_delay span recorded; rows: {:?}",
        summary
            .rows
            .iter()
            .map(|r| r.key.clone())
            .collect::<Vec<_>>()
    );
}
