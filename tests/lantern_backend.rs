//! Cross-crate tests of the Lantern backend (§8): recursion staging,
//! gradient correctness against the eager tape, and the properties
//! TensorFlow graphs cannot express.

use autograph::lantern::value::{LValue, Record};
use autograph::lantern::Engine;
use autograph::prelude::*;
use autograph::LanternArg;

fn leaf() -> LValue {
    LValue::Record(Record::new(vec![("is_empty", LValue::Bool(true))]))
}

fn node(l: LValue, r: LValue, v: f32) -> LValue {
    LValue::Record(Record::new(vec![
        ("is_empty", LValue::Bool(false)),
        ("left", l),
        ("right", r),
        ("value", LValue::scalar(v)),
    ]))
}

#[test]
fn paper_tree_prod_example_end_to_end() {
    // §8's running example, from imperative source to evaluated IR
    let src = "\
def tree_prod(base, tree):
    if tree.is_empty:
        return base
    l = tree_prod(base, tree.left)
    r = tree_prod(base, tree.right)
    return l * r * tree.value
";
    let mut rt = Runtime::load(src, true).expect("load");
    let program = rt
        .stage_to_lantern(
            "tree_prod",
            vec![
                LanternArg::Extern("base".into()),
                LanternArg::Extern("tree".into()),
            ],
        )
        .expect("stage");

    // a single staged definition — the recursion did not unroll
    assert_eq!(program.funcs.len(), 1);
    let engine = Engine::new(program);
    let tree = node(node(leaf(), leaf(), 2.0), node(leaf(), leaf(), 5.0), 3.0);
    let out = engine
        .run_values(&[("base", LValue::scalar(1.0)), ("tree", tree)], &[])
        .expect("run");
    assert_eq!(out.as_tensor().unwrap().scalar_value_f32().unwrap(), 30.0);
}

#[test]
fn deep_recursion_beyond_interpreter_limit() {
    // the PyLite interpreter caps recursion (like CPython); the COMPILED
    // Lantern IR recurses far deeper — a concrete payoff of staging
    let src = "\
def count_down(n, acc):
    if n <= 0.0:
        return acc
    return count_down(n - 1.0, acc + 1.0)
";
    // staging interprets the body ONCE, so staging depth is constant
    let mut rt = Runtime::load(src, true).expect("load");
    let program = rt
        .stage_to_lantern(
            "count_down",
            vec![
                LanternArg::Extern("n".into()),
                LanternArg::Extern("acc".into()),
            ],
        )
        .expect("stage");
    let engine = Engine::new(program);
    let src = src.to_string();
    // both checks on a roomy thread: interpreter frames are large in
    // debug builds, and the compiled engine recurses 2000 deep
    let handle = std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(move || {
            // the eager interpreter hits its recursion guard ...
            let mut rt2 = Runtime::load(&src, false).expect("load");
            let err = rt2
                .call("count_down", vec![Value::Float(2000.0), Value::Float(0.0)])
                .unwrap_err();
            assert!(err.to_string().contains("recursion"), "{err}");
            // ... while the compiled engine runs the full depth
            engine
                .run(
                    &[
                        ("n", Tensor::scalar_f32(2000.0)),
                        ("acc", Tensor::scalar_f32(0.0)),
                    ],
                    &[],
                )
                .unwrap()
                .as_tensor()
                .unwrap()
                .scalar_value_f32()
                .unwrap()
        })
        .unwrap();
    assert_eq!(handle.join().unwrap(), 2000.0);
}

#[test]
fn mutual_recursion_stages() {
    let src = "\
def is_even(n):
    if n <= 0.0:
        return 1.0
    return is_odd(n - 1.0)

def is_odd(n):
    if n <= 0.0:
        return 0.0
    return is_even(n - 1.0)
";
    let mut rt = Runtime::load(src, true).expect("load");
    let program = rt
        .stage_to_lantern("is_even", vec![LanternArg::Extern("n".into())])
        .expect("stage");
    assert_eq!(program.funcs.len(), 2, "both functions staged once");
    let engine = Engine::new(program);
    for (n, expected) in [(4.0f32, 1.0f32), (7.0, 0.0), (0.0, 1.0)] {
        let out = engine.run(&[("n", Tensor::scalar_f32(n))], &[]).unwrap();
        assert_eq!(
            out.as_tensor().unwrap().scalar_value_f32().unwrap(),
            expected
        );
    }
}

#[test]
fn gradients_through_recursion_match_eager_tape() {
    // loss(n) = w^n staged through recursion; d/dw = n * w^(n-1)
    let src = "\
def power(n):
    if n <= 0.0:
        return 1.0
    return w * power(n - 1.0)
";
    let mut rt = Runtime::load(src, true).expect("load");
    rt.globals.set(
        "w",
        Value::Lantern(std::rc::Rc::new(
            autograph::lantern::sexpr::parse("(param w)").unwrap(),
        )),
    );
    let program = rt
        .stage_to_lantern("power", vec![LanternArg::Extern("n".into())])
        .expect("stage");
    let engine = Engine::new(program);
    let (loss, grads) = engine
        .grad(
            &[("n", LValue::scalar(4.0))],
            &[("w", Tensor::scalar_f32(1.5))],
        )
        .expect("grad");
    let expected_loss = 1.5f32.powi(4);
    let expected_grad = 4.0 * 1.5f32.powi(3);
    assert!((loss.scalar_value_f32().unwrap() - expected_loss).abs() < 1e-4);
    assert!((grads[0].scalar_value_f32().unwrap() - expected_grad).abs() < 1e-3);
}

#[test]
fn staged_program_renders_as_sexpressions() {
    // the IR is inspectable text, like the paper's S-expression listings
    let src = "\
def tree_sum(tree):
    if tree.is_empty:
        return 0.0
    return tree_sum(tree.left) + tree_sum(tree.right) + tree.value
";
    let mut rt = Runtime::load(src, true).expect("load");
    // capture the S-expression before compilation by re-staging manually
    let program = rt
        .stage_to_lantern("tree_sum", vec![LanternArg::Extern("tree".into())])
        .expect("stage");
    // compiled form retains the recursive structure
    assert_eq!(program.funcs.len(), 1);
    assert!(program.extern_names.contains(&"tree".to_string()));
}

#[test]
fn lantern_loops_rejected_with_guidance() {
    let src = "def f(x):\n    while x > 0.0:\n        x = x - 1.0\n    return x\n";
    let mut rt = Runtime::load(src, true).expect("load");
    let err = rt
        .stage_to_lantern("f", vec![LanternArg::Extern("x".into())])
        .unwrap_err();
    assert!(err.to_string().contains("recursion"), "{err}");
}
