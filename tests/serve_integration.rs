//! Integration suite for `crates/serve`: the HTTP serving layer must be
//! a transparent, resilient shell around `Session::run` —
//!
//! * **transparent**: results over HTTP/JSON are bitwise-equal to a
//!   direct session run of the same staged graph, under concurrent
//!   clients and under dynamic batching;
//! * **resilient**: overload sheds with 503 + `Retry-After` instead of
//!   queueing to death, deadlines propagate into the run (504), client
//!   disconnects cancel work (499 + stats), circuit breakers trip and
//!   recover, and graceful drain finishes in-flight work while leaving
//!   the tensor memory ledger exactly where it started.
//!
//! Servers in this suite share process-global state (the content-hash
//! staging cache, the tensor memory ledger), so every test serializes
//! on one mutex, same as `tests/chaos.rs`.

use autograph_serve::client::{wait_ready, Client};
use autograph_serve::json::{parse_outputs, write_tensor};
use autograph_serve::prom;
use autograph_serve::server::REQUIRED_METRIC_FAMILIES;
use autograph_serve::{ModelRegistry, RegistryConfig, Server, ServerConfig, TelemetryConfig};
use autograph_tensor::{mem, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

#[path = "support/corpus.rs"]
mod corpus;

#[path = "support/check.rs"]
mod check;
use check::assert_bitwise_eq;

fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

fn boot(src: &str, cfg: ServerConfig, reg_cfg: &RegistryConfig) -> Server {
    let registry = ModelRegistry::load(src, reg_cfg).expect("registry load");
    let server = Server::start(registry, cfg).expect("server start");
    assert!(
        wait_ready(&server.addr().to_string(), Duration::from_secs(10)),
        "server never became ready"
    );
    server
}

fn body_for(args: &[&Tensor]) -> String {
    let mut out = String::from("{\"args\":[");
    for (i, t) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_tensor(t, &mut out);
    }
    out.push_str("]}");
    out
}

fn stat(stats_body: &str, key: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(stats_body).expect("stats JSON");
    v.get(key)
        .and_then(serde_json::Value::as_f64)
        .unwrap_or_else(|| panic!("stats missing '{key}': {stats_body}")) as u64
}

/// A corpus program whose single `def f` can be renamed into a combined
/// module. Returns `None` for multi-function programs or self-calls.
fn rename_f(src: &str, i: usize) -> Option<String> {
    if src.matches("def ").count() != 1 {
        return None;
    }
    let renamed = src.replacen("def f(", &format!("def f_{i}("), 1);
    if !renamed.contains(&format!("def f_{i}(")) {
        return None;
    }
    // a bare `f(` left over means the function calls itself — renaming
    // call sites is not worth the fragility, skip such programs
    let bytes = renamed.as_bytes();
    for (pos, _) in renamed.match_indices("f(") {
        let prev = if pos == 0 { b'\n' } else { bytes[pos - 1] };
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b'.') {
            return None;
        }
    }
    Some(renamed)
}

/// The whole (single-function) corpus over HTTP, four concurrent client
/// threads, every response bitwise-equal to a direct `Session::run` of
/// the same staged entry.
#[test]
fn corpus_over_http_is_bitwise_equal_to_direct_session_run() {
    let _l = lock();
    let progs = corpus::programs();
    let mut combined = String::new();
    let mut cases: Vec<(String, Vec<(&'static str, Tensor)>)> = Vec::new();
    for (i, p) in progs.iter().enumerate() {
        if let Some(renamed) = rename_f(p.src, i) {
            combined.push_str(&renamed);
            combined.push('\n');
            cases.push((format!("f_{i}"), p.feeds.clone()));
        }
    }
    assert!(
        cases.len() >= 15,
        "corpus shrank unexpectedly: only {} single-function programs",
        cases.len()
    );

    let reg_cfg = RegistryConfig::default();
    let registry = ModelRegistry::load(&combined, &reg_cfg).expect("combined registry");
    assert!(
        registry.failed.is_empty(),
        "combined corpus staging failures: {:?}",
        registry
            .failed
            .iter()
            .map(|f| format!("{}: {}", f.name, f.error))
            .collect::<Vec<_>>()
    );

    // reference: direct session runs of the same staged entries
    let mut expected: Vec<Vec<Tensor>> = Vec::new();
    for (name, feeds) in &cases {
        let entry = registry
            .get(name)
            .unwrap_or_else(|| panic!("{name} staged"));
        let args: Vec<Tensor> = entry
            .arg_names
            .iter()
            .map(|n| {
                feeds
                    .iter()
                    .find(|(fn_name, _)| fn_name == n)
                    .map(|(_, t)| t.clone())
                    .unwrap_or_else(|| panic!("{name}: feed {n} missing"))
            })
            .collect();
        let out = entry
            .with_session(|sess| {
                let pairs: Vec<(&str, Tensor)> = entry
                    .arg_names
                    .iter()
                    .map(String::as_str)
                    .zip(args.iter().cloned())
                    .collect();
                sess.run(&pairs, &entry.outputs)
            })
            .unwrap_or_else(|e| panic!("{name}: direct run: {e}"));
        expected.push(out);
    }

    let server = Server::start(registry, ServerConfig::default()).expect("server start");
    let addr = server.addr().to_string();
    assert!(wait_ready(&addr, Duration::from_secs(10)));

    // the same workload from four concurrent keep-alive clients
    let reg2 = ModelRegistry::load(&combined, &reg_cfg).expect("cache hit");
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            let cases = &cases;
            let expected = &expected;
            let reg2 = &reg2;
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for ((name, feeds), want) in cases.iter().zip(expected) {
                    let entry = reg2.get(name).unwrap_or_else(|| panic!("{name}"));
                    let args: Vec<&Tensor> = entry
                        .arg_names
                        .iter()
                        .map(|n| {
                            feeds
                                .iter()
                                .find(|(fn_name, _)| fn_name == n)
                                .map(|(_, t)| t)
                                .unwrap_or_else(|| panic!("{name}: feed {n}"))
                        })
                        .collect();
                    let resp = client
                        .run(name, &body_for(&args), Some(30_000))
                        .unwrap_or_else(|e| panic!("{name}: request: {e}"));
                    assert_eq!(resp.status, 200, "{name}: {}", resp.text());
                    let got = parse_outputs(&resp.text()).unwrap_or_else(|e| panic!("{name}: {e}"));
                    assert_bitwise_eq(name, "http vs direct", &got, want);
                }
            });
        }
    });
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean, "drain left {} in flight", report.abandoned);
}

/// `spin(x)` counts to `x` through a graph `While` node (the bound is
/// data-dependent, so staging cannot unroll it): the knob the tests use
/// to hold a worker busy for a controlled time (~6µs/iteration in a
/// debug build), while staying deadline- and cancel-responsive.
const SPIN: &str = "\
def spin(x):
    i = 0.0
    while i < x:
        i = i + 1.0
    return i

def quick(x):
    return x * 2.0
";

/// ~0.3–0.5s of graph work in a debug build.
const SPIN_BUSY: &str = "{\"args\":[60000.0]}";
/// Far beyond any test deadline — must be cut short by deadline/cancel.
const SPIN_FOREVER: &str = "{\"args\":[1000000000.0]}";

/// Under overload the server sheds with 503 + Retry-After instead of
/// queueing to death; afterwards it serves bitwise-identical results.
#[test]
fn overload_sheds_instead_of_queueing_to_death() {
    let _l = lock();
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 2,
        ..ServerConfig::default()
    };
    let server = boot(SPIN, cfg, &RegistryConfig::default());
    let addr = server.addr().to_string();

    let pre = {
        let mut c = Client::connect(&addr).expect("connect");
        let resp = c
            .run("quick", "{\"args\":[21.0]}", Some(30_000))
            .expect("pre");
        assert_eq!(resp.status, 200, "{}", resp.text());
        resp.text()
    };

    // 10 concurrent slow requests against 1 worker + queue of 2: at
    // least 7 must shed, every client must get an answer promptly
    let t0 = Instant::now();
    let statuses: Vec<(u16, Option<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..10)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let resp = c.run("spin", SPIN_BUSY, Some(60_000)).expect("response");
                    (resp.status, resp.header("retry-after").map(str::to_string))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect()
    });
    let elapsed = t0.elapsed();
    let ok = statuses.iter().filter(|(s, _)| *s == 200).count();
    let shed = statuses.iter().filter(|(s, _)| *s == 503).count();
    assert_eq!(ok + shed, 10, "unexpected statuses: {statuses:?}");
    assert!(ok >= 1, "some requests must be admitted: {statuses:?}");
    assert!(shed >= 5, "expected mass shedding: {statuses:?}");
    for (s, retry) in &statuses {
        if *s == 503 {
            let retry = retry.as_ref().expect("503 carries Retry-After");
            assert!(retry.parse::<u64>().expect("integer Retry-After") >= 1);
        }
    }
    assert!(
        elapsed < Duration::from_secs(60),
        "overload burst took {elapsed:?} — queued to death"
    );

    // post-burst: bitwise-identical to pre-burst
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c
        .run("quick", "{\"args\":[21.0]}", Some(30_000))
        .expect("post");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(
        resp.text(),
        pre,
        "post-burst response differs from pre-burst"
    );
    let report = server.shutdown(Duration::from_secs(10));
    assert!(report.clean, "drain left {} in flight", report.abandoned);
}

/// `X-Deadline-Ms` propagates into the graph run and expires as 504
/// with a structured body; the connection survives for the next request.
#[test]
fn deadline_propagates_and_expires_as_504() {
    let _l = lock();
    let server = boot(SPIN, ServerConfig::default(), &RegistryConfig::default());
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");
    let t0 = Instant::now();
    let resp = c.run("spin", SPIN_FOREVER, Some(100)).expect("resp");
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert!(
        resp.text().contains("\"kind\":\"deadline_exceeded\""),
        "{}",
        resp.text()
    );
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "deadline did not bound the run: {:?}",
        t0.elapsed()
    );
    // keep-alive survives a 504
    let resp = c
        .run("quick", "{\"args\":[1.0]}", Some(10_000))
        .expect("resp");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

/// Dropping the connection mid-run cancels the graph run (visible in
/// `/stats` as `cancelled`), so abandoned work doesn't occupy workers.
#[test]
fn client_disconnect_cancels_the_run() {
    let _l = lock();
    let cfg = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let server = boot(SPIN, cfg, &RegistryConfig::default());
    let addr = server.addr().to_string();
    {
        // fire the request raw, let it get picked up, then vanish
        let body = SPIN_FOREVER;
        let head = format!(
            "POST /run/spin HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nX-Deadline-Ms: 60000\r\n\r\n{body}",
            body.len()
        );
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(&addr).expect("raw connect");
        raw.write_all(head.as_bytes()).expect("send");
        std::thread::sleep(Duration::from_millis(300));
        drop(raw);
    }
    // the cancel must free the single worker well before the deadline
    let t0 = Instant::now();
    let mut cancelled_seen = false;
    let mut c = Client::connect(&addr).expect("stats connect");
    while t0.elapsed() < Duration::from_secs(20) {
        let resp = c.request("GET", "/stats", "", "").expect("stats");
        if stat(&resp.text(), "cancelled") >= 1 {
            cancelled_seen = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(cancelled_seen, "disconnect never cancelled the run");
    let report = server.shutdown(Duration::from_secs(10));
    assert!(report.clean, "drain left {} in flight", report.abandoned);
}

/// Consecutive execution failures trip the per-function breaker into
/// fast-fail 503s; after the cooldown a half-open probe re-admits
/// traffic and a success closes the breaker. Error bodies carry the
/// structured GraphError attribution (node, line, source line).
#[test]
fn breaker_trips_fast_fails_and_recovers_via_half_open_probe() {
    let _l = lock();
    let src = "def mm(a, b):\n    return tf.matmul(a, b)\n";
    let reg_cfg = RegistryConfig {
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
        ..RegistryConfig::default()
    };
    let server = boot(src, ServerConfig::default(), &reg_cfg);
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    let good = {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).expect("a");
        body_for(&[&a, &a])
    };
    let bad = "{\"args\":[1.0, 2.0]}"; // scalars: matmul wants rank 2

    // a healthy run first (also seeds the session pool)
    let resp = c.run("mm", &good, Some(10_000)).expect("good");
    assert_eq!(resp.status, 200, "{}", resp.text());

    // three consecutive execution failures trip the breaker...
    for i in 0..3 {
        let resp = c.run("mm", bad, Some(10_000)).expect("bad");
        assert_eq!(resp.status, 500, "bad #{i}: {}", resp.text());
        let text = resp.text();
        assert!(text.contains("\"kind\":\"graph_error\""), "{text}");
        assert!(
            text.contains("\"node\":") && text.contains("\"line\":"),
            "500 body lacks GraphError attribution: {text}"
        );
        assert!(
            text.contains("\"source_line\":\"    return tf.matmul(a, b)\""),
            "500 body lacks provenance source line: {text}"
        );
    }
    // ...and now even a good request fast-fails
    let resp = c.run("mm", &good, Some(10_000)).expect("tripped");
    assert_eq!(resp.status, 503, "{}", resp.text());
    assert!(
        resp.text().contains("\"kind\":\"breaker_open\""),
        "{}",
        resp.text()
    );
    assert!(
        resp.header("retry-after").is_some(),
        "breaker 503 carries Retry-After"
    );

    // after the cooldown, the half-open probe succeeds and closes it
    std::thread::sleep(Duration::from_millis(300));
    let resp = c.run("mm", &good, Some(10_000)).expect("probe");
    assert_eq!(resp.status, 200, "probe: {}", resp.text());
    let resp = c.run("mm", &good, Some(10_000)).expect("closed");
    assert_eq!(resp.status, 200, "closed: {}", resp.text());
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

/// Concurrent same-function requests coalesce into batched runs when
/// the function is declared batchable — without changing any result.
#[test]
fn dynamic_batching_coalesces_without_changing_results() {
    let _l = lock();
    let cfg = ServerConfig {
        workers: 1, // one worker: batchable work piles up behind `spin`
        max_batch: 8,
        ..ServerConfig::default()
    };
    let reg_cfg = RegistryConfig {
        batch_fns: Some(vec!["quick".to_string()]),
        ..RegistryConfig::default()
    };
    let server = boot(SPIN, cfg, &reg_cfg);
    let addr = server.addr().to_string();

    let before = {
        let mut c = Client::connect(&addr).expect("connect");
        let resp = c.request("GET", "/stats", "", "").expect("stats");
        (
            stat(&resp.text(), "batches"),
            stat(&resp.text(), "batch_members"),
        )
    };

    std::thread::scope(|scope| {
        // occupy the single worker...
        let spin_addr = addr.clone();
        let spin = scope.spawn(move || {
            let mut c = Client::connect(&spin_addr).expect("connect");
            let resp = c.run("spin", SPIN_BUSY, Some(60_000)).expect("spin");
            assert_eq!(resp.status, 200, "{}", resp.text());
        });
        std::thread::sleep(Duration::from_millis(150)); // let spin get picked up
                                                        // ...while four batchable requests queue behind it
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    let x = 1.0 + i as f32;
                    let resp = c
                        .run("quick", &format!("{{\"args\":[{x}]}}"), Some(60_000))
                        .expect("quick");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                    let out = parse_outputs(&resp.text()).expect("outputs");
                    assert_eq!(out.len(), 1);
                    assert_eq!(
                        out[0].scalar_value_f32().expect("scalar").to_bits(),
                        (x * 2.0).to_bits(),
                        "member {i} got a wrong value"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("quick thread");
        }
        spin.join().expect("spin thread");
    });

    let mut c = Client::connect(&addr).expect("connect");
    let resp = c.request("GET", "/stats", "", "").expect("stats");
    let batches = stat(&resp.text(), "batches");
    let members = stat(&resp.text(), "batch_members");
    assert!(
        batches > before.0 && members >= before.1 + 2,
        "no batch formed: batches {} -> {batches}, members {} -> {members}",
        before.0,
        before.1
    );
    let report = server.shutdown(Duration::from_secs(10));
    assert!(report.clean);
}

/// Every response carries an `X-Request-Id` — echoed (sanitized) when
/// the client supplies one, generated otherwise — and error bodies
/// carry the same id, so a client-side log line joins against the
/// server's trace of that exact request.
#[test]
fn request_ids_echo_and_join_error_bodies() {
    let _l = lock();
    let server = boot(SPIN, ServerConfig::default(), &RegistryConfig::default());
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");

    // success: the supplied id comes back in the response header
    let resp = c
        .request(
            "POST",
            "/run/quick",
            "X-Request-Id: it-works-1\r\n",
            "{\"args\":[1.0]}",
        )
        .expect("ok request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert_eq!(resp.header("x-request-id"), Some("it-works-1"));

    // error: the id rides both the header and the structured body
    let resp = c
        .request(
            "POST",
            "/run/quick",
            "X-Request-Id: it-fails-2\r\n",
            "{\"args\":[]}",
        )
        .expect("bad request");
    assert!(
        (400..=599).contains(&resp.status),
        "arity error expected: {} {}",
        resp.status,
        resp.text()
    );
    assert_eq!(resp.header("x-request-id"), Some("it-fails-2"));
    assert!(
        resp.text().contains("\"request_id\":\"it-fails-2\""),
        "error body lacks request_id: {}",
        resp.text()
    );

    // no id supplied: the server mints one
    let resp = c
        .run("quick", "{\"args\":[1.0]}", Some(10_000))
        .expect("no-id request");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let minted = resp
        .header("x-request-id")
        .expect("server-minted X-Request-Id");
    assert!(!minted.is_empty());

    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

/// `GET /metrics` stays a valid Prometheus exposition while four client
/// threads hammer `/run` and a fifth scrapes concurrently; counters
/// never go backwards between scrapes and every required family is
/// present.
#[test]
fn metrics_endpoint_stays_valid_under_concurrent_scrapes() {
    let _l = lock();
    let server = boot(SPIN, ServerConfig::default(), &RegistryConfig::default());
    let addr = server.addr().to_string();

    let scrape = |c: &mut Client| -> prom::Scrape {
        let resp = c.request("GET", "/metrics", "", "").expect("GET /metrics");
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(
            resp.header("content-type")
                .is_some_and(|ct| ct.starts_with("text/plain")),
            "metrics content type: {:?}",
            resp.header("content-type")
        );
        prom::parse_and_validate(&resp.text()).expect("valid exposition")
    };

    let mut c = Client::connect(&addr).expect("connect");
    let before = scrape(&mut c);

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for _ in 0..25 {
                    let resp = c
                        .run("quick", "{\"args\":[2.0]}", Some(30_000))
                        .expect("run");
                    assert_eq!(resp.status, 200, "{}", resp.text());
                }
            });
        }
        // scrape continuously while the load runs: every intermediate
        // document must parse and validate (cumulative buckets, +Inf,
        // count == +Inf bucket), even mid-update
        let stop = &stop;
        let addr = addr.clone();
        scope.spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            let mut scrapes = 0u32;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let resp = c.request("GET", "/metrics", "", "").expect("GET /metrics");
                assert_eq!(resp.status, 200);
                prom::parse_and_validate(&resp.text())
                    .unwrap_or_else(|e| panic!("mid-load scrape invalid: {e}"));
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            assert!(scrapes >= 1, "scraper never ran");
        });
        // the load threads finish on their own; release the scraper once
        // the scope's other children are done is not expressible, so just
        // give the scraper a slice of the burst and stop it
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    let after = scrape(&mut c);
    for fam in REQUIRED_METRIC_FAMILIES {
        assert!(after.has_family(fam), "missing required family {fam}");
    }
    // all 100 requests landed in the right counter series
    let served = after
        .value("autograph_requests_total", "{fn=\"quick\",class=\"2xx\"}")
        .expect("requests_total{fn=quick,class=2xx}");
    assert!(served >= 100.0, "only {served} counted");
    // monotonic counters never decrease across scrapes
    let b = before.monotonic_samples();
    let a = after.monotonic_samples();
    for (series, v0) in &b {
        let v1 = a
            .get(series)
            .unwrap_or_else(|| panic!("series {series} vanished between scrapes"));
        assert!(v1 >= v0, "{series} went backwards: {v0} -> {v1}");
    }

    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

/// With `trace_sample: 1` every request is traced: `/debug/trace`
/// returns Chrome-trace span trees whose phase events share the
/// client's request id, plus thread-name metadata events.
#[test]
fn debug_trace_exposes_sampled_span_trees() {
    let _l = lock();
    let cfg = ServerConfig {
        telemetry: TelemetryConfig {
            trace_sample: 1,
            trace_ring: 16,
            slo_ms: 25,
        },
        ..ServerConfig::default()
    };
    let server = boot(SPIN, cfg, &RegistryConfig::default());
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");
    for i in 0..3 {
        let resp = c
            .request(
                "POST",
                "/run/quick",
                &format!("X-Request-Id: traced-{i}\r\n"),
                "{\"args\":[1.0]}",
            )
            .expect("traced request");
        assert_eq!(resp.status, 200, "{}", resp.text());
    }

    let resp = c
        .request("GET", "/debug/trace?n=8", "", "")
        .expect("GET /debug/trace");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let doc: serde_json::Value = serde_json::from_str(&resp.text()).expect("trace JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");

    let for_id = |id: &str| -> Vec<&serde_json::Value> {
        events
            .iter()
            .filter(|e| {
                e.get("args")
                    .and_then(|a| a.get("request_id"))
                    .and_then(serde_json::Value::as_str)
                    == Some(id)
            })
            .collect()
    };
    for i in 0..3 {
        let id = format!("traced-{i}");
        let evs = for_id(&id);
        let request = evs
            .iter()
            .find(|e| e.get("cat").and_then(serde_json::Value::as_str) == Some("request"))
            .unwrap_or_else(|| panic!("{id}: no umbrella request event"));
        assert_eq!(
            request
                .get("args")
                .and_then(|a| a.get("status"))
                .and_then(serde_json::Value::as_f64),
            Some(200.0)
        );
        let phases: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("cat").and_then(serde_json::Value::as_str) == Some("phase"))
            .filter_map(|e| e.get("name").and_then(serde_json::Value::as_str))
            .collect();
        for want in ["decode", "admit", "queue_wait", "run", "respond"] {
            assert!(
                phases.contains(&want),
                "{id}: phase {want} missing from {phases:?}"
            );
        }
    }
    // metadata events name the process and its worker threads
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(serde_json::Value::as_str)
        })
        .collect();
    assert!(
        thread_names.contains(&"autograph-serve"),
        "{thread_names:?}"
    );
    assert!(
        thread_names.iter().any(|n| n.starts_with("serve-worker-")),
        "no serve-worker-N metadata: {thread_names:?}"
    );

    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

/// `/stats` exposes rolling 10s/1m/5m windows with nearest-rank
/// percentiles and SLO burn, updated live as requests land.
#[test]
fn stats_windows_carry_rolling_percentiles() {
    let _l = lock();
    let server = boot(SPIN, ServerConfig::default(), &RegistryConfig::default());
    let addr = server.addr().to_string();
    let mut c = Client::connect(&addr).expect("connect");
    for _ in 0..5 {
        let resp = c
            .run("quick", "{\"args\":[3.0]}", Some(30_000))
            .expect("run");
        assert_eq!(resp.status, 200, "{}", resp.text());
    }

    let resp = c.request("GET", "/stats", "", "").expect("GET /stats");
    assert_eq!(resp.status, 200);
    let doc: serde_json::Value = serde_json::from_str(&resp.text()).expect("stats JSON");
    let windows = doc.get("windows").expect("stats carries windows");
    assert!(
        windows
            .get("slo_ms")
            .and_then(serde_json::Value::as_f64)
            .is_some_and(|v| v > 0.0),
        "windows.slo_ms: {windows:?}"
    );
    for label in ["10s", "1m", "5m"] {
        let w = windows
            .get(label)
            .unwrap_or_else(|| panic!("window {label} missing: {windows:?}"));
        for key in [
            "covered_s",
            "count",
            "rate_rps",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "over_slo_frac",
            "slo_burn",
        ] {
            assert!(
                w.get(key).and_then(serde_json::Value::as_f64).is_some(),
                "window {label} lacks numeric {key}: {w:?}"
            );
        }
        // all five requests are within every window span
        let count = w.get("count").and_then(serde_json::Value::as_f64);
        assert!(
            count.is_some_and(|n| n >= 5.0),
            "window {label} count {count:?} < 5"
        );
    }

    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
}

/// Graceful drain: in-flight work finishes, new work is refused with
/// 503 `draining`, and after teardown the tensor memory ledger is back
/// at its pre-server baseline — serving leaks nothing.
#[test]
fn graceful_drain_finishes_inflight_and_restores_memory_ledger() {
    let _l = lock();
    mem::track_begin();
    let src = SPIN;
    let reg_cfg = RegistryConfig::default();

    // warm cycle: populate the process-global staging cache and any
    // lazily-allocated constants, then measure the baseline
    {
        let server = boot(src, ServerConfig::default(), &reg_cfg);
        let mut c = Client::connect(server.addr().to_string()).expect("connect");
        let resp = c
            .run("quick", "{\"args\":[1.0]}", Some(30_000))
            .expect("warm");
        assert_eq!(resp.status, 200);
        drop(c);
        let report = server.shutdown(Duration::from_secs(10));
        assert!(report.clean);
    }
    std::thread::sleep(Duration::from_millis(100)); // detached threads wind down
    let baseline = mem::snapshot().live_bytes;

    // serving cycle with work in flight across the drain
    {
        let cfg = ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        };
        let server = boot(src, cfg, &reg_cfg);
        let addr = server.addr().to_string();
        let slow = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                c.run("spin", SPIN_BUSY, Some(60_000)).expect("slow")
            })
        };
        std::thread::sleep(Duration::from_millis(100)); // in flight now
        let drain_t0 = Instant::now();
        let report = server.shutdown(Duration::from_secs(30));
        assert!(report.clean, "drain left {} in flight", report.abandoned);
        // the in-flight request finished with a real answer
        let resp = slow.join().expect("slow thread");
        assert_eq!(resp.status, 200, "{}", resp.text());
        assert!(drain_t0.elapsed() < Duration::from_secs(30));
        // a post-drain connection is refused cleanly, not hung
        if let Ok(mut c) = Client::connect(&addr) {
            let outcome = c.run("quick", "{\"args\":[1.0]}", Some(1_000));
            if let Ok(resp) = outcome {
                assert_eq!(
                    resp.status,
                    503,
                    "draining server must refuse: {}",
                    resp.text()
                );
            } // a connection error is equally acceptable — the listener is gone
        }
    }

    // ledger must return to baseline once the server is torn down
    let t0 = Instant::now();
    let mut live = mem::snapshot().live_bytes;
    while live != baseline && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(50));
        live = mem::snapshot().live_bytes;
    }
    mem::track_end();
    assert_eq!(
        live,
        baseline,
        "serving cycle leaked {} bytes of tensors",
        live.saturating_sub(baseline)
    );
}

/// Warm restart against a populated plan cache: the second boot must
/// never enter the staging pipeline (no `staging/*` or
/// `serve/stage_program` obs spans), must report the disk hit through
/// the stage-cache counters and `/metrics`, and must serve responses
/// bitwise-identical to the cold boot's.
#[test]
fn warm_restart_skips_staging_and_serves_identical_responses() {
    let _l = lock();
    // a source unique to this test so no other test's in-process memo
    // or plan-cache artifact can satisfy it
    const SRC: &str = "\
def restart_f(x):
    y = tf.constant(0.0)
    while y < x:
        y = y + 0.75
    return tf.tanh(y) * 3.0

def restart_g(x):
    return x * x + 0.5
";
    let cache_dir =
        std::env::temp_dir().join(format!("agplan-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let reg_cfg = RegistryConfig {
        plan_cache: Some(cache_dir.clone()),
        ..RegistryConfig::default()
    };
    let cases: [(&str, f32); 3] = [("restart_f", 5.0), ("restart_f", 0.0), ("restart_g", 1.25)];

    // cold boot: populates the on-disk bundle
    autograph_serve::reset_stage_memo();
    let run_all = |addr: &str| -> Vec<Vec<Tensor>> {
        let mut client = Client::connect(addr).expect("connect");
        cases
            .iter()
            .map(|(name, v)| {
                let arg = Tensor::scalar_f32(*v);
                let resp = client
                    .run(name, &body_for(&[&arg]), Some(30_000))
                    .expect("run");
                assert_eq!(resp.status, 200, "{name}: {}", resp.text());
                parse_outputs(&resp.text()).expect("outputs")
            })
            .collect()
    };
    let server = boot(SRC, ServerConfig::default(), &reg_cfg);
    let cold_out = run_all(&server.addr().to_string());
    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
    assert!(
        std::fs::read_dir(&cache_dir).expect("cache dir").any(|e| e
            .expect("entry")
            .path()
            .extension()
            .is_some_and(|x| x == "agpc")),
        "cold boot wrote no artifact"
    );

    // simulate a fresh process: drop the in-process memo, then reload
    // the registry under a recorder that would catch any staging work
    autograph_serve::reset_stage_memo();
    let hits_before = autograph_planstore::stats().hits;
    let recorder = std::sync::Arc::new(autograph_obs::AggregateRecorder::new());
    autograph_obs::install(recorder.clone());
    let registry = ModelRegistry::load(SRC, &reg_cfg).expect("warm registry load");
    autograph_obs::uninstall();
    let summary = recorder.summary();
    let staging_spans: Vec<&str> = summary
        .rows
        .iter()
        .map(|r| r.key.as_str())
        .filter(|k| {
            k.starts_with("staging/") || *k == "serve/stage_program" || *k == "serve/optimize"
        })
        .collect();
    assert!(
        staging_spans.is_empty(),
        "warm restart entered the staging pipeline: {staging_spans:?}"
    );
    assert_eq!(summary.counter("serve/stage_cache_hit"), Some(1));
    assert_eq!(summary.counter("serve/stage_cache_disk_hit"), Some(1));
    assert_eq!(summary.counter("serve/stage_cache_miss"), None);
    assert!(
        autograph_planstore::stats().hits > hits_before,
        "plan store recorded no hit on warm boot"
    );
    assert!(
        registry.failed.is_empty(),
        "warm staging failures: {:?}",
        registry
            .failed
            .iter()
            .map(|f| format!("{}: {}", f.name, f.error))
            .collect::<Vec<_>>()
    );

    // the warm server answers bitwise-identically to the cold one
    let server = Server::start(registry, ServerConfig::default()).expect("server start");
    let addr = server.addr().to_string();
    assert!(wait_ready(&addr, Duration::from_secs(10)));
    let warm_out = run_all(&addr);
    for (((name, _), cold), warm) in cases.iter().zip(&cold_out).zip(&warm_out) {
        assert_bitwise_eq(name, "warm vs cold boot", warm, cold);
    }

    // and /metrics carries the plan-cache hit
    let mut c = Client::connect(&addr).expect("connect");
    let resp = c.request("GET", "/metrics", "", "").expect("GET /metrics");
    assert_eq!(resp.status, 200);
    let scrape = prom::parse_and_validate(&resp.text()).expect("valid exposition");
    assert!(scrape.has_family("autograph_plan_cache_total"));
    let hit = scrape
        .value("autograph_plan_cache_total", "{event=\"hit\"}")
        .expect("plan_cache_total{event=hit}");
    assert!(hit >= 1.0, "plan cache hit not exported: {hit}");

    let report = server.shutdown(Duration::from_secs(5));
    assert!(report.clean);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
