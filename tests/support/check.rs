//! Shared tensor-comparison assertions for the integration suites
//! (`tests/differential.rs`, `tests/chaos.rs`, `tests/gradient_check.rs`).
//! Include with `#[path = "support/check.rs"]`.
//!
//! The comparison semantics live in `genprog::compare` — the same code
//! the fuzz oracles use — so hand-written tests and generated tests can
//! never drift apart on what "equal" means. These wrappers only add the
//! panic-with-test-name convention the suites want.
#![allow(dead_code, unused_imports)]

use autograph::prelude::*;
pub use genprog::compare::{all_finite, bitwise, close, DEFAULT_TOL};

/// Outputs agree to the repo-wide 1e-6 absolute tolerance
/// (cross-backend contract; NaN == NaN, identical bits always pass).
pub fn assert_close(name: &str, what: &str, a: &[Tensor], b: &[Tensor]) {
    if let Err(e) = close(what, a, b, DEFAULT_TOL) {
        panic!("{name}: {e}");
    }
}

/// Outputs are bitwise identical (same-backend determinism contract).
pub fn assert_bitwise_eq(name: &str, what: &str, a: &[Tensor], b: &[Tensor]) {
    if let Err(e) = bitwise(what, a, b) {
        panic!("{name}: {e}");
    }
}

/// Two f32 slices agree to a *relative* tolerance scaled by the larger
/// magnitude (floored at 1.0) — the gradient-check convention, where
/// finite differences set the achievable precision.
pub fn assert_close_rel(name: &str, what: &str, a: &[f32], b: &[f32], rel: f32) {
    assert_eq!(a.len(), b.len(), "{name}: {what}: arity");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let tol = rel * x.abs().max(y.abs()).max(1.0);
        assert!(
            (x - y).abs() <= tol,
            "{name}: {what}[{i}]: {x} vs {y} (|diff| {} > tol {tol})",
            (x - y).abs()
        );
    }
}
