//! Shared PyLite program corpus used by the differential harness
//! (`tests/differential.rs`) and the chaos/fault-injection suite
//! (`tests/chaos.rs`). Include with `#[path = "support/corpus.rs"]`.
#![allow(dead_code)]

use autograph::prelude::*;

/// One corpus case: a function plus its feeds. `lantern` marks programs
/// whose op set the Lantern compiler supports (no loops — it expresses
/// iteration through recursion — and no list/stack ops).
pub struct Program {
    pub name: &'static str,
    pub src: &'static str,
    pub feeds: Vec<(&'static str, Tensor)>,
    pub lantern: bool,
}

pub fn v(data: Vec<f32>, shape: &[usize]) -> Tensor {
    Tensor::from_vec(data, shape).expect("literal tensor")
}

pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "scalar_arith",
            src: "def f(x, y):\n    return x * 2.0 + y - 0.5\n",
            feeds: vec![("x", Tensor::scalar_f32(3.0)), ("y", Tensor::scalar_f32(4.0))],
            lantern: true,
        },
        Program {
            name: "vector_arith",
            src: "def f(x, y):\n    return (x + y) * (x - y) / (y + 2.0)\n",
            feeds: vec![
                ("x", v(vec![1.0, 2.0, 3.0], &[3])),
                ("y", v(vec![0.5, -1.5, 2.5], &[3])),
            ],
            lantern: true,
        },
        Program {
            name: "activations",
            src: "def f(x):\n    return tf.tanh(x) + tf.sigmoid(x) * tf.relu(x)\n",
            feeds: vec![("x", v(vec![-2.0, -0.5, 0.0, 0.5, 2.0], &[5]))],
            lantern: true,
        },
        Program {
            name: "exp_log_sqrt",
            src: "def f(x):\n    return tf.exp(x * 0.1) + tf.log(x + 3.0) + tf.sqrt(tf.square(x))\n",
            feeds: vec![("x", v(vec![0.5, 1.5, 2.5], &[3]))],
            lantern: true,
        },
        Program {
            name: "matmul_chain",
            src: "def f(a, b):\n    c = tf.matmul(a, b)\n    return tf.matmul(c, a)\n",
            feeds: vec![
                ("a", v(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])),
                ("b", v(vec![0.5, -0.5, 1.5, 0.25], &[2, 2])),
            ],
            lantern: true,
        },
        Program {
            name: "reduce_sum_mean",
            src: "def f(x):\n    return tf.reduce_sum(x) + tf.reduce_mean(x)\n",
            feeds: vec![("x", v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]))],
            lantern: true,
        },
        Program {
            name: "cond_positive",
            src: "def f(x):\n    if tf.reduce_sum(x) > 0.0:\n        x = x * x\n    else:\n        x = -x\n    return x\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: true,
        },
        Program {
            name: "cond_negative",
            src: "def f(x):\n    if tf.reduce_sum(x) > 0.0:\n        x = x * x\n    else:\n        x = -x\n    return x\n",
            feeds: vec![("x", v(vec![-1.0, -2.0], &[2]))],
            lantern: true,
        },
        Program {
            name: "nested_cond",
            src: "def f(x):\n    s = tf.reduce_sum(x)\n    if s > 0.0:\n        if s > 10.0:\n            x = x * 3.0\n        else:\n            x = x * 2.0\n    else:\n        x = x - 1.0\n    return x\n",
            feeds: vec![("x", v(vec![2.0, 3.0], &[2]))],
            lantern: true,
        },
        Program {
            name: "early_return",
            src: "def f(x):\n    if tf.reduce_sum(x) > 0.0:\n        return x * 2.0\n    return x - 1.0\n",
            feeds: vec![("x", v(vec![0.5, 0.25], &[2]))],
            lantern: true,
        },
        Program {
            name: "helper_call",
            src: "def g(v):\n    return tf.tanh(v) + 1.0\n\ndef f(x):\n    return g(x) * g(x * 0.5)\n",
            feeds: vec![("x", v(vec![0.1, -0.2, 0.3], &[3]))],
            lantern: true,
        },
        Program {
            name: "while_accumulate",
            src: "def f(x):\n    total = x * 0.0\n    while tf.reduce_sum(total) < 50.0:\n        total = total + x\n    return total\n",
            feeds: vec![("x", v(vec![3.0, 4.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "while_counter",
            src: "def f(x):\n    i = 0\n    while i < 7:\n        x = x * 1.1 + 0.01\n        i = i + 1\n    return x\n",
            feeds: vec![("x", v(vec![1.0, -1.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "for_range",
            src: "def f(x):\n    acc = x * 0.0\n    for i in tf.range(5):\n        acc = acc + x * float(i)\n    return acc\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "for_over_rows",
            src: "def f(xs):\n    run = tf.reduce_sum(xs[0]) * 0.0\n    for row in xs:\n        run = run + tf.reduce_sum(row)\n    return run\n",
            feeds: vec![("xs", v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]))],
            lantern: false,
        },
        Program {
            name: "nested_loops",
            src: "def f(x):\n    i = 0\n    while i < 3:\n        j = 0\n        while j < 4:\n            x = x + 0.25\n            j = j + 1\n        i = i + 1\n    return x\n",
            feeds: vec![("x", v(vec![0.0, 10.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "loop_with_cond",
            src: "def f(x):\n    i = 0\n    while i < 6:\n        if x[0] > 0.0:\n            x = x * 0.5\n        else:\n            x = x + 1.0\n        i = i + 1\n    return x\n",
            feeds: vec![("x", v(vec![4.0, -4.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "break_continue",
            src: "def f(x):\n    i = 0\n    total = x * 0.0\n    while True:\n        i = i + 1\n        if i % 2 == 0:\n            continue\n        total = total + x * float(i)\n        if i >= 9:\n            break\n    return total\n",
            feeds: vec![("x", v(vec![1.0, 10.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "list_append_stack",
            src: "def f(x):\n    acc = []\n    ag.set_element_type(acc, tf.float32)\n    for i in tf.range(4):\n        acc.append(x * float(i))\n    return ag.stack(acc)\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "list_running_sums",
            src: "def f(xs):\n    acc = []\n    run = tf.reduce_sum(xs[0]) * 0.0\n    for row in xs:\n        run = run + tf.reduce_sum(row)\n        acc.append(run)\n    return ag.stack(acc)\n",
            feeds: vec![("xs", v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]))],
            lantern: false,
        },
        Program {
            name: "assert_passes",
            src: "def f(x):\n    assert tf.reduce_sum(x) > 0.0\n    return x * 2.0\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "assert_in_loop",
            src: "def f(x):\n    i = 0\n    while i < 3:\n        x = x + 1.0\n        assert x[0] > 0.0\n        i = i + 1\n    return x\n",
            feeds: vec![("x", v(vec![0.5, 1.5], &[2]))],
            lantern: false,
        },
        Program {
            name: "print_side_effect",
            src: "def f(x):\n    tf.print(x)\n    y = x * 3.0\n    tf.print(y)\n    return y\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "indexing_slicing",
            src: "def f(m):\n    first = m[0]\n    rest = m[1:]\n    return first + tf.reduce_sum(rest, 0)\n",
            feeds: vec![("m", v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]))],
            lantern: false,
        },
        Program {
            name: "where_select",
            src: "def f(x, y):\n    return tf.where(x > y, x, y)\n",
            feeds: vec![
                ("x", v(vec![1.0, 5.0, 3.0], &[3])),
                ("y", v(vec![4.0, 2.0, 3.5], &[3])),
            ],
            lantern: false,
        },
        Program {
            name: "reduce_axes",
            src: "def f(m):\n    a = tf.reduce_sum(m, 0)\n    b = tf.reduce_mean(m, 1)\n    return tf.reduce_sum(a) + tf.reduce_sum(b)\n",
            feeds: vec![("m", v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]))],
            lantern: false,
        },
        Program {
            name: "multi_output",
            src: "def f(x):\n    return x + 1.0, x * 2.0\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "independent_branches",
            src: "def f(x, y):\n    a = tf.tanh(tf.matmul(x, y))\n    b = tf.sigmoid(tf.matmul(y, x))\n    c = tf.relu(x - y)\n    d = tf.exp(y * 0.1)\n    return tf.reduce_sum(a) + tf.reduce_sum(b) + tf.reduce_sum(c) + tf.reduce_sum(d)\n",
            feeds: vec![
                ("x", v(vec![0.5, -0.5, 1.0, 0.25], &[2, 2])),
                ("y", v(vec![1.0, 0.5, -0.25, 0.75], &[2, 2])),
            ],
            lantern: true,
        },
        Program {
            name: "loop_carried_matmul",
            src: "def f(x, w):\n    i = 0\n    while i < 4:\n        x = tf.tanh(tf.matmul(x, w))\n        i = i + 1\n    return x\n",
            feeds: vec![
                ("x", v(vec![0.1, 0.2, 0.3, 0.4], &[2, 2])),
                ("w", v(vec![0.5, -0.5, 0.25, 0.75], &[2, 2])),
            ],
            lantern: false,
        },
        Program {
            name: "max_min_mix",
            src: "def f(x, y):\n    return tf.maximum(x, y) + tf.minimum(x, y) - tf.abs(x - y)\n",
            feeds: vec![
                ("x", v(vec![1.0, -2.0, 3.0], &[3])),
                ("y", v(vec![-1.0, 2.0, 3.0], &[3])),
            ],
            lantern: false,
        },
        Program {
            name: "nested_while_break_continue",
            // break and continue at different nesting depths: the outer
            // loop skips even iterations, the inner loop breaks early
            src: "def f(x):\n    i = 0\n    total = x * 0.0\n    while i < 6:\n        i = i + 1\n        if i % 2 == 0:\n            continue\n        j = 0\n        while j < 5:\n            j = j + 1\n            if j >= 3:\n                break\n            total = total + x * float(i + j)\n    return total\n",
            feeds: vec![("x", v(vec![1.0, 10.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "ternary_in_loop_condition",
            // a host ternary inside the while condition itself
            src: "def f(x):\n    i = 0\n    while (i if i % 3 != 0 else i + 1) < 7:\n        x = x * 1.05 + 0.01\n        i = i + 1\n    return x\n",
            feeds: vec![("x", v(vec![1.0, -1.0], &[2]))],
            lantern: false,
        },
        Program {
            name: "ternary_staged_select",
            // tensor-condition ternary: stages to a Select, no branching
            src: "def f(x):\n    y = (x * 2.0 if tf.reduce_sum(x) > 0.0 else x - 1.0)\n    return y + (0.5 if tf.reduce_mean(y) < 0.0 else 1.5)\n",
            feeds: vec![("x", v(vec![0.5, -0.25], &[2]))],
            lantern: true,
        },
        Program {
            name: "list_append_pop_in_cond",
            // list mutation under host control flow inside a staged loop:
            // every row is appended, every third accumulated prefix is
            // popped, squashed, and re-appended
            src: "def f(xs):\n    acc = []\n    ag.set_element_type(acc, tf.float32)\n    n = 0\n    for row in xs:\n        acc.append(tf.tanh(row))\n        n = n + 1\n        if n % 3 == 0:\n            last = acc.pop()\n            acc.append(tf.sigmoid(last))\n    return ag.stack(acc)\n",
            feeds: vec![(
                "xs",
                v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0], &[4, 2]),
            )],
            lantern: false,
        },
        Program {
            name: "early_return_both_branches",
            // both arms of a staged (tensor-condition) if return: the
            // converter must merge two early returns into one output
            src: "def f(x):\n    if tf.reduce_sum(x) > 0.0:\n        return x * 2.0\n    else:\n        return x - 1.0\n",
            feeds: vec![("x", v(vec![-0.5, -0.25], &[2]))],
            lantern: true,
        },
        Program {
            name: "logical_ops_staged_cond",
            // and/or/not over tensor comparisons in a staged condition
            src: "def f(x):\n    s = tf.reduce_sum(x)\n    m = tf.reduce_mean(x)\n    if s > 0.0 and not (m > 2.0):\n        x = x * 2.0\n    if s < -1.0 or m > 0.0:\n        x = x + 0.25\n    return x\n",
            feeds: vec![("x", v(vec![1.0, 0.5], &[2]))],
            lantern: true,
        },
        Program {
            name: "accumulate_scalars_in_loop",
            src: "def f(x):\n    s = 0.0\n    i = 0\n    while i < 10:\n        s = s + float(i) * 0.5\n        i = i + 1\n    return x * s\n",
            feeds: vec![("x", v(vec![1.0, 2.0], &[2]))],
            lantern: false,
        },
    ]
}
