//! Replay of committed fuzz reproducers.
//!
//! Every file in `tests/regressions/*.pylite` is a minimized case the
//! fuzzer once caught (its header records the seed and the oracle that
//! fired). The bug behind each case is fixed, so replaying the full
//! oracle pipeline — eager, graph at threads 1 and 4, Lantern where
//! flagged, bitwise determinism — must pass. A failure here means a
//! previously-fixed divergence regressed.

use genprog::oracle::{check, OracleCfg, Outcome};
use genprog::repro;

fn regression_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("read_dir entry").path();
            (path.extension().is_some_and(|x| x == "pylite")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn committed_reproducers_replay_clean_at_threads_1_and_4() {
    let files = regression_files();
    assert!(
        !files.is_empty(),
        "tests/regressions/ must hold at least one reproducer"
    );
    let cfg = OracleCfg {
        threads: vec![1, 4],
        ..OracleCfg::default()
    };
    for path in files {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let (case, orig_oracle) = repro::from_pylite(&text)
            .unwrap_or_else(|e| panic!("{}: malformed reproducer: {e}", path.display()));
        match check(&case, &cfg) {
            Outcome::Pass => {}
            Outcome::NonFinite => panic!(
                "{}: reproducer went non-finite — its feeds no longer exercise the case",
                path.display()
            ),
            Outcome::Fail(d) => panic!(
                "{}: regressed! originally failed [{orig_oracle}], now fails [{}]: {}",
                path.display(),
                d.oracle,
                d.detail
            ),
        }
    }
}

#[test]
fn reproducer_headers_are_well_formed() {
    for path in regression_files() {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let (case, oracle) =
            repro::from_pylite(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            !oracle.is_empty(),
            "{}: missing oracle header",
            path.display()
        );
        assert!(
            !case.feeds.is_empty(),
            "{}: reproducer has no feeds",
            path.display()
        );
        // the file must also be loadable PyLite as-is (header is comments)
        autograph::pylang::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}: not valid PyLite: {e}", path.display()));
    }
}
