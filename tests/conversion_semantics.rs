//! Conversion preserves semantics: the same function, converted and
//! unconverted, produces identical results on host (Python) values.
//!
//! The deterministic cases cover each conversion pass; the proptest at the
//! bottom is the "random code generation fuzzing system" the paper lists
//! as future work (§10): randomly generated imperative programs are
//! converted and checked for behavioural equality.

use autograph::prelude::*;
use proptest::prelude::*;

fn check_equiv(src: &str, fname: &str, argsets: &[Vec<Value>]) {
    let mut plain = Runtime::load(src, false).expect("load plain");
    let mut conv = Runtime::load(src, true).expect("load converted");
    for args in argsets {
        let a = plain.call(fname, args.clone());
        let b = conv.call(fname, args.clone());
        match (a, b) {
            (Ok(a), Ok(b)) => assert!(
                a.py_eq(&b),
                "{fname}{args:?}: {} != {}\nsource:\n{src}",
                a.render(),
                b.render()
            ),
            (Err(_), Err(_)) => {} // both error: fine (e.g. division by zero)
            (a, b) => panic!("{fname}{args:?}: one failed: {a:?} vs {b:?}\nsource:\n{src}"),
        }
    }
}

fn ints(vals: &[i64]) -> Vec<Vec<Value>> {
    vals.iter().map(|&v| vec![Value::Int(v)]).collect()
}

#[test]
fn conditionals() {
    check_equiv(
        "def f(x):\n    if x > 0:\n        x = x * x\n    return x\n",
        "f",
        &ints(&[-3, 0, 5]),
    );
    check_equiv(
        "def f(x):\n    if x > 10:\n        r = 'big'\n    elif x > 0:\n        r = 'small'\n    else:\n        r = 'neg'\n    return r\n",
        "f",
        &ints(&[-1, 5, 50]),
    );
}

#[test]
fn loops_with_break_continue() {
    check_equiv(
        "def f(n):\n    total = 0\n    i = 0\n    while i < n:\n        i = i + 1\n        if i % 2 == 0:\n            continue\n        if i > 7:\n            break\n        total = total + i\n    return total\n",
        "f",
        &ints(&[0, 3, 20]),
    );
    check_equiv(
        "def f(n):\n    s = 0\n    for i in range(n):\n        if i == 4:\n            break\n        s = s + i\n    return s\n",
        "f",
        &ints(&[0, 2, 10]),
    );
}

#[test]
fn early_returns() {
    check_equiv(
        "def f(x):\n    if x < 0:\n        return -x\n    if x == 0:\n        return 100\n    return x * 2\n",
        "f",
        &ints(&[-5, 0, 7]),
    );
    // return inside loop (guard fallback path)
    check_equiv(
        "def f(n):\n    for i in range(n):\n        if i * i > 20:\n            return i\n    return -1\n",
        "f",
        &ints(&[0, 3, 10]),
    );
}

#[test]
fn list_idioms() {
    check_equiv(
        "def f(n):\n    l = []\n    for i in range(n):\n        l.append(i * i)\n    total = 0\n    for v in l:\n        total = total + v\n    return total\n",
        "f",
        &ints(&[0, 1, 6]),
    );
    check_equiv(
        "def f(n):\n    l = [1, 2, 3]\n    v = l.pop()\n    l.append(n)\n    return l[0] + l[-1] + v\n",
        "f",
        &ints(&[9]),
    );
}

#[test]
fn logical_and_comparison_chains() {
    check_equiv(
        "def f(x):\n    a = x > 0 and x < 10\n    b = x < 0 or x > 100\n    c = not a\n    d = 0 <= x <= 5\n    e = x == 3\n    return (a, b, c, d, e)\n",
        "f",
        &ints(&[-5, 3, 7, 500]),
    );
    // short-circuit effects: right operand must not evaluate
    check_equiv(
        "def f(x):\n    if x != 0 and 10 // x > 1:\n        return 1\n    return 0\n",
        "f",
        &ints(&[0, 1, 4, 9]),
    );
}

#[test]
fn nested_functions_and_calls() {
    check_equiv(
        "def helper(a, b):\n    if a > b:\n        return a - b\n    return b - a\n\ndef f(x):\n    return helper(x, 10) + helper(10, x)\n",
        "f",
        &ints(&[-3, 10, 30]),
    );
    check_equiv(
        "def f(x):\n    def inner(y):\n        return y * 2\n    if x > 0:\n        return inner(x)\n    return inner(-x) + 1\n",
        "f",
        &ints(&[-4, 4]),
    );
}

#[test]
fn recursion_preserved() {
    check_equiv(
        "def f(n):\n    if n <= 1:\n        return 1\n    return n * f(n - 1)\n",
        "f",
        &ints(&[0, 1, 6]),
    );
}

#[test]
fn aug_assign_and_setitem() {
    check_equiv(
        "def f(n):\n    l = [0, 0, 0]\n    i = 0\n    while i < 3:\n        l[i] = n + i\n        i += 1\n    l[1] += 100\n    return l\n",
        "f",
        &ints(&[5]),
    );
}

#[test]
fn ternary_and_assert() {
    check_equiv(
        "def f(x):\n    y = x * 2 if x > 0 else -x\n    assert y >= 0, 'y negative'\n    return y\n",
        "f",
        &ints(&[-3, 0, 3]),
    );
}

#[test]
fn tuple_results_and_unpacking() {
    check_equiv(
        "def divmod_(a, b):\n    return a // b, a % b\n\ndef f(x):\n    q, r = divmod_(x, 7)\n    return q * 1000 + r\n",
        "f",
        &ints(&[0, 13, 100]),
    );
}

// ---- randomized equivalence (the paper's future-work fuzzer) -------------

/// A tiny generator of imperative integer programs: every generated
/// program terminates (loops iterate over bounded ranges) and avoids
/// nondeterministic arithmetic faults (division only by nonzero
/// constants).
mod gen {
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    pub enum E {
        Var(usize),
        Lit(i64),
        Add(Box<E>, Box<E>),
        Sub(Box<E>, Box<E>),
        Mul(Box<E>, Box<E>),
        ModC(Box<E>, i64),
    }

    #[derive(Debug, Clone)]
    pub enum C {
        Lt(E, E),
        Eq(E, E),
        And(Box<C>, Box<C>),
        Not(Box<C>),
    }

    #[derive(Debug, Clone)]
    pub enum S {
        Assign(usize, E),
        If(C, Vec<S>, Vec<S>),
        For(u8, Vec<S>),
        Break(C),
        Continue(C),
        Return(E),
    }

    pub const VARS: [&str; 4] = ["x", "y", "z", "w"];

    pub fn expr() -> impl Strategy<Value = E> {
        let leaf = prop_oneof![(0usize..4).prop_map(E::Var), (-20i64..20).prop_map(E::Lit),];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
                (inner, 2i64..6).prop_map(|(a, c)| E::ModC(Box::new(a), c)),
            ]
        })
    }

    pub fn cond() -> impl Strategy<Value = C> {
        let leaf = prop_oneof![
            (expr(), expr()).prop_map(|(a, b)| C::Lt(a, b)),
            (expr(), expr()).prop_map(|(a, b)| C::Eq(a, b)),
        ];
        leaf.prop_recursive(2, 8, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| C::And(Box::new(a), Box::new(b))),
                inner.prop_map(|a| C::Not(Box::new(a))),
            ]
        })
    }

    pub fn stmt(depth: u32) -> BoxedStrategy<S> {
        if depth == 0 {
            return (0usize..4, expr())
                .prop_map(|(v, e)| S::Assign(v, e))
                .boxed();
        }
        prop_oneof![
            4 => (0usize..4, expr()).prop_map(|(v, e)| S::Assign(v, e)),
            2 => (cond(), block(depth - 1), block(depth - 1))
                .prop_map(|(c, t, e)| S::If(c, t, e)),
            2 => (1u8..5, loop_block(depth - 1)).prop_map(|(n, b)| S::For(n, b)),
            1 => expr().prop_map(S::Return),
        ]
        .boxed()
    }

    fn block(depth: u32) -> BoxedStrategy<Vec<S>> {
        prop::collection::vec(stmt(depth), 1..4).boxed()
    }

    /// Loop bodies may also break/continue (conditionally, so later
    /// statements stay reachable).
    fn loop_block(depth: u32) -> BoxedStrategy<Vec<S>> {
        let s = prop_oneof![
            5 => stmt(depth),
            1 => cond().prop_map(S::Break),
            1 => cond().prop_map(S::Continue),
        ];
        prop::collection::vec(s, 1..4).boxed()
    }

    pub fn render_expr(e: &E) -> String {
        match e {
            E::Var(v) => VARS[*v].to_string(),
            E::Lit(n) => {
                if *n < 0 {
                    format!("({n})")
                } else {
                    n.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", render_expr(a), render_expr(b)),
            E::Sub(a, b) => format!("({} - {})", render_expr(a), render_expr(b)),
            E::Mul(a, b) => format!("({} * {})", render_expr(a), render_expr(b)),
            E::ModC(a, c) => format!("({} % {c})", render_expr(a)),
        }
    }

    pub fn render_cond(c: &C) -> String {
        match c {
            C::Lt(a, b) => format!("{} < {}", render_expr(a), render_expr(b)),
            C::Eq(a, b) => format!("{} == {}", render_expr(a), render_expr(b)),
            C::And(a, b) => format!("({}) and ({})", render_cond(a), render_cond(b)),
            C::Not(a) => format!("not ({})", render_cond(a)),
        }
    }

    pub fn render_block(body: &[S], indent: usize, loop_var: &mut usize, out: &mut String) {
        let pad = "    ".repeat(indent);
        for s in body {
            match s {
                S::Assign(v, e) => {
                    out.push_str(&format!("{pad}{} = {}\n", VARS[*v], render_expr(e)))
                }
                S::If(c, t, e) => {
                    out.push_str(&format!("{pad}if {}:\n", render_cond(c)));
                    render_block(t, indent + 1, loop_var, out);
                    out.push_str(&format!("{pad}else:\n"));
                    render_block(e, indent + 1, loop_var, out);
                }
                S::For(n, b) => {
                    let lv = format!("i{loop_var}");
                    *loop_var += 1;
                    out.push_str(&format!("{pad}for {lv} in range({n}):\n"));
                    render_block(b, indent + 1, loop_var, out);
                }
                S::Break(c) => {
                    out.push_str(&format!("{pad}if {}:\n", render_cond(c)));
                    out.push_str(&format!("{pad}    break\n"));
                }
                S::Continue(c) => {
                    out.push_str(&format!("{pad}if {}:\n", render_cond(c)));
                    out.push_str(&format!("{pad}    continue\n"));
                }
                S::Return(e) => out.push_str(&format!("{pad}return {}\n", render_expr(e))),
            }
        }
    }

    pub fn render_program(body: &[S]) -> String {
        let mut out = String::from("def f(x, y):\n    z = 0\n    w = 1\n");
        let mut loop_var = 0;
        render_block(body, 1, &mut loop_var, &mut out);
        out.push_str("    return x * 1000003 + y * 1009 + z * 31 + w\n");
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random imperative programs behave identically before and after
    /// conversion.
    #[test]
    fn fuzz_conversion_preserves_semantics(
        body in proptest::collection::vec(gen::stmt(2), 1..5),
        a in -10i64..10,
        b in -10i64..10,
    ) {
        let src = gen::render_program(&body);
        let mut plain = Runtime::load(&src, false).expect("plain load");
        let conv = Runtime::load(&src, true);
        let conv = match conv {
            Ok(c) => c,
            Err(e) => panic!("conversion failed: {e}\n{src}"),
        };
        let mut conv = conv;
        let args = vec![Value::Int(a), Value::Int(b)];
        let r1 = plain.call("f", args.clone());
        let r2 = conv.call("f", args);
        match (r1, r2) {
            (Ok(v1), Ok(v2)) => prop_assert!(
                v1.py_eq(&v2),
                "mismatch: {} vs {}\n{}",
                v1.render(),
                v2.render(),
                src
            ),
            (Err(_), Err(_)) => {}
            (r1, r2) => prop_assert!(false, "one failed: {r1:?} vs {r2:?}\n{src}"),
        }
    }
}
