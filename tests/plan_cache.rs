//! Cache-differential wall for the persistent plan store.
//!
//! The contract under test: a plan cache may make staging *faster*,
//! never *different*. Three families of checks enforce it end to end
//! through `autograph::runtime::plan_cache::compile_cached_with`:
//!
//! - **corruption wall** — an artifact damaged anywhere (byte flips
//!   across header, payload, and checksum trailer; truncation at every
//!   boundary; a well-framed artifact whose payload is garbage) must
//!   fall back to cold staging with bitwise-identical results and bump
//!   the `plan_cache_corrupt` counter, never error or panic;
//! - **invalidation matrix** — editing the source, changing the staging
//!   flags (function name), or bumping the version tag must each miss;
//!   the untouched configuration must keep hitting;
//! - **concurrency** — two sessions warming the same empty directory
//!   must both succeed and leave exactly one artifact and no temp
//!   files behind.

use autograph::runtime::plan_cache::compile_cached_with;
use autograph_planstore::{self as planstore, PlanStore};
use autograph_tensor::Tensor;
use std::path::PathBuf;

const SRC: &str = "\
def f(x):
    y = tf.constant(0.0)
    while y < x:
        y = y + 1.5
    return y * 2.0
";

const PROBES: [f32; 3] = [0.0, 2.2, 7.0];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("agplan-wall-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Compile through the store and fingerprint the function: the f32 bit
/// patterns of every output for every probe input.
fn compile_and_fingerprint(
    src: &str,
    name: &str,
    store: Option<&PlanStore>,
    tag: &str,
) -> (bool, Vec<u32>) {
    let art = compile_cached_with(src, name, &["x"], store, tag).expect("compile");
    let mut func = art.func;
    let mut bits = Vec::new();
    for v in PROBES {
        let out = func.call(&[Tensor::scalar_f32(v)]).expect("call");
        for t in out {
            bits.extend(t.to_f32_vec().iter().map(|x| x.to_bits()));
        }
    }
    (art.from_cache, bits)
}

/// The single `.agpc` artifact in a store directory.
fn artifact_path(store: &PlanStore) -> PathBuf {
    let mut found: Vec<PathBuf> = std::fs::read_dir(store.dir())
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "agpc"))
        .collect();
    assert_eq!(found.len(), 1, "expected exactly one artifact: {found:?}");
    found.pop().expect("one artifact")
}

#[test]
fn corruption_wall_falls_back_bitwise_identically() {
    let dir = tmp_dir("corrupt");
    let store = PlanStore::open(&dir).expect("open store");
    let tag = "wall-corrupt-v1";

    let (from_cache, reference) = compile_and_fingerprint(SRC, "f", Some(&store), tag);
    assert!(!from_cache, "fresh store reported a hit");
    let path = artifact_path(&store);
    let orig = std::fs::read(&path).expect("read artifact");
    assert!(orig.len() > 26, "artifact too small to cover every region");

    // every byte of the 22-byte header and 4-byte trailer, plus a
    // stride through the payload, so each framing field and the
    // checksum itself get damaged at least once
    let mut flip_at: Vec<usize> = (0..22.min(orig.len())).collect();
    flip_at.extend((22..orig.len()).step_by(1 + orig.len() / 64));
    flip_at.extend(orig.len() - 4..orig.len());
    flip_at.dedup();

    let corrupt_before = planstore::stats().corrupt;
    let mut cases = 0u64;
    for &i in &flip_at {
        let mut bad = orig.clone();
        bad[i] ^= 0xa5;
        std::fs::write(&path, &bad).expect("write corrupted artifact");
        let (from_cache, bits) = compile_and_fingerprint(SRC, "f", Some(&store), tag);
        assert!(!from_cache, "byte flip at {i} was served as a cache hit");
        assert_eq!(bits, reference, "results diverged after byte flip at {i}");
        cases += 1;
    }

    // truncation at every framing boundary and a stride in between
    let mut cuts: Vec<usize> = vec![
        0,
        1,
        3,
        4,
        5,
        6,
        13,
        14,
        21,
        22,
        orig.len() - 4,
        orig.len() - 1,
    ];
    cuts.extend((22..orig.len()).step_by(1 + orig.len() / 16));
    cuts.retain(|&c| c < orig.len());
    cuts.sort_unstable();
    cuts.dedup();
    for &cut in &cuts {
        std::fs::write(&path, &orig[..cut]).expect("write truncated artifact");
        let (from_cache, bits) = compile_and_fingerprint(SRC, "f", Some(&store), tag);
        assert!(
            !from_cache,
            "truncation to {cut} bytes was served as a cache hit"
        );
        assert_eq!(
            bits, reference,
            "results diverged after truncation to {cut}"
        );
        cases += 1;
    }

    // a perfectly framed artifact (valid magic, key, length, checksum)
    // whose payload is garbage: the store layer accepts it, the decode
    // layer must reject it and stage cold
    let key = u64::from_str_radix(
        path.file_stem()
            .and_then(|s| s.to_str())
            .expect("artifact file stem"),
        16,
    )
    .expect("artifact name is the hex key");
    store
        .save(key, b"this is not a compiled plan")
        .expect("save garbage payload");
    let (from_cache, bits) = compile_and_fingerprint(SRC, "f", Some(&store), tag);
    assert!(!from_cache, "garbage payload was served as a cache hit");
    assert_eq!(bits, reference, "results diverged after garbage payload");
    cases += 1;

    // every case above was counted as corruption (the cold fallback
    // rewrites a valid artifact each time, so hits/misses also moved —
    // but corrupt must have moved once per damaged load)
    let corrupt_after = planstore::stats().corrupt;
    assert!(
        corrupt_after - corrupt_before >= cases,
        "corrupt counter moved {} for {cases} corruption cases",
        corrupt_after - corrupt_before
    );

    // and after the last fallback the store healed itself: next load hits
    let (from_cache, bits) = compile_and_fingerprint(SRC, "f", Some(&store), tag);
    assert!(from_cache, "store did not heal after cold fallback");
    assert_eq!(bits, reference);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalidation_matrix() {
    let dir = tmp_dir("invalidate");
    let store = PlanStore::open(&dir).expect("open store");
    let tag = "wall-inv-v1";

    // two functions with identical bodies: same source axis, different
    // flags axis (the staged function name is part of the flags)
    let two = format!("{SRC}\ndef g(x):\n    y = tf.constant(0.0)\n    while y < x:\n        y = y + 1.5\n    return y * 2.0\n");

    // cold, then hot
    let (c, cold_bits) = compile_and_fingerprint(&two, "f", Some(&store), tag);
    assert!(!c);
    let (h, warm_bits) = compile_and_fingerprint(&two, "f", Some(&store), tag);
    assert!(h, "unchanged configuration must hit");
    assert_eq!(cold_bits, warm_bits);

    // source edit → miss (then its own warm hit)
    let edited = two.replace("y + 1.5", "y + 1.25");
    assert_ne!(edited, two);
    let (c, _) = compile_and_fingerprint(&edited, "f", Some(&store), tag);
    assert!(!c, "edited source must miss");
    let (h, _) = compile_and_fingerprint(&edited, "f", Some(&store), tag);
    assert!(h);

    // flags change (different staged function) → miss
    let (c, g_cold) = compile_and_fingerprint(&two, "g", Some(&store), tag);
    assert!(!c, "different function name must miss");
    let (h, g_warm) = compile_and_fingerprint(&two, "g", Some(&store), tag);
    assert!(h);
    assert_eq!(g_cold, g_warm);

    // version tag bump → miss
    let (c, _) = compile_and_fingerprint(&two, "f", Some(&store), "wall-inv-v2");
    assert!(!c, "bumped version tag must miss");

    // the untouched original configuration still hits
    let (h, bits) = compile_and_fingerprint(&two, "f", Some(&store), tag);
    assert!(h, "untouched configuration stopped hitting");
    assert_eq!(bits, warm_bits);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_sessions_warm_the_same_empty_dir() {
    let dir = tmp_dir("race");
    std::fs::create_dir_all(&dir).expect("create dir");
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let dir = dir.clone();
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let store = PlanStore::open(&dir).expect("open store");
            barrier.wait();
            compile_and_fingerprint(SRC, "f", Some(&store), "wall-race-v1")
        }));
    }
    let results: Vec<(bool, Vec<u32>)> = handles
        .into_iter()
        .map(|h| h.join().expect("thread panicked"))
        .collect();
    assert_eq!(
        results[0].1, results[1].1,
        "concurrent sessions produced different results"
    );

    // one surviving artifact, no temp droppings
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    let artifacts = entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "agpc"))
        .count();
    let temps = entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
        .count();
    assert_eq!(artifacts, 1, "expected one artifact, saw {entries:?}");
    assert_eq!(temps, 0, "temp files survived: {entries:?}");

    // and the survivor is valid: a third session warms from it
    let store = PlanStore::open(&dir).expect("open store");
    let (hit, bits) = compile_and_fingerprint(SRC, "f", Some(&store), "wall-race-v1");
    assert!(hit, "surviving artifact did not load");
    assert_eq!(bits, results[0].1);

    let _ = std::fs::remove_dir_all(&dir);
}
