//! Workspace facade crate for the AutoGraph reproduction.
//!
//! Re-exports the public API crate; see [`autograph`].
pub use autograph as ag;
