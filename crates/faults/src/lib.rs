//! # autograph-faults
//!
//! Deterministic fault injection for chaos testing the execution layer.
//!
//! A [`FaultPlan`] is a list of rules — *inject fault kind K at sites
//! matching pattern P with probability R* — plus a seed. Executors call
//! [`inject`] at their kernel-dispatch points; the decision for each call
//! is a pure function of `(seed, site, op, call counter)`, so a given
//! plan produces a reproducible fault pattern on a fixed execution order.
//!
//! ## Cost when disabled
//!
//! [`inject`] is one relaxed atomic load when no plan is installed — the
//! same zero-cost-when-off discipline as `autograph-obs`. Production
//! builds never pay for the chaos machinery.
//!
//! ## Spec syntax
//!
//! Plans parse from `<rules>:<seed>`, where `<rules>` is a comma list of
//! `kind@pattern[@rate]` entries:
//!
//! ```text
//! AUTOGRAPH_FAULTS="error@matmul@0.5,panic@graph/*@0.01:42"
//! ```
//!
//! * `kind` — `error` (kernel returns an injected error), `panic`
//!   (kernel panics; executors must convert it to an error), `alloc`
//!   (simulated allocation failure, surfaced as an error), `delay`
//!   (scheduler sleep; perturbs timing, never values).
//! * `pattern` — `op`, `site/op`, either segment may be `*`. Sites in
//!   use: `graph` (both executors' kernel dispatch), `eager` (registry
//!   dispatch), `par` (worker task entry — only `delay` applies there),
//!   `serve` (the HTTP serving layer: ops `admission` — fires as a shed
//!   before the request enters the queue, `batcher` — disables batch
//!   coalescing for the hit request, `respond` — fails the response
//!   write into a clean 500).
//! * `rate` — hit probability in `[0, 1]`, default `1`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// What an injected fault does at the injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The site returns an injected kernel error.
    Error,
    /// The site panics (exercises `catch_unwind` boundaries).
    Panic,
    /// The site reports an allocation failure (surfaced as an error).
    Alloc,
    /// The site sleeps briefly (exercises scheduler timing, not values).
    Delay,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Error => "error",
            FaultKind::Panic => "panic",
            FaultKind::Alloc => "alloc",
            FaultKind::Delay => "delay",
        })
    }
}

/// One injection rule: a kind, a site/op pattern, and a hit rate.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// What to inject.
    pub kind: FaultKind,
    /// `op`, `site/op`, with `*` wildcards per segment.
    pub pattern: String,
    /// Hit probability in `[0, 1]`.
    pub rate: f64,
}

impl FaultRule {
    fn matches(&self, site: &str, op: &str) -> bool {
        match self.pattern.split_once('/') {
            Some((s, o)) => (s == "*" || s == site) && (o == "*" || o == op),
            None => self.pattern == "*" || self.pattern == op,
        }
    }
}

/// A seeded set of injection rules.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The rules, applied in order; the first hit wins.
    pub rules: Vec<FaultRule>,
    /// Seed mixed into every hit decision.
    pub seed: u64,
}

impl FaultPlan {
    /// Parse a `kind@pattern[@rate],...:seed` spec (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformed component.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (rules_str, seed_str) = spec
            .rsplit_once(':')
            .ok_or_else(|| format!("fault spec '{spec}' is missing the ':<seed>' suffix"))?;
        let seed: u64 = seed_str
            .trim()
            .parse()
            .map_err(|_| format!("fault seed '{seed_str}' is not a u64"))?;
        let mut rules = Vec::new();
        for entry in rules_str.split(',').filter(|e| !e.trim().is_empty()) {
            let mut parts = entry.trim().split('@');
            let kind = match parts.next() {
                Some("error") => FaultKind::Error,
                Some("panic") => FaultKind::Panic,
                Some("alloc") => FaultKind::Alloc,
                Some("delay") => FaultKind::Delay,
                other => {
                    return Err(format!(
                        "unknown fault kind '{}' (want error|panic|alloc|delay)",
                        other.unwrap_or("")
                    ))
                }
            };
            let pattern = parts
                .next()
                .ok_or_else(|| format!("fault rule '{entry}' is missing a pattern"))?
                .to_string();
            let rate = match parts.next() {
                None => 1.0,
                Some(r) => {
                    let v: f64 = r
                        .parse()
                        .map_err(|_| format!("fault rate '{r}' is not a number"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("fault rate {v} outside [0, 1]"));
                    }
                    v
                }
            };
            if parts.next().is_some() {
                return Err(format!("fault rule '{entry}' has too many '@' fields"));
            }
            rules.push(FaultRule {
                kind,
                pattern,
                rate,
            });
        }
        if rules.is_empty() {
            return Err(format!("fault spec '{spec}' has no rules"));
        }
        Ok(FaultPlan { rules, seed })
    }
}

/// An injected fault surfaced as an error value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// Which kind fired ([`FaultKind::Error`] or [`FaultKind::Alloc`]).
    pub kind: FaultKind,
    /// The injection site (`graph`, `eager`, ...).
    pub site: String,
    /// The op being dispatched when the fault fired.
    pub op: String,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Alloc => write!(
                f,
                "injected allocation failure (out of memory) at {}/{}",
                self.site, self.op
            ),
            _ => write!(
                f,
                "injected {} fault at {}/{}",
                self.kind, self.site, self.op
            ),
        }
    }
}

impl std::error::Error for FaultError {}

/// Fast-path flag: true only while a plan is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Per-process call counter; part of each hit decision's key.
static COUNTER: AtomicU64 = AtomicU64::new(0);

fn plan_slot() -> &'static Mutex<Option<Arc<FaultPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<FaultPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install a fault plan process-wide (replacing any previous one) and
/// reset the call counter so runs under the same plan are comparable.
pub fn install(plan: FaultPlan) {
    let mut slot = plan_slot().lock().unwrap_or_else(|p| p.into_inner());
    *slot = Some(Arc::new(plan));
    COUNTER.store(0, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Release);
}

/// Remove the installed plan; [`inject`] returns to its one-atomic-load
/// fast path.
pub fn clear() {
    ACTIVE.store(false, Ordering::Release);
    let mut slot = plan_slot().lock().unwrap_or_else(|p| p.into_inner());
    *slot = None;
}

/// Whether a plan is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install a plan from `AUTOGRAPH_FAULTS` on first call; later calls are
/// a no-op. A malformed spec is reported once on stderr, bumps the
/// `faults/spec_parse_error` obs counter (so harnesses that swallow
/// stderr still see the misconfiguration), and is otherwise ignored.
pub fn maybe_init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("AUTOGRAPH_FAULTS") {
            init_from_spec(&spec);
        }
    });
}

/// Install a plan from a spec string; a malformed spec is reported on
/// stderr and via the `faults/spec_parse_error` counter instead of being
/// silently dropped. Returns whether the spec parsed.
pub fn init_from_spec(spec: &str) -> bool {
    match FaultPlan::parse(spec) {
        Ok(plan) => {
            install(plan);
            true
        }
        Err(e) => {
            autograph_obs::count("faults", "spec_parse_error", 1);
            eprintln!("AUTOGRAPH_FAULTS ignored: {e}");
            false
        }
    }
}

/// SplitMix64: decorrelates the (seed, site, op, counter) key into a hit
/// decision. Stable across platforms — fault patterns reproduce anywhere.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn str_hash(s: &str) -> u64 {
    // FNV-1a; stable, dependency-free
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn decide(seed: u64, site: &str, op: &str, counter: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    let h = splitmix64(seed ^ str_hash(site).rotate_left(17) ^ str_hash(op) ^ counter);
    // top 53 bits → uniform in [0, 1)
    ((h >> 11) as f64) / ((1u64 << 53) as f64) < rate
}

/// Consult the installed plan at a dispatch site. May sleep (delay
/// faults) or panic (panic faults — the caller's `catch_unwind` boundary
/// is exactly what's under test); error/alloc faults return `Err`.
///
/// One relaxed atomic load when no plan is installed.
///
/// # Errors
///
/// Returns a [`FaultError`] when an `error` or `alloc` rule fires.
pub fn inject(site: &str, op: &str) -> Result<(), FaultError> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Ok(());
    }
    inject_slow(site, op, false)
}

/// Like [`inject`] but only honors `delay` rules — for sites (the worker
/// pool) where an error has no structured channel and a panic would be
/// indistinguishable from a task bug.
pub fn scheduler_delay(site: &str, op: &str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let _ = inject_slow(site, op, true);
}

fn inject_slow(site: &str, op: &str, delay_only: bool) -> Result<(), FaultError> {
    let plan = {
        let slot = plan_slot().lock().unwrap_or_else(|p| p.into_inner());
        match slot.as_ref() {
            Some(p) => Arc::clone(p),
            None => return Ok(()),
        }
    };
    let counter = COUNTER.fetch_add(1, Ordering::Relaxed);
    for rule in &plan.rules {
        if delay_only && rule.kind != FaultKind::Delay {
            continue;
        }
        if !rule.matches(site, op) {
            continue;
        }
        if !decide(plan.seed, site, op, counter, rule.rate) {
            continue;
        }
        match rule.kind {
            FaultKind::Delay => {
                // short, bounded: perturbs interleavings without stalling.
                // The sleep gets its own span category so injected delays
                // are distinguishable from real work in traces.
                let us = 20 + splitmix64(plan.seed ^ counter) % 180;
                let _span = autograph_obs::span_dyn("fault_delay", || format!("{site}/{op}"));
                std::thread::sleep(std::time::Duration::from_micros(us));
                continue; // a delay doesn't consume the site
            }
            FaultKind::Panic => panic!("injected panic fault at {site}/{op}"),
            kind => {
                return Err(FaultError {
                    kind,
                    site: site.to_string(),
                    op: op.to_string(),
                })
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// Global-state tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static L: StdMutex<()> = StdMutex::new(());
        L.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("error@matmul@0.5,panic@graph/*@0.01,delay@par/task:42").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].kind, FaultKind::Error);
        assert_eq!(p.rules[0].rate, 0.5);
        assert_eq!(p.rules[2].rate, 1.0);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("error@x@0.5").is_err()); // no seed
        assert!(FaultPlan::parse("flub@x:1").is_err()); // bad kind
        assert!(FaultPlan::parse("error@x@2.0:1").is_err()); // bad rate
        assert!(FaultPlan::parse(":7").is_err()); // no rules
        assert!(FaultPlan::parse("error@x@1@1:7").is_err()); // extra field
    }

    #[test]
    fn pattern_matching() {
        let r = |p: &str| FaultRule {
            kind: FaultKind::Error,
            pattern: p.to_string(),
            rate: 1.0,
        };
        assert!(r("*").matches("graph", "matmul"));
        assert!(r("matmul").matches("graph", "matmul"));
        assert!(!r("matmul").matches("graph", "add"));
        assert!(r("graph/*").matches("graph", "add"));
        assert!(!r("graph/*").matches("eager", "add"));
        assert!(r("*/add").matches("eager", "add"));
        assert!(r("eager/add").matches("eager", "add"));
        assert!(!r("eager/add").matches("eager", "mul"));
    }

    #[test]
    fn disabled_is_noop() {
        let _g = lock();
        clear();
        assert!(!active());
        assert!(inject("graph", "matmul").is_ok());
    }

    #[test]
    fn malformed_spec_bumps_obs_counter_instead_of_vanishing() {
        let _g = lock();
        clear();
        let rec = std::sync::Arc::new(autograph_obs::AggregateRecorder::new());
        autograph_obs::install(rec.clone());
        assert!(!init_from_spec("flub@x:nope"));
        assert!(!active(), "malformed spec must not install a plan");
        assert!(init_from_spec("error@matmul:7"), "good spec installs");
        assert!(active());
        autograph_obs::uninstall();
        let parse_errors = rec
            .summary()
            .counters
            .iter()
            .find(|(k, _)| k == "faults/spec_parse_error")
            .map(|(_, v)| *v);
        assert_eq!(parse_errors, Some(1));
        clear();
    }

    #[test]
    fn error_rule_fires_deterministically() {
        let _g = lock();
        install(FaultPlan::parse("error@matmul:7").unwrap());
        let e = inject("graph", "matmul").unwrap_err();
        assert_eq!(e.kind, FaultKind::Error);
        assert!(e
            .to_string()
            .contains("injected error fault at graph/matmul"));
        assert!(inject("graph", "add").is_ok(), "non-matching op passes");
        clear();
    }

    #[test]
    fn alloc_rule_reports_oom() {
        let _g = lock();
        install(FaultPlan::parse("alloc@*:7").unwrap());
        let e = inject("graph", "reshape").unwrap_err();
        assert!(e.to_string().contains("allocation failure"));
        clear();
    }

    #[test]
    fn panic_rule_panics_and_is_catchable() {
        let _g = lock();
        install(FaultPlan::parse("panic@boom:3").unwrap());
        let r = std::panic::catch_unwind(|| inject("graph", "boom"));
        clear();
        assert!(r.is_err());
    }

    #[test]
    fn scheduler_delay_ignores_error_rules() {
        let _g = lock();
        install(FaultPlan::parse("error@*,delay@par/task:3").unwrap());
        scheduler_delay("par", "task"); // must not panic or error
        clear();
    }

    #[test]
    fn rate_decisions_reproduce_for_fixed_key() {
        for counter in 0..64 {
            let a = decide(9, "graph", "mul", counter, 0.3);
            let b = decide(9, "graph", "mul", counter, 0.3);
            assert_eq!(a, b);
        }
        // and the seed actually changes the pattern
        let p1: Vec<bool> = (0..256).map(|c| decide(1, "g", "op", c, 0.5)).collect();
        let p2: Vec<bool> = (0..256).map(|c| decide(2, "g", "op", c, 0.5)).collect();
        assert_ne!(p1, p2);
    }
}
