//! Matrix multiplication and axis permutation.

use crate::{DType, Data, Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product of two rank-2 f32 tensors (or batched rank-3, where
    /// the leading dimension is the batch).
    ///
    /// # Errors
    ///
    /// Fails when dtypes are not f32-compatible, ranks are unsupported, or
    /// inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.dtype() == DType::Bool || rhs.dtype() == DType::Bool {
            return Err(TensorError::DTypeMismatch {
                op: "matmul",
                got: DType::Bool,
                expected: DType::F32,
            });
        }
        let a = self.cast(DType::F32);
        let b = rhs.cast(DType::F32);
        match (a.rank(), b.rank()) {
            (2, 2) => {
                let (m, k) = (a.shape()[0], a.shape()[1]);
                let (k2, n) = (b.shape()[0], b.shape()[1]);
                if k != k2 {
                    return Err(TensorError::IncompatibleShapes {
                        op: "matmul",
                        detail: format!("{:?} x {:?}", a.shape(), b.shape()),
                    });
                }
                let out = matmul_2d(a.as_f32()?, b.as_f32()?, m, k, n);
                Ok(Tensor::from_data(Data::F32(out), &[m, n]))
            }
            (3, 3) => {
                let (bt, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
                let (bt2, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
                if bt != bt2 || k != k2 {
                    return Err(TensorError::IncompatibleShapes {
                        op: "matmul",
                        detail: format!("{:?} x {:?}", a.shape(), b.shape()),
                    });
                }
                let av = a.as_f32()?;
                let bv = b.as_f32()?;
                let mut out = Vec::with_capacity(bt * m * n);
                for i in 0..bt {
                    out.extend(matmul_2d(
                        &av[i * m * k..(i + 1) * m * k],
                        &bv[i * k * n..(i + 1) * k * n],
                        m,
                        k,
                        n,
                    ));
                }
                Ok(Tensor::from_data(Data::F32(out), &[bt, m, n]))
            }
            (ra, _) => Err(TensorError::RankMismatch {
                op: "matmul",
                got: ra,
                expected: "2 (or batched 3)",
            }),
        }
    }

    /// Permute dimensions. `perm` must be a permutation of `0..rank`.
    ///
    /// # Errors
    ///
    /// Fails when `perm` is not a valid permutation of the tensor's axes.
    pub fn transpose(&self, perm: &[usize]) -> Result<Tensor> {
        if perm.len() != self.rank() {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                got: perm.len(),
                expected: "same as tensor rank",
            });
        }
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            if p >= perm.len() || seen[p] {
                return Err(TensorError::InvalidArgument {
                    op: "transpose",
                    detail: format!("{perm:?} is not a permutation"),
                });
            }
            seen[p] = true;
        }
        let in_shape = self.shape();
        let out_shape: Vec<usize> = perm.iter().map(|&p| in_shape[p]).collect();
        let in_strides = crate::Shape::new(in_shape).strides();
        let out_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let n = self.num_elements();

        fn permute<T: Copy>(
            v: &[T],
            n: usize,
            out_shape: &[usize],
            out_strides: &[usize],
        ) -> Vec<T> {
            let mut out = Vec::with_capacity(n);
            let rank = out_shape.len();
            let mut coords = vec![0usize; rank];
            for _ in 0..n {
                let mut src = 0;
                for d in 0..rank {
                    src += coords[d] * out_strides[d];
                }
                out.push(v[src]);
                for d in (0..rank).rev() {
                    coords[d] += 1;
                    if coords[d] < out_shape[d] {
                        break;
                    }
                    coords[d] = 0;
                }
            }
            out
        }

        let data = match self.data() {
            Data::F32(v) => Data::F32(permute(v, n, &out_shape, &out_strides)),
            Data::I64(v) => Data::I64(permute(v, n, &out_shape, &out_strides)),
            Data::Bool(v) => Data::Bool(permute(v, n, &out_shape, &out_strides)),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }

    /// Rank-2 transpose shorthand (`transpose(&[1, 0])`); identity on rank
    /// 0/1.
    ///
    /// # Errors
    ///
    /// Fails for rank > 2.
    pub fn t(&self) -> Result<Tensor> {
        match self.rank() {
            0 | 1 => Ok(self.clone()),
            2 => self.transpose(&[1, 0]),
            r => Err(TensorError::RankMismatch {
                op: "t",
                got: r,
                expected: "<= 2",
            }),
        }
    }
}

/// Flop threshold (2*m*k*n) below which splitting a matmul across the
/// worker pool costs more than it saves.
const MATMUL_PAR_MIN_FLOPS: usize = 1 << 18;

/// Inner loop: (m,k) x (k,n) with i-k-j ordering for cache-friendly
/// access. Large products split by output rows across the shared worker
/// pool; each row is produced by exactly one thread with the identical
/// accumulation order of the sequential loop, so the result is bitwise
/// independent of the thread count.
fn matmul_2d(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if autograph_par::threads() > 1 && m > 1 && 2 * m * k * n >= MATMUL_PAR_MIN_FLOPS {
        // rows are disjoint slices of `out`; share the base pointer as an
        // integer because raw pointers are not Sync
        let out_addr = out.as_mut_ptr() as usize;
        autograph_par::parallel_for(m, 1, &|rows| {
            for i in rows {
                // SAFETY: each row index lands in exactly one chunk, so
                // the m row slices are written by exactly one thread each
                // and none outlives `out`.
                let orow =
                    unsafe { std::slice::from_raw_parts_mut((out_addr as *mut f32).add(i * n), n) };
                matmul_row(&a[i * k..(i + 1) * k], b, n, orow);
            }
        });
    } else {
        for i in 0..m {
            matmul_row(&a[i * k..(i + 1) * k], b, n, &mut out[i * n..(i + 1) * n]);
        }
    }
    out
}

/// One output row: `orow += arow · B`, skipping zero multiplicands.
fn matmul_row(arow: &[f32], b: &[f32], n: usize, orow: &mut [f32]) {
    for (p, &av) in arow.iter().enumerate() {
        if av == 0.0 {
            continue;
        }
        let brow = &b[p * n..(p + 1) * n];
        for j in 0..n {
            orow[j] += av * brow[j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_2x2() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_f32().unwrap(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rect() {
        // (1,3) x (3,2)
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.as_f32().unwrap(), &[4.0, 5.0]);
    }

    #[test]
    fn matmul_batched() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0, 2.0], &[2, 2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], &[2, 2, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(
            c.as_f32().unwrap(),
            &[1.0, 2.0, 3.0, 4.0, 2.0, 4.0, 6.0, 8.0]
        );
    }

    #[test]
    fn matmul_inner_mismatch() {
        let a = Tensor::zeros(DType::F32, &[2, 3]);
        let b = Tensor::zeros(DType::F32, &[4, 2]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_rank_and_dtype_errors() {
        let v = Tensor::zeros(DType::F32, &[3]);
        assert!(v.matmul(&v).is_err());
        let b = Tensor::from_vec_bool(vec![true; 4], &[2, 2]).unwrap();
        assert!(b.matmul(&b).is_err());
    }

    #[test]
    fn matmul_promotes_i64() {
        let a = Tensor::from_vec_i64(vec![1, 2, 3, 4], &[2, 2]).unwrap();
        let c = a.matmul(&a).unwrap();
        assert_eq!(c.dtype(), DType::F32);
        assert_eq!(c.as_f32().unwrap(), &[7.0, 10.0, 15.0, 22.0]);
    }

    #[test]
    fn transpose_2d() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.t().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.as_f32().unwrap(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn transpose_3d_102() {
        // the dynamic_rnn transpose: (batch, time, feat) -> (time, batch, feat)
        let a = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[2, 3, 2]).unwrap();
        let t = a.transpose(&[1, 0, 2]).unwrap();
        assert_eq!(t.shape(), &[3, 2, 2]);
        assert_eq!(
            t.as_f32().unwrap(),
            &[0.0, 1.0, 6.0, 7.0, 2.0, 3.0, 8.0, 9.0, 4.0, 5.0, 10.0, 11.0]
        );
    }

    #[test]
    fn transpose_validates_perm() {
        let a = Tensor::zeros(DType::F32, &[2, 3]);
        assert!(a.transpose(&[0, 0]).is_err());
        assert!(a.transpose(&[0]).is_err());
        assert!(a.transpose(&[0, 2]).is_err());
    }

    #[test]
    fn matmul_parallel_bitwise_matches_sequential() {
        // large enough to clear MATMUL_PAR_MIN_FLOPS (2*64^3 = 524288)
        let (m, k, n) = (64usize, 64usize, 64usize);
        let av: Vec<f32> = (0..m * k)
            .map(|i| ((i * 37 % 101) as f32) * 0.13 - 5.0)
            .collect();
        let bv: Vec<f32> = (0..k * n)
            .map(|i| ((i * 53 % 97) as f32) * 0.11 - 4.0)
            .collect();
        // ground truth with the identical i-k-j accumulation order
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = av[i * k + p];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    want[i * n + j] += a * bv[p * n + j];
                }
            }
        }
        autograph_par::configure(4);
        let at = Tensor::from_vec(av, &[m, k]).unwrap();
        let bt = Tensor::from_vec(bv, &[k, n]).unwrap();
        let got = at.matmul(&bt).unwrap();
        for (g, w) in got.as_f32().unwrap().iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        let t = a.transpose(&[2, 0, 1]).unwrap();
        let back = t.transpose(&[1, 2, 0]).unwrap();
        assert_eq!(back.as_f32().unwrap(), a.as_f32().unwrap());
    }
}
