//! Elementwise arithmetic, comparison and logical kernels with broadcasting.

use crate::shape::BroadcastMap;
use crate::{broadcast_shapes, DType, Data, Result, Tensor, TensorError};

/// Element count above which a same-shape f32 kernel is split across
/// the worker pool (below it the per-chunk dispatch cost dominates).
const ELEMWISE_PAR_MIN: usize = 1 << 15;

/// Apply a binary f32 kernel with broadcasting. Integer inputs are promoted
/// to f32 when mixed with floats; pure-integer inputs stay integer for the
/// arithmetic ops that preserve integrality.
///
/// Large same-shape f32 inputs split into disjoint index chunks across
/// the shared worker pool; each element is computed by exactly one
/// thread with the sequential per-element order, so results are bitwise
/// identical at any thread count.
fn binary_numeric(
    op: &'static str,
    lhs: &Tensor,
    rhs: &Tensor,
    f_f32: impl Fn(f32, f32) -> f32 + Sync,
    f_i64: Option<impl Fn(i64, i64) -> i64>,
) -> Result<Tensor> {
    let out_shape = broadcast_shapes(lhs.shape(), rhs.shape())?;
    if lhs.dtype() == DType::Bool || rhs.dtype() == DType::Bool {
        return Err(TensorError::DTypeMismatch {
            op,
            got: DType::Bool,
            expected: DType::F32,
        });
    }
    let lm = BroadcastMap::new(lhs.shape(), &out_shape);
    let rm = BroadcastMap::new(rhs.shape(), &out_shape);
    let n: usize = out_shape.iter().product();

    if lhs.dtype() == DType::I64 && rhs.dtype() == DType::I64 {
        if let Some(fi) = f_i64 {
            let a = lhs.as_i64()?;
            let b = rhs.as_i64()?;
            let mut out = Vec::with_capacity(n);
            if lm.is_identity() && rm.is_identity() {
                for i in 0..n {
                    out.push(fi(a[i], b[i]));
                }
            } else {
                for i in 0..n {
                    out.push(fi(a[lm.map(i)], b[rm.map(i)]));
                }
            }
            return Ok(Tensor::from_data(Data::I64(out), &out_shape));
        }
    }
    let a = lhs.cast(DType::F32);
    let b = rhs.cast(DType::F32);
    let a = a.as_f32()?;
    let b = b.as_f32()?;
    if lm.is_identity() && rm.is_identity() && autograph_par::threads() > 1 && n >= ELEMWISE_PAR_MIN
    {
        let mut out = vec![0.0f32; n];
        let out_addr = out.as_mut_ptr() as usize;
        autograph_par::parallel_for(n, 4096, &|range| {
            for i in range {
                // SAFETY: chunks are disjoint, so each index is written
                // by exactly one thread; the buffer outlives the call.
                unsafe { *(out_addr as *mut f32).add(i) = f_f32(a[i], b[i]) };
            }
        });
        return Ok(Tensor::from_data(Data::F32(out), &out_shape));
    }
    let mut out = Vec::with_capacity(n);
    if lm.is_identity() && rm.is_identity() {
        for i in 0..n {
            out.push(f_f32(a[i], b[i]));
        }
    } else {
        for i in 0..n {
            out.push(f_f32(a[lm.map(i)], b[rm.map(i)]));
        }
    }
    Ok(Tensor::from_data(Data::F32(out), &out_shape))
}

/// Apply a broadcasting comparison producing a bool tensor.
fn binary_compare(
    op: &'static str,
    lhs: &Tensor,
    rhs: &Tensor,
    f: impl Fn(f32, f32) -> bool,
) -> Result<Tensor> {
    let out_shape = broadcast_shapes(lhs.shape(), rhs.shape())?;
    if lhs.dtype() == DType::Bool || rhs.dtype() == DType::Bool {
        return Err(TensorError::DTypeMismatch {
            op,
            got: DType::Bool,
            expected: DType::F32,
        });
    }
    let lm = BroadcastMap::new(lhs.shape(), &out_shape);
    let rm = BroadcastMap::new(rhs.shape(), &out_shape);
    let a = lhs.cast(DType::F32);
    let b = rhs.cast(DType::F32);
    let a = a.as_f32()?;
    let b = b.as_f32()?;
    let n: usize = out_shape.iter().product();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(f(a[lm.map(i)], b[rm.map(i)]));
    }
    Ok(Tensor::from_data(Data::Bool(out), &out_shape))
}

impl Tensor {
    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn add(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "add",
            self,
            rhs,
            |a, b| a + b,
            Some(|a: i64, b: i64| a.wrapping_add(b)),
        )
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn sub(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "sub",
            self,
            rhs,
            |a, b| a - b,
            Some(|a: i64, b: i64| a.wrapping_sub(b)),
        )
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn mul(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "mul",
            self,
            rhs,
            |a, b| a * b,
            Some(|a: i64, b: i64| a.wrapping_mul(b)),
        )
    }

    /// Elementwise (true) division with broadcasting; always produces f32,
    /// matching `tf.divide`.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn div(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric("div", self, rhs, |a, b| a / b, None::<fn(i64, i64) -> i64>)
    }

    /// Elementwise floor-division.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn floordiv(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "floordiv",
            self,
            rhs,
            |a, b| (a / b).floor(),
            Some(|a: i64, b: i64| a.div_euclid(b)),
        )
    }

    /// Elementwise modulo.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn rem(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "mod",
            self,
            rhs,
            |a, b| a.rem_euclid(b),
            Some(|a: i64, b: i64| a.rem_euclid(b)),
        )
    }

    /// Elementwise power.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn pow(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "pow",
            self,
            rhs,
            |a, b| a.powf(b),
            Some(|a: i64, b: i64| a.pow(b.max(0) as u32)),
        )
    }

    /// Elementwise maximum with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn maximum(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "maximum",
            self,
            rhs,
            f32::max,
            Some(|a: i64, b: i64| a.max(b)),
        )
    }

    /// Elementwise minimum with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn minimum(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_numeric(
            "minimum",
            self,
            rhs,
            f32::min,
            Some(|a: i64, b: i64| a.min(b)),
        )
    }

    /// Elementwise negation.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn neg(&self) -> Result<Tensor> {
        match self.data() {
            Data::F32(v) => Ok(Tensor::from_data(
                Data::F32(v.iter().map(|x| -x).collect()),
                self.shape(),
            )),
            Data::I64(v) => Ok(Tensor::from_data(
                Data::I64(v.iter().map(|x| -x).collect()),
                self.shape(),
            )),
            Data::Bool(_) => Err(TensorError::DTypeMismatch {
                op: "neg",
                got: DType::Bool,
                expected: DType::F32,
            }),
        }
    }

    /// Elementwise absolute value.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn abs(&self) -> Result<Tensor> {
        match self.data() {
            Data::F32(v) => Ok(Tensor::from_data(
                Data::F32(v.iter().map(|x| x.abs()).collect()),
                self.shape(),
            )),
            Data::I64(v) => Ok(Tensor::from_data(
                Data::I64(v.iter().map(|x| x.abs()).collect()),
                self.shape(),
            )),
            Data::Bool(_) => Err(TensorError::DTypeMismatch {
                op: "abs",
                got: DType::Bool,
                expected: DType::F32,
            }),
        }
    }

    /// Elementwise square.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn square(&self) -> Result<Tensor> {
        self.mul(self)
    }

    /// Elementwise square root (f32).
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn sqrt(&self) -> Result<Tensor> {
        self.map_f32("sqrt", f32::sqrt)
    }

    /// Elementwise natural exponent (f32).
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn exp(&self) -> Result<Tensor> {
        self.map_f32("exp", f32::exp)
    }

    /// Elementwise natural logarithm (f32).
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn log(&self) -> Result<Tensor> {
        self.map_f32("log", f32::ln)
    }

    /// Apply an arbitrary f32 map, promoting integers.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn map_f32(&self, op: &'static str, f: impl Fn(f32) -> f32) -> Result<Tensor> {
        if self.dtype() == DType::Bool {
            return Err(TensorError::DTypeMismatch {
                op,
                got: DType::Bool,
                expected: DType::F32,
            });
        }
        let t = self.cast(DType::F32);
        let v = t.as_f32()?;
        Ok(Tensor::from_data(
            Data::F32(v.iter().map(|&x| f(x)).collect()),
            self.shape(),
        ))
    }

    // ---- comparisons ------------------------------------------------------

    /// Elementwise `<` producing a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn less(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_compare("less", self, rhs, |a, b| a < b)
    }

    /// Elementwise `<=` producing a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn less_equal(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_compare("less_equal", self, rhs, |a, b| a <= b)
    }

    /// Elementwise `>` producing a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn greater(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_compare("greater", self, rhs, |a, b| a > b)
    }

    /// Elementwise `>=` producing a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch or boolean operands.
    pub fn greater_equal(&self, rhs: &Tensor) -> Result<Tensor> {
        binary_compare("greater_equal", self, rhs, |a, b| a >= b)
    }

    /// Elementwise `==` producing a bool tensor (bools compared as bools).
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch.
    pub fn equal(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.dtype() == DType::Bool && rhs.dtype() == DType::Bool {
            let out_shape = broadcast_shapes(self.shape(), rhs.shape())?;
            let lm = BroadcastMap::new(self.shape(), &out_shape);
            let rm = BroadcastMap::new(rhs.shape(), &out_shape);
            let a = self.as_bool()?;
            let b = rhs.as_bool()?;
            let n: usize = out_shape.iter().product();
            let out: Vec<bool> = (0..n).map(|i| a[lm.map(i)] == b[rm.map(i)]).collect();
            return Ok(Tensor::from_data(Data::Bool(out), &out_shape));
        }
        binary_compare("equal", self, rhs, |a, b| a == b)
    }

    /// Elementwise `!=` producing a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails on broadcast mismatch.
    pub fn not_equal(&self, rhs: &Tensor) -> Result<Tensor> {
        let eq = self.equal(rhs)?;
        eq.logical_not()
    }

    // ---- logical ----------------------------------------------------------

    /// Elementwise logical AND of bool tensors with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails when operands are not boolean.
    pub fn logical_and(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary_bool("logical_and", rhs, |a, b| a && b)
    }

    /// Elementwise logical OR of bool tensors with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails when operands are not boolean.
    pub fn logical_or(&self, rhs: &Tensor) -> Result<Tensor> {
        self.binary_bool("logical_or", rhs, |a, b| a || b)
    }

    /// Elementwise logical NOT of a bool tensor.
    ///
    /// # Errors
    ///
    /// Fails when the operand is not boolean.
    pub fn logical_not(&self) -> Result<Tensor> {
        let v = self.as_bool().map_err(|_| TensorError::DTypeMismatch {
            op: "logical_not",
            got: self.dtype(),
            expected: DType::Bool,
        })?;
        Ok(Tensor::from_data(
            Data::Bool(v.iter().map(|x| !x).collect()),
            self.shape(),
        ))
    }

    fn binary_bool(
        &self,
        op: &'static str,
        rhs: &Tensor,
        f: impl Fn(bool, bool) -> bool,
    ) -> Result<Tensor> {
        if self.dtype() != DType::Bool || rhs.dtype() != DType::Bool {
            return Err(TensorError::DTypeMismatch {
                op,
                got: if self.dtype() != DType::Bool {
                    self.dtype()
                } else {
                    rhs.dtype()
                },
                expected: DType::Bool,
            });
        }
        let out_shape = broadcast_shapes(self.shape(), rhs.shape())?;
        let lm = BroadcastMap::new(self.shape(), &out_shape);
        let rm = BroadcastMap::new(rhs.shape(), &out_shape);
        let a = self.as_bool()?;
        let b = rhs.as_bool()?;
        let n: usize = out_shape.iter().product();
        let out: Vec<bool> = (0..n).map(|i| f(a[lm.map(i)], b[rm.map(i)])).collect();
        Ok(Tensor::from_data(Data::Bool(out), &out_shape))
    }

    /// `where(cond, a, b)`: select elements of `a` where `cond` is true,
    /// else of `b`, with broadcasting over all three operands.
    ///
    /// # Errors
    ///
    /// Fails when `cond` is not boolean or shapes do not broadcast.
    pub fn select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        if cond.dtype() != DType::Bool {
            return Err(TensorError::DTypeMismatch {
                op: "select",
                got: cond.dtype(),
                expected: DType::Bool,
            });
        }
        if a.dtype() != b.dtype() {
            return Err(TensorError::DTypeMismatch {
                op: "select",
                got: b.dtype(),
                expected: a.dtype(),
            });
        }
        let ab = broadcast_shapes(a.shape(), b.shape())?;
        let out_shape = broadcast_shapes(cond.shape(), &ab)?;
        let cm = BroadcastMap::new(cond.shape(), &out_shape);
        let am = BroadcastMap::new(a.shape(), &out_shape);
        let bm = BroadcastMap::new(b.shape(), &out_shape);
        let c = cond.as_bool()?;
        let n: usize = out_shape.iter().product();
        let data = match (a.data(), b.data()) {
            (Data::F32(av), Data::F32(bv)) => Data::F32(
                (0..n)
                    .map(|i| {
                        if c[cm.map(i)] {
                            av[am.map(i)]
                        } else {
                            bv[bm.map(i)]
                        }
                    })
                    .collect(),
            ),
            (Data::I64(av), Data::I64(bv)) => Data::I64(
                (0..n)
                    .map(|i| {
                        if c[cm.map(i)] {
                            av[am.map(i)]
                        } else {
                            bv[bm.map(i)]
                        }
                    })
                    .collect(),
            ),
            (Data::Bool(av), Data::Bool(bv)) => Data::Bool(
                (0..n)
                    .map(|i| {
                        if c[cm.map(i)] {
                            av[am.map(i)]
                        } else {
                            bv[bm.map(i)]
                        }
                    })
                    .collect(),
            ),
            _ => unreachable!("dtype equality checked above"),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::from_vec(v, s).unwrap()
    }

    #[test]
    fn add_broadcast_row() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(vec![10.0, 20.0, 30.0], &[3]);
        let c = a.add(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.as_f32().unwrap(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let a = Tensor::from_vec_i64(vec![5, 7], &[2]).unwrap();
        let b = Tensor::scalar_i64(2);
        assert_eq!(a.add(&b).unwrap().dtype(), DType::I64);
        assert_eq!(a.floordiv(&b).unwrap().as_i64().unwrap(), &[2, 3]);
        // true division promotes
        assert_eq!(a.div(&b).unwrap().as_f32().unwrap(), &[2.5, 3.5]);
    }

    #[test]
    fn mixed_promotes_to_f32() {
        let a = Tensor::from_vec_i64(vec![1, 2], &[2]).unwrap();
        let b = t(vec![0.5, 0.5], &[2]);
        let c = a.mul(&b).unwrap();
        assert_eq!(c.dtype(), DType::F32);
        assert_eq!(c.as_f32().unwrap(), &[0.5, 1.0]);
    }

    #[test]
    fn bool_arithmetic_rejected() {
        let a = Tensor::scalar_bool(true);
        let b = Tensor::scalar_f32(1.0);
        assert!(a.add(&b).is_err());
        assert!(b.less(&a).is_err());
    }

    #[test]
    fn comparisons() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::scalar_f32(2.0);
        assert_eq!(
            a.less(&b).unwrap().as_bool().unwrap(),
            &[true, false, false]
        );
        assert_eq!(
            a.greater_equal(&b).unwrap().as_bool().unwrap(),
            &[false, true, true]
        );
        assert_eq!(
            a.equal(&b).unwrap().as_bool().unwrap(),
            &[false, true, false]
        );
        assert_eq!(
            a.not_equal(&b).unwrap().as_bool().unwrap(),
            &[true, false, true]
        );
    }

    #[test]
    fn bool_equal() {
        let a = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        let b = Tensor::scalar_bool(true);
        assert_eq!(a.equal(&b).unwrap().as_bool().unwrap(), &[true, false]);
    }

    #[test]
    fn logical_ops() {
        let a = Tensor::from_vec_bool(vec![true, true, false], &[3]).unwrap();
        let b = Tensor::from_vec_bool(vec![true, false, false], &[3]).unwrap();
        assert_eq!(
            a.logical_and(&b).unwrap().as_bool().unwrap(),
            &[true, false, false]
        );
        assert_eq!(
            a.logical_or(&b).unwrap().as_bool().unwrap(),
            &[true, true, false]
        );
        assert_eq!(
            a.logical_not().unwrap().as_bool().unwrap(),
            &[false, false, true]
        );
        assert!(Tensor::scalar_f32(1.0).logical_not().is_err());
    }

    #[test]
    fn select_broadcasts() {
        let c = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        let a = t(vec![1.0, 2.0], &[2]);
        let b = Tensor::scalar_f32(9.0);
        let r = Tensor::select(&c, &a, &b).unwrap();
        assert_eq!(r.as_f32().unwrap(), &[1.0, 9.0]);
        // cond broadcasting across rows: [2] over [2,2] aligns right
        let c2 = Tensor::from_vec_bool(vec![true, false], &[2]).unwrap();
        let a2 = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r2 = Tensor::select(&c2, &a2, &b).unwrap();
        assert_eq!(r2.as_f32().unwrap(), &[1.0, 9.0, 3.0, 9.0]);
    }

    #[test]
    fn unary_math() {
        let a = t(vec![-1.0, 4.0], &[2]);
        assert_eq!(a.neg().unwrap().as_f32().unwrap(), &[1.0, -4.0]);
        assert_eq!(a.abs().unwrap().as_f32().unwrap(), &[1.0, 4.0]);
        assert_eq!(a.square().unwrap().as_f32().unwrap(), &[1.0, 16.0]);
        assert_eq!(t(vec![4.0], &[1]).sqrt().unwrap().as_f32().unwrap(), &[2.0]);
        let e = t(vec![0.0], &[1]).exp().unwrap();
        assert_eq!(e.as_f32().unwrap(), &[1.0]);
        let l = t(vec![1.0], &[1]).log().unwrap();
        assert_eq!(l.as_f32().unwrap(), &[0.0]);
    }

    #[test]
    fn pow_and_minmax() {
        let a = t(vec![2.0, 3.0], &[2]);
        assert_eq!(
            a.pow(&Tensor::scalar_f32(2.0)).unwrap().as_f32().unwrap(),
            &[4.0, 9.0]
        );
        assert_eq!(
            a.maximum(&Tensor::scalar_f32(2.5))
                .unwrap()
                .as_f32()
                .unwrap(),
            &[2.5, 3.0]
        );
        assert_eq!(
            a.minimum(&Tensor::scalar_f32(2.5))
                .unwrap()
                .as_f32()
                .unwrap(),
            &[2.0, 2.5]
        );
    }

    #[test]
    fn rem_euclid_semantics() {
        let a = Tensor::from_vec_i64(vec![-3, 7], &[2]).unwrap();
        let b = Tensor::scalar_i64(5);
        assert_eq!(a.rem(&b).unwrap().as_i64().unwrap(), &[2, 2]);
    }

    #[test]
    fn elementwise_parallel_bitwise_matches_sequential() {
        // clears ELEMWISE_PAR_MIN so the parallel identity path engages
        let n = 1 << 16;
        let av: Vec<f32> = (0..n).map(|i| ((i % 251) as f32) * 0.37 - 40.0).collect();
        let bv: Vec<f32> = (0..n).map(|i| ((i % 83) as f32) * 0.59 + 0.5).collect();
        let want: Vec<f32> = av.iter().zip(&bv).map(|(a, b)| a * b + a / b).collect();
        autograph_par::configure(4);
        let at = t(av, &[n]);
        let bt = t(bv, &[n]);
        let got = at.mul(&bt).unwrap().add(&at.div(&bt).unwrap()).unwrap();
        for (g, w) in got.as_f32().unwrap().iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }
}
