//! The dense [`Tensor`] type: storage, constructors and accessors.

use crate::{DType, Result, Shape, TensorError};
use std::fmt;
use std::sync::Arc;

/// Element storage for a tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl Data {
    /// Number of stored elements.
    pub fn len(&self) -> usize {
        match self {
            Data::F32(v) => v.len(),
            Data::I64(v) => v.len(),
            Data::Bool(v) => v.len(),
        }
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dtype of this storage.
    pub fn dtype(&self) -> DType {
        match self {
            Data::F32(_) => DType::F32,
            Data::I64(_) => DType::I64,
            Data::Bool(_) => DType::Bool,
        }
    }

    /// Payload size in bytes (element size × length).
    pub fn byte_len(&self) -> usize {
        match self {
            Data::F32(v) => v.len() * std::mem::size_of::<f32>(),
            Data::I64(v) => v.len() * std::mem::size_of::<i64>(),
            Data::Bool(v) => v.len(),
        }
    }
}

/// Reference-counted element storage with allocation accounting.
///
/// `counted_bytes` is nonzero iff [`crate::mem::tracking`] was on when
/// the buffer was created; only counted buffers decrement the ledger on
/// drop, which keeps `allocated − freed == live` exact across tracking
/// toggles (see `crate::mem`).
#[derive(Debug)]
pub(crate) struct Storage {
    data: Data,
    counted_bytes: u64,
}

impl Storage {
    fn new(data: Data) -> Storage {
        let counted_bytes = if crate::mem::tracking() {
            let bytes = data.byte_len() as u64;
            if bytes > 0 {
                crate::mem::on_alloc(bytes);
            }
            bytes
        } else {
            0
        };
        Storage {
            data,
            counted_bytes,
        }
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        if self.counted_bytes > 0 {
            crate::mem::on_free(self.counted_bytes);
        }
    }
}

/// A dense, row-major, reference-counted n-dimensional array.
///
/// Cloning a `Tensor` is cheap (an [`Arc`] bump); kernels that need to
/// mutate copy-on-write via [`Arc::make_mut`] is intentionally *not* used —
/// tensors are immutable values, as in TensorFlow.
#[derive(Clone)]
pub struct Tensor {
    inner: Arc<TensorInner>,
}

#[derive(Debug)]
struct TensorInner {
    shape: Shape,
    data: Arc<Storage>,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.inner.shape == other.inner.shape && self.inner.data.data == other.inner.data.data
    }
}

impl Tensor {
    /// The single funnel through which every new storage buffer is
    /// created — memory accounting hooks live here.
    #[inline]
    fn make(shape: Shape, data: Data) -> Tensor {
        Tensor {
            inner: Arc::new(TensorInner {
                shape,
                data: Arc::new(Storage::new(data)),
            }),
        }
    }

    /// Build a tensor sharing an existing storage buffer (reshape):
    /// no new allocation, no accounting entry.
    #[inline]
    fn make_shared(shape: Shape, data: Arc<Storage>) -> Tensor {
        Tensor {
            inner: Arc::new(TensorInner { shape, data }),
        }
    }

    #[inline]
    fn raw(&self) -> &Data {
        &self.inner.data.data
    }

    /// Reclaim the underlying `f32` buffer when this handle is the sole
    /// owner — the entry point for buffer recycling (see
    /// [`crate::fused::FusedArena`]).
    ///
    /// Consumes the tensor. Returns `None` (dropping the handle
    /// normally) when the storage is shared, was produced by a
    /// zero-copy reshape, or is not `f32`. On success the ledger
    /// records the free, exactly as a plain drop would: the buffer
    /// stops being a tensor allocation, and wrapping it into a new
    /// tensor later counts as a fresh one.
    pub fn into_f32_buffer(self) -> Option<Vec<f32>> {
        let inner = Arc::try_unwrap(self.inner).ok()?;
        let mut storage = Arc::try_unwrap(inner.data).ok()?;
        if storage.data.dtype() != DType::F32 {
            return None;
        }
        // Storage has a Drop impl (ledger accounting), so steal the
        // buffer and let the drop run with an empty payload — the free
        // of the original counted bytes is still recorded.
        let data = std::mem::replace(&mut storage.data, Data::F32(Vec::new()));
        drop(storage);
        match data {
            Data::F32(v) => Some(v),
            _ => None,
        }
    }
}

impl Tensor {
    // ---- constructors -----------------------------------------------------

    /// Build an f32 tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeElementMismatch`] if `shape` does not
    /// describe exactly `data.len()` elements.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Tensor> {
        Self::check_len(data.len(), shape)?;
        Ok(Tensor::make(Shape::new(shape), Data::F32(data)))
    }

    /// Build an i64 tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeElementMismatch`] on element-count
    /// mismatch.
    pub fn from_vec_i64(data: Vec<i64>, shape: &[usize]) -> Result<Tensor> {
        Self::check_len(data.len(), shape)?;
        Ok(Tensor::make(Shape::new(shape), Data::I64(data)))
    }

    /// Build a bool tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeElementMismatch`] on element-count
    /// mismatch.
    pub fn from_vec_bool(data: Vec<bool>, shape: &[usize]) -> Result<Tensor> {
        Self::check_len(data.len(), shape)?;
        Ok(Tensor::make(Shape::new(shape), Data::Bool(data)))
    }

    /// An f32 scalar.
    pub fn scalar_f32(v: f32) -> Tensor {
        Tensor::make(Shape::default(), Data::F32(vec![v]))
    }

    /// An i64 scalar.
    pub fn scalar_i64(v: i64) -> Tensor {
        Tensor::make(Shape::default(), Data::I64(vec![v]))
    }

    /// A bool scalar.
    pub fn scalar_bool(v: bool) -> Tensor {
        Tensor::make(Shape::default(), Data::Bool(vec![v]))
    }

    /// All-zeros tensor of the given dtype and shape.
    pub fn zeros(dtype: DType, shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        let data = match dtype {
            DType::F32 => Data::F32(vec![0.0; n]),
            DType::I64 => Data::I64(vec![0; n]),
            DType::Bool => Data::Bool(vec![false; n]),
        };
        Tensor::make(Shape::new(shape), data)
    }

    /// All-ones tensor of the given dtype and shape (`true` for bool).
    pub fn ones(dtype: DType, shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        let data = match dtype {
            DType::F32 => Data::F32(vec![1.0; n]),
            DType::I64 => Data::I64(vec![1; n]),
            DType::Bool => Data::Bool(vec![true; n]),
        };
        Tensor::make(Shape::new(shape), data)
    }

    /// Tensor filled with a single f32 value.
    pub fn full(value: f32, shape: &[usize]) -> Tensor {
        let n = shape.iter().product();
        Tensor::make(Shape::new(shape), Data::F32(vec![value; n]))
    }

    /// `[0, 1, ..., n-1]` as an i64 vector, like `tf.range(n)`.
    pub fn range_i64(n: i64) -> Tensor {
        let v: Vec<i64> = (0..n.max(0)).collect();
        let len = v.len();
        Tensor::make(Shape::new(&[len]), Data::I64(v))
    }

    fn check_len(len: usize, shape: &[usize]) -> Result<()> {
        let need: usize = shape.iter().product();
        if need != len {
            return Err(TensorError::ShapeElementMismatch {
                shape: shape.to_vec(),
                elements: len,
            });
        }
        Ok(())
    }

    /// Internal constructor from raw parts; validates element count.
    pub(crate) fn from_data(data: Data, shape: &[usize]) -> Tensor {
        debug_assert_eq!(data.len(), shape.iter().product::<usize>());
        Tensor::make(Shape::new(shape), data)
    }

    // ---- accessors --------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        self.inner.shape.dims()
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.inner.shape.rank()
    }

    /// Total element count.
    pub fn num_elements(&self) -> usize {
        self.inner.shape.num_elements()
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.raw().dtype()
    }

    /// Raw storage.
    pub fn data(&self) -> &Data {
        self.raw()
    }

    /// View as an f32 slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `F32`.
    pub fn as_f32(&self) -> Result<&[f32]> {
        match self.raw() {
            Data::F32(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                op: "as_f32",
                got: self.dtype(),
                expected: DType::F32,
            }),
        }
    }

    /// View as an i64 slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `I64`.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self.raw() {
            Data::I64(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                op: "as_i64",
                got: self.dtype(),
                expected: DType::I64,
            }),
        }
    }

    /// View as a bool slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DTypeMismatch`] if the dtype is not `Bool`.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self.raw() {
            Data::Bool(v) => Ok(v),
            _ => Err(TensorError::DTypeMismatch {
                op: "as_bool",
                got: self.dtype(),
                expected: DType::Bool,
            }),
        }
    }

    /// Extract a scalar f32 (accepts any dtype, converting).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor has more than one
    /// element.
    pub fn scalar_value_f32(&self) -> Result<f32> {
        if self.num_elements() != 1 {
            return Err(TensorError::RankMismatch {
                op: "scalar_value_f32",
                got: self.rank(),
                expected: "scalar (1 element)",
            });
        }
        Ok(match self.raw() {
            Data::F32(v) => v[0],
            Data::I64(v) => v[0] as f32,
            Data::Bool(v) => {
                if v[0] {
                    1.0
                } else {
                    0.0
                }
            }
        })
    }

    /// Extract a scalar i64 (accepts any dtype, converting).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor has more than one
    /// element.
    pub fn scalar_value_i64(&self) -> Result<i64> {
        if self.num_elements() != 1 {
            return Err(TensorError::RankMismatch {
                op: "scalar_value_i64",
                got: self.rank(),
                expected: "scalar (1 element)",
            });
        }
        Ok(match self.raw() {
            Data::F32(v) => v[0] as i64,
            Data::I64(v) => v[0],
            Data::Bool(v) => v[0] as i64,
        })
    }

    /// Extract a scalar bool.
    ///
    /// # Errors
    ///
    /// Returns an error if the tensor is not a single-element bool tensor.
    pub fn scalar_value_bool(&self) -> Result<bool> {
        if self.num_elements() != 1 {
            return Err(TensorError::RankMismatch {
                op: "scalar_value_bool",
                got: self.rank(),
                expected: "scalar (1 element)",
            });
        }
        match self.raw() {
            Data::Bool(v) => Ok(v[0]),
            Data::I64(v) => Ok(v[0] != 0),
            Data::F32(_) => Err(TensorError::DTypeMismatch {
                op: "scalar_value_bool",
                got: DType::F32,
                expected: DType::Bool,
            }),
        }
    }

    /// Reinterpret with a new shape of the same element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeElementMismatch`] if element counts
    /// differ. A single `usize::MAX` dimension is inferred (like `-1` in
    /// `tf.reshape`).
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let mut dims = shape.to_vec();
        if let Some(pos) = dims.iter().position(|&d| d == usize::MAX) {
            let known: usize = dims.iter().filter(|&&d| d != usize::MAX).product();
            if known == 0 || !self.num_elements().is_multiple_of(known) {
                return Err(TensorError::ShapeElementMismatch {
                    shape: shape.to_vec(),
                    elements: self.num_elements(),
                });
            }
            dims[pos] = self.num_elements() / known;
        }
        Self::check_len(self.num_elements(), &dims)?;
        Ok(Tensor::make_shared(
            Shape::new(&dims),
            Arc::clone(&self.inner.data),
        ))
    }

    /// Convert elements to a new dtype.
    pub fn cast(&self, dtype: DType) -> Tensor {
        if self.dtype() == dtype {
            return self.clone();
        }
        let data = match (self.raw(), dtype) {
            (Data::F32(v), DType::I64) => Data::I64(v.iter().map(|&x| x as i64).collect()),
            (Data::F32(v), DType::Bool) => Data::Bool(v.iter().map(|&x| x != 0.0).collect()),
            (Data::I64(v), DType::F32) => Data::F32(v.iter().map(|&x| x as f32).collect()),
            (Data::I64(v), DType::Bool) => Data::Bool(v.iter().map(|&x| x != 0).collect()),
            (Data::Bool(v), DType::F32) => {
                Data::F32(v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect())
            }
            (Data::Bool(v), DType::I64) => Data::I64(v.iter().map(|&x| x as i64).collect()),
            _ => unreachable!("same-dtype cast handled above"),
        };
        Tensor::from_data(data, self.shape())
    }

    /// Convert to a flat `Vec<f32>`, casting if necessary.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self.raw() {
            Data::F32(v) => v.clone(),
            Data::I64(v) => v.iter().map(|&x| x as f32).collect(),
            Data::Bool(v) => v.iter().map(|&x| if x { 1.0 } else { 0.0 }).collect(),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor<{}>{:?}", self.dtype(), self.shape())?;
        const MAX: usize = 8;
        match self.raw() {
            Data::F32(v) => write_preview(f, v, MAX),
            Data::I64(v) => write_preview(f, v, MAX),
            Data::Bool(v) => write_preview(f, v, MAX),
        }
    }
}

fn write_preview<T: fmt::Debug>(f: &mut fmt::Formatter<'_>, v: &[T], max: usize) -> fmt::Result {
    if v.len() <= max {
        write!(f, "{v:?}")
    } else {
        write!(f, "[{:?}, {:?}, ... ({} elements)]", v[0], v[1], v.len())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.num_elements(), 6);
        assert_eq!(t.dtype(), DType::F32);
        assert_eq!(t.as_f32().unwrap()[4], 5.0);
        assert!(t.as_i64().is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec_i64(vec![1], &[2, 2]).is_err());
    }

    #[test]
    fn scalars() {
        assert_eq!(Tensor::scalar_f32(2.5).scalar_value_f32().unwrap(), 2.5);
        assert_eq!(Tensor::scalar_i64(7).scalar_value_i64().unwrap(), 7);
        assert!(Tensor::scalar_bool(true).scalar_value_bool().unwrap());
        // conversions
        assert_eq!(Tensor::scalar_i64(3).scalar_value_f32().unwrap(), 3.0);
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[2])
            .unwrap()
            .scalar_value_f32()
            .is_err());
    }

    #[test]
    fn zeros_ones_full_range() {
        assert_eq!(
            Tensor::zeros(DType::F32, &[2, 2]).as_f32().unwrap(),
            &[0.0; 4]
        );
        assert_eq!(Tensor::ones(DType::I64, &[3]).as_i64().unwrap(), &[1, 1, 1]);
        assert_eq!(Tensor::full(2.0, &[2]).as_f32().unwrap(), &[2.0, 2.0]);
        assert_eq!(Tensor::range_i64(4).as_i64().unwrap(), &[0, 1, 2, 3]);
        assert_eq!(Tensor::range_i64(-1).num_elements(), 0);
    }

    #[test]
    fn reshape_shares_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.as_f32().unwrap(), t.as_f32().unwrap());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn reshape_infers_dim() {
        let t = Tensor::from_vec(vec![0.0; 12], &[3, 4]).unwrap();
        assert_eq!(t.reshape(&[2, usize::MAX]).unwrap().shape(), &[2, 6]);
        assert!(t.reshape(&[5, usize::MAX]).is_err());
    }

    #[test]
    fn cast_round_trip() {
        let t = Tensor::from_vec(vec![0.0, 1.5, -2.0], &[3]).unwrap();
        let i = t.cast(DType::I64);
        assert_eq!(i.as_i64().unwrap(), &[0, 1, -2]);
        let b = t.cast(DType::Bool);
        assert_eq!(b.as_bool().unwrap(), &[false, true, true]);
        let f = b.cast(DType::F32);
        assert_eq!(f.as_f32().unwrap(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn debug_preview_truncates() {
        let t = Tensor::zeros(DType::F32, &[100]);
        let s = format!("{t:?}");
        assert!(s.contains("100 elements"));
    }
}
