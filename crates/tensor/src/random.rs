//! Deterministic pseudo-random tensor generation.
//!
//! Benchmarks and tests need reproducible workloads, so we use a small
//! seeded xorshift64* generator rather than OS entropy.

use crate::{Data, Tensor};

/// A seeded xorshift64* pseudo-random generator.
///
/// Deterministic across platforms; good enough for synthetic workload
/// generation (not cryptographic).
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Create a generator from a nonzero seed (zero is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform f32 in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform i64 in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> i64 {
        assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound) as i64
    }

    /// Standard normal sample (Box–Muller).
    pub fn next_normal(&mut self) -> f32 {
        let u1 = self.next_f32().max(1e-12);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Tensor of standard-normal f32 values scaled by `stddev`.
    pub fn normal_tensor(&mut self, shape: &[usize], stddev: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let v: Vec<f32> = (0..n).map(|_| self.next_normal() * stddev).collect();
        Tensor::from_data(Data::F32(v), shape)
    }

    /// Tensor of uniform f32 values in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let v: Vec<f32> = (0..n).map(|_| lo + self.next_f32() * (hi - lo)).collect();
        Tensor::from_data(Data::F32(v), shape)
    }

    /// Tensor of uniform i64 class labels in `[0, classes)`.
    pub fn labels_tensor(&mut self, shape: &[usize], classes: u64) -> Tensor {
        let n: usize = shape.iter().product();
        let v: Vec<i64> = (0..n).map(|_| self.next_below(classes)).collect();
        Tensor::from_data(Data::I64(v), shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let x = r.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
        let t = r.uniform_tensor(&[100], -2.0, 2.0);
        assert!(t
            .as_f32()
            .unwrap()
            .iter()
            .all(|&x| (-2.0..2.0).contains(&x)));
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_var() {
        let mut r = Rng64::new(11);
        let t = r.normal_tensor(&[10_000], 1.0);
        let v = t.as_f32().unwrap();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn labels_bounded() {
        let mut r = Rng64::new(3);
        let t = r.labels_tensor(&[500], 10);
        assert!(t.as_i64().unwrap().iter().all(|&x| (0..10).contains(&x)));
    }

    #[test]
    fn zero_seed_ok() {
        let mut r = Rng64::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
