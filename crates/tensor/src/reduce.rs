//! Reductions: sum, mean, max, min, argmax, all, any.

use crate::{DType, Data, Result, Tensor, TensorError};

/// Which reduction to perform (internal dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Red {
    Sum,
    Max,
    Min,
}

fn reduce_full_f32(v: &[f32], red: Red) -> f32 {
    match red {
        Red::Sum => v.iter().sum(),
        Red::Max => v.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
        Red::Min => v.iter().cloned().fold(f32::INFINITY, f32::min),
    }
}

fn reduce_full_i64(v: &[i64], red: Red) -> i64 {
    match red {
        Red::Sum => v.iter().sum(),
        Red::Max => v.iter().cloned().max().unwrap_or(i64::MIN),
        Red::Min => v.iter().cloned().min().unwrap_or(i64::MAX),
    }
}

impl Tensor {
    fn reduce(&self, op: &'static str, axis: Option<isize>, red: Red) -> Result<Tensor> {
        if self.dtype() == DType::Bool {
            return Err(TensorError::DTypeMismatch {
                op,
                got: DType::Bool,
                expected: DType::F32,
            });
        }
        match axis {
            None => match self.data() {
                Data::F32(v) => Ok(Tensor::scalar_f32(reduce_full_f32(v, red))),
                Data::I64(v) => Ok(Tensor::scalar_i64(reduce_full_i64(v, red))),
                Data::Bool(_) => unreachable!(),
            },
            Some(ax) => {
                let ax = normalize_axis(op, ax, self.rank())?;
                let dims = self.shape();
                let outer: usize = dims[..ax].iter().product();
                let mid = dims[ax];
                let inner: usize = dims[ax + 1..].iter().product();
                let mut out_shape = dims.to_vec();
                out_shape.remove(ax);
                match self.data() {
                    Data::F32(v) => {
                        let init = match red {
                            Red::Sum => 0.0,
                            Red::Max => f32::NEG_INFINITY,
                            Red::Min => f32::INFINITY,
                        };
                        let mut out = vec![init; outer * inner];
                        for o in 0..outer {
                            for m in 0..mid {
                                let base = (o * mid + m) * inner;
                                let obase = o * inner;
                                for i in 0..inner {
                                    let x = v[base + i];
                                    let cur = &mut out[obase + i];
                                    *cur = match red {
                                        Red::Sum => *cur + x,
                                        Red::Max => cur.max(x),
                                        Red::Min => cur.min(x),
                                    };
                                }
                            }
                        }
                        Ok(Tensor::from_data(Data::F32(out), &out_shape))
                    }
                    Data::I64(v) => {
                        let init = match red {
                            Red::Sum => 0,
                            Red::Max => i64::MIN,
                            Red::Min => i64::MAX,
                        };
                        let mut out = vec![init; outer * inner];
                        for o in 0..outer {
                            for m in 0..mid {
                                let base = (o * mid + m) * inner;
                                let obase = o * inner;
                                for i in 0..inner {
                                    let x = v[base + i];
                                    let cur = &mut out[obase + i];
                                    *cur = match red {
                                        Red::Sum => *cur + x,
                                        Red::Max => (*cur).max(x),
                                        Red::Min => (*cur).min(x),
                                    };
                                }
                            }
                        }
                        Ok(Tensor::from_data(Data::I64(out), &out_shape))
                    }
                    Data::Bool(_) => unreachable!(),
                }
            }
        }
    }

    /// Sum of all elements (axis `None`) or along one axis.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors or an out-of-range axis.
    pub fn reduce_sum(&self, axis: Option<isize>) -> Result<Tensor> {
        self.reduce("reduce_sum", axis, Red::Sum)
    }

    /// Maximum element (axis `None`) or per-axis maxima.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors or an out-of-range axis.
    pub fn reduce_max(&self, axis: Option<isize>) -> Result<Tensor> {
        self.reduce("reduce_max", axis, Red::Max)
    }

    /// Minimum element (axis `None`) or per-axis minima.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors or an out-of-range axis.
    pub fn reduce_min(&self, axis: Option<isize>) -> Result<Tensor> {
        self.reduce("reduce_min", axis, Red::Min)
    }

    /// Arithmetic mean over all elements or along one axis; always f32.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors or an out-of-range axis.
    pub fn reduce_mean(&self, axis: Option<isize>) -> Result<Tensor> {
        let count = match axis {
            None => self.num_elements(),
            Some(ax) => {
                let ax = normalize_axis("reduce_mean", ax, self.rank())?;
                self.shape()[ax]
            }
        };
        let s = self.cast(DType::F32).reduce_sum(axis)?;
        s.div(&Tensor::scalar_f32(count as f32))
    }

    /// True when all booleans are true (optionally along one axis).
    ///
    /// # Errors
    ///
    /// Fails for non-boolean tensors or an out-of-range axis.
    pub fn reduce_all(&self, axis: Option<isize>) -> Result<Tensor> {
        self.reduce_bool("reduce_all", axis, true)
    }

    /// True when any boolean is true (optionally along one axis).
    ///
    /// # Errors
    ///
    /// Fails for non-boolean tensors or an out-of-range axis.
    pub fn reduce_any(&self, axis: Option<isize>) -> Result<Tensor> {
        self.reduce_bool("reduce_any", axis, false)
    }

    fn reduce_bool(&self, op: &'static str, axis: Option<isize>, all: bool) -> Result<Tensor> {
        let v = self.as_bool().map_err(|_| TensorError::DTypeMismatch {
            op,
            got: self.dtype(),
            expected: DType::Bool,
        })?;
        match axis {
            None => {
                let r = if all {
                    v.iter().all(|&x| x)
                } else {
                    v.iter().any(|&x| x)
                };
                Ok(Tensor::scalar_bool(r))
            }
            Some(ax) => {
                let ax = normalize_axis(op, ax, self.rank())?;
                let dims = self.shape();
                let outer: usize = dims[..ax].iter().product();
                let mid = dims[ax];
                let inner: usize = dims[ax + 1..].iter().product();
                let mut out = vec![all; outer * inner];
                for o in 0..outer {
                    for m in 0..mid {
                        for i in 0..inner {
                            let x = v[(o * mid + m) * inner + i];
                            let cur = &mut out[o * inner + i];
                            *cur = if all { *cur && x } else { *cur || x };
                        }
                    }
                }
                let mut out_shape = dims.to_vec();
                out_shape.remove(ax);
                Ok(Tensor::from_data(Data::Bool(out), &out_shape))
            }
        }
    }

    /// Index of the maximum along an axis, as i64.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors or an out-of-range axis.
    pub fn argmax(&self, axis: isize) -> Result<Tensor> {
        if self.dtype() == DType::Bool {
            return Err(TensorError::DTypeMismatch {
                op: "argmax",
                got: DType::Bool,
                expected: DType::F32,
            });
        }
        let ax = normalize_axis("argmax", axis, self.rank())?;
        let t = self.cast(DType::F32);
        let v = t.as_f32()?;
        let dims = self.shape();
        let outer: usize = dims[..ax].iter().product();
        let mid = dims[ax];
        let inner: usize = dims[ax + 1..].iter().product();
        let mut out = vec![0i64; outer * inner];
        for o in 0..outer {
            for i in 0..inner {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0i64;
                for m in 0..mid {
                    let x = v[(o * mid + m) * inner + i];
                    if x > best {
                        best = x;
                        best_idx = m as i64;
                    }
                }
                out[o * inner + i] = best_idx;
            }
        }
        let mut out_shape = dims.to_vec();
        out_shape.remove(ax);
        Ok(Tensor::from_data(Data::I64(out), &out_shape))
    }
}

/// Normalize a possibly-negative axis against `rank`.
fn normalize_axis(op: &'static str, axis: isize, rank: usize) -> Result<usize> {
    let ax = if axis < 0 { axis + rank as isize } else { axis };
    if ax < 0 || ax as usize >= rank {
        return Err(TensorError::IndexOutOfRange {
            op,
            index: axis as i64,
            bound: rank,
        });
    }
    Ok(ax as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap()
    }

    #[test]
    fn sum_full_and_axis() {
        assert_eq!(
            t23().reduce_sum(None).unwrap().scalar_value_f32().unwrap(),
            21.0
        );
        let s0 = t23().reduce_sum(Some(0)).unwrap();
        assert_eq!(s0.shape(), &[3]);
        assert_eq!(s0.as_f32().unwrap(), &[5.0, 7.0, 9.0]);
        let s1 = t23().reduce_sum(Some(1)).unwrap();
        assert_eq!(s1.as_f32().unwrap(), &[6.0, 15.0]);
        // negative axis
        let sn = t23().reduce_sum(Some(-1)).unwrap();
        assert_eq!(sn.as_f32().unwrap(), &[6.0, 15.0]);
    }

    #[test]
    fn max_min_mean() {
        assert_eq!(
            t23().reduce_max(None).unwrap().scalar_value_f32().unwrap(),
            6.0
        );
        assert_eq!(
            t23().reduce_min(None).unwrap().scalar_value_f32().unwrap(),
            1.0
        );
        assert_eq!(
            t23().reduce_mean(None).unwrap().scalar_value_f32().unwrap(),
            3.5
        );
        assert_eq!(
            t23().reduce_mean(Some(0)).unwrap().as_f32().unwrap(),
            &[2.5, 3.5, 4.5]
        );
    }

    #[test]
    fn i64_reductions_stay_integer() {
        let a = Tensor::from_vec_i64(vec![3, 1, 2], &[3]).unwrap();
        assert_eq!(a.reduce_sum(None).unwrap().scalar_value_i64().unwrap(), 6);
        assert_eq!(a.reduce_max(None).unwrap().dtype(), DType::I64);
        assert_eq!(a.reduce_max(None).unwrap().scalar_value_i64().unwrap(), 3);
    }

    #[test]
    fn bool_reductions() {
        let a = Tensor::from_vec_bool(vec![true, false, true, true], &[2, 2]).unwrap();
        assert!(!a.reduce_all(None).unwrap().scalar_value_bool().unwrap());
        assert!(a.reduce_any(None).unwrap().scalar_value_bool().unwrap());
        let col = a.reduce_all(Some(0)).unwrap();
        assert_eq!(col.as_bool().unwrap(), &[true, false]);
        assert!(Tensor::scalar_f32(1.0).reduce_all(None).is_err());
        assert!(a.reduce_sum(None).is_err());
    }

    #[test]
    fn argmax_rows() {
        let a = Tensor::from_vec(vec![1.0, 9.0, 3.0, 7.0, 2.0, 5.0], &[2, 3]).unwrap();
        let idx = a.argmax(1).unwrap();
        assert_eq!(idx.as_i64().unwrap(), &[1, 0]);
        let idx0 = a.argmax(0).unwrap();
        assert_eq!(idx0.as_i64().unwrap(), &[1, 0, 1]);
    }

    #[test]
    fn axis_out_of_range() {
        assert!(t23().reduce_sum(Some(2)).is_err());
        assert!(t23().reduce_sum(Some(-3)).is_err());
        assert!(t23().argmax(5).is_err());
    }
}
