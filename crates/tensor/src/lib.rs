//! # autograph-tensor
//!
//! Dense n-dimensional tensor substrate for the AutoGraph reproduction.
//!
//! This crate plays the role of TensorFlow's kernel library: it provides the
//! numeric arrays and operations that both the eager runtime
//! (`autograph-eager`) and the dataflow-graph executor (`autograph-graph`)
//! dispatch to. Tensors are row-major, contiguous, and carry one of three
//! element types ([`DType::F32`], [`DType::I64`], [`DType::Bool`]).
//!
//! ## Example
//!
//! ```
//! use autograph_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::scalar_f32(10.0);
//! let c = a.add(&b)?; // broadcasting
//! assert_eq!(c.as_f32()?, &[11.0, 12.0, 13.0, 14.0]);
//! # Ok::<(), autograph_tensor::TensorError>(())
//! ```

pub mod dtype;
pub mod error;
pub mod fused;
pub mod index;
pub mod linalg;
pub mod mem;
pub mod nn;
pub mod ops;
pub mod random;
pub mod reduce;
pub mod shape;
pub mod tensor;

pub use dtype::DType;
pub use error::TensorError;
pub use random::Rng64;
pub use shape::{broadcast_shapes, Shape};
pub use tensor::{Data, Tensor};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
