//! Fused elementwise kernels: single-loop evaluation of a chain of
//! elementwise ops, the execution substrate for the graph VM's fusion
//! tier.
//!
//! A [`FusedSpec`] is a small postfix (stack) program over up to
//! [`FUSED_MAX_INPUTS`] input tensors whose steps are drawn from the
//! closed set of elementwise ops in [`FusedOp`]. Evaluating the spec
//! computes, for every output element, exactly the same chain of `f32`
//! operations — in the same order, with no reassociation — that the
//! op-by-op kernels in [`crate::ops`]/[`crate::nn`] would compute, so the
//! result is **bitwise identical** to unfused execution. The win is
//! structural: one output allocation instead of one per chain link, no
//! intermediate `Arc`/ledger traffic, and one cache-friendly pass.
//!
//! ## Legality (what may be fused)
//!
//! * only the ops enumerated in [`FusedOp`] — pure, elementwise,
//!   `f32 → f32`, with per-element semantics copied verbatim from the
//!   scalar bodies of the unfused kernels;
//! * all inputs must be `f32` tensors (integer operands take different
//!   per-op paths — `i64` wrapping arithmetic, `div` promotion — which a
//!   fused `f32` loop cannot reproduce), and their shapes must broadcast
//!   through the program without error;
//! * the program must be a tree (each intermediate consumed once), so
//!   per-element evaluation never recomputes divergent state.
//!
//! Eligibility is a *runtime* property of the actual inputs
//! ([`FusedSpec::eligible`]): the caller checks it per execution and
//! falls back to op-by-op dispatch — which reproduces error messages,
//! integer semantics and observability exactly — when it does not hold.
//!
//! ## Buffer reuse
//!
//! [`FusedArena`] is a small free-list of `f32` buffers. Executors feed
//! it the buffers of dead intermediates (via
//! [`crate::Tensor::into_f32_buffer`]) and fused evaluation draws output
//! buffers from it, so loop-carried temporaries recycle their
//! allocations across iterations instead of round-tripping the system
//! allocator. The memory ledger stays exact: reclaiming records a free,
//! wrapping a recycled buffer into a tensor records a fresh allocation.

use crate::shape::{broadcast_shapes, BroadcastMap};
use crate::{DType, Tensor};

/// Maximum number of distinct input tensors a fused program may read.
pub const FUSED_MAX_INPUTS: usize = 64;
/// Maximum number of postfix steps in a fused program.
pub const FUSED_MAX_OPS: usize = 64;
/// Maximum operand-stack depth a fused program may need.
pub const FUSED_MAX_STACK: usize = 16;

/// One step of a fused elementwise postfix program.
///
/// Binary steps pop the right operand first (`a ○ b` is emitted as
/// `…a…, …b…, Op`). The per-element semantics of each op are exactly the
/// scalar bodies used by the unfused `f32` kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOp {
    /// Push element of input `i` (broadcast-mapped to the output index).
    Input(u8),
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `(a / b).floor()`
    FloorDiv,
    /// `a.rem_euclid(b)`
    Mod,
    /// `a.powf(b)`
    Pow,
    /// `a.max(b)`
    Maximum,
    /// `a.min(b)`
    Minimum,
    /// `-a`
    Neg,
    /// `a.abs()`
    Abs,
    /// `a.sqrt()`
    Sqrt,
    /// `a.exp()`
    Exp,
    /// `a.ln()`
    Log,
    /// `a * a`
    Square,
    /// `a.tanh()`
    Tanh,
    /// `1 / (1 + (-a).exp())`
    Sigmoid,
    /// `a.max(0.0)`
    Relu,
}

impl FusedOp {
    /// How many operands the step pops (0 for `Input`).
    pub fn arity(&self) -> usize {
        match self {
            FusedOp::Input(_) => 0,
            FusedOp::Neg
            | FusedOp::Abs
            | FusedOp::Sqrt
            | FusedOp::Exp
            | FusedOp::Log
            | FusedOp::Square
            | FusedOp::Tanh
            | FusedOp::Sigmoid
            | FusedOp::Relu => 1,
            _ => 2,
        }
    }

    #[inline]
    fn apply1(&self, a: f32) -> f32 {
        match self {
            FusedOp::Neg => -a,
            FusedOp::Abs => a.abs(),
            FusedOp::Sqrt => a.sqrt(),
            FusedOp::Exp => a.exp(),
            FusedOp::Log => a.ln(),
            FusedOp::Square => a * a,
            FusedOp::Tanh => a.tanh(),
            FusedOp::Sigmoid => 1.0 / (1.0 + (-a).exp()),
            FusedOp::Relu => a.max(0.0),
            _ => f32::NAN,
        }
    }

    #[inline]
    fn apply2(&self, a: f32, b: f32) -> f32 {
        match self {
            FusedOp::Add => a + b,
            FusedOp::Sub => a - b,
            FusedOp::Mul => a * b,
            FusedOp::Div => a / b,
            FusedOp::FloorDiv => (a / b).floor(),
            FusedOp::Mod => a.rem_euclid(b),
            FusedOp::Pow => a.powf(b),
            FusedOp::Maximum => a.max(b),
            FusedOp::Minimum => a.min(b),
            _ => f32::NAN,
        }
    }
}

/// A validated fused elementwise program: a postfix op sequence over
/// `num_inputs` tensors that leaves exactly one value on the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedSpec {
    ops: Vec<FusedOp>,
    num_inputs: usize,
}

/// How a fused input is addressed per output element.
enum Access<'a> {
    /// Input shape equals the output shape: direct indexing.
    Ident(&'a [f32]),
    /// Single-element input: one value for every output element.
    Scalar(f32),
    /// General broadcast: flat output index mapped through strides.
    Mapped(&'a [f32], BroadcastMap),
}

impl Access<'_> {
    #[inline]
    fn get(&self, i: usize) -> f32 {
        match self {
            Access::Ident(v) => v[i],
            Access::Scalar(x) => *x,
            Access::Mapped(v, m) => v[m.map(i)],
        }
    }
}

impl FusedSpec {
    /// Validate and build a spec. Returns `None` when the program is
    /// malformed (stack underflow, >1 final value, unused inputs
    /// indexed out of range) or exceeds the size limits.
    pub fn new(ops: Vec<FusedOp>, num_inputs: usize) -> Option<FusedSpec> {
        if num_inputs > FUSED_MAX_INPUTS || ops.is_empty() || ops.len() > FUSED_MAX_OPS {
            return None;
        }
        let mut depth: usize = 0;
        for op in &ops {
            match op {
                FusedOp::Input(i) => {
                    if *i as usize >= num_inputs {
                        return None;
                    }
                    depth += 1;
                }
                other => {
                    let k = other.arity();
                    if depth < k {
                        return None;
                    }
                    depth = depth - k + 1;
                }
            }
            if depth > FUSED_MAX_STACK {
                return None;
            }
        }
        if depth != 1 {
            return None;
        }
        Some(FusedSpec { ops, num_inputs })
    }

    /// The postfix steps.
    pub fn ops(&self) -> &[FusedOp] {
        &self.ops
    }

    /// Number of input slots the program reads.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Simulate broadcasting through the program, returning the output
    /// shape — `None` when any step's operands do not broadcast (the
    /// caller's op-by-op fallback then reproduces the exact error).
    fn simulate_shape(&self, inputs: &[&Tensor]) -> Option<Vec<usize>> {
        let mut stack: Vec<Vec<usize>> = Vec::with_capacity(FUSED_MAX_STACK);
        for op in &self.ops {
            match op {
                FusedOp::Input(i) => stack.push(inputs.get(*i as usize)?.shape().to_vec()),
                other if other.arity() == 1 => {
                    // unary ops preserve shape
                    stack.last()?;
                }
                other => {
                    debug_assert_eq!(other.arity(), 2);
                    let b = stack.pop()?;
                    let a = stack.pop()?;
                    stack.push(broadcast_shapes(&a, &b).ok()?);
                }
            }
        }
        match stack.len() {
            1 => stack.pop(),
            _ => None,
        }
    }

    /// Whether this program can run fused over these inputs: right input
    /// count, all `f32`, and every step broadcasts. When this returns
    /// `false` the caller must dispatch op-by-op.
    pub fn eligible(&self, inputs: &[&Tensor]) -> bool {
        inputs.len() == self.num_inputs
            && inputs.iter().all(|t| t.dtype() == DType::F32)
            && self.simulate_shape(inputs).is_some()
    }

    /// Evaluate the fused program in a single loop, drawing the output
    /// buffer from `arena`. Returns `None` when [`FusedSpec::eligible`]
    /// does not hold — no side effects in that case.
    ///
    /// The per-element operation chain is identical to op-by-op
    /// execution, so the result is bitwise equal to the unfused path;
    /// large outputs split across the worker pool in disjoint chunks
    /// (which cannot change any element's value).
    pub fn try_eval(&self, inputs: &[&Tensor], arena: &mut FusedArena) -> Option<Tensor> {
        if inputs.len() != self.num_inputs || inputs.iter().any(|t| t.dtype() != DType::F32) {
            return None;
        }
        let out_shape = self.simulate_shape(inputs)?;
        let n: usize = out_shape.iter().product();
        let mut accesses: Vec<Access<'_>> = Vec::with_capacity(inputs.len());
        for t in inputs {
            let v = t.as_f32().ok()?;
            if t.shape() == out_shape.as_slice() {
                accesses.push(Access::Ident(v));
            } else if t.num_elements() == 1 {
                accesses.push(Access::Scalar(*v.first()?));
            } else {
                // simulate_shape succeeded, so every input broadcasts to
                // the final shape (elementwise broadcasting composes)
                accesses.push(Access::Mapped(v, BroadcastMap::new(t.shape(), &out_shape)));
            }
        }
        let mut out = arena.take(n);
        if n >= FUSED_PAR_MIN && autograph_par::threads() > 1 {
            out.resize(n, 0.0);
            let out_addr = out.as_mut_ptr() as usize;
            autograph_par::parallel_for(n, 4096, &|range| {
                for i in range {
                    // SAFETY: chunks are disjoint, so each index is
                    // written by exactly one thread; the buffer outlives
                    // the call.
                    unsafe { *(out_addr as *mut f32).add(i) = self.eval_element(&accesses, i) };
                }
            });
        } else {
            for i in 0..n {
                out.push(self.eval_element(&accesses, i));
            }
        }
        Tensor::from_vec(out, &out_shape).ok()
    }

    /// Evaluate the chain for one output element.
    #[inline]
    fn eval_element(&self, accesses: &[Access<'_>], i: usize) -> f32 {
        let mut stack = [0.0f32; FUSED_MAX_STACK];
        let mut top: usize = 0;
        for op in &self.ops {
            match op {
                FusedOp::Input(s) => {
                    stack[top] = accesses[*s as usize].get(i);
                    top += 1;
                }
                other if other.arity() == 1 => {
                    stack[top - 1] = other.apply1(stack[top - 1]);
                }
                other => {
                    stack[top - 2] = other.apply2(stack[top - 2], stack[top - 1]);
                    top -= 1;
                }
            }
        }
        stack[0]
    }
}

/// Same threshold as the elementwise kernels in [`crate::ops`]: below
/// this many output elements a parallel split costs more than it saves.
const FUSED_PAR_MIN: usize = 1 << 15;

/// Buffers the arena will hold at most (beyond that, freed buffers just
/// drop), and the largest buffer worth keeping.
const ARENA_MAX_BUFS: usize = 16;
const ARENA_MAX_ELEMS: usize = 1 << 22;

/// A small free-list of `f32` buffers for fused outputs: dead
/// intermediates donate their allocations ([`FusedArena::give`]) and
/// fused evaluation reuses them ([`FusedArena::take`]), so loop-carried
/// temporaries stop hitting the allocator once the loop warms up.
#[derive(Debug, Default)]
pub struct FusedArena {
    free: Vec<Vec<f32>>,
}

impl FusedArena {
    /// A fresh, empty arena.
    pub fn new() -> FusedArena {
        FusedArena::default()
    }

    /// An empty buffer with capacity for at least `n` elements —
    /// recycled when a donated buffer is large enough, freshly allocated
    /// otherwise.
    pub fn take(&mut self, n: usize) -> Vec<f32> {
        for i in 0..self.free.len() {
            if self.free[i].capacity() >= n {
                let mut buf = self.free.swap_remove(i);
                buf.clear();
                return buf;
            }
        }
        Vec::with_capacity(n)
    }

    /// Donate a dead buffer for reuse. Oversized buffers and donations
    /// beyond the arena's capacity are simply dropped.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 || buf.capacity() > ARENA_MAX_ELEMS {
            return;
        }
        if self.free.len() >= ARENA_MAX_BUFS {
            // keep the larger buffer: evict the smallest held one
            if let Some((idx, _)) = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
            {
                if self.free[idx].capacity() < buf.capacity() {
                    self.free[idx] = buf;
                }
            }
            return;
        }
        self.free.push(buf);
    }

    /// Number of buffers currently held.
    pub fn held(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(v, shape).unwrap()
    }

    /// add → mul → tanh over same-shape inputs matches op-by-op bitwise.
    #[test]
    fn fused_chain_matches_op_by_op_bitwise() {
        let a = t(vec![0.1, -2.5, 3.7, 0.0], &[4]);
        let b = t(vec![1.5, 0.25, -1.0, 9.0], &[4]);
        let c = t(vec![2.0, -0.5, 0.75, 1.25], &[4]);
        // tanh((a + b) * c)
        let spec = FusedSpec::new(
            vec![
                FusedOp::Input(0),
                FusedOp::Input(1),
                FusedOp::Add,
                FusedOp::Input(2),
                FusedOp::Mul,
                FusedOp::Tanh,
            ],
            3,
        )
        .unwrap();
        let mut arena = FusedArena::new();
        assert!(spec.eligible(&[&a, &b, &c]));
        let fused = spec.try_eval(&[&a, &b, &c], &mut arena).unwrap();
        let reference = a.add(&b).unwrap().mul(&c).unwrap().tanh().unwrap();
        assert_eq!(
            fused.as_f32().unwrap(),
            reference.as_f32().unwrap(),
            "fused result must be bitwise identical"
        );
        assert_eq!(fused.shape(), reference.shape());
    }

    #[test]
    fn every_op_matches_its_kernel() {
        let a = t(vec![0.5, -1.25, 2.0, -0.1], &[4]);
        let b = t(vec![1.5, 0.4, -2.0, 3.0], &[4]);
        let bins: Vec<(FusedOp, Tensor)> = vec![
            (FusedOp::Add, a.add(&b).unwrap()),
            (FusedOp::Sub, a.sub(&b).unwrap()),
            (FusedOp::Mul, a.mul(&b).unwrap()),
            (FusedOp::Div, a.div(&b).unwrap()),
            (FusedOp::FloorDiv, a.floordiv(&b).unwrap()),
            (FusedOp::Mod, a.rem(&b).unwrap()),
            (FusedOp::Pow, a.pow(&b).unwrap()),
            (FusedOp::Maximum, a.maximum(&b).unwrap()),
            (FusedOp::Minimum, a.minimum(&b).unwrap()),
        ];
        let mut arena = FusedArena::new();
        for (op, want) in bins {
            let spec = FusedSpec::new(vec![FusedOp::Input(0), FusedOp::Input(1), op], 2).unwrap();
            let got = spec.try_eval(&[&a, &b], &mut arena).unwrap();
            assert_eq!(
                got.as_f32()
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                want.as_f32()
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "{op:?}"
            );
        }
        let uns: Vec<(FusedOp, Tensor)> = vec![
            (FusedOp::Neg, a.neg().unwrap()),
            (FusedOp::Abs, a.abs().unwrap()),
            (FusedOp::Sqrt, a.sqrt().unwrap()),
            (FusedOp::Exp, a.exp().unwrap()),
            (FusedOp::Log, a.log().unwrap()),
            (FusedOp::Square, a.square().unwrap()),
            (FusedOp::Tanh, a.tanh().unwrap()),
            (FusedOp::Sigmoid, a.sigmoid().unwrap()),
            (FusedOp::Relu, a.relu().unwrap()),
        ];
        for (op, want) in uns {
            let spec = FusedSpec::new(vec![FusedOp::Input(0), op], 1).unwrap();
            let got = spec.try_eval(&[&a], &mut arena).unwrap();
            assert_eq!(
                got.as_f32()
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                want.as_f32()
                    .unwrap()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect::<Vec<_>>(),
                "{op:?}"
            );
        }
    }

    #[test]
    fn broadcast_scalar_and_row() {
        let m = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(vec![10.0, 20.0, 30.0], &[3]);
        let s = Tensor::scalar_f32(0.5);
        // (m + row) * s
        let spec = FusedSpec::new(
            vec![
                FusedOp::Input(0),
                FusedOp::Input(1),
                FusedOp::Add,
                FusedOp::Input(2),
                FusedOp::Mul,
            ],
            3,
        )
        .unwrap();
        let mut arena = FusedArena::new();
        let got = spec.try_eval(&[&m, &row, &s], &mut arena).unwrap();
        let want = m.add(&row).unwrap().mul(&s).unwrap();
        assert_eq!(got.as_f32().unwrap(), want.as_f32().unwrap());
        assert_eq!(got.shape(), &[2, 3]);
    }

    #[test]
    fn ineligible_inputs_are_refused_without_side_effects() {
        let spec =
            FusedSpec::new(vec![FusedOp::Input(0), FusedOp::Input(1), FusedOp::Add], 2).unwrap();
        let mut arena = FusedArena::new();
        // i64 input
        let i = Tensor::from_vec_i64(vec![1, 2], &[2]).unwrap();
        let f = t(vec![1.0, 2.0], &[2]);
        assert!(!spec.eligible(&[&i, &f]));
        assert!(spec.try_eval(&[&i, &f], &mut arena).is_none());
        // broadcast mismatch
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        assert!(!spec.eligible(&[&a, &b]));
        assert!(spec.try_eval(&[&a, &b], &mut arena).is_none());
        // wrong arity
        assert!(!spec.eligible(&[&a]));
    }

    #[test]
    fn malformed_programs_rejected() {
        // empty
        assert!(FusedSpec::new(vec![], 0).is_none());
        // stack underflow
        assert!(FusedSpec::new(vec![FusedOp::Input(0), FusedOp::Add], 1).is_none());
        // two values left
        assert!(FusedSpec::new(vec![FusedOp::Input(0), FusedOp::Input(0)], 1).is_none());
        // input slot out of range
        assert!(FusedSpec::new(vec![FusedOp::Input(3)], 1).is_none());
        // too deep
        let mut deep = vec![FusedOp::Input(0); FUSED_MAX_STACK + 1];
        for _ in 0..FUSED_MAX_STACK {
            deep.push(FusedOp::Add);
        }
        assert!(FusedSpec::new(deep, 1).is_none());
    }

    #[test]
    fn arena_recycles_buffers() {
        let mut arena = FusedArena::new();
        let mut buf = Vec::with_capacity(128);
        buf.push(1.0f32);
        let cap = buf.capacity();
        arena.give(buf);
        assert_eq!(arena.held(), 1);
        let reused = arena.take(64);
        assert!(reused.is_empty());
        assert!(reused.capacity() >= 64);
        assert_eq!(reused.capacity(), cap, "the donated buffer came back");
        assert_eq!(arena.held(), 0);
        // too-small held buffers are skipped
        arena.give(Vec::with_capacity(8));
        let fresh = arena.take(1024);
        assert!(fresh.capacity() >= 1024);
        assert_eq!(arena.held(), 1, "small buffer stays for a later fit");
    }

    #[test]
    fn arena_reuse_through_tensor_roundtrip() {
        let mut arena = FusedArena::new();
        let spec = FusedSpec::new(vec![FusedOp::Input(0), FusedOp::Sqrt], 1).unwrap();
        let a = t(vec![4.0, 9.0, 16.0, 25.0], &[4]);
        let out = spec.try_eval(&[&a], &mut arena).unwrap();
        assert_eq!(out.as_f32().unwrap(), &[2.0, 3.0, 4.0, 5.0]);
        // sole owner: the buffer is reclaimable and feeds the next eval
        let buf = out.into_f32_buffer().unwrap();
        arena.give(buf);
        let out2 = spec.try_eval(&[&a], &mut arena).unwrap();
        assert_eq!(out2.as_f32().unwrap(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(arena.held(), 0, "recycled buffer was taken");
    }

    #[test]
    fn empty_tensors_fuse() {
        let spec = FusedSpec::new(vec![FusedOp::Input(0), FusedOp::Relu], 1).unwrap();
        let mut arena = FusedArena::new();
        let e = t(vec![], &[0]);
        let out = spec.try_eval(&[&e], &mut arena).unwrap();
        assert_eq!(out.num_elements(), 0);
        assert_eq!(out.shape(), &[0]);
    }
}
