//! Tensor memory accounting: process-wide allocation/free counters.
//!
//! Every tensor storage buffer is created through one funnel
//! (`Tensor::make`), which registers its byte size here when tracking
//! is enabled, and deregisters it when the last reference drops. The
//! counters answer three questions per run: how many bytes were
//! allocated, how many are still live, and what the peak working set
//! was.
//!
//! ## Cost model
//!
//! With tracking **off** (the default), storage creation pays one
//! relaxed atomic load and storage drop pays one branch on a plain
//! field — no shared-cacheline traffic. With tracking **on**, creation
//! is two `fetch_add`s plus a `fetch_max`, and drop is one `fetch_add`.
//!
//! ## Invariants
//!
//! Each storage records *at creation time* whether it was counted; only
//! counted storage decrements on drop. This keeps
//! `allocated − freed == live` exact even when tracking is toggled
//! while tensors are alive: a buffer allocated before `track_begin`
//! never shows up as a free, and a buffer allocated during tracking is
//! always freed against the same ledger, no matter when it drops.
//!
//! Counters are process-wide (tensors flow between threads and
//! sessions), so concurrent tracked runs share one ledger; per-run
//! deltas come from snapshotting before and after.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Nesting count of active trackers ([`track_begin`]/[`track_end`]).
static TRACKERS: AtomicUsize = AtomicUsize::new(0);

static ALLOCATED: AtomicU64 = AtomicU64::new(0);
static FREED: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Bytes allocated by *this thread* since it started; the executor
    /// reads the delta around a kernel to attribute bytes to an op.
    static THREAD_ALLOCATED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Whether allocation tracking is active (any tracker registered).
#[inline(always)]
pub fn tracking() -> bool {
    TRACKERS.load(Ordering::Relaxed) > 0
}

/// Enable tracking (ref-counted: concurrent sessions compose). Pair
/// with [`track_end`].
pub fn track_begin() {
    TRACKERS.fetch_add(1, Ordering::Relaxed);
}

/// Release one tracking registration.
pub fn track_end() {
    TRACKERS.fetch_sub(1, Ordering::Relaxed);
}

/// A point-in-time view of the allocation ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemSnapshot {
    /// Total bytes ever counted at allocation.
    pub allocated_bytes: u64,
    /// Total bytes returned by drops of counted storage.
    pub freed_bytes: u64,
    /// Bytes currently live (`allocated - freed`).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since the last [`reset_peak`].
    pub peak_bytes: u64,
    /// Number of counted allocations.
    pub allocs: u64,
    /// Number of counted frees.
    pub frees: u64,
}

/// Snapshot the ledger. Individual counters are read with relaxed
/// loads; at a quiescent point (no tensors being created or dropped)
/// `allocated_bytes - freed_bytes == live_bytes` exactly.
pub fn snapshot() -> MemSnapshot {
    let allocated = ALLOCATED.load(Ordering::Relaxed);
    let freed = FREED.load(Ordering::Relaxed);
    MemSnapshot {
        allocated_bytes: allocated,
        freed_bytes: freed,
        live_bytes: allocated.saturating_sub(freed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
    }
}

/// Reset the peak to the current live level, so the next snapshot's
/// `peak_bytes` reflects the high-water mark of the run that follows.
pub fn reset_peak() {
    let live = ALLOCATED
        .load(Ordering::Relaxed)
        .saturating_sub(FREED.load(Ordering::Relaxed));
    PEAK.store(live, Ordering::Relaxed);
}

/// Bytes allocated by the current thread since it started. Read the
/// delta around a kernel call to attribute allocation to an op.
pub fn thread_allocated() -> u64 {
    THREAD_ALLOCATED.with(|c| c.get())
}

/// Record a counted allocation of `bytes`. Called only from the tensor
/// storage constructor when [`tracking`] is on and `bytes > 0`.
pub(crate) fn on_alloc(bytes: u64) {
    let allocated = ALLOCATED.fetch_add(bytes, Ordering::Relaxed) + bytes;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    let live = allocated.saturating_sub(FREED.load(Ordering::Relaxed));
    PEAK.fetch_max(live, Ordering::Relaxed);
    THREAD_ALLOCATED.with(|c| c.set(c.get().wrapping_add(bytes)));
}

/// Record the drop of a counted storage of `bytes`.
pub(crate) fn on_free(bytes: u64) {
    FREED.fetch_add(bytes, Ordering::Relaxed);
    FREES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DType, Tensor};

    // The ledger is process-global and other tests allocate tensors
    // concurrently, so assert on *deltas* of values this test controls
    // (its own allocations) rather than absolute counter values.
    #[test]
    fn tracked_allocations_balance() {
        track_begin();
        let before = thread_allocated();
        let t = Tensor::zeros(DType::F32, &[16, 16]); // 1 KiB
        let after_alloc = thread_allocated();
        assert_eq!(after_alloc - before, 1024);
        // reshape shares storage: no new allocation
        let r = t.reshape(&[256]).unwrap();
        assert_eq!(thread_allocated(), after_alloc);
        // clone is an Arc bump: no new allocation
        #[allow(clippy::redundant_clone)]
        let c = t.clone();
        assert_eq!(thread_allocated(), after_alloc);
        let s1 = snapshot();
        assert!(s1.peak_bytes >= 1024);
        assert!(s1.live_bytes >= 1024);
        drop((t, r, c));
        track_end();
    }

    #[test]
    fn untracked_allocations_are_invisible_to_thread_ledger() {
        // no tracker registered by *this* test; another test may have
        // one active, so only assert when tracking is globally off
        if !tracking() {
            let before = thread_allocated();
            let _t = Tensor::zeros(DType::F32, &[64]);
            assert_eq!(thread_allocated(), before);
        }
    }
}
