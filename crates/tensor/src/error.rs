//! Error type for tensor operations.

use crate::DType;
use std::fmt;

/// Error produced by tensor construction and kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// Two shapes could not be broadcast together.
    BroadcastMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// A shape did not match the number of elements supplied.
    ShapeElementMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements actually supplied.
        elements: usize,
    },
    /// An operation received a dtype it does not support.
    DTypeMismatch {
        /// Operation name.
        op: &'static str,
        /// The dtype that was supplied.
        got: DType,
        /// The dtype that was expected.
        expected: DType,
    },
    /// An index or axis was out of range.
    IndexOutOfRange {
        /// Operation name.
        op: &'static str,
        /// The offending index.
        index: i64,
        /// The valid exclusive bound.
        bound: usize,
    },
    /// A rank (number of dimensions) requirement was violated.
    RankMismatch {
        /// Operation name.
        op: &'static str,
        /// The rank that was supplied.
        got: usize,
        /// Human-readable requirement, e.g. `">= 2"`.
        expected: &'static str,
    },
    /// Matmul inner dimensions disagree, or other shape incompatibility.
    IncompatibleShapes {
        /// Operation name.
        op: &'static str,
        /// Details of the incompatibility.
        detail: String,
    },
    /// Any other invalid argument.
    InvalidArgument {
        /// Operation name.
        op: &'static str,
        /// Details.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::BroadcastMismatch { lhs, rhs } => {
                write!(f, "cannot broadcast shapes {lhs:?} and {rhs:?}")
            }
            TensorError::ShapeElementMismatch { shape, elements } => write!(
                f,
                "shape {shape:?} requires {} elements but {elements} were supplied",
                shape.iter().product::<usize>()
            ),
            TensorError::DTypeMismatch { op, got, expected } => {
                write!(f, "{op}: expected dtype {expected}, got {got}")
            }
            TensorError::IndexOutOfRange { op, index, bound } => {
                write!(f, "{op}: index {index} out of range for bound {bound}")
            }
            TensorError::RankMismatch { op, got, expected } => {
                write!(f, "{op}: expected rank {expected}, got rank {got}")
            }
            TensorError::IncompatibleShapes { op, detail } => {
                write!(f, "{op}: incompatible shapes: {detail}")
            }
            TensorError::InvalidArgument { op, detail } => {
                write!(f, "{op}: invalid argument: {detail}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::BroadcastMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
        };
        let s = e.to_string();
        assert!(s.contains("[2, 3]") && s.contains("[4]"));

        let e = TensorError::DTypeMismatch {
            op: "matmul",
            got: DType::Bool,
            expected: DType::F32,
        };
        assert!(e.to_string().contains("matmul"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
