//! Neural-network activations and losses.

use crate::{Data, Result, Tensor, TensorError};

impl Tensor {
    /// Elementwise hyperbolic tangent.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn tanh(&self) -> Result<Tensor> {
        self.map_f32("tanh", f32::tanh)
    }

    /// Elementwise logistic sigmoid.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn sigmoid(&self) -> Result<Tensor> {
        self.map_f32("sigmoid", |x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise rectified linear unit.
    ///
    /// # Errors
    ///
    /// Fails for boolean tensors.
    pub fn relu(&self) -> Result<Tensor> {
        self.map_f32("relu", |x| x.max(0.0))
    }

    /// Row-wise softmax over the last axis (numerically stabilized).
    ///
    /// # Errors
    ///
    /// Fails for boolean or rank-0 tensors.
    pub fn softmax(&self) -> Result<Tensor> {
        let t = self.cast(crate::DType::F32);
        if t.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "softmax",
                got: 0,
                expected: ">= 1",
            });
        }
        let v = t.as_f32()?;
        let cols = *t.shape().last().expect("rank checked");
        let rows = t.num_elements() / cols.max(1);
        let mut out = vec![0.0f32; v.len()];
        for r in 0..rows {
            let row = &v[r * cols..(r + 1) * cols];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for (j, &x) in row.iter().enumerate() {
                let e = (x - m).exp();
                out[r * cols + j] = e;
                z += e;
            }
            for j in 0..cols {
                out[r * cols + j] /= z;
            }
        }
        Ok(Tensor::from_data(Data::F32(out), t.shape()))
    }

    /// Row-wise log-softmax over the last axis.
    ///
    /// # Errors
    ///
    /// Fails for boolean or rank-0 tensors.
    pub fn log_softmax(&self) -> Result<Tensor> {
        let t = self.cast(crate::DType::F32);
        if t.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "log_softmax",
                got: 0,
                expected: ">= 1",
            });
        }
        let v = t.as_f32()?;
        let cols = *t.shape().last().expect("rank checked");
        let rows = t.num_elements() / cols.max(1);
        let mut out = vec![0.0f32; v.len()];
        for r in 0..rows {
            let row = &v[r * cols..(r + 1) * cols];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|&x| (x - m).exp()).sum();
            let lz = z.ln() + m;
            for (j, &x) in row.iter().enumerate() {
                out[r * cols + j] = x - lz;
            }
        }
        Ok(Tensor::from_data(Data::F32(out), t.shape()))
    }

    /// Mean softmax cross-entropy between `logits` `[batch, classes]` and
    /// integer `labels` `[batch]`.
    ///
    /// # Errors
    ///
    /// Fails on rank/dtype mismatch or out-of-range labels.
    pub fn softmax_cross_entropy(logits: &Tensor, labels: &Tensor) -> Result<Tensor> {
        if logits.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "softmax_cross_entropy",
                got: logits.rank(),
                expected: "2",
            });
        }
        let lsm = logits.log_softmax()?;
        let v = lsm.as_f32()?;
        let classes = logits.shape()[1];
        let labels = labels.cast(crate::DType::I64);
        let lab = labels.as_i64()?;
        if lab.len() != logits.shape()[0] {
            return Err(TensorError::IncompatibleShapes {
                op: "softmax_cross_entropy",
                detail: format!("logits {:?} vs labels {:?}", logits.shape(), labels.shape()),
            });
        }
        let mut total = 0.0f32;
        for (r, &l) in lab.iter().enumerate() {
            if l < 0 || l as usize >= classes {
                return Err(TensorError::IndexOutOfRange {
                    op: "softmax_cross_entropy",
                    index: l,
                    bound: classes,
                });
            }
            total -= v[r * classes + l as usize];
        }
        Ok(Tensor::scalar_f32(total / lab.len() as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activations() {
        let a = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]).unwrap();
        let r = a.relu().unwrap();
        assert_eq!(r.as_f32().unwrap(), &[0.0, 0.0, 1.0]);
        let s = a.sigmoid().unwrap();
        assert!((s.as_f32().unwrap()[1] - 0.5).abs() < 1e-6);
        let t = a.tanh().unwrap();
        assert!((t.as_f32().unwrap()[2] - 1.0f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]).unwrap();
        let s = a.softmax().unwrap();
        let v = s.as_f32().unwrap();
        let r0: f32 = v[..3].iter().sum();
        let r1: f32 = v[3..].iter().sum();
        assert!((r0 - 1.0).abs() < 1e-5 && (r1 - 1.0).abs() < 1e-5);
        assert!((v[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_numerically_stable() {
        let a = Tensor::from_vec(vec![1000.0, 1001.0], &[2]).unwrap();
        let s = a.softmax().unwrap();
        assert!(s.as_f32().unwrap().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Tensor::from_vec(vec![0.5, -0.5, 2.0], &[1, 3]).unwrap();
        let ls = a.log_softmax().unwrap();
        let s = a.softmax().unwrap().log().unwrap();
        for (x, y) in ls.as_f32().unwrap().iter().zip(s.as_f32().unwrap()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_uniform() {
        let logits = Tensor::zeros(crate::DType::F32, &[2, 4]);
        let labels = Tensor::from_vec_i64(vec![0, 3], &[2]).unwrap();
        let l = Tensor::softmax_cross_entropy(&logits, &labels).unwrap();
        assert!((l.scalar_value_f32().unwrap() - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_errors() {
        let logits = Tensor::zeros(crate::DType::F32, &[2, 4]);
        let bad = Tensor::from_vec_i64(vec![0, 9], &[2]).unwrap();
        assert!(Tensor::softmax_cross_entropy(&logits, &bad).is_err());
        let wrong_len = Tensor::from_vec_i64(vec![0], &[1]).unwrap();
        assert!(Tensor::softmax_cross_entropy(&logits, &wrong_len).is_err());
        let v = Tensor::zeros(crate::DType::F32, &[4]);
        assert!(Tensor::softmax_cross_entropy(&v, &bad).is_err());
    }
}
