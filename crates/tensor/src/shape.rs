//! Shapes, strides and NumPy-style broadcasting.

use crate::{Result, TensorError};

/// A tensor shape: the extent of each dimension, outermost first.
///
/// A scalar has the empty shape `[]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Construct from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for scalars).
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.0.len()];
        let mut acc = 1;
        for (i, &d) in self.0.iter().enumerate().rev() {
            strides[i] = acc;
            acc *= d;
        }
        strides
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

/// Compute the broadcast of two shapes per NumPy rules.
///
/// Dimensions are aligned from the right; each pair must be equal or one of
/// them must be 1.
///
/// # Errors
///
/// Returns [`TensorError::BroadcastMismatch`] when a dimension pair is
/// incompatible.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize]) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0; rank];
    for i in 0..rank {
        let l = if i < rank - lhs.len() {
            1
        } else {
            lhs[i - (rank - lhs.len())]
        };
        let r = if i < rank - rhs.len() {
            1
        } else {
            rhs[i - (rank - rhs.len())]
        };
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::BroadcastMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
            });
        };
    }
    Ok(out)
}

/// Iterator-free index mapping used by broadcast kernels: maps a flat index
/// in the output shape to a flat index in a (possibly lower-rank,
/// broadcast) input shape.
#[derive(Debug, Clone)]
pub struct BroadcastMap {
    /// For each output dimension, the input stride (0 where broadcast).
    strides: Vec<usize>,
    out_shape: Vec<usize>,
}

impl BroadcastMap {
    /// Build a map from `in_shape` broadcast up to `out_shape`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible; callers are
    /// expected to have validated with [`broadcast_shapes`] first.
    pub fn new(in_shape: &[usize], out_shape: &[usize]) -> Self {
        let rank = out_shape.len();
        let offset = rank - in_shape.len();
        let in_strides = Shape::new(in_shape).strides();
        let mut strides = vec![0; rank];
        for i in 0..rank {
            if i >= offset {
                let d = in_shape[i - offset];
                assert!(
                    d == out_shape[i] || d == 1,
                    "shape {in_shape:?} does not broadcast to {out_shape:?}"
                );
                strides[i] = if d == 1 { 0 } else { in_strides[i - offset] };
            }
        }
        BroadcastMap {
            strides,
            out_shape: out_shape.to_vec(),
        }
    }

    /// Whether the map is the identity (no broadcasting happened).
    pub fn is_identity(&self) -> bool {
        self.strides == Shape::new(&self.out_shape).strides() || self.out_shape.is_empty()
    }

    /// Map a flat output index to the flat input index.
    #[inline]
    pub fn map(&self, mut flat: usize) -> usize {
        let mut idx = 0;
        for i in (0..self.out_shape.len()).rev() {
            let d = self.out_shape[i];
            let coord = flat % d;
            flat /= d;
            idx += coord * self.strides[i];
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn num_elements() {
        assert_eq!(Shape::new(&[]).num_elements(), 1);
        assert_eq!(Shape::new(&[2, 3]).num_elements(), 6);
        assert_eq!(Shape::new(&[0, 3]).num_elements(), 0);
    }

    #[test]
    fn broadcast_basic() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4]).unwrap(), vec![4]);
        assert_eq!(broadcast_shapes(&[7], &[]).unwrap(), vec![7]);
    }

    #[test]
    fn broadcast_mismatch() {
        assert!(broadcast_shapes(&[2, 3], &[4]).is_err());
        assert!(broadcast_shapes(&[2], &[3]).is_err());
    }

    #[test]
    fn broadcast_map_scalar() {
        let m = BroadcastMap::new(&[], &[2, 2]);
        for i in 0..4 {
            assert_eq!(m.map(i), 0);
        }
    }

    #[test]
    fn broadcast_map_row() {
        // [3] broadcast to [2,3]: output (i,j) -> input j
        let m = BroadcastMap::new(&[3], &[2, 3]);
        assert_eq!(
            (0..6).map(|i| m.map(i)).collect::<Vec<_>>(),
            vec![0, 1, 2, 0, 1, 2]
        );
    }

    #[test]
    fn broadcast_map_col() {
        // [2,1] broadcast to [2,3]: output (i,j) -> input i
        let m = BroadcastMap::new(&[2, 1], &[2, 3]);
        assert_eq!(
            (0..6).map(|i| m.map(i)).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 1, 1]
        );
    }

    #[test]
    fn identity_detection() {
        assert!(BroadcastMap::new(&[2, 3], &[2, 3]).is_identity());
        assert!(!BroadcastMap::new(&[1, 3], &[2, 3]).is_identity());
    }
}
