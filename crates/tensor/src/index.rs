//! Indexing, slicing, gathering, stacking, concatenation, one-hot, top-k.

use crate::{DType, Data, Result, Tensor, TensorError};

impl Tensor {
    /// Index along axis 0, returning a tensor of rank `rank - 1`
    /// (the semantics of `x[i]` in the staged language). Negative indices
    /// count from the end.
    ///
    /// # Errors
    ///
    /// Fails on rank-0 input or out-of-range index.
    pub fn index_axis0(&self, index: i64) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "index",
                got: 0,
                expected: ">= 1",
            });
        }
        let d0 = self.shape()[0];
        let idx = if index < 0 { index + d0 as i64 } else { index };
        if idx < 0 || idx as usize >= d0 {
            return Err(TensorError::IndexOutOfRange {
                op: "index",
                index,
                bound: d0,
            });
        }
        let idx = idx as usize;
        let inner: usize = self.shape()[1..].iter().product();
        let out_shape = self.shape()[1..].to_vec();
        let data = match self.data() {
            Data::F32(v) => Data::F32(v[idx * inner..(idx + 1) * inner].to_vec()),
            Data::I64(v) => Data::I64(v[idx * inner..(idx + 1) * inner].to_vec()),
            Data::Bool(v) => Data::Bool(v[idx * inner..(idx + 1) * inner].to_vec()),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }

    /// Replace the `index`-th slice along axis 0 with `value`, returning a
    /// new tensor (value semantics, as required by the slice-conversion pass
    /// in §7.2: `x[i] = y` becomes `x = ag.setitem(x, i, y)`).
    ///
    /// # Errors
    ///
    /// Fails when shapes/dtypes disagree or the index is out of range.
    pub fn set_index_axis0(&self, index: i64, value: &Tensor) -> Result<Tensor> {
        let d0 = if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "setitem",
                got: 0,
                expected: ">= 1",
            });
        } else {
            self.shape()[0]
        };
        let idx = if index < 0 { index + d0 as i64 } else { index };
        if idx < 0 || idx as usize >= d0 {
            return Err(TensorError::IndexOutOfRange {
                op: "setitem",
                index,
                bound: d0,
            });
        }
        if value.shape() != &self.shape()[1..] {
            return Err(TensorError::IncompatibleShapes {
                op: "setitem",
                detail: format!(
                    "slice shape {:?}, value shape {:?}",
                    &self.shape()[1..],
                    value.shape()
                ),
            });
        }
        if value.dtype() != self.dtype() {
            return Err(TensorError::DTypeMismatch {
                op: "setitem",
                got: value.dtype(),
                expected: self.dtype(),
            });
        }
        let idx = idx as usize;
        let inner: usize = self.shape()[1..].iter().product();
        let data = match (self.data(), value.data()) {
            (Data::F32(v), Data::F32(nv)) => {
                let mut v = v.clone();
                v[idx * inner..(idx + 1) * inner].copy_from_slice(nv);
                Data::F32(v)
            }
            (Data::I64(v), Data::I64(nv)) => {
                let mut v = v.clone();
                v[idx * inner..(idx + 1) * inner].copy_from_slice(nv);
                Data::I64(v)
            }
            (Data::Bool(v), Data::Bool(nv)) => {
                let mut v = v.clone();
                v[idx * inner..(idx + 1) * inner].copy_from_slice(nv);
                Data::Bool(v)
            }
            _ => unreachable!("dtype equality checked above"),
        };
        Ok(Tensor::from_data(data, self.shape()))
    }

    /// Contiguous range slice along axis 0: `x[start:stop]` with clamping,
    /// Python slice semantics (negative bounds count from the end).
    ///
    /// # Errors
    ///
    /// Fails on rank-0 input.
    pub fn slice_axis0(&self, start: Option<i64>, stop: Option<i64>) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "slice",
                got: 0,
                expected: ">= 1",
            });
        }
        let d0 = self.shape()[0] as i64;
        let norm = |x: i64| -> i64 {
            let x = if x < 0 { x + d0 } else { x };
            x.clamp(0, d0)
        };
        let s = norm(start.unwrap_or(0));
        let e = norm(stop.unwrap_or(d0));
        let (s, e) = (s as usize, (e.max(s)) as usize);
        let inner: usize = self.shape()[1..].iter().product();
        let mut out_shape = self.shape().to_vec();
        out_shape[0] = e - s;
        let data = match self.data() {
            Data::F32(v) => Data::F32(v[s * inner..e * inner].to_vec()),
            Data::I64(v) => Data::I64(v[s * inner..e * inner].to_vec()),
            Data::Bool(v) => Data::Bool(v[s * inner..e * inner].to_vec()),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }

    /// Gather rows along axis 0 by an i64 index tensor. Output shape is
    /// `indices.shape() ++ self.shape()[1..]`.
    ///
    /// # Errors
    ///
    /// Fails when indices are not i64-compatible or out of range.
    pub fn gather(&self, indices: &Tensor) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "gather",
                got: 0,
                expected: ">= 1",
            });
        }
        let indices = indices.cast(DType::I64);
        let idx = indices.as_i64()?;
        let d0 = self.shape()[0];
        let inner: usize = self.shape()[1..].iter().product();
        let mut out_shape = indices.shape().to_vec();
        out_shape.extend_from_slice(&self.shape()[1..]);

        fn run<T: Copy>(v: &[T], idx: &[i64], d0: usize, inner: usize) -> Result<Vec<T>> {
            let mut out = Vec::with_capacity(idx.len() * inner);
            for &i in idx {
                let i = if i < 0 { i + d0 as i64 } else { i };
                if i < 0 || i as usize >= d0 {
                    return Err(TensorError::IndexOutOfRange {
                        op: "gather",
                        index: i,
                        bound: d0,
                    });
                }
                let i = i as usize;
                out.extend_from_slice(&v[i * inner..(i + 1) * inner]);
            }
            Ok(out)
        }
        let data = match self.data() {
            Data::F32(v) => Data::F32(run(v, idx, d0, inner)?),
            Data::I64(v) => Data::I64(run(v, idx, d0, inner)?),
            Data::Bool(v) => Data::Bool(run(v, idx, d0, inner)?),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }

    /// Stack tensors of identical shape/dtype along a new axis 0
    /// (the `ag.stack` list idiom of §7.2).
    ///
    /// # Errors
    ///
    /// Fails on an empty input or mismatched shapes/dtypes.
    pub fn stack(tensors: &[Tensor]) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::InvalidArgument {
            op: "stack",
            detail: "cannot stack zero tensors".to_string(),
        })?;
        for t in tensors {
            if t.shape() != first.shape() || t.dtype() != first.dtype() {
                return Err(TensorError::IncompatibleShapes {
                    op: "stack",
                    detail: format!(
                        "expected {:?} {}, got {:?} {}",
                        first.shape(),
                        first.dtype(),
                        t.shape(),
                        t.dtype()
                    ),
                });
            }
        }
        let mut out_shape = vec![tensors.len()];
        out_shape.extend_from_slice(first.shape());
        let data = match first.dtype() {
            DType::F32 => {
                let mut v = Vec::with_capacity(first.num_elements() * tensors.len());
                for t in tensors {
                    v.extend_from_slice(t.as_f32()?);
                }
                Data::F32(v)
            }
            DType::I64 => {
                let mut v = Vec::with_capacity(first.num_elements() * tensors.len());
                for t in tensors {
                    v.extend_from_slice(t.as_i64()?);
                }
                Data::I64(v)
            }
            DType::Bool => {
                let mut v = Vec::with_capacity(first.num_elements() * tensors.len());
                for t in tensors {
                    v.extend_from_slice(t.as_bool()?);
                }
                Data::Bool(v)
            }
        };
        Ok(Tensor::from_data(data, &out_shape))
    }

    /// Concatenate along an existing axis.
    ///
    /// # Errors
    ///
    /// Fails on an empty input, a bad axis, or mismatched non-concat dims.
    pub fn concat(tensors: &[Tensor], axis: isize) -> Result<Tensor> {
        let first = tensors.first().ok_or(TensorError::InvalidArgument {
            op: "concat",
            detail: "cannot concat zero tensors".to_string(),
        })?;
        let rank = first.rank();
        let ax = if axis < 0 { axis + rank as isize } else { axis };
        if ax < 0 || ax as usize >= rank {
            return Err(TensorError::IndexOutOfRange {
                op: "concat",
                index: axis as i64,
                bound: rank,
            });
        }
        let ax = ax as usize;
        let mut concat_dim = 0;
        for t in tensors {
            if t.rank() != rank || t.dtype() != first.dtype() {
                return Err(TensorError::IncompatibleShapes {
                    op: "concat",
                    detail: "rank or dtype mismatch".to_string(),
                });
            }
            for d in 0..rank {
                if d != ax && t.shape()[d] != first.shape()[d] {
                    return Err(TensorError::IncompatibleShapes {
                        op: "concat",
                        detail: format!(
                            "{:?} vs {:?} at non-concat dim {d}",
                            first.shape(),
                            t.shape()
                        ),
                    });
                }
            }
            concat_dim += t.shape()[ax];
        }
        let mut out_shape = first.shape().to_vec();
        out_shape[ax] = concat_dim;
        let outer: usize = first.shape()[..ax].iter().product();
        let inner: usize = first.shape()[ax + 1..].iter().product();

        fn run<T: Copy>(
            tensors: &[Tensor],
            get: impl Fn(&Tensor) -> Vec<T>,
            outer: usize,
            inner: usize,
            ax: usize,
        ) -> Vec<T> {
            let mut out = Vec::new();
            for o in 0..outer {
                for t in tensors {
                    let mid = t.shape()[ax];
                    let v = get(t);
                    out.extend_from_slice(&v[o * mid * inner..(o + 1) * mid * inner]);
                }
            }
            out
        }
        let data = match first.dtype() {
            DType::F32 => Data::F32(run(
                tensors,
                |t| t.as_f32().expect("checked").to_vec(),
                outer,
                inner,
                ax,
            )),
            DType::I64 => Data::I64(run(
                tensors,
                |t| t.as_i64().expect("checked").to_vec(),
                outer,
                inner,
                ax,
            )),
            DType::Bool => Data::Bool(run(
                tensors,
                |t| t.as_bool().expect("checked").to_vec(),
                outer,
                inner,
                ax,
            )),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }

    /// One-hot encode an i64 tensor into f32 with `depth` classes appended
    /// as the last axis.
    ///
    /// # Errors
    ///
    /// Fails when indices are not integer or out of `[0, depth)`.
    pub fn one_hot(&self, depth: usize) -> Result<Tensor> {
        let idx = self.cast(DType::I64);
        let idx = idx.as_i64()?;
        let mut out = vec![0.0f32; idx.len() * depth];
        for (r, &i) in idx.iter().enumerate() {
            if i < 0 || i as usize >= depth {
                return Err(TensorError::IndexOutOfRange {
                    op: "one_hot",
                    index: i,
                    bound: depth,
                });
            }
            out[r * depth + i as usize] = 1.0;
        }
        let mut out_shape = self.shape().to_vec();
        out_shape.push(depth);
        Ok(Tensor::from_data(Data::F32(out), &out_shape))
    }

    /// Top-k values and indices along the last axis, sorted descending
    /// (like `tf.math.top_k`). Returns `(values, indices)`.
    ///
    /// # Errors
    ///
    /// Fails for boolean or rank-0 tensors, or `k` larger than the last
    /// dimension.
    pub fn top_k(&self, k: usize) -> Result<(Tensor, Tensor)> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "top_k",
                got: 0,
                expected: ">= 1",
            });
        }
        let t = self.cast(DType::F32);
        let v = t.as_f32()?;
        let cols = *t.shape().last().expect("rank checked");
        if k > cols {
            return Err(TensorError::InvalidArgument {
                op: "top_k",
                detail: format!("k={k} exceeds last dimension {cols}"),
            });
        }
        let rows = t.num_elements() / cols.max(1);
        let mut vals = Vec::with_capacity(rows * k);
        let mut idxs = Vec::with_capacity(rows * k);
        let mut order: Vec<usize> = Vec::with_capacity(cols);
        fn cmp(row: &[f32]) -> impl Fn(&usize, &usize) -> std::cmp::Ordering + '_ {
            move |a: &usize, b: &usize| {
                row[*b]
                    .partial_cmp(&row[*a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            }
        }
        for r in 0..rows {
            let row = &v[r * cols..(r + 1) * cols];
            order.clear();
            order.extend(0..cols);
            // partial selection first (O(n)), then sort only the top k
            if k > 0 && k < cols {
                order.select_nth_unstable_by(k - 1, cmp(row));
                order.truncate(k);
            }
            order.sort_by(cmp(row));
            for &j in order.iter().take(k) {
                vals.push(row[j]);
                idxs.push(j as i64);
            }
        }
        let mut out_shape = t.shape().to_vec();
        *out_shape.last_mut().expect("rank checked") = k;
        Ok((
            Tensor::from_data(Data::F32(vals), &out_shape),
            Tensor::from_data(Data::I64(idxs), &out_shape),
        ))
    }

    /// Insert a size-1 axis at `axis` (negative counts from the end,
    /// inclusive of rank).
    ///
    /// # Errors
    ///
    /// Fails when `axis` is out of `[-rank-1, rank]`.
    pub fn expand_dims(&self, axis: isize) -> Result<Tensor> {
        let rank = self.rank() as isize;
        let ax = if axis < 0 { axis + rank + 1 } else { axis };
        if ax < 0 || ax > rank {
            return Err(TensorError::IndexOutOfRange {
                op: "expand_dims",
                index: axis as i64,
                bound: self.rank() + 1,
            });
        }
        let mut dims = self.shape().to_vec();
        dims.insert(ax as usize, 1);
        self.reshape(&dims)
    }

    /// Remove all size-1 axes (or one specific axis when given).
    ///
    /// # Errors
    ///
    /// Fails when the named axis does not have extent 1.
    pub fn squeeze(&self, axis: Option<isize>) -> Result<Tensor> {
        match axis {
            None => {
                let dims: Vec<usize> = self.shape().iter().cloned().filter(|&d| d != 1).collect();
                self.reshape(&dims)
            }
            Some(a) => {
                let rank = self.rank() as isize;
                let ax = if a < 0 { a + rank } else { a };
                if ax < 0 || ax >= rank {
                    return Err(TensorError::IndexOutOfRange {
                        op: "squeeze",
                        index: a as i64,
                        bound: self.rank(),
                    });
                }
                if self.shape()[ax as usize] != 1 {
                    return Err(TensorError::InvalidArgument {
                        op: "squeeze",
                        detail: format!("axis {a} has extent {}", self.shape()[ax as usize]),
                    });
                }
                let mut dims = self.shape().to_vec();
                dims.remove(ax as usize);
                self.reshape(&dims)
            }
        }
    }

    /// Tile a tensor `reps` times along axis 0.
    ///
    /// # Errors
    ///
    /// Fails for rank-0 tensors.
    pub fn tile_axis0(&self, reps: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "tile",
                got: 0,
                expected: ">= 1",
            });
        }
        let mut out_shape = self.shape().to_vec();
        out_shape[0] *= reps;
        let data = match self.data() {
            Data::F32(v) => Data::F32(v.iter().cloned().cycle().take(v.len() * reps).collect()),
            Data::I64(v) => Data::I64(v.iter().cloned().cycle().take(v.len() * reps).collect()),
            Data::Bool(v) => Data::Bool(v.iter().cloned().cycle().take(v.len() * reps).collect()),
        };
        Ok(Tensor::from_data(data, &out_shape))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t23() -> Tensor {
        Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap()
    }

    #[test]
    fn index_axis0() {
        let r = t23().index_axis0(1).unwrap();
        assert_eq!(r.shape(), &[3]);
        assert_eq!(r.as_f32().unwrap(), &[4.0, 5.0, 6.0]);
        let neg = t23().index_axis0(-1).unwrap();
        assert_eq!(neg.as_f32().unwrap(), &[4.0, 5.0, 6.0]);
        assert!(t23().index_axis0(2).is_err());
        assert!(Tensor::scalar_f32(1.0).index_axis0(0).is_err());
    }

    #[test]
    fn setitem_value_semantics() {
        let orig = t23();
        let row = Tensor::from_vec(vec![9.0, 9.0, 9.0], &[3]).unwrap();
        let updated = orig.set_index_axis0(0, &row).unwrap();
        assert_eq!(updated.as_f32().unwrap(), &[9.0, 9.0, 9.0, 4.0, 5.0, 6.0]);
        // original untouched
        assert_eq!(orig.as_f32().unwrap()[0], 1.0);
        assert!(orig.set_index_axis0(5, &row).is_err());
        let bad = Tensor::from_vec(vec![1.0], &[1]).unwrap();
        assert!(orig.set_index_axis0(0, &bad).is_err());
    }

    #[test]
    fn slices() {
        let a = Tensor::from_vec((0..5).map(|x| x as f32).collect(), &[5]).unwrap();
        assert_eq!(
            a.slice_axis0(Some(1), Some(3)).unwrap().as_f32().unwrap(),
            &[1.0, 2.0]
        );
        assert_eq!(
            a.slice_axis0(None, Some(-2)).unwrap().as_f32().unwrap(),
            &[0.0, 1.0, 2.0]
        );
        assert_eq!(a.slice_axis0(Some(4), Some(2)).unwrap().num_elements(), 0);
        assert_eq!(a.slice_axis0(Some(-100), None).unwrap().num_elements(), 5);
    }

    #[test]
    fn gather_rows() {
        let idx = Tensor::from_vec_i64(vec![1, 0, 1], &[3]).unwrap();
        let g = t23().gather(&idx).unwrap();
        assert_eq!(g.shape(), &[3, 3]);
        assert_eq!(g.as_f32().unwrap()[0], 4.0);
        assert!(t23().gather(&Tensor::scalar_i64(7)).is_err());
        // negative index
        let g2 = t23().gather(&Tensor::scalar_i64(-1)).unwrap();
        assert_eq!(g2.shape(), &[3]);
        assert_eq!(g2.as_f32().unwrap(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn stack_and_concat() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.as_f32().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        let c = Tensor::concat(&[a.clone(), b.clone()], 0).unwrap();
        assert_eq!(c.shape(), &[4]);
        assert!(Tensor::stack(&[]).is_err());
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let cc = Tensor::concat(&[m.clone(), m.clone()], 1).unwrap();
        assert_eq!(cc.shape(), &[2, 4]);
        assert_eq!(
            cc.as_f32().unwrap(),
            &[1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 3.0, 4.0]
        );
        assert!(Tensor::concat(&[a, m], 0).is_err());
    }

    #[test]
    fn one_hot_encodes() {
        let idx = Tensor::from_vec_i64(vec![0, 2], &[2]).unwrap();
        let oh = idx.one_hot(3).unwrap();
        assert_eq!(oh.shape(), &[2, 3]);
        assert_eq!(oh.as_f32().unwrap(), &[1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        assert!(Tensor::scalar_i64(5).one_hot(3).is_err());
    }

    #[test]
    fn top_k_sorted_with_ties() {
        let a = Tensor::from_vec(vec![1.0, 5.0, 3.0, 5.0], &[4]).unwrap();
        let (v, i) = a.top_k(3).unwrap();
        assert_eq!(v.as_f32().unwrap(), &[5.0, 5.0, 3.0]);
        assert_eq!(i.as_i64().unwrap(), &[1, 3, 2]); // stable tie-break by index
        assert!(a.top_k(5).is_err());
    }

    #[test]
    fn top_k_batched() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 6.0, 5.0, 4.0], &[2, 3]).unwrap();
        let (v, i) = a.top_k(2).unwrap();
        assert_eq!(v.shape(), &[2, 2]);
        assert_eq!(v.as_f32().unwrap(), &[3.0, 2.0, 6.0, 5.0]);
        assert_eq!(i.as_i64().unwrap(), &[2, 1, 0, 1]);
    }

    #[test]
    fn expand_squeeze_tile() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let e = a.expand_dims(0).unwrap();
        assert_eq!(e.shape(), &[1, 2]);
        let e2 = a.expand_dims(-1).unwrap();
        assert_eq!(e2.shape(), &[2, 1]);
        assert_eq!(e.squeeze(Some(0)).unwrap().shape(), &[2]);
        assert!(e.squeeze(Some(1)).is_err());
        assert_eq!(e.squeeze(None).unwrap().shape(), &[2]);
        let t = a.tile_axis0(3).unwrap();
        assert_eq!(t.shape(), &[6]);
        assert_eq!(t.as_f32().unwrap(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }
}
