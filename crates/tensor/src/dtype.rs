//! Element types supported by [`crate::Tensor`].

use std::fmt;

/// The element type of a tensor.
///
/// Mirrors the small dtype lattice the paper's workloads need: 32-bit floats
/// for numerics, 64-bit integers for indices/token ids, and booleans for
/// masks and staged predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit signed integer.
    I64,
    /// Boolean.
    Bool,
}

impl DType {
    /// Short lowercase name, e.g. `"f32"`.
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::I64 => "i64",
            DType::Bool => "bool",
        }
    }

    /// True if this is a numeric (non-boolean) dtype.
    pub fn is_numeric(self) -> bool {
        !matches!(self, DType::Bool)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_numeric() {
        assert_eq!(DType::F32.name(), "f32");
        assert_eq!(DType::I64.to_string(), "i64");
        assert!(DType::F32.is_numeric());
        assert!(DType::I64.is_numeric());
        assert!(!DType::Bool.is_numeric());
    }

    #[test]
    fn ordering_is_stable() {
        assert!(DType::F32 < DType::I64);
        assert!(DType::I64 < DType::Bool);
    }
}
