//! # autograph-explain
//!
//! The provenance/explain layer: folds per-node runtime cost
//! ([`autograph_graph::RunReport`]) back onto the PyLite source lines
//! that staged each node, using the span every graph node carries and
//! the rewrite lineage the optimizer records
//! ([`autograph_graph::PassRecord`] / [`autograph_graph::OptTrace`]).
//!
//! Three outputs (see the `autograph-explain` binary):
//!
//! * **annotated source** — the program with per-line cumulative time,
//!   allocations, eval counts, and critical-path markers;
//! * **plan dump** — the optimized graph as text and Graphviz DOT, each
//!   node showing its source span and rewrite lineage;
//! * **fallback report** — every [`ConversionWarning`] with the exact
//!   source construct, why it was unstageable, and what the eager
//!   fallback cost at runtime.

use autograph_graph::optimize::{optimize_traced, OptTrace};
use autograph_graph::{Graph, NodeId, RunReport, Session};
use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, Value};
use autograph_tensor::Tensor;
use autograph_transforms::{ConversionConfig, ConversionPolicy, ConversionWarning};
use std::collections::BTreeMap;
use std::collections::HashSet;
use std::time::Instant;

/// Options for [`explain_source`].
#[derive(Debug, Clone)]
pub struct ExplainOptions {
    /// The function to stage and profile.
    pub func: String,
    /// Thread count for the profiled graph runs.
    pub threads: usize,
    /// Number of runs; costs come from the last (warmed) run.
    pub runs: usize,
}

impl Default for ExplainOptions {
    fn default() -> Self {
        ExplainOptions {
            func: "f".to_string(),
            threads: 1,
            runs: 3,
        }
    }
}

/// Aggregated cost of one source line across the nodes it staged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineCost {
    /// 1-based source line.
    pub line: u32,
    /// Summed self-time of the line's nodes.
    pub self_ns: u64,
    /// Summed attributed allocation.
    pub alloc_bytes: u64,
    /// Summed evaluation count.
    pub evals: u64,
    /// Number of executed top-level nodes attributed to the line.
    pub nodes: usize,
    /// Whether any of the line's nodes sit on the run's critical path.
    pub on_critical_path: bool,
}

/// How much of the executed plan resolved to a source span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Executed top-level nodes with a non-synthetic span.
    pub attributed_nodes: usize,
    /// All executed top-level nodes.
    pub total_nodes: usize,
    /// Self-time carried by attributed nodes.
    pub attributed_self_ns: u64,
    /// Self-time across all executed top-level nodes.
    pub total_self_ns: u64,
}

impl Coverage {
    /// Fraction of executed nodes attributed to a source line (1.0 when
    /// nothing executed).
    pub fn node_fraction(&self) -> f64 {
        if self.total_nodes == 0 {
            1.0
        } else {
            self.attributed_nodes as f64 / self.total_nodes as f64
        }
    }

    /// Fraction of node self-time attributed to a source line (1.0 when
    /// no time was measured).
    pub fn time_fraction(&self) -> f64 {
        if self.total_self_ns == 0 {
            1.0
        } else {
            self.attributed_self_ns as f64 / self.total_self_ns as f64
        }
    }
}

/// Runtime cost attributed to one conversion fallback.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackCost {
    /// The recorded degradation.
    pub warning: ConversionWarning,
    /// Wall time spent in eager dispatch of the fallen-back function
    /// (0 when it was not invoked by this explain run).
    pub eager_ns: u64,
    /// Eager calls timed.
    pub calls: u64,
}

/// The staged-and-profiled half of an explanation (absent when the
/// target function itself fell back to eager execution).
#[derive(Debug)]
pub struct StagedExplain {
    /// The optimized graph.
    pub graph: Graph,
    /// Its output nodes.
    pub outputs: Vec<NodeId>,
    /// Nodes the optimizer removed (with pass + span).
    pub trace: OptTrace,
    /// Cost data from the last profiled run.
    pub report: RunReport,
}

/// A full explanation of one program: staged cost attribution plus
/// fallback accounting.
#[derive(Debug)]
pub struct Explain {
    /// The original source text.
    pub source: String,
    /// The explained function.
    pub func: String,
    /// Staged graph + run report; `None` when `func` fell back.
    pub staged: Option<StagedExplain>,
    /// All recorded conversion warnings.
    pub warnings: Vec<ConversionWarning>,
    /// Warnings with runtime cost attributed.
    pub fallbacks: Vec<FallbackCost>,
    /// Per-line cost aggregation, ascending by line.
    pub lines: Vec<LineCost>,
    /// Node-to-span attribution coverage of the executed plan.
    pub coverage: Coverage,
}

fn ms(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn kb(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.2}MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.1}KiB", b as f64 / 1024.0)
    }
}

/// Load `source` (FallbackToEager policy), stage `opts.func` over the
/// feed names, optimize with tracing, run `opts.runs` times with
/// reporting on, and fold node costs back onto source lines.
///
/// # Errors
///
/// Returns a rendered error for parse/load failures, staging errors not
/// explained by a recorded fallback, and graph-execution failures.
pub fn explain_source(
    source: &str,
    feeds: &[(String, Tensor)],
    opts: &ExplainOptions,
) -> Result<Explain, String> {
    let cfg = ConversionConfig {
        policy: ConversionPolicy::FallbackToEager,
        ..ConversionConfig::default()
    };
    let mut rt = Runtime::load_with(source, &cfg).map_err(|e| format!("load: {e}"))?;
    let warnings: Vec<ConversionWarning> = rt.warnings().to_vec();
    let target_fell_back = warnings.iter().any(|w| w.function == opts.func);

    let mut fallbacks: Vec<FallbackCost> = warnings
        .iter()
        .map(|w| FallbackCost {
            warning: w.clone(),
            eager_ns: 0,
            calls: 0,
        })
        .collect();

    if target_fell_back {
        // The function cannot stage; attribute its eager dispatch cost.
        let runs = opts.runs.max(1) as u64;
        let start = Instant::now();
        for _ in 0..runs {
            let args: Vec<Value> = feeds
                .iter()
                .map(|(_, t)| Value::tensor(t.clone()))
                .collect();
            rt.call(&opts.func, args)
                .map_err(|e| format!("eager fallback call: {e}"))?;
        }
        let eager_ns = start.elapsed().as_nanos() as u64;
        for fb in &mut fallbacks {
            if fb.warning.function == opts.func {
                fb.eager_ns = eager_ns;
                fb.calls = runs;
            }
        }
        return Ok(Explain {
            source: source.to_string(),
            func: opts.func.clone(),
            staged: None,
            warnings,
            fallbacks,
            lines: Vec::new(),
            coverage: Coverage::default(),
        });
    }

    let staged = rt
        .stage_to_graph(
            &opts.func,
            feeds
                .iter()
                .map(|(n, _)| GraphArg::Placeholder(n.clone()))
                .collect(),
        )
        .map_err(|e| format!("stage: {e}"))?;
    let (graph, outputs, _stats, trace) = optimize_traced(&staged.graph, &staged.outputs);
    autograph_graph::shapes::validate(&graph).map_err(|e| format!("shapes: {e}"))?;

    let mut sess = Session::new(graph.clone());
    sess.set_threads(opts.threads.max(1));
    sess.set_reporting(true);
    let feed_refs: Vec<(&str, Tensor)> =
        feeds.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
    for _ in 0..opts.runs.max(1) {
        sess.run(&feed_refs, &outputs)
            .map_err(|e| format!("run: {e}"))?;
    }
    let report = sess
        .last_report()
        .cloned()
        .ok_or_else(|| "reporting enabled but no report collected".to_string())?;

    // ---- fold node costs onto source lines --------------------------------
    let cp_nodes: HashSet<NodeId> = report.critical_path.nodes.iter().map(|c| c.node).collect();
    let mut per_line: BTreeMap<u32, LineCost> = BTreeMap::new();
    let mut coverage = Coverage::default();
    for c in &report.node_costs {
        coverage.total_nodes += 1;
        coverage.total_self_ns += c.self_ns;
        if c.span.is_synthetic() {
            continue;
        }
        coverage.attributed_nodes += 1;
        coverage.attributed_self_ns += c.self_ns;
        let entry = per_line.entry(c.span.line).or_insert(LineCost {
            line: c.span.line,
            self_ns: 0,
            alloc_bytes: 0,
            evals: 0,
            nodes: 0,
            on_critical_path: false,
        });
        entry.self_ns += c.self_ns;
        entry.alloc_bytes += c.alloc_bytes;
        entry.evals += c.evals;
        entry.nodes += 1;
        entry.on_critical_path |= cp_nodes.contains(&c.node);
    }

    Ok(Explain {
        source: source.to_string(),
        func: opts.func.clone(),
        staged: Some(StagedExplain {
            graph,
            outputs,
            trace,
            report,
        }),
        warnings,
        fallbacks,
        lines: per_line.into_values().collect(),
        coverage,
    })
}

impl Explain {
    /// The annotated-source rendering: each line with its cumulative
    /// time, allocation, eval count, and a `CP` marker when it sits on
    /// the critical path; fallback warnings appear under the line that
    /// caused them.
    pub fn annotated_source(&self) -> String {
        let mut by_line: BTreeMap<u32, &LineCost> = BTreeMap::new();
        for lc in &self.lines {
            by_line.insert(lc.line, lc);
        }
        let mut out = String::new();
        out.push_str(&format!(
            "annotated source for '{}' (time | alloc | evals, CP = on critical path):\n",
            self.func
        ));
        for (i, text) in self.source.lines().enumerate() {
            let line = i as u32 + 1;
            match by_line.get(&line) {
                Some(lc) => out.push_str(&format!(
                    "{:>4} | {:<48} {:>10} {:>10} {:>6}{}\n",
                    line,
                    text.trim_end(),
                    ms(lc.self_ns),
                    kb(lc.alloc_bytes),
                    lc.evals,
                    if lc.on_critical_path { "  CP" } else { "" },
                )),
                None => out.push_str(&format!("{line:>4} | {}\n", text.trim_end())),
            }
            for w in &self.warnings {
                if w.span.line == line {
                    out.push_str(&format!(
                        "     ! falls back to eager: {} (col {})\n",
                        w.reason, w.span.col
                    ));
                }
            }
        }
        out.push_str(&format!(
            "attribution: {:.1}% of node self-time ({}/{} executed nodes) mapped to source lines\n",
            self.coverage.time_fraction() * 100.0,
            self.coverage.attributed_nodes,
            self.coverage.total_nodes,
        ));
        out
    }

    /// The plan dump as text: every optimized node with its span and
    /// rewrite lineage, then what the optimizer removed.
    pub fn plan_text(&self) -> String {
        let mut out = String::new();
        let Some(staged) = &self.staged else {
            out.push_str(&format!(
                "no plan: '{}' fell back to eager execution\n",
                self.func
            ));
            return out;
        };
        out.push_str(&format!(
            "optimized plan for '{}' ({} nodes, outputs {:?}):\n",
            self.func,
            staged.graph.nodes.len(),
            staged.outputs
        ));
        for (i, n) in staged.graph.nodes.iter().enumerate() {
            out.push_str(&format!(
                "  {:>4} {:<28} {:<12} @ {:<8} <- {:?}",
                i,
                n.name,
                n.op.mnemonic(),
                n.span.to_string(),
                n.inputs
            ));
            let lineage = n.lineage();
            if !lineage.is_empty() {
                out.push_str(&format!("  [{lineage}]"));
            }
            out.push('\n');
        }
        if !staged.trace.eliminated.is_empty() {
            out.push_str("removed by optimizer:\n");
            for e in &staged.trace.eliminated {
                match &e.merged_into {
                    Some(into) => out.push_str(&format!(
                        "  {:<6} {:<28} {:<12} @ {:<8} merged into {}\n",
                        e.pass,
                        e.name,
                        e.op,
                        e.span.to_string(),
                        into
                    )),
                    None => out.push_str(&format!(
                        "  {:<6} {:<28} {:<12} @ {}\n",
                        e.pass, e.name, e.op, e.span
                    )),
                }
            }
        }
        out
    }

    /// The plan as Graphviz DOT (node labels carry span + lineage).
    pub fn plan_dot(&self) -> String {
        match &self.staged {
            Some(staged) => staged.graph.to_dot(),
            None => String::from("digraph g {\n}\n"),
        }
    }

    /// The fallback/graph-break report: every conversion warning with
    /// its exact source construct and attributed runtime cost.
    pub fn fallback_report(&self) -> String {
        if self.warnings.is_empty() {
            return "no fallbacks: every function converted\n".to_string();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{} fallback(s) to eager execution:\n",
            self.warnings.len()
        ));
        for fb in &self.fallbacks {
            let w = &fb.warning;
            out.push_str(&format!(
                "  function '{}' at {}: {}\n",
                w.function, w.span, w.reason
            ));
            if let Some(line) = &w.source_line {
                out.push_str(&format!("      {} | {}\n", w.span.line, line));
            }
            if fb.calls > 0 {
                out.push_str(&format!(
                    "      runtime cost: {} over {} eager call(s)\n",
                    ms(fb.eager_ns),
                    fb.calls
                ));
            } else {
                out.push_str("      runtime cost: not invoked by this run\n");
            }
        }
        out
    }

    /// One-paragraph summary: wall time, coverage, fallback count.
    pub fn summary(&self) -> String {
        match &self.staged {
            Some(staged) => format!(
                "explained '{}': wall {} · {} executed nodes · attribution {:.1}% by time ({:.1}% by node) · {} fallback(s)\n",
                self.func,
                ms(staged.report.wall_ns),
                self.coverage.total_nodes,
                self.coverage.time_fraction() * 100.0,
                self.coverage.node_fraction() * 100.0,
                self.warnings.len(),
            ),
            None => format!(
                "explained '{}': fell back to eager execution · {} fallback(s)\n",
                self.func,
                self.warnings.len(),
            ),
        }
    }
}

/// Parse a feed spec (`scalar:2.5`, `int:7`, `vec:1,2,3`,
/// `mat:2x2:1,2,3,4`) into a tensor.
///
/// # Errors
///
/// Returns a usage message for malformed specs.
pub fn parse_feed_spec(spec: &str) -> Result<Tensor, String> {
    let err = |m: &str| format!("bad feed spec '{spec}': {m}");
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| err("expected kind:data"))?;
    match kind {
        "scalar" => {
            let v: f32 = rest.parse().map_err(|_| err("not a float"))?;
            Ok(Tensor::scalar_f32(v))
        }
        "int" => {
            let v: i64 = rest.parse().map_err(|_| err("not an int"))?;
            Ok(Tensor::scalar_i64(v))
        }
        "vec" => {
            let vals: Vec<f32> = rest
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| err("not a float list")))
                .collect::<Result<_, _>>()?;
            let n = vals.len();
            Tensor::from_vec(vals, &[n]).map_err(|e| err(&e.to_string()))
        }
        "mat" => {
            let (dims, data) = rest.split_once(':').ok_or_else(|| err("mat:RxC:data"))?;
            let (r, c) = dims.split_once('x').ok_or_else(|| err("RxC"))?;
            let r: usize = r.parse().map_err(|_| err("bad rows"))?;
            let c: usize = c.parse().map_err(|_| err("bad cols"))?;
            let vals: Vec<f32> = data
                .split(',')
                .map(|s| s.trim().parse().map_err(|_| err("not a float list")))
                .collect::<Result<_, _>>()?;
            if vals.len() != r * c {
                return Err(err("data length != rows*cols"));
            }
            Tensor::from_vec(vals, &[r, c]).map_err(|e| err(&e.to_string()))
        }
        _ => Err(err("unknown kind (scalar|int|vec|mat)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
def f(x):
    total = tf.constant(0.0)
    i = 0
    while i < 8:
        total = total + tf.reduce_mean(x * x)
        x = x * 0.9
        i = i + 1
    return total
";

    fn feeds() -> Vec<(String, Tensor)> {
        vec![(
            "x".to_string(),
            Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap(),
        )]
    }

    #[test]
    fn explains_staged_program_with_full_attribution() {
        let opts = ExplainOptions {
            runs: 1,
            ..Default::default()
        };
        let ex = explain_source(SRC, &feeds(), &opts).unwrap();
        assert!(ex.staged.is_some());
        assert!(ex.coverage.total_nodes > 0);
        assert_eq!(
            ex.coverage.attributed_nodes, ex.coverage.total_nodes,
            "all executed top-level nodes resolve to source lines"
        );
        assert!(ex.coverage.time_fraction() >= 0.95);
        let ann = ex.annotated_source();
        assert!(ann.contains("while i < 8"), "{ann}");
        assert!(ann.contains("attribution:"), "{ann}");
        assert!(ann.contains("CP"), "critical path marked: {ann}");
        let dot = ex.plan_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains('@'), "spans in dot labels: {dot}");
        assert!(ex.summary().contains("attribution"));
    }

    #[test]
    fn fallback_report_lists_warning_with_span_and_cost() {
        // append buried in a tuple is unstageable (lists pass) but runs
        // fine eagerly, so FallbackToEager degrades with a warning.
        let src = "\
def f(x):
    l = []
    y = (l.append(x), 0)
    return x * 2.0
";
        let opts = ExplainOptions {
            runs: 1,
            ..Default::default()
        };
        let ex = explain_source(src, &[("x".to_string(), Tensor::scalar_f32(1.0))], &opts)
            .expect("eager fallback still explains");
        assert!(ex.staged.is_none());
        assert_eq!(ex.warnings.len(), 1);
        let report = ex.fallback_report();
        assert!(
            report.contains("falls back") || report.contains("fallback"),
            "{report}"
        );
        assert!(report.contains("3:"), "span rendered: {report}");
        assert!(report.contains("l.append"), "construct quoted: {report}");
        assert!(report.contains("eager call"), "cost attributed: {report}");
        let ann = ex.annotated_source();
        assert!(ann.contains("! falls back to eager"), "{ann}");
    }

    #[test]
    fn feed_specs_parse() {
        assert_eq!(
            parse_feed_spec("scalar:2.5").unwrap().scalar_value_f32(),
            Ok(2.5)
        );
        assert_eq!(parse_feed_spec("vec:1,2,3").unwrap().shape(), &[3]);
        assert_eq!(parse_feed_spec("mat:2x2:1,2,3,4").unwrap().shape(), &[2, 2]);
        assert!(parse_feed_spec("mat:2x2:1,2,3").is_err());
        assert!(parse_feed_spec("nope:1").is_err());
    }
}
