//! `autograph-explain` — attribute runtime cost back to PyLite source.
//!
//! ```text
//! autograph-explain FILE --feed x=vec:1,2,3 [--func f] [--threads N]
//!                   [--runs N] [--min-coverage PCT] [--dot PATH] [--plan]
//! ```
//!
//! Prints the annotated source and fallback report; `--plan` adds the
//! plan dump, `--dot PATH` writes Graphviz. Exits 1 when time-based
//! attribution falls below `--min-coverage`, 2 on usage errors.

use autograph_explain::{explain_source, parse_feed_spec, ExplainOptions};
use autograph_tensor::Tensor;
use std::process::ExitCode;

const USAGE: &str = "usage: autograph-explain FILE --feed name=SPEC... [--func f] \
[--threads N] [--runs N] [--min-coverage PCT] [--dot PATH] [--plan]
  SPEC: scalar:V | int:V | vec:a,b,c | mat:RxC:v1,v2,...";

struct Cli {
    file: String,
    feeds: Vec<(String, Tensor)>,
    opts: ExplainOptions,
    min_coverage: Option<f64>,
    dot: Option<String>,
    plan: bool,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut file = None;
    let mut feeds = Vec::new();
    let mut opts = ExplainOptions::default();
    let mut min_coverage = None;
    let mut dot = None;
    let mut plan = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--feed" => {
                let spec = take("--feed")?;
                let (name, tspec) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("--feed expects name=SPEC, got '{spec}'"))?;
                feeds.push((name.to_string(), parse_feed_spec(tspec)?));
            }
            "--func" => opts.func = take("--func")?,
            "--threads" => {
                opts.threads = take("--threads")?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
            }
            "--runs" => {
                opts.runs = take("--runs")?
                    .parse()
                    .map_err(|_| "--runs expects a positive integer".to_string())?;
            }
            "--min-coverage" => {
                let pct: f64 = take("--min-coverage")?
                    .parse()
                    .map_err(|_| "--min-coverage expects a percentage".to_string())?;
                min_coverage = Some(pct / 100.0);
            }
            "--dot" => dot = Some(take("--dot")?),
            "--plan" => plan = true,
            "-h" | "--help" => return Err(String::new()),
            other if file.is_none() && !other.starts_with('-') => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Cli {
        file: file.ok_or_else(|| "missing FILE".to_string())?,
        feeds,
        opts,
        min_coverage,
        dot,
        plan,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", cli.file);
            return ExitCode::from(2);
        }
    };

    let ex = match explain_source(&source, &cli.feeds, &cli.opts) {
        Ok(ex) => ex,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", ex.summary());
    println!();
    print!("{}", ex.annotated_source());
    println!();
    print!("{}", ex.fallback_report());
    if cli.plan {
        println!();
        print!("{}", ex.plan_text());
    }
    if let Some(path) = &cli.dot {
        if let Err(e) = std::fs::write(path, ex.plan_dot()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote plan DOT to {path}");
    }

    if let Some(min) = cli.min_coverage {
        let frac = ex.coverage.time_fraction();
        if frac < min {
            eprintln!(
                "FAIL: attribution {:.1}% below required {:.1}%",
                frac * 100.0,
                min * 100.0
            );
            return ExitCode::from(1);
        }
        eprintln!(
            "attribution gate: {:.1}% >= {:.1}% required",
            frac * 100.0,
            min * 100.0
        );
    }
    ExitCode::SUCCESS
}
