//! Table 3 — TreeLSTM for sentiment classification (§9.1).
//!
//! The model embeds binary parse trees by recursively embedding the
//! left/right subtrees and combining the `(c, h)` states through an LSTM
//! cell; the root embedding feeds a classifier. It is naturally expressed
//! with *recursive functions*, which the TensorFlow graph IR cannot
//! represent — the reason the paper targets Lantern here.
//!
//! Two configurations:
//!
//! * **Eager ("PyTorch")** — the recursion interpreted per example, with
//!   tape-based autodiff; gradients re-recorded every step.
//! * **AutoGraph → Lantern** — the same source staged *once* into the
//!   Lantern IR (one `(def ...)` with a `(call ...)` at the recursion
//!   sites), compiled, then evaluated with CPS-style reverse AD per
//!   example.

use autograph_eager::EagerTensor;
use autograph_lantern::value::LValue;
use autograph_lantern::{Engine, Program};
use autograph_runtime::runtime::LanternArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{Rng64, Tensor};
use std::rc::Rc;

/// The recursive TreeLSTM in imperative PyLite.
pub const TREELSTM_SRC: &str = "\
def leaf_state(x):
    c = tf.tanh(tf.matmul(x, w_lc) + b_lc)
    h = tf.tanh(tf.matmul(x, w_lh) + b_lh)
    return c, h

def tree_lstm(tree):
    if tree.is_leaf:
        return leaf_state(tree.embedding)
    cl, hl = tree_lstm(tree.left)
    cr, hr = tree_lstm(tree.right)
    hc = tf.concat([hl, hr], 1)
    i = tf.sigmoid(tf.matmul(hc, w_i) + b_i)
    fl = tf.sigmoid(tf.matmul(hc, w_fl) + b_f)
    fr = tf.sigmoid(tf.matmul(hc, w_fr) + b_f)
    o = tf.sigmoid(tf.matmul(hc, w_o) + b_o)
    g = tf.tanh(tf.matmul(hc, w_g) + b_g)
    c = i * g + fl * cl + fr * cr
    h = o * tf.tanh(c)
    return c, h

def sentiment_loss(tree, label):
    c, h = tree_lstm(tree)
    logits = tf.matmul(h, w_out) + b_out
    return tf.softmax_cross_entropy(logits, label)
";

/// All trainable weights, by name (order fixed for gradient updates).
#[derive(Debug, Clone)]
pub struct TreeWeights {
    /// `(name, tensor)` pairs.
    pub params: Vec<(String, Tensor)>,
}

impl TreeWeights {
    /// Deterministic init. `dim`: embedding and hidden size; `classes`:
    /// sentiment classes (the paper's task uses binary labels).
    pub fn new(dim: usize, classes: usize, seed: u64) -> TreeWeights {
        let mut rng = Rng64::new(seed);
        let mut p = Vec::new();
        let mut add = |name: &str, shape: &[usize], std: f32, rng: &mut Rng64| {
            p.push((name.to_string(), rng.normal_tensor(shape, std)));
        };
        add("w_lc", &[dim, dim], 0.3, &mut rng);
        add("b_lc", &[dim], 0.05, &mut rng);
        add("w_lh", &[dim, dim], 0.3, &mut rng);
        add("b_lh", &[dim], 0.05, &mut rng);
        for g in ["w_i", "w_fl", "w_fr", "w_o", "w_g"] {
            add(g, &[2 * dim, dim], 0.3, &mut rng);
        }
        add("b_i", &[dim], 0.05, &mut rng);
        add("b_f", &[dim], 0.05, &mut rng);
        add("b_o", &[dim], 0.05, &mut rng);
        add("b_g", &[dim], 0.05, &mut rng);
        add("w_out", &[dim, classes], 0.3, &mut rng);
        add("b_out", &[classes], 0.0, &mut rng);
        TreeWeights { params: p }
    }

    /// Apply an SGD update given gradients in `params` order.
    pub fn sgd(&mut self, grads: &[Tensor], lr: f32) {
        let lr = Tensor::scalar_f32(lr);
        for ((_, w), g) in self.params.iter_mut().zip(grads) {
            let step = g.mul(&lr).expect("grad shapes");
            *w = w.sub(&step).expect("grad shapes");
        }
    }
}

/// Load the module with weights bound as eager-tensor globals
/// (the eager/"PyTorch" configuration).
///
/// # Errors
///
/// Propagates load errors.
pub fn eager_runtime(weights: &TreeWeights) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(TREELSTM_SRC, false)?;
    for (name, t) in &weights.params {
        rt.globals.set(name, Value::tensor(t.clone()));
    }
    Ok(rt)
}

/// One eager training step: record a tape over the interpreted recursion,
/// compute weight gradients, apply SGD. Returns the loss.
///
/// # Errors
///
/// Propagates interpreter/tape errors.
pub fn eager_train_step(
    rt: &mut Runtime,
    tree: &Value,
    label: &Tensor,
    weights: &mut TreeWeights,
    lr: f32,
) -> Result<f32, RuntimeError> {
    rt.interp.eager.start_tape();
    let mut watched: Vec<EagerTensor> = Vec::with_capacity(weights.params.len());
    for (name, t) in &weights.params {
        let w = rt.interp.eager.watch(&EagerTensor::from(t.clone()))?;
        rt.globals.set(name, Value::Tensor(w.clone()));
        watched.push(w);
    }
    let out = rt.call(
        "sentiment_loss",
        vec![tree.clone(), Value::tensor(label.clone())],
    )?;
    let loss = match out {
        Value::Tensor(t) => t,
        other => {
            return Err(RuntimeError::new(format!(
                "loss must be a tensor, got {}",
                other.kind()
            )))
        }
    };
    let refs: Vec<&EagerTensor> = watched.iter().collect();
    let grads = rt.interp.eager.gradient(&loss, &refs)?;
    weights.sgd(&grads, lr);
    Ok(loss.tensor().scalar_value_f32()?)
}

/// Stage the model into a Lantern program: weights become `(param name)`
/// leaves, the tree and label are externs. Done once; the compiled program
/// then trains any number of examples.
///
/// # Errors
///
/// Propagates staging/compilation errors.
pub fn stage_lantern(weights: &TreeWeights) -> Result<Program, RuntimeError> {
    let mut rt = Runtime::load(TREELSTM_SRC, true)?;
    for (name, _) in &weights.params {
        rt.globals.set(
            name,
            Value::Lantern(Rc::new(autograph_lantern::sexpr::SExpr::list(vec![
                autograph_lantern::sexpr::SExpr::sym("param"),
                autograph_lantern::sexpr::SExpr::sym(name.clone()),
            ]))),
        );
    }
    rt.stage_to_lantern(
        "sentiment_loss",
        vec![
            LanternArg::Extern("tree".into()),
            LanternArg::Extern("label".into()),
        ],
    )
}

/// One Lantern training step on a compiled engine.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn lantern_train_step(
    engine: &Engine,
    tree: &LValue,
    label: &Tensor,
    weights: &mut TreeWeights,
    lr: f32,
) -> Result<f32, autograph_lantern::LanternError> {
    let params: Vec<(&str, Tensor)> = weights
        .params
        .iter()
        .map(|(n, t)| (n.as_str(), t.clone()))
        .collect();
    let (loss, grads_by_program) = engine.grad(
        &[
            ("tree", tree.clone()),
            ("label", LValue::tensor(label.clone())),
        ],
        &params,
    )?;
    // engine returns grads in program param order; map back to our order
    let names = &engine.program().param_names;
    let mut grads = Vec::with_capacity(weights.params.len());
    for (n, t) in &weights.params {
        match names.iter().position(|p| p == n) {
            Some(i) => grads.push(grads_by_program[i].clone()),
            None => grads.push(Tensor::zeros(autograph_tensor::DType::F32, t.shape())),
        }
    }
    weights.sgd(&grads, lr);
    Ok(loss.scalar_value_f32()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{random_tree_lantern, random_tree_value};

    #[test]
    fn eager_and_lantern_losses_match() {
        let dim = 4;
        let weights = TreeWeights::new(dim, 2, 11);
        // identical tree shape/content in both value systems
        let mut rng1 = Rng64::new(33);
        let tree_v = random_tree_value(&mut rng1, 5, dim);
        let mut rng2 = Rng64::new(33);
        let tree_l = random_tree_lantern(&mut rng2, 5, dim);
        let label = Tensor::from_vec_i64(vec![1], &[1]).unwrap();

        // eager forward (no update: lr = 0)
        let mut rt = eager_runtime(&weights).unwrap();
        let mut w1 = weights.clone();
        let eager_loss = eager_train_step(&mut rt, &tree_v, &label, &mut w1, 0.0).unwrap();

        // lantern forward
        let program = stage_lantern(&weights).unwrap();
        // sentiment_loss, tree_lstm and leaf_state staged exactly once
        // each — the two recursive call sites share one definition
        assert_eq!(program.funcs.len(), 3);
        assert_eq!(
            program
                .funcs
                .iter()
                .filter(|f| f.name.starts_with("tree_lstm"))
                .count(),
            1
        );
        let engine = Engine::new(program);
        let mut w2 = weights.clone();
        let lantern_loss = lantern_train_step(&engine, &tree_l, &label, &mut w2, 0.0).unwrap();

        assert!(
            (eager_loss - lantern_loss).abs() < 1e-4,
            "{eager_loss} vs {lantern_loss}"
        );
    }

    #[test]
    fn gradients_agree_between_backends() {
        let dim = 3;
        let weights = TreeWeights::new(dim, 2, 5);
        let mut rng1 = Rng64::new(77);
        let tree_v = random_tree_value(&mut rng1, 4, dim);
        let mut rng2 = Rng64::new(77);
        let tree_l = random_tree_lantern(&mut rng2, 4, dim);
        let label = Tensor::from_vec_i64(vec![0], &[1]).unwrap();
        let lr = 0.1;

        let mut rt = eager_runtime(&weights).unwrap();
        let mut w_eager = weights.clone();
        eager_train_step(&mut rt, &tree_v, &label, &mut w_eager, lr).unwrap();

        let engine = Engine::new(stage_lantern(&weights).unwrap());
        let mut w_lantern = weights.clone();
        lantern_train_step(&engine, &tree_l, &label, &mut w_lantern, lr).unwrap();

        for ((n, a), (_, b)) in w_eager.params.iter().zip(&w_lantern.params) {
            for (x, y) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
                assert!((x - y).abs() < 1e-4, "weight {n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let dim = 4;
        let mut weights = TreeWeights::new(dim, 2, 9);
        let mut rng = Rng64::new(21);
        let tree = random_tree_lantern(&mut rng, 6, dim);
        let label = Tensor::from_vec_i64(vec![1], &[1]).unwrap();
        let engine = Engine::new(stage_lantern(&weights).unwrap());
        let first = lantern_train_step(&engine, &tree, &label, &mut weights, 0.2).unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = lantern_train_step(&engine, &tree, &label, &mut weights, 0.2).unwrap();
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }
}
