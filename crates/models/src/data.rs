//! Deterministic synthetic data (the substitutions table in DESIGN.md:
//! MNIST-shaped batches and random parse trees replace the proprietary /
//! external datasets; only shapes and distributions matter for the
//! throughput experiments).

use autograph_runtime::Value;
use autograph_tensor::{Rng64, Tensor};

/// MNIST-shaped synthetic batches: `num_batches` batches of
/// (`[batch, 784]` f32 images in [0,1), `[batch]` i64 labels in [0,10)).
pub fn synthetic_mnist(num_batches: usize, batch: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng64::new(seed);
    let images = rng.uniform_tensor(&[num_batches, batch, 784], 0.0, 1.0);
    let labels = rng.labels_tensor(&[num_batches, batch], 10);
    (images, labels)
}

/// A synthetic binary parse tree with embedded leaves, as a runtime
/// record value (fields: `is_leaf`, `left`, `right`, `embedding`).
pub fn random_tree_value(rng: &mut Rng64, leaves: usize, dim: usize) -> Value {
    if leaves <= 1 {
        return Value::record(vec![
            ("is_leaf", Value::Bool(true)),
            (
                "embedding",
                Value::tensor(rng.normal_tensor(&[1, dim], 0.5)),
            ),
        ]);
    }
    let left_n = 1 + (rng.next_below((leaves - 1) as u64) as usize);
    let left = random_tree_value(rng, left_n, dim);
    let right = random_tree_value(rng, leaves - left_n, dim);
    Value::record(vec![
        ("is_leaf", Value::Bool(false)),
        ("left", left),
        ("right", right),
    ])
}

/// The same tree shape as a Lantern record value (for the Lantern engine).
pub fn random_tree_lantern(
    rng: &mut Rng64,
    leaves: usize,
    dim: usize,
) -> autograph_lantern::value::LValue {
    use autograph_lantern::value::{LValue, Record};
    if leaves <= 1 {
        return LValue::Record(Record::new(vec![
            ("is_leaf", LValue::Bool(true)),
            (
                "embedding",
                LValue::tensor(rng.normal_tensor(&[1, dim], 0.5)),
            ),
        ]));
    }
    let left_n = 1 + (rng.next_below((leaves - 1) as u64) as usize);
    let left = random_tree_lantern(rng, left_n, dim);
    let right = random_tree_lantern(rng, leaves - left_n, dim);
    LValue::Record(Record::new(vec![
        ("is_leaf", LValue::Bool(false)),
        ("left", left),
        ("right", right),
    ]))
}

/// Random token sequences `[batch, len]` (i64 ids in `[0, vocab)`).
pub fn random_tokens(rng: &mut Rng64, batch: usize, len: usize, vocab: usize) -> Tensor {
    rng.labels_tensor(&[batch, len], vocab as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnist_shapes_and_determinism() {
        let (im, lab) = synthetic_mnist(3, 16, 7);
        assert_eq!(im.shape(), &[3, 16, 784]);
        assert_eq!(lab.shape(), &[3, 16]);
        let (im2, _) = synthetic_mnist(3, 16, 7);
        assert_eq!(im.as_f32().unwrap(), im2.as_f32().unwrap());
        assert!(lab.as_i64().unwrap().iter().all(|&l| (0..10).contains(&l)));
    }

    #[test]
    fn trees_have_requested_leaf_count() {
        fn count(v: &Value) -> usize {
            match v {
                Value::Record(f) => {
                    let f = f.borrow();
                    if matches!(f.get("is_leaf"), Some(Value::Bool(true))) {
                        1
                    } else {
                        count(f.get("left").unwrap()) + count(f.get("right").unwrap())
                    }
                }
                _ => panic!("expected record"),
            }
        }
        let mut rng = Rng64::new(3);
        for leaves in [1, 2, 7, 20] {
            let t = random_tree_value(&mut rng, leaves, 4);
            assert_eq!(count(&t), leaves);
        }
    }

    #[test]
    fn token_bounds() {
        let mut rng = Rng64::new(9);
        let t = random_tokens(&mut rng, 4, 16, 100);
        assert!(t.as_i64().unwrap().iter().all(|&x| (0..100).contains(&x)));
    }
}
