//! Appendix D.3 — Model-Agnostic Meta-Learning (MAML) on the sinusoid
//! regression task of Finn et al. (2017).
//!
//! The meta-batch loop (`for t in range(num_tasks)`) iterates a Python
//! hyperparameter, so AutoGraph *unrolls* it at staging time — each task's
//! inner adaptation plus query loss becomes straight-line graph code with
//! `tf.gradients` inside. First-order MAML in both configurations (eager
//! tape / staged symbolic), as DESIGN.md documents.

use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{Rng64, Tensor};

/// The imperative MAML meta-step.
pub const MAML_SRC: &str = "\
def mlp(x, w1, b1, w2, b2, w3, b3):
    h1 = tf.relu(tf.matmul(x, w1) + b1)
    h2 = tf.relu(tf.matmul(h1, w2) + b2)
    return tf.matmul(h2, w3) + b3

def mse(pred, y):
    return tf.reduce_mean(tf.square(pred - y))

def task_grads(x, y, w1, b1, w2, b2, w3, b3):
    if use_tape:
        tf.tape_begin()
        w1 = tf.watch(w1)
        b1 = tf.watch(b1)
        w2 = tf.watch(w2)
        b2 = tf.watch(b2)
        w3 = tf.watch(w3)
        b3 = tf.watch(b3)
        loss = mse(mlp(x, w1, b1, w2, b2, w3, b3), y)
        return tf.grad(loss, [w1, b1, w2, b2, w3, b3])
    loss = mse(mlp(x, w1, b1, w2, b2, w3, b3), y)
    return tf.gradients(loss, [w1, b1, w2, b2, w3, b3])

def maml_step(xs, ys, xq, yq, w1, b1, w2, b2, w3, b3):
    gw1 = w1 * 0.0
    gb1 = b1 * 0.0
    gw2 = w2 * 0.0
    gb2 = b2 * 0.0
    gw3 = w3 * 0.0
    gb3 = b3 * 0.0
    total = 0.0
    for t in range(num_tasks):
        g = task_grads(xs[t], ys[t], w1, b1, w2, b2, w3, b3)
        aw1 = w1 - inner_lr * g[0]
        ab1 = b1 - inner_lr * g[1]
        aw2 = w2 - inner_lr * g[2]
        ab2 = b2 - inner_lr * g[3]
        aw3 = w3 - inner_lr * g[4]
        ab3 = b3 - inner_lr * g[5]
        if second_order:
            qloss = mse(mlp(xq[t], aw1, ab1, aw2, ab2, aw3, ab3), yq[t])
            q = tf.gradients(qloss, [w1, b1, w2, b2, w3, b3])
        else:
            q = task_grads(xq[t], yq[t], aw1, ab1, aw2, ab2, aw3, ab3)
        gw1 = gw1 + q[0]
        gb1 = gb1 + q[1]
        gw2 = gw2 + q[2]
        gb2 = gb2 + q[3]
        gw3 = gw3 + q[4]
        gb3 = gb3 + q[5]
        total = total + mse(mlp(xq[t], aw1, ab1, aw2, ab2, aw3, ab3), yq[t])
    w1 = w1 - meta_lr * gw1 / num_tasks
    b1 = b1 - meta_lr * gb1 / num_tasks
    w2 = w2 - meta_lr * gw2 / num_tasks
    b2 = b2 - meta_lr * gb2 / num_tasks
    w3 = w3 - meta_lr * gw3 / num_tasks
    b3 = b3 - meta_lr * gb3 / num_tasks
    return w1, b1, w2, b2, w3, b3, total / num_tasks
";

/// MLP meta-parameters (1 → hidden → hidden → 1).
#[derive(Debug, Clone)]
pub struct MamlParams {
    /// Weights/biases in `maml_step` argument order.
    pub params: Vec<Tensor>,
}

impl MamlParams {
    /// Deterministic init.
    pub fn new(hidden: usize, seed: u64) -> MamlParams {
        let mut rng = Rng64::new(seed);
        MamlParams {
            params: vec![
                rng.normal_tensor(&[1, hidden], 0.5),
                rng.normal_tensor(&[hidden], 0.05),
                rng.normal_tensor(&[hidden, hidden], 0.3),
                rng.normal_tensor(&[hidden], 0.05),
                rng.normal_tensor(&[hidden, 1], 0.3),
                rng.normal_tensor(&[1], 0.0),
            ],
        }
    }
}

/// A meta-batch of sinusoid tasks: support/query sets
/// `[tasks, k, 1]`.
#[derive(Debug, Clone)]
pub struct TaskBatch {
    /// Support inputs.
    pub xs: Tensor,
    /// Support targets.
    pub ys: Tensor,
    /// Query inputs.
    pub xq: Tensor,
    /// Query targets.
    pub yq: Tensor,
}

/// Sample sinusoid tasks `y = A sin(x + phase)`.
pub fn sample_tasks(num_tasks: usize, k: usize, seed: u64) -> TaskBatch {
    let mut rng = Rng64::new(seed);
    let make = |rng: &mut Rng64, amp: f32, phase: f32, k: usize| -> (Vec<f32>, Vec<f32>) {
        let xs: Vec<f32> = (0..k).map(|_| rng.next_f32() * 10.0 - 5.0).collect();
        let ys: Vec<f32> = xs.iter().map(|&x| amp * (x + phase).sin()).collect();
        (xs, ys)
    };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut xq = Vec::new();
    let mut yq = Vec::new();
    for _ in 0..num_tasks {
        let amp = 0.1 + rng.next_f32() * 4.9;
        let phase = rng.next_f32() * std::f32::consts::PI;
        let (sx, sy) = make(&mut rng, amp, phase, k);
        let (qx, qy) = make(&mut rng, amp, phase, k);
        xs.extend(sx);
        ys.extend(sy);
        xq.extend(qx);
        yq.extend(qy);
    }
    let shape = &[num_tasks, k, 1];
    TaskBatch {
        xs: Tensor::from_vec(xs, shape).expect("shape"),
        ys: Tensor::from_vec(ys, shape).expect("shape"),
        xq: Tensor::from_vec(xq, shape).expect("shape"),
        yq: Tensor::from_vec(yq, shape).expect("shape"),
    }
}

/// Load the module with hyperparameters bound.
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime(num_tasks: usize, convert: bool, use_tape: bool) -> Result<Runtime, RuntimeError> {
    runtime_with_order(num_tasks, convert, use_tape, false)
}

/// Like [`runtime`] but selecting second-order meta-gradients: the query
/// loss is differentiated *through* the inner adaptation (gradients of
/// gradients — staged mode only, where symbolic AD composes).
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime_with_order(
    num_tasks: usize,
    convert: bool,
    use_tape: bool,
    second_order: bool,
) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(MAML_SRC, convert)?;
    rt.globals.set("num_tasks", Value::Int(num_tasks as i64));
    rt.globals.set("inner_lr", Value::Float(0.01));
    rt.globals.set("meta_lr", Value::Float(0.001));
    rt.globals.set("use_tape", Value::Bool(use_tape));
    rt.globals.set("second_order", Value::Bool(second_order));
    Ok(rt)
}

/// Run one eager meta-step; returns updated params and the mean query
/// loss.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager(
    rt: &mut Runtime,
    batch: &TaskBatch,
    params: &MamlParams,
) -> Result<(MamlParams, f32), RuntimeError> {
    let mut args = vec![
        Value::tensor(batch.xs.clone()),
        Value::tensor(batch.ys.clone()),
        Value::tensor(batch.xq.clone()),
        Value::tensor(batch.yq.clone()),
    ];
    args.extend(params.params.iter().map(|t| Value::tensor(t.clone())));
    let out = rt.call("maml_step", args)?;
    match out {
        Value::Tuple(items) => {
            let new_params: Vec<Tensor> = items[..6]
                .iter()
                .map(|v| v.as_eager_tensor())
                .collect::<Result<_, _>>()?;
            let loss = items[6].as_eager_tensor()?.scalar_value_f32()?;
            Ok((MamlParams { params: new_params }, loss))
        }
        other => Err(RuntimeError::new(format!(
            "expected meta-step tuple, got {}",
            other.kind()
        ))),
    }
}

/// Stage the meta-step (placeholders: data + each parameter).
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage(rt: &mut Runtime) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    let names = ["xs", "ys", "xq", "yq", "w1", "b1", "w2", "b2", "w3", "b3"];
    rt.stage_to_graph(
        "maml_step",
        names
            .iter()
            .map(|n| GraphArg::Placeholder((*n).to_string()))
            .collect(),
    )
}

/// Feed list for a staged meta-step.
pub fn feeds<'a>(batch: &'a TaskBatch, params: &'a MamlParams) -> Vec<(&'static str, Tensor)> {
    vec![
        ("xs", batch.xs.clone()),
        ("ys", batch.ys.clone()),
        ("xq", batch.xq.clone()),
        ("yq", batch.yq.clone()),
        ("w1", params.params[0].clone()),
        ("b1", params.params[1].clone()),
        ("w2", params.params[2].clone()),
        ("b2", params.params[3].clone()),
        ("w3", params.params[4].clone()),
        ("b3", params.params[5].clone()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_graph::Session;

    #[test]
    fn eager_and_staged_meta_steps_agree() {
        let num_tasks = 2;
        let params = MamlParams::new(8, 3);
        let batch = sample_tasks(num_tasks, 5, 10);

        let mut rt = runtime(num_tasks, false, true).unwrap();
        let (p_eager, loss_eager) = run_eager(&mut rt, &batch, &params).unwrap();

        let mut rt2 = runtime(num_tasks, true, false).unwrap();
        let staged = stage(&mut rt2).unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess.run(&feeds(&batch, &params), &staged.outputs).unwrap();
        let loss_staged = out[6].scalar_value_f32().unwrap();

        assert!(
            (loss_eager - loss_staged).abs() < 1e-3 * (1.0 + loss_eager.abs()),
            "{loss_eager} vs {loss_staged}"
        );
        for (i, (a, b)) in p_eager.params.iter().zip(&out[..6]).enumerate() {
            for (x, y) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
                assert!((x - y).abs() < 1e-3, "param {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn meta_training_improves_query_loss() {
        let num_tasks = 4;
        let mut params = MamlParams::new(8, 5);
        let mut rt = runtime(num_tasks, false, true).unwrap();
        let batch0 = sample_tasks(num_tasks, 10, 100);
        let (_, first) = run_eager(&mut rt, &batch0, &params).unwrap();
        for step in 0..30 {
            let batch = sample_tasks(num_tasks, 10, 200 + step);
            let (p2, _) = run_eager(&mut rt, &batch, &params).unwrap();
            params = p2;
        }
        let (_, last) = run_eager(&mut rt, &batch0, &params).unwrap();
        assert!(last < first, "meta loss {first} -> {last}");
    }

    #[test]
    fn second_order_meta_gradients_stage_and_differ() {
        // gradients-of-gradients through the inner adaptation: a direct
        // payoff of composable symbolic AD (first-order MAML ignores the
        // curvature term, so the two must differ)
        let num_tasks = 2;
        let params = MamlParams::new(6, 3);
        let batch = sample_tasks(num_tasks, 6, 10);

        let mut rt1 = runtime_with_order(num_tasks, true, false, false).unwrap();
        let staged1 = stage(&mut rt1).unwrap();
        let size1 = staged1.graph.deep_len();
        let mut s1 = autograph_graph::Session::new(staged1.graph);
        let first = s1.run(&feeds(&batch, &params), &staged1.outputs).unwrap();

        let mut rt2 = runtime_with_order(num_tasks, true, false, true).unwrap();
        let staged2 = stage(&mut rt2).unwrap();
        let size2 = staged2.graph.deep_len();
        let mut s2 = autograph_graph::Session::new(staged2.graph);
        let second = s2.run(&feeds(&batch, &params), &staged2.outputs).unwrap();

        // same query loss (forward pass identical) ...
        let l1 = first[6].scalar_value_f32().unwrap();
        let l2 = second[6].scalar_value_f32().unwrap();
        assert!((l1 - l2).abs() < 1e-4, "{l1} vs {l2}");
        // ... but different meta-updates (the curvature term)
        let diff: f32 = first[0]
            .as_f32()
            .unwrap()
            .iter()
            .zip(second[0].as_f32().unwrap())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-7, "second-order update must differ: {diff}");
        // second-order graph is strictly larger (the extra grad-of-grad
        // subgraph)
        assert!(size2 > size1);
    }

    #[test]
    fn unrolling_scales_with_num_tasks() {
        // the staged graph grows with the (macro) meta-batch size
        let params = MamlParams::new(4, 1);
        let _ = params;
        let mut rt1 = runtime(1, true, false).unwrap();
        let g1 = stage(&mut rt1).unwrap().graph.deep_len();
        let mut rt4 = runtime(4, true, false).unwrap();
        let g4 = stage(&mut rt4).unwrap().graph.deep_len();
        assert!(g4 > g1 * 2, "unrolled graph should grow: {g1} vs {g4}");
    }
}
