//! Appendix D.2 — L-BFGS.
//!
//! The two-loop recursion iterates over a *fixed-size* history — a Python
//! hyperparameter — so dynamic dispatch unrolls those loops at staging
//! time while the outer iteration loop stages as a single in-graph
//! `while`. History buffers are fixed tensors updated with value-semantics
//! `setitem` (the slice-conversion pass).
//!
//! Objective: least squares `f(x) = mean((A x - b)²)` (the "parameter
//! estimation" workload), with gradients from the tape in eager mode and
//! from `tf.gradients` when staged — chosen by the `use_tape` Python flag,
//! itself an example of hyperparameter macro-programming.

use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{DType, Rng64, Tensor};

/// The imperative L-BFGS optimizer.
pub const LBFGS_SRC: &str = "\
def objective(x):
    return tf.reduce_mean(tf.square(tf.matmul(a_mat, x) - b_vec))

def grad_f(x):
    if use_tape:
        tf.tape_begin()
        xw = tf.watch(x)
        loss = objective(xw)
        g = tf.grad(loss, [xw])
        return g[0]
    loss = objective(x)
    g = tf.gradients(loss, [x])
    return g[0]

def dot(a, b):
    return tf.reduce_sum(a * b)

def lbfgs(x, iters):
    s_hist = tf.zeros((hist, n, 1))
    y_hist = tf.zeros((hist, n, 1))
    rho = tf.zeros((hist,))
    g = grad_f(x)
    k = 0
    while k < iters:
        q = g
        alphas = [0.0, 0.0, 0.0, 0.0, 0.0]
        for j in range(hist):
            idx = (k - 1 - j) % hist
            alpha = rho[idx] * dot(s_hist[idx], q)
            q = q - alpha * y_hist[idx]
            alphas[j] = alpha
        r = q * gamma
        for j2 in range(hist):
            jj = hist - 1 - j2
            idx2 = (k - 1 - jj) % hist
            beta = rho[idx2] * dot(y_hist[idx2], r)
            r = r + s_hist[idx2] * (alphas[jj] - beta)
        x_new = x - lr * r
        g_new = grad_f(x_new)
        s_new = x_new - x
        y_new = g_new - g
        denom = dot(y_new, s_new) + 0.0000001
        slot = k % hist
        s_hist[slot] = s_new
        y_hist[slot] = y_new
        rho[slot] = 1.0 / denom
        x = x_new
        g = g_new
        k = k + 1
    return x, objective(x)
";

/// History length (must match the `alphas` literal in the source).
pub const HIST: usize = 5;

/// Problem instance: minimize `mean((A x - b)^2)`.
#[derive(Debug, Clone)]
pub struct LbfgsProblem {
    /// Data matrix `[m, n]`.
    pub a: Tensor,
    /// Targets `[m, 1]`.
    pub b: Tensor,
    /// Parameter dimension.
    pub n: usize,
}

impl LbfgsProblem {
    /// Deterministic random problem. `batch` scales the number of rows
    /// (the paper's batch-size axis).
    pub fn new(n: usize, batch: usize, seed: u64) -> LbfgsProblem {
        let mut rng = Rng64::new(seed);
        let m = batch * n;
        LbfgsProblem {
            a: rng.normal_tensor(&[m, n], 1.0),
            b: rng.normal_tensor(&[m, 1], 1.0),
            n,
        }
    }
}

/// Load the module with problem data and hyperparameters bound.
/// `use_tape` selects eager-tape gradients (for the unconverted, eager
/// configuration) vs `tf.gradients` (for staging).
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime(p: &LbfgsProblem, convert: bool, use_tape: bool) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(LBFGS_SRC, convert)?;
    rt.globals.set("a_mat", Value::tensor(p.a.clone()));
    rt.globals.set("b_vec", Value::tensor(p.b.clone()));
    rt.globals.set("n", Value::Int(p.n as i64));
    rt.globals.set("hist", Value::Int(HIST as i64));
    rt.globals.set("lr", Value::Float(0.5));
    rt.globals.set("gamma", Value::Float(1.0));
    rt.globals.set("use_tape", Value::Bool(use_tape));
    Ok(rt)
}

/// Run eagerly. Returns `(x, final_loss)`.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager(
    rt: &mut Runtime,
    x0: &Tensor,
    iters: usize,
) -> Result<(Tensor, f32), RuntimeError> {
    let out = rt.call(
        "lbfgs",
        vec![Value::tensor(x0.clone()), Value::Int(iters as i64)],
    )?;
    match out {
        Value::Tuple(items) => Ok((
            items[0].as_eager_tensor()?,
            items[1].as_eager_tensor()?.scalar_value_f32()?,
        )),
        other => Err(RuntimeError::new(format!(
            "expected (x, loss), got {}",
            other.kind()
        ))),
    }
}

/// Stage the optimizer loop (placeholders `x0`, `iters`).
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage(rt: &mut Runtime) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    rt.stage_to_graph(
        "lbfgs",
        vec![
            GraphArg::Placeholder("x0".into()),
            GraphArg::Placeholder("iters".into()),
        ],
    )
}

/// Fresh start point.
pub fn x0(n: usize) -> Tensor {
    Tensor::zeros(DType::F32, &[n, 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_graph::Session;

    #[test]
    fn eager_and_staged_agree_and_converge() {
        let p = LbfgsProblem::new(6, 1, 17);
        let start = x0(p.n);
        let iters = 25;

        let mut rt = runtime(&p, false, true).unwrap();
        let (x_eager, loss_eager) = run_eager(&mut rt, &start, iters).unwrap();

        let mut rt2 = runtime(&p, true, false).unwrap();
        let staged = stage(&mut rt2).unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(
                &[
                    ("x0", start.clone()),
                    ("iters", Tensor::scalar_i64(iters as i64)),
                ],
                &staged.outputs,
            )
            .unwrap();
        let loss_staged = out[1].scalar_value_f32().unwrap();

        assert!(
            (loss_eager - loss_staged).abs() < 1e-3 * (1.0 + loss_eager.abs()),
            "{loss_eager} vs {loss_staged}"
        );
        for (a, b) in x_eager
            .as_f32()
            .unwrap()
            .iter()
            .zip(out[0].as_f32().unwrap())
        {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }

        // converged well below the initial loss
        let initial =
            p.b.square()
                .unwrap()
                .reduce_mean(None)
                .unwrap()
                .scalar_value_f32()
                .unwrap();
        assert!(
            loss_staged < initial * 0.05,
            "no convergence: {initial} -> {loss_staged}"
        );
    }

    #[test]
    fn loss_monotone_enough() {
        // L-BFGS on a convex quadratic should decrease the loss quickly
        let p = LbfgsProblem::new(4, 4, 3);
        let mut rt = runtime(&p, false, true).unwrap();
        let (_, l3) = run_eager(&mut rt, &x0(p.n), 3).unwrap();
        let (_, l10) = run_eager(&mut rt, &x0(p.n), 10).unwrap();
        assert!(l10 <= l3 + 1e-5, "{l3} -> {l10}");
    }
}
