//! Table 1 — the dynamic RNN in the paper's four configurations.
//!
//! * **Eager** — the paper's imperative snippet (§9 "RNN cells"), executed
//!   op-by-op by the PyLite interpreter with no conversion;
//! * **AutoGraph** — the *same source*, converted and staged once into a
//!   dataflow graph, then executed through `Session::run`;
//! * **Handwritten** — the cumbersome `tf.while_loop` version of
//!   Appendix A, built directly against the graph builder;
//! * **Official** — a fused kernel (the `tf.dynamic_rnn` analog): a plain
//!   Rust loop over tensor kernels, no interpreter, no graph.

use autograph_graph::builder::{GraphBuilder, SubGraphBuilder};
use autograph_graph::ir::{Graph, NodeId, OpKind};
use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{DType, Rng64, Tensor};

/// The paper's §9 code snippet, adapted to PyLite (the `tf.where`
/// condition gains an `expand_dims` so the per-batch mask broadcasts over
/// the hidden dimension).
pub const DYNAMIC_RNN_SRC: &str = "\
def rnn_cell(x, state):
    h = tf.tanh(tf.matmul(x, wx) + tf.matmul(state, wh) + b)
    return h, h

def dynamic_rnn(input_data, initial_state, sequence_len):
    input_data = tf.transpose(input_data, (1, 0, 2))
    outputs = []
    ag.set_element_type(outputs, tf.float32)
    state = initial_state
    max_len = tf.reduce_max(sequence_len)
    for i in tf.range(max_len):
        prev_state = state
        output, state = rnn_cell(input_data[i], state)
        keep = tf.expand_dims(i < sequence_len, 1)
        state = tf.where(keep, state, prev_state)
        outputs.append(output)
    outputs = ag.stack(outputs)
    outputs = tf.transpose(outputs, (1, 0, 2))
    return outputs, state
";

/// RNN cell weights (basic tanh cell: `h' = tanh(x Wx + h Wh + b)`).
#[derive(Debug, Clone)]
pub struct RnnWeights {
    /// Input projection `[feat, hidden]`.
    pub wx: Tensor,
    /// Recurrent projection `[hidden, hidden]`.
    pub wh: Tensor,
    /// Bias `[hidden]`.
    pub b: Tensor,
}

impl RnnWeights {
    /// Deterministic random weights.
    pub fn new(feat: usize, hidden: usize, seed: u64) -> RnnWeights {
        let mut rng = Rng64::new(seed);
        RnnWeights {
            wx: rng.normal_tensor(&[feat, hidden], 0.3),
            wh: rng.normal_tensor(&[hidden, hidden], 0.3),
            b: rng.normal_tensor(&[hidden], 0.1),
        }
    }
}

/// A benchmark workload: inputs `[batch, time, feat]`, zero initial state,
/// per-example sequence lengths.
#[derive(Debug, Clone)]
pub struct RnnInputs {
    /// Input activations.
    pub input_data: Tensor,
    /// Initial state `[batch, hidden]` (zeros).
    pub initial_state: Tensor,
    /// `[batch]` i64 sequence lengths.
    pub sequence_len: Tensor,
}

/// Generate a deterministic workload.
pub fn inputs(batch: usize, time: usize, feat: usize, hidden: usize, seed: u64) -> RnnInputs {
    let mut rng = Rng64::new(seed);
    let input_data = rng.normal_tensor(&[batch, time, feat], 1.0);
    let initial_state = Tensor::zeros(DType::F32, &[batch, hidden]);
    // most sequences full-length, a few shorter (exercises the mask)
    let lens: Vec<i64> = (0..batch)
        .map(|i| {
            if i % 4 == 3 {
                (time / 2).max(1) as i64
            } else {
                time as i64
            }
        })
        .collect();
    let sequence_len = Tensor::from_vec_i64(lens, &[batch]).expect("shape");
    RnnInputs {
        input_data,
        initial_state,
        sequence_len,
    }
}

/// Load the PyLite module (converted or not) with the weights bound as
/// module globals.
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime(weights: &RnnWeights, convert: bool) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(DYNAMIC_RNN_SRC, convert)?;
    rt.globals.set("wx", Value::tensor(weights.wx.clone()));
    rt.globals.set("wh", Value::tensor(weights.wh.clone()));
    rt.globals.set("b", Value::tensor(weights.b.clone()));
    Ok(rt)
}

/// Run the eager (interpreted) configuration once.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager(rt: &mut Runtime, inp: &RnnInputs) -> Result<(Tensor, Tensor), RuntimeError> {
    let out = rt.call(
        "dynamic_rnn",
        vec![
            Value::tensor(inp.input_data.clone()),
            Value::tensor(inp.initial_state.clone()),
            Value::tensor(inp.sequence_len.clone()),
        ],
    )?;
    match out {
        Value::Tuple(items) => {
            let o = items[0].as_eager_tensor()?;
            let s = items[1].as_eager_tensor()?;
            Ok((o, s))
        }
        other => Err(RuntimeError::new(format!(
            "expected (outputs, state), got {}",
            other.kind()
        ))),
    }
}

/// Stage the converted function into a graph (placeholders:
/// `input_data`, `initial_state`, `sequence_len`).
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage_autograph(rt: &mut Runtime) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    rt.stage_to_graph(
        "dynamic_rnn",
        vec![
            GraphArg::Placeholder("input_data".into()),
            GraphArg::Placeholder("initial_state".into()),
            GraphArg::Placeholder("sequence_len".into()),
        ],
    )
}

/// Appendix A: the handwritten `tf.while_loop` implementation, built
/// directly against the graph builder. Returns the graph and its two
/// outputs `(outputs, state)`.
pub fn build_handwritten(weights: &RnnWeights) -> (Graph, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    b.push_scope("dynamic_rnn_handwritten");
    let input = b.placeholder("input_data");
    let init_state = b.placeholder("initial_state");
    let seq_len = b.placeholder("sequence_len");
    let wx = b.constant(weights.wx.clone());
    let wh = b.constant(weights.wh.clone());
    let bias = b.constant(weights.b.clone());

    let input_t = b.add(OpKind::Transpose(vec![1, 0, 2]), vec![input]); // [time,batch,feat]
    let max_len = b.add(OpKind::ReduceMax(None), vec![seq_len]);
    let zero = b.constant(Tensor::scalar_i64(0));
    let outputs0 = b.add(OpKind::ArrayNew, vec![]);

    // Loop state tuple (9 entries): 0=i, 1=state, 2=outputs, then the
    // loop invariants threaded through as extra state:
    // 3=max_len, 4=input_t, 5=seq_len, 6=wx, 7=wh, 8=bias.
    let cond_g = {
        let (mut sb, p) = SubGraphBuilder::new(9);
        let lt = sb.b.add(OpKind::Less, vec![p[0], p[3]]);
        sb.finish(vec![lt])
    };
    let body_g = {
        let (mut sb, p) = SubGraphBuilder::new(9);
        let (i, state, outputs) = (p[0], p[1], p[2]);
        let (input_t, seq_len, wx, wh, bias) = (p[4], p[5], p[6], p[7], p[8]);
        let x = sb.b.add(OpKind::IndexAxis0, vec![input_t, i]);
        let xw = sb.b.matmul(x, wx);
        let hw = sb.b.matmul(state, wh);
        let sum = sb.b.add_op(xw, hw);
        let act = sb.b.add_op(sum, bias);
        let h = sb.b.tanh(act);
        let keep0 = sb.b.add(OpKind::Less, vec![i, seq_len]);
        let keep = sb.b.add(OpKind::ExpandDims(1), vec![keep0]);
        let state2 = sb.b.add(OpKind::Select, vec![keep, h, state]);
        let outputs2 = sb.b.add(OpKind::ArrayPush, vec![outputs, h]);
        let one = sb.b.constant(Tensor::scalar_i64(1));
        let i2 = sb.b.add_op(i, one);
        sb.finish(vec![
            i2, state2, outputs2, p[3], p[4], p[5], p[6], p[7], p[8],
        ])
    };

    let w = b.add(
        OpKind::While {
            cond_g,
            body_g,
            max_iters: None,
        },
        vec![
            zero, init_state, outputs0, max_len, input_t, seq_len, wx, wh, bias,
        ],
    );
    let final_state = b.tuple_get(w, 1);
    let outputs_arr = b.tuple_get(w, 2);
    let stacked = b.add(OpKind::ArrayStack, vec![outputs_arr]);
    let out = b.add(OpKind::Transpose(vec![1, 0, 2]), vec![stacked]);
    b.pop_scope();
    (b.finish(), vec![out, final_state])
}

/// A multi-branch workload for the parallel executor: one independent
/// handwritten RNN `While` loop per weight set, all reading the same
/// input placeholders. The branches share no state, so the wavefront
/// scheduler can run them concurrently; fetches are the per-branch final
/// states (in weight order).
pub fn build_multi_branch(weights: &[RnnWeights]) -> (Graph, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    b.push_scope("dynamic_rnn_multi_branch");
    let input = b.placeholder("input_data");
    let init_state = b.placeholder("initial_state");
    let seq_len = b.placeholder("sequence_len");
    let input_t = b.add(OpKind::Transpose(vec![1, 0, 2]), vec![input]);
    let max_len = b.add(OpKind::ReduceMax(None), vec![seq_len]);
    let zero = b.constant(Tensor::scalar_i64(0));

    let mut fetches = Vec::with_capacity(weights.len());
    for w in weights {
        let wx = b.constant(w.wx.clone());
        let wh = b.constant(w.wh.clone());
        let bias = b.constant(w.b.clone());
        // same 6-entry loop state as the handwritten single-branch
        // version, minus the outputs array (final state only):
        // 0=i, 1=state, 2=max_len, 3=input_t, 4=seq_len + weights 5..8
        let cond_g = {
            let (mut sb, p) = SubGraphBuilder::new(8);
            let lt = sb.b.add(OpKind::Less, vec![p[0], p[2]]);
            sb.finish(vec![lt])
        };
        let body_g = {
            let (mut sb, p) = SubGraphBuilder::new(8);
            let (i, state) = (p[0], p[1]);
            let (input_t, seq_len, wx, wh, bias) = (p[3], p[4], p[5], p[6], p[7]);
            let x = sb.b.add(OpKind::IndexAxis0, vec![input_t, i]);
            let xw = sb.b.matmul(x, wx);
            let hw = sb.b.matmul(state, wh);
            let sum = sb.b.add_op(xw, hw);
            let act = sb.b.add_op(sum, bias);
            let h = sb.b.tanh(act);
            let keep0 = sb.b.add(OpKind::Less, vec![i, seq_len]);
            let keep = sb.b.add(OpKind::ExpandDims(1), vec![keep0]);
            let state2 = sb.b.add(OpKind::Select, vec![keep, h, state]);
            let one = sb.b.constant(Tensor::scalar_i64(1));
            let i2 = sb.b.add_op(i, one);
            sb.finish(vec![i2, state2, p[2], p[3], p[4], p[5], p[6], p[7]])
        };
        let wl = b.add(
            OpKind::While {
                cond_g,
                body_g,
                max_iters: None,
            },
            vec![zero, init_state, max_len, input_t, seq_len, wx, wh, bias],
        );
        fetches.push(b.tuple_get(wl, 1));
    }
    b.pop_scope();
    (b.finish(), fetches)
}

/// The "Official" configuration: a fused Rust kernel looping directly over
/// tensor ops (the `tf.dynamic_rnn` built-in analog).
///
/// # Errors
///
/// Propagates kernel errors.
pub fn official(
    weights: &RnnWeights,
    inp: &RnnInputs,
) -> Result<(Tensor, Tensor), autograph_tensor::TensorError> {
    let input_t = inp.input_data.transpose(&[1, 0, 2])?; // [time, batch, feat]
    let time = input_t.shape()[0];
    let max_len = inp.sequence_len.reduce_max(None)?.scalar_value_i64()? as usize;
    let mut state = inp.initial_state.clone();
    let mut outputs = Vec::with_capacity(time);
    for i in 0..max_len.min(time) {
        let x = input_t.index_axis0(i as i64)?;
        let h = x
            .matmul(&weights.wx)?
            .add(&state.matmul(&weights.wh)?)?
            .add(&weights.b)?
            .tanh()?;
        let keep = Tensor::scalar_i64(i as i64)
            .less(&inp.sequence_len)?
            .expand_dims(1)?;
        state = Tensor::select(&keep, &h, &state)?;
        outputs.push(h);
    }
    let stacked = Tensor::stack(&outputs)?; // [time, batch, hidden]
    Ok((stacked.transpose(&[1, 0, 2])?, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_graph::Session;

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape(), "shape mismatch");
        for (x, y) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn all_four_configurations_agree() {
        let (batch, time, feat, hidden) = (4, 6, 3, 5);
        let w = RnnWeights::new(feat, hidden, 42);
        let inp = inputs(batch, time, feat, hidden, 7);

        // official (reference)
        let (o_ref, s_ref) = official(&w, &inp).unwrap();
        assert_eq!(o_ref.shape(), &[batch, time, hidden]);

        // eager interpreted
        let mut rt = runtime(&w, false).unwrap();
        let (o_eager, s_eager) = run_eager(&mut rt, &inp).unwrap();
        close(&o_eager, &o_ref, 1e-5);
        close(&s_eager, &s_ref, 1e-5);

        // converted, interpreted eagerly (dynamic dispatch falls through)
        let mut rt_conv = runtime(&w, true).unwrap();
        let (o_conv, _) = run_eager(&mut rt_conv, &inp).unwrap();
        close(&o_conv, &o_ref, 1e-5);

        // autograph staged
        let staged = stage_autograph(&mut rt_conv).unwrap();
        assert!(staged
            .graph
            .nodes
            .iter()
            .any(|n| matches!(n.op, OpKind::While { .. })));
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(
                &[
                    ("input_data", inp.input_data.clone()),
                    ("initial_state", inp.initial_state.clone()),
                    ("sequence_len", inp.sequence_len.clone()),
                ],
                &staged.outputs,
            )
            .unwrap();
        close(&out[0], &o_ref, 1e-5);
        close(&out[1], &s_ref, 1e-5);

        // handwritten graph
        let (g, fetches) = build_handwritten(&w);
        let mut sess2 = Session::new(g);
        let out2 = sess2
            .run(
                &[
                    ("input_data", inp.input_data.clone()),
                    ("initial_state", inp.initial_state.clone()),
                    ("sequence_len", inp.sequence_len.clone()),
                ],
                &fetches,
            )
            .unwrap();
        close(&out2[0], &o_ref, 1e-5);
        close(&out2[1], &s_ref, 1e-5);
    }

    #[test]
    fn sequence_mask_freezes_state() {
        // with seq_len = 1 for every example, the state after time 1 stays
        let (batch, time, feat, hidden) = (2, 4, 3, 3);
        let w = RnnWeights::new(feat, hidden, 1);
        let mut inp = inputs(batch, time, feat, hidden, 2);
        inp.sequence_len = Tensor::from_vec_i64(vec![1, 1], &[2]).unwrap();
        let (_, s) = official(&w, &inp).unwrap();
        // recompute: single step from zeros
        let x0 = inp
            .input_data
            .transpose(&[1, 0, 2])
            .unwrap()
            .index_axis0(0)
            .unwrap();
        let h1 = x0
            .matmul(&w.wx)
            .unwrap()
            .add(&inp.initial_state.matmul(&w.wh).unwrap())
            .unwrap()
            .add(&w.b)
            .unwrap()
            .tanh()
            .unwrap();
        close(&s, &h1, 1e-6);
    }

    #[test]
    fn multi_branch_matches_official_per_branch_at_any_thread_count() {
        let (batch, time, feat, hidden) = (3, 5, 2, 4);
        let weights: Vec<RnnWeights> = (0..3).map(|k| RnnWeights::new(feat, hidden, k)).collect();
        let inp = inputs(batch, time, feat, hidden, 9);
        let feeds = [
            ("input_data", inp.input_data.clone()),
            ("initial_state", inp.initial_state.clone()),
            ("sequence_len", inp.sequence_len.clone()),
        ];
        let (g, fetches) = build_multi_branch(&weights);
        let mut seq_sess = Session::new(g.clone());
        seq_sess.set_threads(1);
        let seq_out = seq_sess.run(&feeds, &fetches).unwrap();
        for (k, w) in weights.iter().enumerate() {
            let (_, s_ref) = official(w, &inp).unwrap();
            close(&seq_out[k], &s_ref, 1e-5);
        }
        let mut par_sess = Session::new(g);
        par_sess.set_threads(4);
        let par_out = par_sess.run(&feeds, &fetches).unwrap();
        for (s, p) in seq_out.iter().zip(&par_out) {
            assert_eq!(s.shape(), p.shape());
            for (x, y) in s.as_f32().unwrap().iter().zip(p.as_f32().unwrap()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "parallel run must be bitwise equal"
                );
            }
        }
    }

    #[test]
    fn staged_graph_reusable_across_batches() {
        let (batch, time, feat, hidden) = (3, 5, 2, 4);
        let w = RnnWeights::new(feat, hidden, 5);
        let mut rt = runtime(&w, true).unwrap();
        let staged = stage_autograph(&mut rt).unwrap();
        let mut sess = Session::new(staged.graph);
        for seed in [11, 12] {
            let inp = inputs(batch, time, feat, hidden, seed);
            let (o_ref, _) = official(&w, &inp).unwrap();
            let out = sess
                .run(
                    &[
                        ("input_data", inp.input_data.clone()),
                        ("initial_state", inp.initial_state.clone()),
                        ("sequence_len", inp.sequence_len.clone()),
                    ],
                    &staged.outputs,
                )
                .unwrap();
            close(&out[0], &o_ref, 1e-5);
        }
    }
}
