//! Appendix D.1 — beam search.
//!
//! "The simplest implementation of beam search is a loop that breaks if
//! all candidate sequences have terminated" — the PyLite source below is
//! exactly that: a `while True:` with two data-dependent `break`s, over
//! `top_k`, `gather`, and integer tensor arithmetic. The break lowering +
//! staged `while` turn it into a single in-graph loop.

use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{Rng64, Tensor};

/// The imperative beam search. `beam`, `vocab` and `eos` are module
/// globals (hyperparameters — macro-programming); tensors flow as
/// arguments.
pub const BEAM_SRC: &str = "\
def beam_search(embed, w_in, w_h, w_out, init_state, max_len):
    state = init_state
    scores = tf.zeros((beam,))
    finished = tf.cast(tf.zeros((beam,)), tf.bool_)
    tokens = []
    ag.set_element_type(tokens, tf.int64)
    i = 0
    while True:
        logits = tf.matmul(state, w_out)
        logp = tf.log_softmax(logits)
        cand = tf.reshape(scores, (beam, 1)) + logp
        flat = tf.reshape(cand, (-1,))
        top = tf.top_k(flat, beam)
        scores = top[0]
        idx = top[1]
        beam_idx = idx // vocab
        token = idx % vocab
        prev = tf.gather(state, beam_idx)
        emb = tf.gather(embed, token)
        state = tf.tanh(tf.matmul(emb, w_in) + tf.matmul(prev, w_h))
        tokens.append(token)
        finished = tf.logical_or(tf.gather(finished, beam_idx), tf.equal(token, eos))
        i = i + 1
        if i >= max_len:
            break
        if tf.reduce_all(finished):
            break
    return ag.stack(tokens), scores
";

/// Model weights for the toy recurrent scorer.
#[derive(Debug, Clone)]
pub struct BeamWeights {
    /// Token embeddings `[vocab, hidden]`.
    pub embed: Tensor,
    /// Input projection `[hidden, hidden]`.
    pub w_in: Tensor,
    /// Recurrent projection `[hidden, hidden]`.
    pub w_h: Tensor,
    /// Output projection `[hidden, vocab]`.
    pub w_out: Tensor,
}

/// Beam-search hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BeamConfig {
    /// Beam width.
    pub beam: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden size.
    pub hidden: usize,
    /// End-of-sequence token id.
    pub eos: i64,
}

impl BeamWeights {
    /// Deterministic random weights.
    pub fn new(cfg: &BeamConfig, seed: u64) -> BeamWeights {
        let mut rng = Rng64::new(seed);
        BeamWeights {
            embed: rng.normal_tensor(&[cfg.vocab, cfg.hidden], 0.4),
            w_in: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
            w_h: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
            w_out: rng.normal_tensor(&[cfg.hidden, cfg.vocab], 0.4),
        }
    }
}

/// Load the module with hyperparameter globals bound.
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime(cfg: &BeamConfig, convert: bool) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(BEAM_SRC, convert)?;
    rt.globals.set("beam", Value::Int(cfg.beam as i64));
    rt.globals.set("vocab", Value::Int(cfg.vocab as i64));
    rt.globals.set("eos", Value::Int(cfg.eos));
    Ok(rt)
}

/// Initial beam state (`[beam, hidden]`, deterministic).
pub fn init_state(cfg: &BeamConfig, seed: u64) -> Tensor {
    Rng64::new(seed).normal_tensor(&[cfg.beam, cfg.hidden], 0.5)
}

/// Run eagerly (interpreted). Returns `(tokens [steps, beam], scores)`.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager(
    rt: &mut Runtime,
    w: &BeamWeights,
    init: &Tensor,
    max_len: usize,
) -> Result<(Tensor, Tensor), RuntimeError> {
    let out = rt.call(
        "beam_search",
        vec![
            Value::tensor(w.embed.clone()),
            Value::tensor(w.w_in.clone()),
            Value::tensor(w.w_h.clone()),
            Value::tensor(w.w_out.clone()),
            Value::tensor(init.clone()),
            Value::Int(max_len as i64),
        ],
    )?;
    match out {
        Value::Tuple(items) => Ok((items[0].as_eager_tensor()?, items[1].as_eager_tensor()?)),
        other => Err(RuntimeError::new(format!(
            "expected (tokens, scores), got {}",
            other.kind()
        ))),
    }
}

/// Stage the search into a graph. Weights embed as constants; the initial
/// state and max length are placeholders (`init_state`, `max_len`).
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage(
    rt: &mut Runtime,
    w: &BeamWeights,
) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    rt.stage_to_graph(
        "beam_search",
        vec![
            GraphArg::Value(Value::tensor(w.embed.clone())),
            GraphArg::Value(Value::tensor(w.w_in.clone())),
            GraphArg::Value(Value::tensor(w.w_h.clone())),
            GraphArg::Value(Value::tensor(w.w_out.clone())),
            GraphArg::Placeholder("init_state".into()),
            GraphArg::Placeholder("max_len".into()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_graph::Session;

    fn cfg() -> BeamConfig {
        BeamConfig {
            beam: 3,
            vocab: 11,
            hidden: 6,
            eos: 0,
        }
    }

    #[test]
    fn eager_and_staged_agree() {
        let cfg = cfg();
        let w = BeamWeights::new(&cfg, 4);
        let init = init_state(&cfg, 9);
        let max_len = 7;

        let mut rt = runtime(&cfg, false).unwrap();
        let (tok_e, sc_e) = run_eager(&mut rt, &w, &init, max_len).unwrap();

        let mut rt2 = runtime(&cfg, true).unwrap();
        let staged = stage(&mut rt2, &w).unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(
                &[
                    ("init_state", init.clone()),
                    ("max_len", Tensor::scalar_i64(max_len as i64)),
                ],
                &staged.outputs,
            )
            .unwrap();
        assert_eq!(out[0].as_i64().unwrap(), tok_e.as_i64().unwrap());
        for (a, b) in out[1].as_f32().unwrap().iter().zip(sc_e.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn token_shape_and_bounds() {
        let cfg = cfg();
        let w = BeamWeights::new(&cfg, 5);
        let init = init_state(&cfg, 2);
        let mut rt = runtime(&cfg, false).unwrap();
        let (tokens, scores) = run_eager(&mut rt, &w, &init, 5).unwrap();
        assert!(tokens.shape()[0] <= 5);
        assert_eq!(tokens.shape()[1], cfg.beam);
        assert_eq!(scores.shape(), &[cfg.beam]);
        assert!(tokens
            .as_i64()
            .unwrap()
            .iter()
            .all(|&t| (0..cfg.vocab as i64).contains(&t)));
        // beam scores sorted descending
        let s = scores.as_f32().unwrap();
        assert!(s.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn early_break_when_all_finished() {
        // eos forced: make every vocab entry eos-like by setting vocab=1
        let cfg = BeamConfig {
            beam: 2,
            vocab: 1,
            hidden: 3,
            eos: 0,
        };
        let w = BeamWeights::new(&cfg, 3);
        let init = init_state(&cfg, 3);
        let mut rt = runtime(&cfg, false).unwrap();
        let (tokens, _) = run_eager(&mut rt, &w, &init, 50).unwrap();
        // token 0 == eos everywhere, so the loop breaks after one step
        assert_eq!(tokens.shape()[0], 1, "{tokens:?}");
    }
}
