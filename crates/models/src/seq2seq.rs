//! Appendix D.4 — sequence-to-sequence inference.
//!
//! A recurrent encoder consumes the source tokens; a decoder emits target
//! logits step by step. `teacher_forcing` is a Python hyperparameter: with
//! forcing, the decoder consumes the gold target token (cheap — the paper
//! notes this *doubles* the relative AutoGraph gain because per-op
//! overhead dominates); without it, the decoder feeds back its own argmax
//! (a data-dependent loop-carried value).

use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{Rng64, Tensor};

/// The imperative encoder/decoder.
pub const SEQ2SEQ_SRC: &str = "\
def encode(src_t):
    state = tf.zeros((batch, hidden))
    for t in tf.range(src_len):
        x = tf.gather(embed_src, src_t[t])
        state = tf.tanh(tf.matmul(x, w_enc_in) + tf.matmul(state, w_enc_h))
    return state

def decode(state, tgt_t):
    outputs = []
    ag.set_element_type(outputs, tf.float32)
    prev = tf.zeros((batch,))
    prev = tf.cast(prev, tf.int64)
    for t in tf.range(tgt_len):
        if teacher_forcing:
            inp = tgt_t[t]
        else:
            inp = prev
        x = tf.gather(embed_tgt, inp)
        state = tf.tanh(tf.matmul(x, w_dec_in) + tf.matmul(state, w_dec_h))
        logits = tf.matmul(state, w_out)
        prev = tf.argmax(logits, 1)
        outputs.append(logits)
    return ag.stack(outputs)

def seq2seq(src_t, tgt_t):
    state = encode(src_t)
    return decode(state, tgt_t)
";

/// The attention variant (the paper's "Neural Model Translation with
/// Attention" sample): the encoder keeps all hidden states; each decoder
/// step computes dot-product attention weights over them and mixes a
/// context vector into the recurrence.
pub const SEQ2SEQ_ATTENTION_SRC: &str = "\
def encode_all(src_t):
    state = tf.zeros((batch, hidden))
    states = []
    ag.set_element_type(states, tf.float32)
    for t in tf.range(src_len):
        x = tf.gather(embed_src, src_t[t])
        state = tf.tanh(tf.matmul(x, w_enc_in) + tf.matmul(state, w_enc_h))
        states.append(state)
    return ag.stack(states), state

def attend(enc_states, state):
    scores = tf.reduce_sum(enc_states * tf.expand_dims(state, 0), 2)
    weights = tf.transpose(tf.softmax(tf.transpose(scores, (1, 0))), (1, 0))
    context = tf.reduce_sum(enc_states * tf.expand_dims(weights, 2), 0)
    return context

def decode_attn(enc_states, state, tgt_t):
    outputs = []
    ag.set_element_type(outputs, tf.float32)
    prev = tf.cast(tf.zeros((batch,)), tf.int64)
    for t in tf.range(tgt_len):
        if teacher_forcing:
            inp = tgt_t[t]
        else:
            inp = prev
        x = tf.gather(embed_tgt, inp)
        context = attend(enc_states, state)
        state = tf.tanh(tf.matmul(x, w_dec_in) + tf.matmul(state, w_dec_h) + tf.matmul(context, w_ctx))
        logits = tf.matmul(state, w_out)
        prev = tf.argmax(logits, 1)
        outputs.append(logits)
    return ag.stack(outputs)

def seq2seq_attn(src_t, tgt_t):
    enc_states, state = encode_all(src_t)
    return decode_attn(enc_states, state, tgt_t)
";

/// Model weights.
#[derive(Debug, Clone)]
pub struct Seq2SeqWeights {
    /// Source embeddings `[vocab, hidden]`.
    pub embed_src: Tensor,
    /// Target embeddings `[vocab, hidden]`.
    pub embed_tgt: Tensor,
    /// Encoder input projection.
    pub w_enc_in: Tensor,
    /// Encoder recurrent projection.
    pub w_enc_h: Tensor,
    /// Decoder input projection.
    pub w_dec_in: Tensor,
    /// Decoder recurrent projection.
    pub w_dec_h: Tensor,
    /// Output projection `[hidden, vocab]`.
    pub w_out: Tensor,
    /// Attention-context projection `[hidden, hidden]` (attention variant).
    pub w_ctx: Tensor,
}

/// Model/workload configuration.
#[derive(Debug, Clone, Copy)]
pub struct Seq2SeqConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Batch size.
    pub batch: usize,
    /// Source length.
    pub src_len: usize,
    /// Target length.
    pub tgt_len: usize,
    /// Feed gold tokens into the decoder.
    pub teacher_forcing: bool,
}

impl Seq2SeqWeights {
    /// Deterministic random weights.
    pub fn new(cfg: &Seq2SeqConfig, seed: u64) -> Seq2SeqWeights {
        let mut rng = Rng64::new(seed);
        Seq2SeqWeights {
            embed_src: rng.normal_tensor(&[cfg.vocab, cfg.hidden], 0.4),
            embed_tgt: rng.normal_tensor(&[cfg.vocab, cfg.hidden], 0.4),
            w_enc_in: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
            w_enc_h: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
            w_dec_in: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
            w_dec_h: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
            w_out: rng.normal_tensor(&[cfg.hidden, cfg.vocab], 0.4),
            w_ctx: rng.normal_tensor(&[cfg.hidden, cfg.hidden], 0.4),
        }
    }
}

/// Load the module with weights and hyperparameters bound.
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime(
    cfg: &Seq2SeqConfig,
    w: &Seq2SeqWeights,
    convert: bool,
) -> Result<Runtime, RuntimeError> {
    runtime_with(SEQ2SEQ_SRC, cfg, w, convert)
}

/// Load the attention variant (`seq2seq_attn`).
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime_attention(
    cfg: &Seq2SeqConfig,
    w: &Seq2SeqWeights,
    convert: bool,
) -> Result<Runtime, RuntimeError> {
    runtime_with(SEQ2SEQ_ATTENTION_SRC, cfg, w, convert)
}

fn runtime_with(
    src: &str,
    cfg: &Seq2SeqConfig,
    w: &Seq2SeqWeights,
    convert: bool,
) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(src, convert)?;
    rt.globals.set("w_ctx", Value::tensor(w.w_ctx.clone()));
    rt.globals
        .set("embed_src", Value::tensor(w.embed_src.clone()));
    rt.globals
        .set("embed_tgt", Value::tensor(w.embed_tgt.clone()));
    rt.globals
        .set("w_enc_in", Value::tensor(w.w_enc_in.clone()));
    rt.globals.set("w_enc_h", Value::tensor(w.w_enc_h.clone()));
    rt.globals
        .set("w_dec_in", Value::tensor(w.w_dec_in.clone()));
    rt.globals.set("w_dec_h", Value::tensor(w.w_dec_h.clone()));
    rt.globals.set("w_out", Value::tensor(w.w_out.clone()));
    rt.globals.set("batch", Value::Int(cfg.batch as i64));
    rt.globals.set("hidden", Value::Int(cfg.hidden as i64));
    rt.globals.set("src_len", Value::Int(cfg.src_len as i64));
    rt.globals.set("tgt_len", Value::Int(cfg.tgt_len as i64));
    rt.globals
        .set("teacher_forcing", Value::Bool(cfg.teacher_forcing));
    Ok(rt)
}

/// Random source/target sequences, time-major (`[len, batch]` i64) so the
/// model indexes rows per step.
pub fn sequences(cfg: &Seq2SeqConfig, seed: u64) -> (Tensor, Tensor) {
    let mut rng = Rng64::new(seed);
    (
        rng.labels_tensor(&[cfg.src_len, cfg.batch], cfg.vocab as u64),
        rng.labels_tensor(&[cfg.tgt_len, cfg.batch], cfg.vocab as u64),
    )
}

/// Run eagerly; returns logits `[tgt_len, batch, vocab]`.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager(rt: &mut Runtime, src: &Tensor, tgt: &Tensor) -> Result<Tensor, RuntimeError> {
    let out = rt.call(
        "seq2seq",
        vec![Value::tensor(src.clone()), Value::tensor(tgt.clone())],
    )?;
    out.as_eager_tensor()
}

/// Run the attention variant eagerly.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager_attention(
    rt: &mut Runtime,
    src: &Tensor,
    tgt: &Tensor,
) -> Result<Tensor, RuntimeError> {
    let out = rt.call(
        "seq2seq_attn",
        vec![Value::tensor(src.clone()), Value::tensor(tgt.clone())],
    )?;
    out.as_eager_tensor()
}

/// Stage the attention variant (placeholders `src_t`, `tgt_t`).
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage_attention(rt: &mut Runtime) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    rt.stage_to_graph(
        "seq2seq_attn",
        vec![
            GraphArg::Placeholder("src_t".into()),
            GraphArg::Placeholder("tgt_t".into()),
        ],
    )
}

/// Stage the model (placeholders `src_t`, `tgt_t`).
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage(rt: &mut Runtime) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    rt.stage_to_graph(
        "seq2seq",
        vec![
            GraphArg::Placeholder("src_t".into()),
            GraphArg::Placeholder("tgt_t".into()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_graph::Session;

    fn cfg(teacher_forcing: bool) -> Seq2SeqConfig {
        Seq2SeqConfig {
            vocab: 13,
            hidden: 6,
            batch: 3,
            src_len: 5,
            tgt_len: 4,
            teacher_forcing,
        }
    }

    fn check_agreement(teacher_forcing: bool) {
        let cfg = cfg(teacher_forcing);
        let w = Seq2SeqWeights::new(&cfg, 8);
        let (src, tgt) = sequences(&cfg, 21);

        let mut rt = runtime(&cfg, &w, false).unwrap();
        let eager = run_eager(&mut rt, &src, &tgt).unwrap();
        assert_eq!(eager.shape(), &[cfg.tgt_len, cfg.batch, cfg.vocab]);

        let mut rt2 = runtime(&cfg, &w, true).unwrap();
        let staged = stage(&mut rt2).unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(&[("src_t", src), ("tgt_t", tgt)], &staged.outputs)
            .unwrap();
        for (a, b) in out[0].as_f32().unwrap().iter().zip(eager.as_f32().unwrap()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn teacher_forcing_agrees() {
        check_agreement(true);
    }

    #[test]
    fn free_running_agrees() {
        check_agreement(false);
    }

    #[test]
    fn attention_variant_eager_and_staged_agree() {
        for teacher_forcing in [true, false] {
            let cfg = cfg(teacher_forcing);
            let w = Seq2SeqWeights::new(&cfg, 8);
            let (src, tgt) = sequences(&cfg, 21);

            let mut rt = runtime_attention(&cfg, &w, false).unwrap();
            let eager = run_eager_attention(&mut rt, &src, &tgt).unwrap();
            assert_eq!(eager.shape(), &[cfg.tgt_len, cfg.batch, cfg.vocab]);

            let mut rt2 = runtime_attention(&cfg, &w, true).unwrap();
            let staged = stage_attention(&mut rt2).unwrap();
            let mut sess = Session::new(staged.graph);
            let out = sess
                .run(&[("src_t", src), ("tgt_t", tgt)], &staged.outputs)
                .unwrap();
            for (a, b) in out[0].as_f32().unwrap().iter().zip(eager.as_f32().unwrap()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn attention_changes_predictions() {
        let cfg = cfg(true);
        let w = Seq2SeqWeights::new(&cfg, 8);
        let (src, tgt) = sequences(&cfg, 21);
        let mut plain = runtime(&cfg, &w, false).unwrap();
        let mut attn = runtime_attention(&cfg, &w, false).unwrap();
        let a = run_eager(&mut plain, &src, &tgt).unwrap();
        let b = run_eager_attention(&mut attn, &src, &tgt).unwrap();
        let diff: f32 = a
            .as_f32()
            .unwrap()
            .iter()
            .zip(b.as_f32().unwrap())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-3, "attention should alter the logits");
    }

    #[test]
    fn modes_differ() {
        // sanity: forcing vs free-running produce different logits
        let c1 = cfg(true);
        let c2 = cfg(false);
        let w = Seq2SeqWeights::new(&c1, 8);
        let (src, tgt) = sequences(&c1, 5);
        let mut rt1 = runtime(&c1, &w, false).unwrap();
        let mut rt2 = runtime(&c2, &w, false).unwrap();
        let a = run_eager(&mut rt1, &src, &tgt).unwrap();
        let b = run_eager(&mut rt2, &src, &tgt).unwrap();
        let diff: f32 = a
            .as_f32()
            .unwrap()
            .iter()
            .zip(b.as_f32().unwrap())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-3);
    }
}
