//! # autograph-models
//!
//! The models and workloads of the paper's evaluation (§9, Appendix D),
//! each in the configurations the paper compares:
//!
//! | module | experiment |
//! |---|---|
//! | [`rnn`] | Table 1 — RNN cell throughput: Eager / Official / Handwritten / AutoGraph |
//! | [`mnist`] | Table 2 — linear model + SGD: Eager / graph-model+host-loop / all-in-graph / AutoGraph |
//! | [`treelstm`] | Table 3 — recursive TreeLSTM: eager ("PyTorch") vs AutoGraph→Lantern |
//! | [`beam`] | Appendix D.1 — beam search with data-dependent `break` |
//! | [`lbfgs`] | Appendix D.2 — L-BFGS with unrolled two-loop recursion |
//! | [`maml`] | Appendix D.3 — MAML sinusoid meta-learning |
//! | [`seq2seq`] | Appendix D.4 — encoder/decoder with optional teacher forcing |
//!
//! Each module exposes PyLite source (the paper's imperative style), plus
//! builders/drivers for every configuration, so the bench harness and the
//! examples share one implementation.

pub mod beam;
pub mod data;
pub mod lbfgs;
pub mod maml;
pub mod mnist;
pub mod rnn;
pub mod seq2seq;
pub mod treelstm;
