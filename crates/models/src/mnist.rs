//! Table 2 — a single linear layer trained on (synthetic) MNIST with SGD,
//! in the paper's four configurations:
//!
//! 1. **Eager** — model *and* loop interpreted, gradient tape per step;
//! 2. **Model In Graph, Loop In Python** — the traditional TensorFlow
//!    pattern: a single-step graph executed repeatedly by a host loop
//!    (one `Session::run` per step);
//! 3. **Model And Loop In Graph** — a handwritten in-graph `while` loop
//!    running all steps in one `Session::run`;
//! 4. **Model And Loop In AutoGraph** — the imperative training loop
//!    below, converted and staged into the same all-in-graph form.
//!
//! The training data cycles through `num_batches` pre-generated batches so
//! every configuration sees identical inputs.

use autograph_graph::builder::{GraphBuilder, SubGraphBuilder};
use autograph_graph::grad::gradients;
use autograph_graph::ir::{Graph, NodeId, OpKind};
use autograph_graph::Session;
use autograph_runtime::runtime::GraphArg;
use autograph_runtime::{Runtime, RuntimeError, Value};
use autograph_tensor::{Rng64, Tensor};

/// Number of distinct batches the loop cycles through.
pub const NUM_BATCHES: usize = 10;
/// SGD learning rate.
pub const LR: f32 = 0.02;

/// The imperative training code (the AutoGraph configuration), plus the
/// eager-tape variant of the same loop.
pub const TRAIN_SRC: &str = "\
def train_loop(images, labels, w, b, steps):
    i = 0
    while i < steps:
        idx = i % num_batches
        x = images[idx]
        y = labels[idx]
        logits = tf.matmul(x, w) + b
        loss = tf.softmax_cross_entropy(logits, y)
        grads = tf.gradients(loss, [w, b])
        w = w - grads[0] * lr
        b = b - grads[1] * lr
        i = i + 1
    return w, b

def train_eager(images, labels, w, b, steps):
    i = 0
    while i < steps:
        idx = i % num_batches
        x = images[idx]
        y = labels[idx]
        tf.tape_begin()
        w = tf.watch(w)
        b = tf.watch(b)
        logits = tf.matmul(x, w) + b
        loss = tf.softmax_cross_entropy(logits, y)
        grads = tf.grad(loss, [w, b])
        w = w - grads[0] * lr
        b = b - grads[1] * lr
        i = i + 1
    return w, b
";

/// Initial model parameters.
#[derive(Debug, Clone)]
pub struct LinearParams {
    /// Weights `[784, 10]`.
    pub w: Tensor,
    /// Bias `[10]`.
    pub b: Tensor,
}

impl LinearParams {
    /// Deterministic small random init.
    pub fn new(seed: u64) -> LinearParams {
        let mut rng = Rng64::new(seed);
        LinearParams {
            w: rng.normal_tensor(&[784, 10], 0.01),
            b: Tensor::zeros(autograph_tensor::DType::F32, &[10]),
        }
    }
}

/// Load the PyLite module with hyperparameter globals bound.
///
/// # Errors
///
/// Propagates load/conversion errors.
pub fn runtime(convert: bool) -> Result<Runtime, RuntimeError> {
    let rt = Runtime::load(TRAIN_SRC, convert)?;
    rt.globals
        .set("num_batches", Value::Int(NUM_BATCHES as i64));
    rt.globals.set("lr", Value::Float(LR as f64));
    Ok(rt)
}

/// Configuration 1: eager. Runs `steps` SGD steps entirely interpreted.
///
/// # Errors
///
/// Propagates interpreter errors.
pub fn run_eager(
    rt: &mut Runtime,
    images: &Tensor,
    labels: &Tensor,
    params: &LinearParams,
    steps: usize,
) -> Result<LinearParams, RuntimeError> {
    let out = rt.call(
        "train_eager",
        vec![
            Value::tensor(images.clone()),
            Value::tensor(labels.clone()),
            Value::tensor(params.w.clone()),
            Value::tensor(params.b.clone()),
            Value::Int(steps as i64),
        ],
    )?;
    match out {
        Value::Tuple(items) => Ok(LinearParams {
            w: items[0].as_eager_tensor()?,
            b: items[1].as_eager_tensor()?,
        }),
        other => Err(RuntimeError::new(format!(
            "expected (w, b), got {}",
            other.kind()
        ))),
    }
}

/// Configuration 2 support: the single-step graph (placeholders `x`, `y`;
/// variables `w`, `b`; fetch the returned `train_op` to run one step).
pub fn build_step_graph(params: &LinearParams) -> (Graph, NodeId) {
    let mut b = GraphBuilder::new();
    b.push_scope("train_step");
    let x = b.placeholder("x");
    let y = b.placeholder("y");
    let w = b.variable("w", params.w.clone());
    let bias = b.variable("b", params.b.clone());
    let xw = b.matmul(x, w);
    let logits = b.add_op(xw, bias);
    let loss = b.add(OpKind::SoftmaxCrossEntropy, vec![logits, y]);
    let grads = gradients(&mut b, loss, &[w, bias]).expect("linear model grads");
    let lr = b.scalar(LR);
    let dw = b.mul(grads[0], lr);
    let db = b.mul(grads[1], lr);
    let w2 = b.sub(w, dw);
    let b2 = b.sub(bias, db);
    let aw = b.assign("w", w2);
    let ab = b.assign("b", b2);
    let train_op = b.group(vec![aw, ab, loss]);
    b.pop_scope();
    (b.finish(), train_op)
}

/// Configuration 2: run the host loop (one `Session::run` per step).
///
/// # Errors
///
/// Propagates graph execution errors.
pub fn run_host_loop(
    sess: &mut Session,
    train_op: NodeId,
    images: &Tensor,
    labels: &Tensor,
    steps: usize,
) -> Result<LinearParams, autograph_graph::GraphError> {
    // pre-slice the batch tensors, as a tf input pipeline would
    let batches: Vec<(Tensor, Tensor)> = (0..NUM_BATCHES)
        .map(|i| {
            (
                images.index_axis0(i as i64).expect("batch index"),
                labels.index_axis0(i as i64).expect("batch index"),
            )
        })
        .collect();
    for i in 0..steps {
        let (x, y) = &batches[i % NUM_BATCHES];
        sess.run(&[("x", x.clone()), ("y", y.clone())], &[train_op])?;
    }
    Ok(LinearParams {
        w: sess.variable("w").expect("w").clone(),
        b: sess.variable("b").expect("b").clone(),
    })
}

/// Configuration 3: the handwritten all-in-graph training loop
/// (state `(i, w, b)`, invariants threaded through; one `Session::run`
/// executes every step). Returns the graph and the `(w, b)` fetches.
pub fn build_ingraph_loop(params: &LinearParams) -> (Graph, Vec<NodeId>) {
    let mut b = GraphBuilder::new();
    b.push_scope("train_in_graph");
    let images = b.placeholder("images"); // [NB, batch, 784]
    let labels = b.placeholder("labels"); // [NB, batch]
    let steps = b.placeholder("steps"); // scalar i64
    let w0 = b.constant(params.w.clone());
    let b0 = b.constant(params.b.clone());
    let zero = b.constant(Tensor::scalar_i64(0));

    // state: 0=i, 1=w, 2=b, 3=steps, 4=images, 5=labels
    let cond_g = {
        let (mut sb, p) = SubGraphBuilder::new(6);
        let lt = sb.b.add(OpKind::Less, vec![p[0], p[3]]);
        sb.finish(vec![lt])
    };
    let body_g = {
        let (mut sb, p) = SubGraphBuilder::new(6);
        let (i, w, bias, steps, images, labels) = (p[0], p[1], p[2], p[3], p[4], p[5]);
        let nb = sb.b.constant(Tensor::scalar_i64(NUM_BATCHES as i64));
        let idx = sb.b.add(OpKind::Mod, vec![i, nb]);
        let x = sb.b.add(OpKind::IndexAxis0, vec![images, idx]);
        let y = sb.b.add(OpKind::IndexAxis0, vec![labels, idx]);
        let xw = sb.b.matmul(x, w);
        let logits = sb.b.add_op(xw, bias);
        let loss = sb.b.add(OpKind::SoftmaxCrossEntropy, vec![logits, y]);
        let grads = gradients(&mut sb.b, loss, &[w, bias]).expect("linear model grads");
        let lr = sb.b.scalar(LR);
        let dw = sb.b.mul(grads[0], lr);
        let db = sb.b.mul(grads[1], lr);
        let w2 = sb.b.sub(w, dw);
        let b2 = sb.b.sub(bias, db);
        let one = sb.b.constant(Tensor::scalar_i64(1));
        let i2 = sb.b.add_op(i, one);
        sb.finish(vec![i2, w2, b2, steps, images, labels])
    };
    let wl = b.add(
        OpKind::While {
            cond_g,
            body_g,
            max_iters: None,
        },
        vec![zero, w0, b0, steps, images, labels],
    );
    let w_final = b.tuple_get(wl, 1);
    let b_final = b.tuple_get(wl, 2);
    b.pop_scope();
    (b.finish(), vec![w_final, b_final])
}

/// Configuration 4: stage the imperative `train_loop` through AutoGraph.
/// Placeholders: `images`, `labels`, `w`, `b`, `steps`.
///
/// # Errors
///
/// Propagates staging errors.
pub fn stage_autograph(rt: &mut Runtime) -> Result<autograph_runtime::StagedGraph, RuntimeError> {
    rt.stage_to_graph(
        "train_loop",
        vec![
            GraphArg::Placeholder("images".into()),
            GraphArg::Placeholder("labels".into()),
            GraphArg::Placeholder("w".into()),
            GraphArg::Placeholder("b".into()),
            GraphArg::Placeholder("steps".into()),
        ],
    )
}

/// Mean cross-entropy of parameters on one batch (quality check).
///
/// # Errors
///
/// Propagates kernel errors.
pub fn loss_on(
    params: &LinearParams,
    x: &Tensor,
    y: &Tensor,
) -> Result<f32, autograph_tensor::TensorError> {
    let logits = x.matmul(&params.w)?.add(&params.b)?;
    Tensor::softmax_cross_entropy(&logits, y)?.scalar_value_f32()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_mnist;

    fn small_data() -> (Tensor, Tensor) {
        synthetic_mnist(NUM_BATCHES, 8, 123)
    }

    fn close(a: &Tensor, b: &Tensor, tol: f32) {
        for (x, y) in a.as_f32().unwrap().iter().zip(b.as_f32().unwrap()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn all_four_configurations_agree_and_learn() {
        let (images, labels) = small_data();
        let params = LinearParams::new(1);
        let steps = 60;
        let x0 = images.index_axis0(0).unwrap();
        let y0 = labels.index_axis0(0).unwrap();
        let initial_loss = loss_on(&params, &x0, &y0).unwrap();

        // 1. eager
        let mut rt = runtime(false).unwrap();
        let eager = run_eager(&mut rt, &images, &labels, &params, steps).unwrap();

        // 2. graph model + host loop
        let (g, train_op) = build_step_graph(&params);
        let mut sess = Session::new(g);
        let host = run_host_loop(&mut sess, train_op, &images, &labels, steps).unwrap();

        // 3. handwritten in-graph loop
        let (g3, fetches) = build_ingraph_loop(&params);
        let mut sess3 = Session::new(g3);
        let out3 = sess3
            .run(
                &[
                    ("images", images.clone()),
                    ("labels", labels.clone()),
                    ("steps", Tensor::scalar_i64(steps as i64)),
                ],
                &fetches,
            )
            .unwrap();
        let ingraph = LinearParams {
            w: out3[0].clone(),
            b: out3[1].clone(),
        };

        // 4. autograph staged loop
        let mut rt4 = runtime(true).unwrap();
        let staged = stage_autograph(&mut rt4).unwrap();
        let mut sess4 = Session::new(staged.graph);
        let out4 = sess4
            .run(
                &[
                    ("images", images.clone()),
                    ("labels", labels.clone()),
                    ("w", params.w.clone()),
                    ("b", params.b.clone()),
                    ("steps", Tensor::scalar_i64(steps as i64)),
                ],
                &staged.outputs,
            )
            .unwrap();
        let autograph = LinearParams {
            w: out4[0].clone(),
            b: out4[1].clone(),
        };

        // all configurations produce the same trained parameters
        close(&eager.w, &host.w, 1e-4);
        close(&eager.w, &ingraph.w, 1e-4);
        close(&eager.w, &autograph.w, 1e-4);
        close(&eager.b, &autograph.b, 1e-4);

        // and training reduced the loss
        let final_loss = loss_on(&autograph, &x0, &y0).unwrap();
        assert!(
            final_loss < initial_loss * 0.9,
            "no learning: {initial_loss} -> {final_loss}"
        );
    }

    #[test]
    fn variables_persist_between_host_steps() {
        let (images, labels) = small_data();
        let params = LinearParams::new(2);
        let (g, train_op) = build_step_graph(&params);
        let mut sess = Session::new(g);
        let after1 = run_host_loop(&mut sess, train_op, &images, &labels, 1).unwrap();
        let after2 = run_host_loop(&mut sess, train_op, &images, &labels, 1).unwrap();
        // the second step continued from the first
        let d: f32 = after1
            .w
            .as_f32()
            .unwrap()
            .iter()
            .zip(after2.w.as_f32().unwrap())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d > 0.0, "second step should change parameters");
    }
}
