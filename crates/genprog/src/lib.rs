//! # genprog — generative differential testing for AutoGraph
//!
//! The paper's core claim (§4, §7.2) is *semantic equivalence*: staged
//! code computes exactly what the imperative program computes. The
//! hand-written differential corpus checks ~30 fixed programs; this
//! crate generates unbounded numbers of them:
//!
//! * [`gen`] — a seeded, typed PyLite program generator whose grammar
//!   is gated to constructs every backend supports (same seed → same
//!   program, bitwise);
//! * [`oracle`] — a multi-oracle harness running each program through
//!   eager, the staged graph at several thread counts, Lantern, and a
//!   finite-difference gradient check, with determinism oracles on top;
//! * [`shrink`] — a delta-debugging minimizer that reduces a failing
//!   program while it keeps failing the *same* oracle;
//! * [`repro`] — `.pylite` reproducer files (comment header + source)
//!   written to `tests/regressions/` and replayed by the test suite;
//! * [`compare`] — the tolerance/bitwise tensor comparison used by the
//!   oracles and re-exported to the repo's integration tests.
//!
//! The `genprog` binary drives it: `fuzz` a seed range, `gen` to print
//! one program, `replay` a reproducer, `minimize` a failing case.

pub mod compare;
pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

pub use gen::generate;
pub use oracle::{check, GenCase, OracleCfg, Outcome};
