//! Reproducer files: a failing case serialized as PyLite source with a
//! metadata header in `#` comments (the PyLite lexer skips comments, so
//! a `.pylite` reproducer is *also* a loadable program as-is).
//!
//! ```text
//! # seed: 42
//! # oracle: eager-vs-graph
//! # lantern: false
//! # differentiable: false
//! # feed: x0 [3] 1.0 -0.5 0.25
//! # feed: x1 [] 0.75
//! def f(x0, x1):
//!     ...
//! ```
//!
//! Feed values are written with Rust's shortest round-trip float
//! formatting, so replaying a reproducer feeds bit-identical tensors.

use crate::oracle::GenCase;
use autograph_tensor::Tensor;

/// Serialize a case (with the oracle that caught it) to `.pylite` text.
pub fn to_pylite(case: &GenCase, oracle: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("# seed: {}\n", case.seed));
    out.push_str(&format!("# oracle: {oracle}\n"));
    out.push_str(&format!("# lantern: {}\n", case.lantern_ok));
    out.push_str(&format!("# differentiable: {}\n", case.differentiable));
    for (name, t) in &case.feeds {
        let dims: Vec<String> = t.shape().iter().map(|d| d.to_string()).collect();
        let vals: Vec<String> = t.to_f32_vec().iter().map(|v| format!("{v:?}")).collect();
        out.push_str(&format!(
            "# feed: {name} [{}] {}\n",
            dims.join(" "),
            vals.join(" ")
        ));
    }
    out.push_str(&case.src);
    if !case.src.ends_with('\n') {
        out.push('\n');
    }
    out
}

/// Parse a `.pylite` reproducer back into a case plus its oracle name.
///
/// # Errors
///
/// Returns a description of the first malformed header line.
pub fn from_pylite(text: &str) -> Result<(GenCase, String), String> {
    let mut seed = 0u64;
    let mut oracle = String::new();
    let mut lantern_ok = false;
    let mut differentiable = false;
    let mut feeds: Vec<(String, Tensor)> = Vec::new();
    let mut src_lines: Vec<&str> = Vec::new();
    let mut in_header = true;

    for line in text.lines() {
        let trimmed = line.trim_start();
        if in_header {
            if let Some(rest) = trimmed.strip_prefix('#') {
                let rest = rest.trim();
                if let Some(v) = rest.strip_prefix("seed:") {
                    seed = v.trim().parse().map_err(|e| format!("seed: {e}"))?;
                } else if let Some(v) = rest.strip_prefix("oracle:") {
                    oracle = v.trim().to_string();
                } else if let Some(v) = rest.strip_prefix("lantern:") {
                    lantern_ok = v.trim() == "true";
                } else if let Some(v) = rest.strip_prefix("differentiable:") {
                    differentiable = v.trim() == "true";
                } else if let Some(v) = rest.strip_prefix("feed:") {
                    feeds.push(parse_feed(v.trim())?);
                }
                // unknown # lines are ordinary comments — ignore
                continue;
            }
            if trimmed.is_empty() {
                continue;
            }
            in_header = false;
        }
        src_lines.push(line);
    }

    if src_lines.is_empty() {
        return Err("no source after header".to_string());
    }
    let mut src = src_lines.join("\n");
    src.push('\n');
    Ok((
        GenCase {
            seed,
            src,
            feeds,
            lantern_ok,
            differentiable,
        },
        oracle,
    ))
}

/// `name [d0 d1 ...] v0 v1 ...`
fn parse_feed(s: &str) -> Result<(String, Tensor), String> {
    let (name, rest) = s
        .split_once('[')
        .ok_or_else(|| format!("feed without shape: {s:?}"))?;
    let name = name.trim().to_string();
    let (dims, vals) = rest
        .split_once(']')
        .ok_or_else(|| format!("feed with unterminated shape: {s:?}"))?;
    let shape: Vec<usize> = dims
        .split_whitespace()
        .map(|d| d.parse().map_err(|e| format!("feed dim {d:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let data: Vec<f32> = vals
        .split_whitespace()
        .map(|v| v.parse().map_err(|e| format!("feed value {v:?}: {e}")))
        .collect::<Result<_, _>>()?;
    let t = Tensor::from_vec(data, &shape).map_err(|e| format!("feed {name}: {e}"))?;
    Ok((name, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let case = GenCase {
            seed: 1234,
            src: "def f(x0, x1):\n    return x0 * x1\n".to_string(),
            feeds: vec![
                (
                    // 1/3 exercises shortest-round-trip float formatting
                    "x0".to_string(),
                    Tensor::from_vec(vec![1.5, -0.25, 1.0f32 / 3.0], &[3]).unwrap(),
                ),
                ("x1".to_string(), Tensor::from_vec(vec![0.75], &[]).unwrap()),
            ],
            lantern_ok: true,
            differentiable: false,
        };
        let text = to_pylite(&case, "eager-vs-graph");
        let (back, oracle) = from_pylite(&text).expect("parse back");
        assert_eq!(oracle, "eager-vs-graph");
        assert_eq!(back.seed, case.seed);
        assert_eq!(back.src, case.src);
        assert!(back.lantern_ok);
        assert!(!back.differentiable);
        assert_eq!(back.feeds.len(), 2);
        for ((n1, t1), (n2, t2)) in case.feeds.iter().zip(&back.feeds) {
            assert_eq!(n1, n2);
            assert_eq!(t1.shape(), t2.shape());
            let (a, b) = (t1.to_f32_vec(), t2.to_f32_vec());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "feed {n1} not bit-exact");
            }
        }
    }

    #[test]
    fn reproducer_is_loadable_pylite() {
        let case = GenCase {
            seed: 7,
            src: "def f(x0):\n    return tf.tanh(x0)\n".to_string(),
            feeds: vec![(
                "x0".to_string(),
                Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap(),
            )],
            lantern_ok: true,
            differentiable: true,
        };
        let text = to_pylite(&case, "stage");
        // the header is all comments: the file parses as a module
        autograph_pylang::parse_module(&text).expect("reproducer parses as PyLite");
    }

    #[test]
    fn malformed_headers_are_reported() {
        assert!(from_pylite("# seed: nope\ndef f():\n    return 1.0\n").is_err());
        assert!(from_pylite("# feed: x 3] 1.0\ndef f():\n    return 1.0\n").is_err());
        assert!(from_pylite("# seed: 3\n").is_err());
    }
}
