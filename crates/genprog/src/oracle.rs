//! Multi-oracle differential harness.
//!
//! One generated (or replayed) program is pushed through every backend
//! configuration the repo supports, in a fixed order, and the first
//! disagreement is reported with the oracle that caught it:
//!
//! | oracle | checks |
//! |---|---|
//! | `convert-load` | conversion + module load succeeds |
//! | `eager-run` | the eager interpreter runs the program |
//! | `stage` | staging to a dataflow graph succeeds |
//! | `graph-run-tN` | the staged graph runs at `N` threads |
//! | `eager-vs-graph` | eager and graph agree to 1e-6 |
//! | `graph-bitwise` | all thread counts agree **bitwise** |
//! | `vm-vs-interp` | the bytecode VM reproduces the interpreter **bitwise** |
//! | `vm-bitwise-t1-vs-t4` | VM results are thread-count invariant **bitwise** |
//! | `rerun-determinism` | running the same session twice is bitwise-stable |
//! | `restage-determinism` | staging twice gives bitwise-identical results |
//! | `warm-vs-cold` | a plan-store round trip reproduces cold staging **bitwise**: results at every thread count, warnings, and provenance chains |
//! | `explain` / `explain-attribution` | the explain layer renders and ≥95% of executed nodes carry source spans (gated) |
//! | `eager-vs-lantern` | the Lantern backend agrees to 1e-6 (gated) |
//! | `fd-grad` | tape gradient matches central finite differences (gated) |
//! | `hang` | the whole pipeline finished inside the watchdog budget |
//!
//! Oracle *names* are stable identifiers: the shrinker accepts a
//! reduction step only if the reduced program still fails the **same**
//! oracle, and regression files record the name in their header.

use crate::compare;
use autograph::lantern;
use autograph::prelude::*;
use autograph::RunOptions;
use autograph_tensor::Tensor as T;
use std::time::Duration;

/// One generated test case: a PyLite program plus its feeds and the
/// oracle gates the generator derived from the constructs it used.
#[derive(Debug, Clone)]
pub struct GenCase {
    /// The seed that produced this case (0 for hand-written replays).
    pub seed: u64,
    /// PyLite source defining `def f(...)`.
    pub src: String,
    /// Feed tensors, in parameter order.
    pub feeds: Vec<(String, Tensor)>,
    /// Whether the op set is inside the Lantern backend's support.
    pub lantern_ok: bool,
    /// Whether the program is smooth enough for finite-difference
    /// gradient checking (no branches/kinks, single output).
    pub differentiable: bool,
}

/// Which oracles to run and how strictly.
#[derive(Debug, Clone)]
pub struct OracleCfg {
    /// Absolute tolerance for cross-backend value agreement.
    pub tol: f32,
    /// Thread counts to run the staged graph at; the first entry is the
    /// reference (compared against eager), the rest must match it
    /// bitwise.
    pub threads: Vec<usize>,
    /// Run the Lantern oracle on `lantern_ok` cases.
    pub check_lantern: bool,
    /// Run the finite-difference gradient oracle on `differentiable`
    /// cases.
    pub check_grad: bool,
    /// Stage a second time and require bitwise-identical results.
    pub check_restage: bool,
    /// Round-trip the compiled plan through the persistent plan store
    /// and require the warm path to reproduce the cold path bitwise
    /// (results, warnings, provenance chains) at every thread count.
    pub check_warm_cold: bool,
    /// Run the explain layer and require well-formed output with ≥95%
    /// node-to-span attribution.
    pub check_explain: bool,
    /// Safety net for staged loops (generated loops terminate by
    /// construction; shrunk mutants may not).
    pub max_while_iters: u64,
}

impl Default for OracleCfg {
    fn default() -> Self {
        OracleCfg {
            tol: compare::DEFAULT_TOL,
            threads: vec![1, 4],
            check_lantern: true,
            check_grad: true,
            check_restage: true,
            check_warm_cold: true,
            check_explain: true,
            max_while_iters: 100_000,
        }
    }
}

/// A reproducible oracle failure.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Stable oracle identifier (see the module table).
    pub oracle: String,
    /// Human-readable description of the first mismatch.
    pub detail: String,
}

/// Result of pushing one case through the oracle pipeline.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every applicable oracle agreed.
    Pass,
    /// The program legitimately produced non-finite values eagerly;
    /// value comparisons would be meaningless, so the case is skipped
    /// (counted separately so a generator gating bug shows up as a
    /// skip-rate spike, not silence).
    NonFinite,
    /// An oracle caught a divergence.
    Fail(Divergence),
}

impl Outcome {
    /// The failing oracle's name, if this outcome is a failure.
    pub fn failing_oracle(&self) -> Option<&str> {
        match self {
            Outcome::Fail(d) => Some(&d.oracle),
            _ => None,
        }
    }
}

fn fail(oracle: &str, detail: impl std::fmt::Display) -> Outcome {
    Outcome::Fail(Divergence {
        oracle: oracle.to_string(),
        detail: detail.to_string(),
    })
}

/// Flatten an eager call result into a tensor list.
fn flatten_value(v: Value) -> Result<Vec<T>, String> {
    match v {
        Value::Tuple(items) => items
            .iter()
            .map(|x| {
                x.as_eager_tensor()
                    .map_err(|e| format!("non-tensor output: {e}"))
            })
            .collect(),
        single => Ok(vec![single
            .as_eager_tensor()
            .map_err(|e| format!("non-tensor output: {e}"))?]),
    }
}

fn flatten_lvalue(v: lantern::value::LValue) -> Result<Vec<T>, String> {
    match v {
        lantern::value::LValue::Tuple(items) => items
            .iter()
            .map(|x| {
                x.as_tensor()
                    .cloned()
                    .map_err(|e| format!("non-tensor lantern output: {e}"))
            })
            .collect(),
        single => Ok(vec![single
            .as_tensor()
            .map_err(|e| format!("non-tensor lantern output: {e}"))?
            .clone()]),
    }
}

/// Run the full oracle pipeline on one case. See the module docs for
/// the oracle order; the first failure wins.
pub fn check(case: &GenCase, cfg: &OracleCfg) -> Outcome {
    check_src(
        &case.src,
        &case.feeds,
        case.lantern_ok,
        case.differentiable,
        cfg,
    )
}

/// [`check`] over borrowed parts — the shrinker calls this with mutated
/// sources against the original feeds/gates.
pub fn check_src(
    src: &str,
    feeds: &[(String, Tensor)],
    lantern_ok: bool,
    differentiable: bool,
    cfg: &OracleCfg,
) -> Outcome {
    // 1. convert + load
    let mut rt = match Runtime::load(src, true) {
        Ok(rt) => rt,
        Err(e) => return fail("convert-load", e),
    };

    // 2. eager reference
    let eager_args: Vec<Value> = feeds
        .iter()
        .map(|(_, t)| Value::tensor(t.clone()))
        .collect();
    let eager = match rt.call("f", eager_args) {
        Ok(v) => v,
        Err(e) => return fail("eager-run", e),
    };
    let eager_flat = match flatten_value(eager) {
        Ok(ts) => ts,
        Err(e) => return fail("eager-run", e),
    };
    if !compare::all_finite(&eager_flat) {
        return Outcome::NonFinite;
    }

    // 3. stage to graph
    let placeholder_args: Vec<GraphArg> = feeds
        .iter()
        .map(|(n, _)| GraphArg::Placeholder(n.clone()))
        .collect();
    let staged = match rt.stage_to_graph("f", placeholder_args.clone()) {
        Ok(s) => s,
        Err(e) => return fail("stage", e),
    };

    // 4. graph at every configured thread count
    let feed_refs: Vec<(&str, Tensor)> =
        feeds.iter().map(|(n, t)| (n.as_str(), t.clone())).collect();
    let opts = RunOptions {
        max_while_iters: Some(cfg.max_while_iters),
        ..RunOptions::default()
    };
    let mut per_thread: Vec<(usize, Vec<T>)> = Vec::new();
    for &n in &cfg.threads {
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(n);
        match sess.run_with_options(&feed_refs, &staged.outputs, &opts) {
            Ok(out) => per_thread.push((n, out)),
            Err(e) => return fail(&format!("graph-run-t{n}"), e),
        }
    }
    let Some((t0, ref_out)) = per_thread.first().cloned() else {
        return fail("graph-run", "no thread counts configured");
    };

    // 5. eager vs graph (tolerance)
    if let Err(e) = compare::close("eager vs graph", &eager_flat, &ref_out, cfg.tol) {
        return fail("eager-vs-graph", e);
    }

    // 6. cross-thread bitwise determinism
    for (n, out) in &per_thread[1..] {
        if let Err(e) = compare::bitwise(&format!("graph t{t0} vs t{n}"), &ref_out, out) {
            return fail("graph-bitwise", e);
        }
    }

    // 6b. VM vs interpreter: the compiled tier (register bytecode,
    // fused elementwise kernels, buffer recycling) is pure cost model —
    // it must reproduce interpretive dispatch bit for bit
    {
        let run_mode = |mode: ExecMode, n: usize| -> Result<Vec<T>, String> {
            let mut sess = Session::new(staged.graph.clone());
            sess.set_threads(n);
            sess.set_exec_mode(mode);
            sess.run_with_options(&feed_refs, &staged.outputs, &opts)
                .map_err(|e| e.to_string())
        };
        let interp = match run_mode(ExecMode::Interp, t0) {
            Ok(o) => o,
            Err(e) => return fail("vm-vs-interp", e),
        };
        let vm = match run_mode(ExecMode::Vm, t0) {
            Ok(o) => o,
            Err(e) => return fail("vm-vs-interp", e),
        };
        if let Err(e) = compare::bitwise("vm vs interp", &interp, &vm) {
            return fail("vm-vs-interp", e);
        }
        // the VM is linear on the calling thread, so its results cannot
        // depend on the configured thread count (kernels may still
        // parallelize internally — also bitwise-stable by contract)
        for &n in &cfg.threads[1..] {
            let out = match run_mode(ExecMode::Vm, n) {
                Ok(o) => o,
                Err(e) => return fail(&format!("vm-bitwise-t{t0}-vs-t{n}"), e),
            };
            if let Err(e) = compare::bitwise(&format!("vm t{t0} vs t{n}"), &vm, &out) {
                return fail(&format!("vm-bitwise-t{t0}-vs-t{n}"), e);
            }
        }
    }

    // 7. rerun determinism: same session, same plan, run again
    if let Some(&last) = cfg.threads.last() {
        let mut sess = Session::new(staged.graph.clone());
        sess.set_threads(last);
        let a = match sess.run_with_options(&feed_refs, &staged.outputs, &opts) {
            Ok(out) => out,
            Err(e) => return fail("rerun-determinism", e),
        };
        let b = match sess.run_with_options(&feed_refs, &staged.outputs, &opts) {
            Ok(out) => out,
            Err(e) => return fail("rerun-determinism", e),
        };
        if let Err(e) = compare::bitwise("rerun", &a, &b) {
            return fail("rerun-determinism", e);
        }
    }

    // 8. idempotent staging: stage the same function again, run at the
    // reference thread count, require bitwise-identical results
    if cfg.check_restage {
        match rt.stage_to_graph("f", placeholder_args) {
            Ok(staged2) => {
                let mut sess = Session::new(staged2.graph);
                sess.set_threads(t0);
                match sess.run_with_options(&feed_refs, &staged2.outputs, &opts) {
                    Ok(out) => {
                        if let Err(e) = compare::bitwise("restage", &ref_out, &out) {
                            return fail("restage-determinism", e);
                        }
                    }
                    Err(e) => return fail("restage-determinism", e),
                }
            }
            Err(e) => return fail("restage-determinism", e),
        }
    }

    // 8b. warm-vs-cold: persist the compiled plan, reload it, and
    // require the warm function to be indistinguishable from the cold
    // one — results bitwise at every thread count, identical warnings,
    // identical graphs (provenance chains included, via Graph's
    // PartialEq)
    if cfg.check_warm_cold {
        if let Outcome::Fail(d) = check_warm_cold(src, feeds, cfg) {
            return Outcome::Fail(d);
        }
    }

    // 9. explain layer: the provenance/attribution pipeline must accept
    // every program the differential pipeline accepts, produce parseable
    // DOT, and attribute ≥95% of executed nodes to source spans
    if cfg.check_explain {
        let opts = autograph_explain::ExplainOptions {
            func: "f".to_string(),
            threads: *cfg.threads.first().unwrap_or(&1),
            runs: 1,
        };
        match autograph_explain::explain_source(src, feeds, &opts) {
            Ok(ex) => {
                if ex.staged.is_some() {
                    if ex.coverage.node_fraction() < 0.95 {
                        return fail(
                            "explain-attribution",
                            format!(
                                "only {}/{} executed nodes carry source spans",
                                ex.coverage.attributed_nodes, ex.coverage.total_nodes
                            ),
                        );
                    }
                    if !ex.plan_dot().starts_with("digraph") {
                        return fail("explain", "plan DOT is not a digraph");
                    }
                }
                if ex.annotated_source().is_empty() || ex.summary().is_empty() {
                    return fail("explain", "empty render");
                }
            }
            Err(e) => return fail("explain", e),
        }
    }

    // 10. Lantern (gated on the generator's op-support flag)
    if lantern_ok && cfg.check_lantern {
        let lantern_args: Vec<LanternArg> = feeds
            .iter()
            .map(|(n, _)| LanternArg::Extern(n.clone()))
            .collect();
        match rt.stage_to_lantern("f", lantern_args) {
            Ok(program) => {
                let engine = lantern::Engine::new(program);
                match engine.run(&feed_refs, &[]) {
                    Ok(out) => match flatten_lvalue(out) {
                        Ok(lantern_flat) => {
                            if let Err(e) = compare::close(
                                "eager vs lantern",
                                &eager_flat,
                                &lantern_flat,
                                cfg.tol,
                            ) {
                                return fail("eager-vs-lantern", e);
                            }
                        }
                        Err(e) => return fail("eager-vs-lantern", e),
                    },
                    Err(e) => return fail("eager-vs-lantern", e),
                }
            }
            Err(e) => return fail("eager-vs-lantern", e),
        }
    }

    // 11. finite-difference gradient of a scalarized loss w.r.t. the
    // first parameter, vs the eager tape
    if differentiable && cfg.check_grad {
        if let Outcome::Fail(d) = check_gradient(src, feeds, &eager_flat, cfg) {
            return Outcome::Fail(d);
        }
    }

    Outcome::Pass
}

/// Gradient oracle: wrap `f` in a scalar loss, differentiate it with
/// the eager tape, and compare against central finite differences.
/// Non-finite gradients (the loss wandered into saturation) skip the
/// check rather than failing it.
fn check_gradient(
    src: &str,
    feeds: &[(String, Tensor)],
    eager_flat: &[T],
    _cfg: &OracleCfg,
) -> Outcome {
    let params: Vec<&str> = feeds.iter().map(|(n, _)| n.as_str()).collect();
    let plist = params.join(", ");
    // the first output's rank decides how the loss is scalarized
    let scalarize = if eager_flat[0].shape().is_empty() {
        "tf.square(r)".to_string()
    } else {
        "tf.reduce_sum(tf.square(r))".to_string()
    };
    let wrapper = format!(
        "\ndef gp_loss({plist}):\n    r = f({plist})\n    return {scalarize}\n\n\
         def gp_loss_tape({plist}):\n    tf.tape_begin()\n    {p0} = tf.watch({p0})\n    \
         r = f({plist})\n    l = {scalarize}\n    g = tf.grad(l, [{p0}])\n    return g[0]\n",
        p0 = params[0],
    );
    let full = format!("{src}{wrapper}");
    let mut rt = match Runtime::load(&full, true) {
        Ok(rt) => rt,
        Err(e) => return fail("fd-grad", format!("loss wrapper load: {e}")),
    };

    // eager tape gradient
    let tape_args: Vec<Value> = feeds
        .iter()
        .map(|(_, t)| Value::tensor(t.clone()))
        .collect();
    let tape = match rt.call("gp_loss_tape", tape_args) {
        Ok(v) => v,
        Err(e) => return fail("fd-grad", format!("tape: {e}")),
    };
    let tape = match tape.as_eager_tensor() {
        Ok(t) => t,
        Err(e) => return fail("fd-grad", format!("tape result: {e}")),
    };
    let tape_vals = tape.to_f32_vec();
    if !tape_vals.iter().all(|v| v.is_finite()) {
        return Outcome::Pass; // saturated — FD would be meaningless
    }

    // central finite differences w.r.t. feeds[0]
    let eps = 5e-3f32;
    let base = feeds[0].1.to_f32_vec();
    let shape = feeds[0].1.shape().to_vec();
    if tape_vals.len() != base.len() {
        return fail(
            "fd-grad",
            format!(
                "grad arity: tape {} vs param {}",
                tape_vals.len(),
                base.len()
            ),
        );
    }
    let mut eval = |bumped: Vec<f32>| -> Result<f32, String> {
        let t = Tensor::from_vec(bumped, &shape).map_err(|e| e.to_string())?;
        let mut args: Vec<Value> = Vec::with_capacity(feeds.len());
        args.push(Value::tensor(t));
        for (_, t) in &feeds[1..] {
            args.push(Value::tensor(t.clone()));
        }
        let v = rt.call("gp_loss", args).map_err(|e| e.to_string())?;
        let t = v.as_eager_tensor().map_err(|e| e.to_string())?;
        t.scalar_value_f32().map_err(|e| e.to_string())
    };
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += eps;
        let mut minus = base.clone();
        minus[i] -= eps;
        let (lp, lm) = match (eval(plus), eval(minus)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => return fail("fd-grad", format!("fd eval: {e}")),
        };
        if !lp.is_finite() || !lm.is_finite() {
            return Outcome::Pass; // bumped into saturation — skip
        }
        let fd = (lp - lm) / (2.0 * eps);
        let tol = 3e-2 * fd.abs().max(tape_vals[i].abs()).max(1.0);
        if (fd - tape_vals[i]).abs() > tol {
            return fail(
                "fd-grad",
                format!(
                    "d loss/d {}[{i}]: tape {} vs fd {fd} (tol {tol})",
                    feeds[0].0, tape_vals[i]
                ),
            );
        }
    }
    Outcome::Pass
}

/// Warm-vs-cold oracle: compile through the persistent plan store
/// twice (cold populate, warm reload) and require the warm function to
/// be indistinguishable from the cold one. "Indistinguishable" means:
/// identical conversion warnings, an identical optimized graph
/// (provenance chains ride in the graph's nodes, so `Graph`'s
/// `PartialEq` covers them), and bitwise-identical call results at
/// every configured thread count.
///
/// The cached pipeline additionally runs shape validation and unit
/// compilation; a program it rejects that plain staging accepted is a
/// validator-strictness question, not a cache defect, so those cases
/// skip rather than fail.
fn check_warm_cold(src: &str, feeds: &[(String, Tensor)], cfg: &OracleCfg) -> Outcome {
    use autograph::runtime::plan_cache::compile_cached_with;
    use autograph_planstore::{content_hash, PlanStore, VERSION_TAG};

    let arg_names: Vec<&str> = feeds.iter().map(|(n, _)| n.as_str()).collect();
    let dir = std::env::temp_dir().join(format!(
        "agplan-genprog-{}-{:016x}",
        std::process::id(),
        content_hash(src, "oracle")
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = match PlanStore::open(&dir) {
        Ok(s) => s,
        // an unwritable temp dir is an environment problem, not a cache bug
        Err(_) => return Outcome::Pass,
    };
    let cleanup = || {
        let _ = std::fs::remove_dir_all(&dir);
    };

    let cold = match compile_cached_with(src, "f", &arg_names, Some(&store), VERSION_TAG) {
        Ok(a) => a,
        Err(_) => {
            cleanup();
            return Outcome::Pass; // rejected by the stricter cached pipeline
        }
    };
    if cold.from_cache {
        cleanup();
        return fail("warm-vs-cold", "fresh store reported a cache hit");
    }
    let warm = match compile_cached_with(src, "f", &arg_names, Some(&store), VERSION_TAG) {
        Ok(a) => a,
        Err(e) => {
            cleanup();
            return fail("warm-vs-cold", format!("warm reload failed: {e}"));
        }
    };
    if !warm.from_cache {
        cleanup();
        return fail(
            "warm-vs-cold",
            "populated store missed — artifact not written back or not found",
        );
    }

    // conversion warnings must replay verbatim from the artifact
    if cold.warnings.len() != warm.warnings.len() {
        cleanup();
        return fail(
            "warm-vs-cold",
            format!(
                "warning count: cold {} vs warm {}",
                cold.warnings.len(),
                warm.warnings.len()
            ),
        );
    }
    for (i, (a, b)) in cold.warnings.iter().zip(&warm.warnings).enumerate() {
        if a.function != b.function
            || a.span != b.span
            || a.reason != b.reason
            || a.source_line != b.source_line
        {
            cleanup();
            return fail(
                "warm-vs-cold",
                format!("warning[{i}]: cold {a:?} vs warm {b:?}"),
            );
        }
    }

    // optimized graph + provenance chains survive the round trip
    if cold.func.graph() != warm.func.graph() {
        cleanup();
        return fail(
            "warm-vs-cold",
            "optimized graph (or its provenance chains) changed across the store round trip",
        );
    }

    // bitwise-identical results at every configured thread count
    let feed_tensors: Vec<Tensor> = feeds.iter().map(|(_, t)| t.clone()).collect();
    let (mut cf, mut wf) = (cold.func, warm.func);
    for &n in &cfg.threads {
        cf.set_threads(n);
        wf.set_threads(n);
        match (cf.call(&feed_tensors), wf.call(&feed_tensors)) {
            (Ok(a), Ok(b)) => {
                if let Err(e) = compare::bitwise(&format!("warm vs cold t{n}"), &a, &b) {
                    cleanup();
                    return fail("warm-vs-cold", e);
                }
            }
            (Err(a), Err(b)) => {
                if a.to_string() != b.to_string() {
                    cleanup();
                    return fail(
                        "warm-vs-cold",
                        format!("t{n}: cold error {a:?} vs warm error {b:?}"),
                    );
                }
            }
            (Ok(_), Err(e)) => {
                cleanup();
                return fail("warm-vs-cold", format!("t{n}: cold ran, warm failed: {e}"));
            }
            (Err(e), Ok(_)) => {
                cleanup();
                return fail("warm-vs-cold", format!("t{n}: warm ran, cold failed: {e}"));
            }
        }
    }

    cleanup();
    Outcome::Pass
}

/// [`check_src`] under a wall-clock watchdog. Shrink mutants can turn a
/// terminating loop into an infinite one (e.g. by deleting a counter
/// increment); the eager interpreter has no fuel limit, so the check
/// runs on a helper thread and a timeout is reported as the stable
/// oracle name `hang`. The stuck thread is detached — acceptable for a
/// short-lived fuzz/shrink process, which exits soon after.
pub fn check_src_watchdog(
    src: &str,
    feeds: &[(String, Tensor)],
    lantern_ok: bool,
    differentiable: bool,
    cfg: &OracleCfg,
    timeout: Duration,
) -> Outcome {
    let (tx, rx) = std::sync::mpsc::channel();
    let src = src.to_string();
    let feeds = feeds.to_vec();
    let cfg = cfg.clone();
    std::thread::spawn(move || {
        let out = check_src(&src, &feeds, lantern_ok, differentiable, &cfg);
        let _ = tx.send(out);
    });
    match rx.recv_timeout(timeout) {
        Ok(out) => out,
        Err(_) => fail("hang", format!("no verdict within {timeout:?}")),
    }
}
