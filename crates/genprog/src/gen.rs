//! Seeded, typed PyLite program generator.
//!
//! Programs are built from a *gated* expression/statement grammar: every
//! construct the generator can emit is one the conversion pipeline and
//! all execution backends are specified to support, so a generated
//! program that fails to convert, stage, or run is itself a bug find
//! (either a converter bug or a gate bug — both worth a reproducer).
//!
//! ## Gating rules
//!
//! * **Types.** Three tensor types: `Scalar` (rank 0), `Vector` (`[3]`)
//!   and `Matrix` (`[3, 3]`), all f32. Every expression is generated
//!   *for* a target type, and operands are chosen so shapes always
//!   broadcast (scalars combine with anything; vectors never meet
//!   matrices except through reductions / row iteration).
//! * **Finiteness.** Division is always guarded
//!   (`a / (tf.square(b) + 1.0)`), `exp`/`log`/`sqrt` arguments are
//!   squashed or offset, literals stay in `[-1.5, 2.0]`, and loop-carried
//!   assignments are *contractive* (squashed through `tanh`/`sigmoid` or
//!   bounded additive updates), so iteration cannot blow values up.
//! * **Termination.** `while` loops either count a host integer up to a
//!   small bound (the counter increment is the first body statement, so
//!   `continue` can never skip it) or accumulate a strictly positive
//!   quantity toward a threshold. `break` may *shorten* but never extend
//!   a loop.
//! * **Definedness.** Conditional branches only assign variables that
//!   already exist before the branch, so every variable is defined on
//!   all code paths (the converter rejects anything else at staging).
//!   Early `return`s always match the final return's arity and types.
//!
//! The same seed always produces the byte-identical program and feeds —
//! the fuzz driver's replay contract.

use crate::oracle::GenCase;
use autograph_tensor::{Rng64, Tensor};

/// Vector length / matrix side used for every generated tensor.
pub const VLEN: usize = 3;

/// Safe literal pool: small magnitudes, exactly representable.
const LITS: [&str; 12] = [
    "-1.5", "-1.0", "-0.75", "-0.5", "-0.25", "0.25", "0.5", "0.75", "1.0", "1.25", "1.5", "2.0",
];

/// Tensor value types the generator tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Scalar,
    Vector,
    Matrix,
}

struct Gen {
    rng: Rng64,
    lines: Vec<(usize, String)>,
    scalars: Vec<String>,
    vectors: Vec<String>,
    matrices: Vec<String>,
    next_id: usize,
    loop_depth: usize,
    lantern_ok: bool,
    differentiable: bool,
}

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_below(n) as u64
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    fn lit(&mut self) -> String {
        LITS[self.below(LITS.len() as u64) as usize].to_string()
    }

    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.next_id;
        self.next_id += 1;
        format!("{prefix}{n}")
    }

    fn line(&mut self, indent: usize, text: String) {
        self.lines.push((indent, text));
    }

    fn vars_of(&self, ty: Ty) -> &[String] {
        match ty {
            Ty::Scalar => &self.scalars,
            Ty::Vector => &self.vectors,
            Ty::Matrix => &self.matrices,
        }
    }

    fn pick_var(&mut self, ty: Ty) -> Option<String> {
        let vars = self.vars_of(ty);
        if vars.is_empty() {
            return None;
        }
        let i = self.below(vars.len() as u64) as usize;
        Some(self.vars_of(ty)[i].clone())
    }

    fn register(&mut self, ty: Ty, name: String) {
        match ty {
            Ty::Scalar => self.scalars.push(name),
            Ty::Vector => self.vectors.push(name),
            Ty::Matrix => self.matrices.push(name),
        }
    }

    /// A type that has at least one live variable, biased toward vectors.
    fn pick_ty(&mut self) -> Ty {
        let mut pool = Vec::new();
        if !self.scalars.is_empty() {
            pool.extend([Ty::Scalar; 2]);
        }
        if !self.vectors.is_empty() {
            pool.extend([Ty::Vector; 3]);
        }
        if !self.matrices.is_empty() {
            pool.push(Ty::Matrix);
        }
        if pool.is_empty() {
            return Ty::Scalar;
        }
        pool[self.below(pool.len() as u64) as usize]
    }

    // ---- expressions ---------------------------------------------------

    /// An expression of type `ty`, with remaining recursion depth `d`.
    fn expr(&mut self, ty: Ty, d: usize) -> String {
        match ty {
            Ty::Scalar => self.scalar_expr(d),
            Ty::Vector => self.vector_expr(d),
            Ty::Matrix => self.matrix_expr(d),
        }
    }

    fn scalar_atom(&mut self) -> String {
        if self.scalars.is_empty() || self.chance(35) {
            self.lit()
        } else {
            self.pick_var(Ty::Scalar).unwrap_or_else(|| self.lit())
        }
    }

    fn scalar_expr(&mut self, d: usize) -> String {
        if d == 0 {
            return self.scalar_atom();
        }
        match self.below(12) {
            0 | 1 => {
                let a = self.scalar_expr(d - 1);
                let b = self.scalar_expr(d - 1);
                let op = ["+", "-", "*"][self.below(3) as usize];
                format!("({a} {op} {b})")
            }
            2 => {
                let a = self.scalar_expr(d - 1);
                let b = self.scalar_expr(d - 1);
                format!("({a} / (tf.square({b}) + 1.0))")
            }
            3 => {
                let f = ["tf.tanh", "tf.sigmoid"][self.below(2) as usize];
                let a = self.scalar_expr(d - 1);
                format!("{f}({a})")
            }
            4 if !self.vectors.is_empty() => {
                let f = ["tf.reduce_sum", "tf.reduce_mean"][self.below(2) as usize];
                let v = self.vector_expr(d - 1);
                format!("{f}({v})")
            }
            5 if !self.matrices.is_empty() => {
                let m = self.matrix_expr(d - 1);
                format!("tf.reduce_sum({m})")
            }
            6 => {
                let a = self.scalar_expr(d - 1);
                format!("(-{a})")
            }
            7 => {
                // ternary: dynamic dispatch on a tensor condition
                self.differentiable = false;
                let c = self.cond_expr(d - 1);
                let a = self.scalar_expr(d - 1);
                let b = self.scalar_expr(d - 1);
                format!("({a} if {c} else {b})")
            }
            8 => {
                self.differentiable = false;
                self.lantern_ok = false;
                let f = ["tf.maximum", "tf.minimum"][self.below(2) as usize];
                let a = self.scalar_expr(d - 1);
                let b = self.scalar_expr(d - 1);
                format!("{f}({a}, {b})")
            }
            9 => {
                // smooth, guarded transcendentals
                let a = self.scalar_expr(d - 1);
                match self.below(3) {
                    0 => format!("tf.sqrt(tf.square({a}) + 0.5)"),
                    1 => format!("tf.log(tf.square({a}) + 1.0)"),
                    _ => format!("tf.exp(tf.tanh({a}))"),
                }
            }
            10 => {
                let a = self.scalar_expr(d - 1);
                format!("tf.square({a})")
            }
            _ => self.scalar_atom(),
        }
    }

    fn vector_atom(&mut self) -> String {
        match self.pick_var(Ty::Vector) {
            Some(v) => v,
            // callers only request vectors when one exists, but stay safe
            None => self.scalar_atom(),
        }
    }

    /// Vector-or-scalar operand (broadcasting keeps the result a vector
    /// as long as the *other* operand is a vector).
    fn vec_or_scalar(&mut self, d: usize) -> String {
        if self.chance(35) {
            self.scalar_expr(d)
        } else {
            self.vector_expr(d)
        }
    }

    fn vector_expr(&mut self, d: usize) -> String {
        if d == 0 || self.vectors.is_empty() {
            return self.vector_atom();
        }
        match self.below(11) {
            0 | 1 => {
                let a = self.vector_expr(d - 1);
                let b = self.vec_or_scalar(d - 1);
                let op = ["+", "-", "*"][self.below(3) as usize];
                format!("({a} {op} {b})")
            }
            2 => {
                let a = self.vector_expr(d - 1);
                let b = self.vec_or_scalar(d - 1);
                format!("({a} / (tf.square({b}) + 1.0))")
            }
            3 => {
                let f = ["tf.tanh", "tf.sigmoid"][self.below(2) as usize];
                let a = self.vector_expr(d - 1);
                format!("{f}({a})")
            }
            4 => {
                // relu has a kink: fine for value oracles, not for FD
                self.differentiable = false;
                let a = self.vector_expr(d - 1);
                format!("tf.relu({a})")
            }
            5 => {
                self.differentiable = false;
                self.lantern_ok = false;
                let a = self.vector_expr(d - 1);
                format!("tf.abs({a})")
            }
            6 => {
                self.differentiable = false;
                self.lantern_ok = false;
                let a = self.vector_expr(d - 1);
                let b = self.vector_expr(d - 1);
                let c = self.vector_expr(d - 1);
                let e = self.vec_or_scalar(d - 1);
                format!("tf.where(({a} > {e}), {b}, {c})")
            }
            7 => {
                self.differentiable = false;
                self.lantern_ok = false;
                let f = ["tf.maximum", "tf.minimum"][self.below(2) as usize];
                let a = self.vector_expr(d - 1);
                let b = self.vec_or_scalar(d - 1);
                format!("{f}({a}, {b})")
            }
            8 => {
                self.differentiable = false;
                let c = self.cond_expr(d - 1);
                let a = self.vector_expr(d - 1);
                let b = self.vector_expr(d - 1);
                format!("({a} if {c} else {b})")
            }
            9 => {
                let a = self.vector_expr(d - 1);
                format!("(-{a})")
            }
            _ => self.vector_atom(),
        }
    }

    fn matrix_expr(&mut self, d: usize) -> String {
        let atom = match self.pick_var(Ty::Matrix) {
            Some(m) => m,
            None => return self.scalar_atom(),
        };
        if d == 0 {
            return atom;
        }
        match self.below(6) {
            0 => {
                let a = self.matrix_expr(d - 1);
                let b = self.matrix_expr(d - 1);
                format!("tf.matmul({a}, {b})")
            }
            1 => {
                let a = self.matrix_expr(d - 1);
                format!("tf.tanh({a})")
            }
            2 => {
                let a = self.matrix_expr(d - 1);
                let b = self.matrix_expr(d - 1);
                let op = ["+", "-"][self.below(2) as usize];
                format!("({a} {op} {b})")
            }
            3 => {
                let a = self.matrix_expr(d - 1);
                let s = self.scalar_expr(d - 1);
                format!("({a} * {s})")
            }
            _ => atom,
        }
    }

    /// A scalar boolean (tensor) condition.
    fn cond_expr(&mut self, d: usize) -> String {
        let base = |g: &mut Gen, d: usize| {
            let a = g.scalar_expr(d);
            let b = if g.chance(50) {
                g.lit()
            } else {
                g.scalar_expr(d)
            };
            let cmp = ["<", "<=", ">", ">="][g.below(4) as usize];
            format!("({a} {cmp} {b})")
        };
        if d == 0 {
            return base(self, 0);
        }
        match self.below(8) {
            0 => {
                let a = base(self, d - 1);
                let b = base(self, d - 1);
                format!("({a} and {b})")
            }
            1 => {
                let a = base(self, d - 1);
                let b = base(self, d - 1);
                format!("({a} or {b})")
            }
            2 => {
                let a = base(self, d - 1);
                format!("(not {a})")
            }
            _ => base(self, d),
        }
    }

    // ---- statements ----------------------------------------------------

    /// A contractive right-hand side for loop-carried variables: the
    /// result is either squashed into `[-1, 1]`-ish range or a bounded
    /// additive/decaying update of the target itself.
    fn bounded_update(&mut self, target: &str, ty: Ty) -> String {
        match self.below(4) {
            0 => format!("tf.tanh({})", self.expr(ty, 2)),
            1 => format!("tf.sigmoid({})", self.expr(ty, 2)),
            2 => {
                let inc = self.expr(ty, 1);
                format!("({target} + tf.tanh({inc}) * 0.5)")
            }
            _ => {
                let inc = self.lit();
                format!("({target} * 0.5 + {inc} * 0.25)")
            }
        }
    }

    /// Assignment to an *existing* variable (used in branch/loop bodies,
    /// where fresh names must not escape their scope).
    fn assign_existing(&mut self, indent: usize, bounded: bool) {
        let ty = self.pick_ty();
        let Some(target) = self.pick_var(ty) else {
            let t = self.fresh("s");
            let rhs = self.scalar_expr(2);
            self.line(indent, format!("{t} = {rhs}"));
            self.register(Ty::Scalar, t);
            return;
        };
        let rhs = if bounded {
            self.bounded_update(&target, ty)
        } else {
            self.expr(ty, 3)
        };
        if self.chance(20) && !bounded {
            let op = ["+", "*"][self.below(2) as usize];
            self.line(indent, format!("{target} {op}= tf.tanh({rhs})"));
        } else {
            self.line(indent, format!("{target} = {rhs}"));
        }
    }

    fn assign_new(&mut self, indent: usize) {
        let ty = self.pick_ty();
        let prefix = match ty {
            Ty::Scalar => "s",
            Ty::Vector => "v",
            Ty::Matrix => "m",
        };
        let name = self.fresh(prefix);
        let mut rhs = self.expr(ty, 3);
        // squash bias: keeps chained squaring from overflowing downstream
        if self.chance(40) {
            rhs = format!("tf.tanh({rhs})");
        }
        self.line(indent, format!("{name} = {rhs}"));
        self.register(ty, name);
    }

    fn if_stmt(&mut self, indent: usize, depth: usize) {
        self.differentiable = false;
        let cond = self.cond_expr(1);
        self.line(indent, format!("if {cond}:"));
        let n = 1 + self.below(2);
        for _ in 0..n {
            if depth > 0 && self.chance(25) {
                self.if_stmt(indent + 1, depth - 1);
            } else {
                self.assign_existing(indent + 1, false);
            }
        }
        if self.chance(60) {
            self.line(indent, "else:".to_string());
            let n = 1 + self.below(2);
            for _ in 0..n {
                self.assign_existing(indent + 1, false);
            }
        }
    }

    /// `i = 0; while i < K:` — the counter increment is always the first
    /// body statement, so `continue` can never skip it.
    fn host_while(&mut self, indent: usize) {
        self.differentiable &= true; // host-unrolled loops stay smooth
        self.lantern_ok = false;
        let i = self.fresh("i");
        let k = 2 + self.below(4); // 2..=5 iterations
        self.line(indent, format!("{i} = 0"));
        self.line(indent, format!("while {i} < {k}:"));
        self.line(indent + 1, format!("{i} = {i} + 1"));
        self.loop_depth += 1;
        let n = 1 + self.below(3);
        for _ in 0..n {
            self.loop_body_stmt(indent + 1, &i);
        }
        self.loop_depth -= 1;
    }

    /// One statement inside a loop body: bounded assignment, a guarded
    /// `break`/`continue`, or (shallowly) a nested loop.
    fn loop_body_stmt(&mut self, indent: usize, counter: &str) {
        match self.below(10) {
            0 if self.loop_depth < 2 => self.host_while(indent),
            1 => {
                // guarded break — the guard must be a *host* condition:
                // a tensor-guarded break entangles the loop's (host)
                // continuation condition with staged state, which cannot
                // stage (and errors, correctly, at staging time)
                self.differentiable = false;
                let m = 2 + self.below(3);
                self.line(indent, format!("if {counter} % {m} == 0:"));
                self.line(indent + 1, "break".to_string());
            }
            2 => {
                // guarded continue — host condition (see break), and
                // safe: the counter already advanced
                self.differentiable = false;
                let m = 2 + self.below(3);
                self.line(indent, format!("if {counter} % {m} == 0:"));
                self.line(indent + 1, "continue".to_string());
            }
            3 => {
                self.differentiable = false;
                let cond = self.cond_expr(1);
                self.line(indent, format!("if {cond}:"));
                self.assign_existing(indent + 1, true);
                if self.chance(50) {
                    self.line(indent, "else:".to_string());
                    self.assign_existing(indent + 1, true);
                }
            }
            _ => self.assign_existing(indent, true),
        }
    }

    /// Data-dependent `while`: accumulates a strictly positive quantity
    /// toward a small threshold, so the staged `While` node always
    /// terminates (progress >= 0.25 per iteration per element).
    fn tensor_while(&mut self, indent: usize) {
        self.differentiable = false;
        self.lantern_ok = false;
        let Some(seedv) = self.pick_var(Ty::Vector) else {
            return self.host_while(indent);
        };
        let t = self.fresh("v");
        let lim = 1 + self.below(5); // 1..=5
        let inc = self.vector_expr(1);
        self.line(indent, format!("{t} = {seedv} * 0.0"));
        self.line(
            indent,
            format!("while tf.reduce_sum(tf.abs({t})) < {lim}.0:"),
        );
        self.line(
            indent + 1,
            format!("{t} = {t} + tf.abs(tf.tanh({inc})) + 0.25"),
        );
        self.loop_depth += 1;
        if self.chance(50) {
            self.assign_existing(indent + 1, true);
        }
        self.loop_depth -= 1;
        self.register(Ty::Vector, t);
    }

    /// `for i in tf.range(K)` — optionally the list append/stack pattern.
    fn for_range(&mut self, indent: usize) {
        self.lantern_ok = false;
        let k = 2 + self.below(3); // 2..=4
        let i = self.fresh("i");
        if !self.vectors.is_empty() && self.chance(45) {
            // list pattern: append in a staged loop, optionally pop once
            // after it, then reduce the stacked result back to a vector
            self.differentiable = false;
            let l = self.fresh("l");
            let out = self.fresh("v");
            let elem = self.vector_expr(1);
            self.line(indent, format!("{l} = []"));
            self.line(indent, format!("ag.set_element_type({l}, tf.float32)"));
            self.line(indent, format!("for {i} in tf.range({k}):"));
            self.line(
                indent + 1,
                format!("{l}.append(tf.tanh({elem}) * float({i} + 1))"),
            );
            if self.chance(40) {
                let popped = self.fresh("v");
                self.line(indent, format!("{popped} = {l}.pop()"));
                self.line(indent, format!("{l}.append(tf.sigmoid({popped}))"));
                self.register(Ty::Vector, popped);
            }
            self.line(indent, format!("{out} = tf.reduce_sum(ag.stack({l}), 0)"));
            self.register(Ty::Vector, out);
        } else {
            self.line(indent, format!("for {i} in tf.range({k}):"));
            self.loop_depth += 1;
            let n = 1 + self.below(2);
            for _ in 0..n {
                self.assign_existing(indent + 1, true);
            }
            self.loop_depth -= 1;
        }
    }

    /// `for row in m:` — iterate the rows of a matrix.
    fn for_rows(&mut self, indent: usize) {
        self.differentiable = false;
        self.lantern_ok = false;
        let Some(m) = self.pick_var(Ty::Matrix) else {
            return self.for_range(indent);
        };
        let r = self.fresh("v");
        self.line(indent, format!("for {r} in {m}:"));
        // the row is visible inside the body only: converted `for` does
        // not guarantee the loop variable survives the loop
        self.vectors.push(r.clone());
        self.loop_depth += 1;
        let n = 1 + self.below(2);
        for _ in 0..n {
            self.assign_existing(indent + 1, true);
        }
        self.loop_depth -= 1;
        self.vectors.retain(|v| v != &r);
    }

    fn assert_stmt(&mut self, indent: usize) {
        self.lantern_ok = false;
        self.differentiable = false;
        let e = self.scalar_expr(1);
        // tautology: square(e) + 0.5 > 0 for every finite e
        self.line(indent, format!("assert tf.square({e}) + 0.5 > 0.0"));
    }

    fn top_stmt(&mut self, indent: usize) {
        match self.below(20) {
            0..=5 => self.assign_new(indent),
            6..=8 => self.assign_existing(indent, false),
            9..=11 => self.if_stmt(indent, 1),
            12..=13 => self.host_while(indent),
            14 => self.tensor_while(indent),
            15..=16 => self.for_range(indent),
            17 => self.for_rows(indent),
            18 => self.assert_stmt(indent),
            _ => self.assign_new(indent),
        }
    }

    /// The return-expression list (1 or 2 outputs).
    fn return_sig(&mut self) -> Vec<Ty> {
        let mut sig = vec![self.pick_ty()];
        if self.chance(20) {
            self.lantern_ok = false; // tuple results: graph/eager only
            self.differentiable = false;
            sig.push(self.pick_ty());
        }
        sig
    }

    fn return_exprs(&mut self, sig: &[Ty]) -> String {
        let parts: Vec<String> = sig.iter().map(|&t| self.expr(t, 2)).collect();
        parts.join(", ")
    }
}

/// Uniform tensor in `[lo, hi)` with the given shape.
fn uniform(rng: &mut Rng64, shape: &[usize], lo: f32, hi: f32) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n.max(1))
        .map(|_| lo + (hi - lo) * rng.next_f32())
        .collect();
    Tensor::from_vec(data, shape).expect("genprog feed shape is internally consistent")
}

/// Generate the program (and feeds) for one seed. Deterministic: the
/// same seed yields the byte-identical [`GenCase`].
pub fn generate(seed: u64) -> GenCase {
    let mut g = Gen {
        rng: Rng64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5DEE_CE66),
        lines: Vec::new(),
        scalars: Vec::new(),
        vectors: Vec::new(),
        matrices: Vec::new(),
        next_id: 0,
        loop_depth: 0,
        lantern_ok: true,
        differentiable: true,
    };

    // parameters: 1..=3, always at least one vector so vector-typed
    // expressions have an atom to bottom out in
    let n_params = 1 + g.below(3);
    let mut params = Vec::new();
    for p in 0..n_params {
        let ty = if p == 0 {
            Ty::Vector
        } else {
            [Ty::Scalar, Ty::Vector, Ty::Vector, Ty::Matrix][g.below(4) as usize]
        };
        let name = format!("x{p}");
        g.register(ty, name.clone());
        params.push((name, ty));
    }

    let param_names: Vec<&str> = params.iter().map(|(n, _)| n.as_str()).collect();
    g.line(0, format!("def f({}):", param_names.join(", ")));

    let n_stmts = 3 + g.below(8); // 3..=10 top-level statements
    for _ in 0..n_stmts {
        g.top_stmt(1);
    }

    // return: usually a plain (possibly tuple) return; sometimes the
    // early-return-from-a-staged-branch shapes
    let sig = g.return_sig();
    match g.below(10) {
        0 => {
            // early return guarded by a tensor condition
            g.differentiable = false;
            let c = g.cond_expr(1);
            let early = g.return_exprs(&sig);
            g.line(1, format!("if {c}:"));
            g.line(2, format!("return {early}"));
            let last = g.return_exprs(&sig);
            g.line(1, format!("return {last}"));
        }
        1 => {
            // both branches of a staged `if` return
            g.differentiable = false;
            let c = g.cond_expr(1);
            let a = g.return_exprs(&sig);
            let b = g.return_exprs(&sig);
            g.line(1, format!("if {c}:"));
            g.line(2, format!("return {a}"));
            g.line(1, "else:".to_string());
            g.line(2, format!("return {b}"));
        }
        _ => {
            let last = g.return_exprs(&sig);
            g.line(1, format!("return {last}"));
        }
    }

    let mut src = String::new();
    for (indent, text) in &g.lines {
        for _ in 0..*indent {
            src.push_str("    ");
        }
        src.push_str(text);
        src.push('\n');
    }

    // feeds from an independent stream of the same seed
    let mut frng = Rng64::new(seed.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ 0xFEED);
    let feeds: Vec<(String, Tensor)> = params
        .iter()
        .map(|(n, ty)| {
            let shape: &[usize] = match ty {
                Ty::Scalar => &[],
                Ty::Vector => &[VLEN],
                Ty::Matrix => &[VLEN, VLEN],
            };
            (n.clone(), uniform(&mut frng, shape, -1.5, 1.5))
        })
        .collect();

    // gate the gradient oracle on a differentiable first parameter
    let differentiable = g.differentiable && !matches!(params[0].1, Ty::Matrix);

    GenCase {
        seed,
        src,
        feeds,
        lantern_ok: g.lantern_ok,
        differentiable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_program_bitwise() {
        for seed in [0u64, 1, 7, 41, 999, u64::MAX] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.src, b.src, "seed {seed} not reproducible");
            assert_eq!(a.feeds.len(), b.feeds.len());
            for ((n1, t1), (n2, t2)) in a.feeds.iter().zip(&b.feeds) {
                assert_eq!(n1, n2);
                assert_eq!(t1.to_f32_vec(), t2.to_f32_vec());
            }
            assert_eq!(a.lantern_ok, b.lantern_ok);
            assert_eq!(a.differentiable, b.differentiable);
        }
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..50 {
            distinct.insert(generate(seed).src);
        }
        assert!(distinct.len() > 40, "only {} distinct", distinct.len());
    }

    #[test]
    fn generated_programs_parse() {
        for seed in 0..200 {
            let case = generate(seed);
            autograph_pylang::parse_module(&case.src)
                .unwrap_or_else(|e| panic!("seed {seed}: parse: {e}\n{}", case.src));
        }
    }

    #[test]
    fn grammar_reaches_all_constructs() {
        let mut saw = std::collections::HashSet::new();
        for seed in 0..400 {
            let src = generate(seed).src;
            for needle in [
                "while",
                "for",
                "break",
                "continue",
                "if ",
                " else",
                ".append(",
                ".pop()",
                "ag.stack",
                " and ",
                " or ",
                "not ",
                " if ",
                "assert",
                "tf.where",
                "tf.matmul",
                "return",
            ] {
                if src.contains(needle) {
                    saw.insert(needle);
                }
            }
        }
        for needle in [
            "while", "for", "break", "continue", ".append(", ".pop()", " and ", " if ", "assert",
        ] {
            assert!(saw.contains(needle), "grammar never produced {needle:?}");
        }
    }
}
