//! `genprog` — fuzz driver CLI.
//!
//! ```text
//! genprog gen --seed 42                      # print one generated program
//! genprog fuzz --seeds 0..500 [--threads 1,4] [--out tests/regressions]
//! genprog replay path/to/case.pylite [path ...]
//! genprog minimize path/to/case.pylite [--out minimized.pylite]
//! ```
//!
//! `fuzz` exits nonzero if any seed diverges; each divergence is
//! minimized and written as a `.pylite` reproducer (stdout explains
//! where). `replay` re-runs committed reproducers and exits nonzero if
//! any of them still fails — with an empty fault plan installed they
//! are expected to pass once the underlying bug is fixed.

use genprog::oracle::{check, check_src, OracleCfg, Outcome};
use genprog::{generate, repro, shrink};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: genprog <gen|fuzz|replay|minimize> [options]");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "gen" => cmd_gen(rest),
        "fuzz" => cmd_fuzz(rest),
        "replay" => cmd_replay(rest),
        "minimize" => cmd_minimize(rest),
        other => {
            eprintln!("unknown command {other:?}; expected gen|fuzz|replay|minimize");
            ExitCode::FAILURE
        }
    }
}

/// Value of `--flag <v>` (or `--flag=<v>`) in `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().map(String::as_str);
        }
        if let Some(rest) = a.strip_prefix(&format!("{flag}=")) {
            return Some(rest);
        }
    }
    None
}

/// Parse `lo..hi` (exclusive) or a single seed.
fn parse_seeds(s: &str) -> Result<std::ops::Range<u64>, String> {
    if let Some((lo, hi)) = s.split_once("..") {
        let lo = lo.parse().map_err(|e| format!("seed range {s:?}: {e}"))?;
        let hi = hi.parse().map_err(|e| format!("seed range {s:?}: {e}"))?;
        if lo >= hi {
            return Err(format!("empty seed range {s:?}"));
        }
        Ok(lo..hi)
    } else {
        let one: u64 = s.parse().map_err(|e| format!("seed {s:?}: {e}"))?;
        Ok(one..one + 1)
    }
}

fn parse_threads(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|t| t.trim().parse().map_err(|e| format!("threads {t:?}: {e}")))
        .collect()
}

fn cfg_from_args(args: &[String]) -> Result<OracleCfg, String> {
    let mut cfg = OracleCfg::default();
    if let Some(t) = flag_value(args, "--threads") {
        cfg.threads = parse_threads(t)?;
        if cfg.threads.is_empty() {
            return Err("--threads needs at least one count".to_string());
        }
    }
    if flag_value(args, "--no-lantern").is_some() || args.iter().any(|a| a == "--no-lantern") {
        cfg.check_lantern = false;
    }
    if args.iter().any(|a| a == "--no-grad") {
        cfg.check_grad = false;
    }
    if args.iter().any(|a| a == "--no-warm-cold") {
        cfg.check_warm_cold = false;
    }
    Ok(cfg)
}

fn cmd_gen(args: &[String]) -> ExitCode {
    let seed: u64 = match flag_value(args, "--seed").map(str::parse) {
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("--seed: {e}");
            return ExitCode::FAILURE;
        }
        None => 0,
    };
    let case = generate(seed);
    // print as a reproducer so feeds/gates are visible and replayable
    print!("{}", repro::to_pylite(&case, "none"));
    ExitCode::SUCCESS
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let seeds = match parse_seeds(flag_value(args, "--seeds").unwrap_or("0..100")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = match cfg_from_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = flag_value(args, "--out").unwrap_or("tests/regressions");
    let no_minimize = args.iter().any(|a| a == "--no-minimize");

    let total = seeds.end - seeds.start;
    let (mut passed, mut skipped, mut failed) = (0u64, 0u64, 0u64);
    for seed in seeds {
        let case = generate(seed);
        match check(&case, &cfg) {
            Outcome::Pass => passed += 1,
            Outcome::NonFinite => skipped += 1,
            Outcome::Fail(d) => {
                failed += 1;
                eprintln!("seed {seed}: FAIL [{}] {}", d.oracle, d.detail);
                let final_case = if no_minimize {
                    case.clone()
                } else {
                    let r = shrink::minimize(
                        &case.src,
                        &case.feeds,
                        case.lantern_ok,
                        case.differentiable,
                        &cfg,
                        &d.oracle,
                    );
                    eprintln!(
                        "seed {seed}: minimized to {} statements in {} steps",
                        r.stmt_count, r.steps
                    );
                    genprog::GenCase {
                        src: r.src,
                        ..case.clone()
                    }
                };
                let path = format!("{out_dir}/seed_{seed}_{}.pylite", d.oracle);
                let text = repro::to_pylite(&final_case, &d.oracle);
                if let Err(e) =
                    std::fs::create_dir_all(out_dir).and_then(|()| std::fs::write(&path, &text))
                {
                    eprintln!("seed {seed}: could not write {path}: {e}");
                    eprintln!("--- reproducer ---\n{text}--- end ---");
                } else {
                    eprintln!("seed {seed}: reproducer written to {path}");
                }
            }
        }
    }
    println!(
        "fuzz: {total} seeds — {passed} passed, {skipped} skipped (non-finite), {failed} failed"
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: genprog replay <case.pylite> [...]");
        return ExitCode::FAILURE;
    }
    let cfg = match cfg_from_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut bad = 0;
    for path in paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: {e}");
                bad += 1;
                continue;
            }
        };
        let (case, orig_oracle) = match repro::from_pylite(&text) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("{path}: malformed reproducer: {e}");
                bad += 1;
                continue;
            }
        };
        match check(&case, &cfg) {
            Outcome::Pass => println!("{path}: PASS (originally failed [{orig_oracle}])"),
            Outcome::NonFinite => println!("{path}: SKIP (non-finite)"),
            Outcome::Fail(d) => {
                eprintln!("{path}: STILL FAILING [{}] {}", d.oracle, d.detail);
                bad += 1;
            }
        }
    }
    if bad > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_minimize(args: &[String]) -> ExitCode {
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprintln!("usage: genprog minimize <case.pylite> [--out <path>]");
        return ExitCode::FAILURE;
    };
    let cfg = match cfg_from_args(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (case, _) = match repro::from_pylite(&text) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("{path}: malformed reproducer: {e}");
            return ExitCode::FAILURE;
        }
    };
    // find what it fails *now* (the header's oracle may predate a fix)
    let oracle = match check_src(
        &case.src,
        &case.feeds,
        case.lantern_ok,
        case.differentiable,
        &cfg,
    ) {
        Outcome::Fail(d) => d.oracle,
        Outcome::Pass | Outcome::NonFinite => {
            println!("{path}: does not fail any oracle — nothing to minimize");
            return ExitCode::SUCCESS;
        }
    };
    let r = shrink::minimize(
        &case.src,
        &case.feeds,
        case.lantern_ok,
        case.differentiable,
        &cfg,
        &oracle,
    );
    println!(
        "minimized to {} statements in {} steps (oracle [{oracle}])",
        r.stmt_count, r.steps
    );
    let out_case = genprog::GenCase { src: r.src, ..case };
    let out_text = repro::to_pylite(&out_case, &oracle);
    match flag_value(args, "--out") {
        Some(out) => match std::fs::write(out, &out_text) {
            Ok(()) => {
                println!("written to {out}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{out}: {e}");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{out_text}");
            ExitCode::SUCCESS
        }
    }
}
