//! Tensor-comparison machinery shared by every differential consumer:
//! the fuzz oracles in this crate and the hand-written test suites
//! (`tests/differential.rs`, `tests/chaos.rs`, `tests/gradient_check.rs`
//! route through `tests/support/check.rs`, which delegates here).
//!
//! Two comparison grades, matching the repo-wide contract:
//!
//! * [`close`] — absolute tolerance (default 1e-6) for *cross-backend*
//!   agreement (eager vs. graph vs. Lantern), where different but
//!   equivalent kernel orderings may round differently;
//! * [`bitwise`] — exact bit equality for *same-backend* determinism
//!   (graph at threads 1 vs. 4, reruns, restaging), where the scheduler
//!   guarantees identical floating-point evaluation order.
//!
//! Both treat two NaNs (and two identical infinities) as equal: a
//! program that legitimately overflows must overflow the same way on
//! every backend, and `NaN != NaN` must not masquerade as a divergence.

use autograph_tensor::Tensor;

/// Default absolute tolerance for cross-backend value agreement.
pub const DEFAULT_TOL: f32 = 1e-6;

fn arity_shape_check(what: &str, a: &[Tensor], b: &[Tensor]) -> Result<(), String> {
    if a.len() != b.len() {
        return Err(format!("{what}: arity {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.shape() != y.shape() {
            return Err(format!(
                "{what}: output {i} shape {:?} vs {:?}",
                x.shape(),
                y.shape()
            ));
        }
    }
    Ok(())
}

/// Compare two output lists to an absolute tolerance. Shapes must match
/// exactly; values may differ by at most `tol` (bit-identical values,
/// including two NaNs, always pass).
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn close(what: &str, a: &[Tensor], b: &[Tensor], tol: f32) -> Result<(), String> {
    arity_shape_check(what, a, b)?;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for (j, (u, w)) in x.to_f32_vec().iter().zip(y.to_f32_vec()).enumerate() {
            if u.to_bits() == w.to_bits() || (u.is_nan() && w.is_nan()) {
                continue;
            }
            if (u - w).abs() <= tol {
                continue;
            }
            return Err(format!(
                "{what}: output {i}[{j}]: {u} vs {w} (|diff| {} > tol {tol})",
                (u - w).abs()
            ));
        }
    }
    Ok(())
}

/// Compare two output lists for exact bit equality (the parallel
/// scheduler's determinism contract).
///
/// # Errors
///
/// Returns a human-readable description of the first mismatch.
pub fn bitwise(what: &str, a: &[Tensor], b: &[Tensor]) -> Result<(), String> {
    arity_shape_check(what, a, b)?;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for (j, (u, w)) in x.to_f32_vec().iter().zip(y.to_f32_vec()).enumerate() {
            if u.to_bits() != w.to_bits() {
                return Err(format!(
                    "{what}: output {i}[{j}]: {u} vs {w} must be bitwise equal"
                ));
            }
        }
    }
    Ok(())
}

/// Whether every element of every tensor is finite (no NaN/inf).
pub fn all_finite(ts: &[Tensor]) -> bool {
    ts.iter()
        .all(|t| t.to_f32_vec().iter().all(|v| v.is_finite()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    #[test]
    fn close_within_tol() {
        assert!(close("x", &[t(vec![1.0, 2.0])], &[t(vec![1.0, 2.0 + 5e-7])], 1e-6).is_ok());
        assert!(close("x", &[t(vec![1.0])], &[t(vec![1.1])], 1e-6).is_err());
    }

    #[test]
    fn shape_and_arity_mismatches_reported() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]).unwrap();
        assert!(close("x", std::slice::from_ref(&a), &[b], 1e-6)
            .unwrap_err()
            .contains("shape"));
        assert!(close("x", &[a], &[], 1e-6).unwrap_err().contains("arity"));
    }

    #[test]
    fn nan_equals_nan_inf_equals_inf() {
        assert!(close(
            "x",
            &[t(vec![f32::NAN, f32::INFINITY])],
            &[t(vec![f32::NAN, f32::INFINITY])],
            1e-6
        )
        .is_ok());
        assert!(bitwise("x", &[t(vec![f32::INFINITY])], &[t(vec![f32::INFINITY])]).is_ok());
        // but NaN vs a number is a mismatch
        assert!(close("x", &[t(vec![f32::NAN])], &[t(vec![1.0])], 1e-6).is_err());
    }

    #[test]
    fn bitwise_catches_ulp() {
        let a = 1.0f32;
        let b = f32::from_bits(a.to_bits() + 1);
        assert!(bitwise("x", &[t(vec![a])], &[t(vec![b])]).is_err());
        assert!(close("x", &[t(vec![a])], &[t(vec![b])], 1e-6).is_ok());
    }

    #[test]
    fn finiteness() {
        assert!(all_finite(&[t(vec![1.0, -2.0])]));
        assert!(!all_finite(&[t(vec![1.0, f32::NAN])]));
        assert!(!all_finite(&[t(vec![f32::INFINITY])]));
    }
}
