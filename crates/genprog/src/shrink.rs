//! Shrinking minimizer: greedy delta debugging over the PyLite AST.
//!
//! Given a failing case and the *name* of the oracle that caught it,
//! the minimizer repeatedly applies one small mutation — statement
//! deletion (single, or half a body at a time), compound-statement
//! unwrapping, branch selection, subexpression hoisting, literal
//! substitution — re-runs the oracle pipeline, and keeps the mutant iff
//! it still fails the **same oracle**. The loop restarts after every
//! accepted mutation and stops at a fixed point (or a round budget), so
//! the result is 1-minimal with respect to the mutation set.
//!
//! Candidates are checked under a watchdog ([`crate::oracle::check_src_watchdog`]):
//! deleting a loop's counter increment produces an infinite eager loop,
//! which must count as "does not reproduce", not hang the fuzzer.

use crate::oracle::{self, OracleCfg};
use autograph_pylang::ast::{walk_stmts, Expr, ExprKind, Index, Module, Stmt, StmtKind};
use autograph_pylang::codegen::ast_to_source;
use autograph_tensor::Tensor;
use std::time::Duration;

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// Minimized PyLite source (still fails the original oracle).
    pub src: String,
    /// Number of accepted mutation steps.
    pub steps: usize,
    /// Statements remaining in the minimized program (function bodies
    /// only — `def` lines are not counted).
    pub stmt_count: usize,
}

/// Statements in function bodies (the "≤ N statements" metric).
pub fn stmt_count(src: &str) -> usize {
    let Ok(module) = autograph_pylang::parse_module(src) else {
        return usize::MAX;
    };
    let mut n = 0;
    walk_stmts(&module.body, &mut |s| {
        if !matches!(s.kind, StmtKind::FunctionDef { .. }) {
            n += 1;
        }
    });
    n
}

// ---- statement-level mutations -----------------------------------------

#[derive(Debug, Clone, Copy)]
enum StmtOp {
    /// Remove the second (or first) half of the body.
    DeleteHalf(bool),
    /// Remove the statement at an index.
    DeleteAt(usize),
    /// Replace an `if`/`while`/`for` with its body (plus `orelse`).
    UnwrapAt(usize),
    /// Drop an `if`'s `orelse`.
    DropElseAt(usize),
    /// Replace an `if` with its `orelse`.
    KeepElseAt(usize),
}

/// Visit every statement list in the module, in pre-order. The visitor
/// sees each `Vec<Stmt>` once; the `usize` is its pre-order index.
fn for_each_body(
    body: &mut Vec<Stmt>,
    next: &mut usize,
    f: &mut impl FnMut(usize, &mut Vec<Stmt>),
) {
    let idx = *next;
    *next += 1;
    f(idx, body);
    for s in body.iter_mut() {
        match &mut s.kind {
            StmtKind::FunctionDef { body, .. } => for_each_body(body, next, f),
            StmtKind::If { body, orelse, .. } => {
                for_each_body(body, next, f);
                for_each_body(orelse, next, f);
            }
            StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                for_each_body(body, next, f)
            }
            _ => {}
        }
    }
}

fn count_bodies(module: &mut Module) -> usize {
    let mut n = 0;
    for_each_body(&mut module.body, &mut n, &mut |_, _| {});
    n
}

fn body_len(module: &mut Module, body_idx: usize) -> usize {
    let mut len = 0;
    let mut n = 0;
    for_each_body(&mut module.body, &mut n, &mut |i, b| {
        if i == body_idx {
            len = b.len();
        }
    });
    len
}

/// Apply `op` to the `body_idx`-th statement list. Returns false if the
/// op did not apply (out of range / wrong statement kind).
fn apply_stmt_op(module: &mut Module, body_idx: usize, op: StmtOp) -> bool {
    let mut applied = false;
    let mut n = 0;
    for_each_body(&mut module.body, &mut n, &mut |i, body| {
        if i != body_idx || applied {
            return;
        }
        match op {
            StmtOp::DeleteHalf(first) => {
                if body.len() >= 4 {
                    let mid = body.len() / 2;
                    if first {
                        body.drain(..mid);
                    } else {
                        body.drain(mid..);
                    }
                    applied = true;
                }
            }
            StmtOp::DeleteAt(k) => {
                if k < body.len() && !matches!(body[k].kind, StmtKind::FunctionDef { .. }) {
                    body.remove(k);
                    applied = true;
                }
            }
            StmtOp::UnwrapAt(k) => {
                if k < body.len() {
                    let inner = match &mut body[k].kind {
                        StmtKind::If { body, orelse, .. } => {
                            let mut v = std::mem::take(body);
                            v.append(orelse);
                            Some(v)
                        }
                        StmtKind::While { body, .. } | StmtKind::For { body, .. } => {
                            Some(std::mem::take(body))
                        }
                        _ => None,
                    };
                    if let Some(inner) = inner {
                        body.splice(k..=k, inner);
                        applied = true;
                    }
                }
            }
            StmtOp::DropElseAt(k) => {
                if k < body.len() {
                    if let StmtKind::If { orelse, .. } = &mut body[k].kind {
                        if !orelse.is_empty() {
                            orelse.clear();
                            applied = true;
                        }
                    }
                }
            }
            StmtOp::KeepElseAt(k) => {
                if k < body.len() {
                    let inner = match &mut body[k].kind {
                        StmtKind::If { orelse, .. } if !orelse.is_empty() => {
                            Some(std::mem::take(orelse))
                        }
                        _ => None,
                    };
                    if let Some(inner) = inner {
                        body.splice(k..=k, inner);
                        applied = true;
                    }
                }
            }
        }
    });
    applied
}

// ---- expression-level mutations ----------------------------------------

#[derive(Debug, Clone, Copy)]
enum ExprOp {
    /// Replace the node with its `i`-th structural child.
    Child(usize),
    /// Replace the node with the literal `1.0`.
    LitOne,
    /// Replace the node with the literal `0.5`.
    LitHalf,
}

fn expr_child(e: &Expr, i: usize) -> Option<Expr> {
    match &e.kind {
        ExprKind::BinOp { left, right, .. } => [left, right].get(i).map(|b| (***b).clone()),
        ExprKind::UnaryOp { operand, .. } => (i == 0).then(|| (**operand).clone()),
        ExprKind::BoolOp { values, .. } => values.get(i).cloned(),
        ExprKind::Compare {
            left, comparators, ..
        } => {
            if i == 0 {
                Some((**left).clone())
            } else {
                comparators.get(i - 1).cloned()
            }
        }
        ExprKind::Call { args, .. } => args.get(i).cloned(),
        // never project a ternary to its (boolean) test
        ExprKind::IfExp { body, orelse, .. } => [body, orelse].get(i).map(|b| (***b).clone()),
        ExprKind::Subscript { value, .. } => (i == 0).then(|| (**value).clone()),
        ExprKind::List(items) | ExprKind::Tuple(items) => items.get(i).cloned(),
        _ => None,
    }
}

fn apply_expr_op(e: &mut Expr, op: ExprOp) -> bool {
    match op {
        ExprOp::Child(i) => match expr_child(e, i) {
            Some(child) => {
                *e = child;
                true
            }
            None => false,
        },
        ExprOp::LitOne | ExprOp::LitHalf => {
            if matches!(
                e.kind,
                ExprKind::Int(_)
                    | ExprKind::Float(_)
                    | ExprKind::Name(_)
                    | ExprKind::Bool(_)
                    | ExprKind::Str(_)
                    | ExprKind::NoneLit
            ) {
                return false; // already atomic
            }
            let v = if matches!(op, ExprOp::LitOne) {
                1.0
            } else {
                0.5
            };
            *e = Expr::synthetic(ExprKind::Float(v));
            true
        }
    }
}

/// Visit expression *nodes* in pre-order; `f` returns `true` to stop
/// the walk (mutation applied). Assignment targets and loop variables
/// are skipped — rewriting them can't shrink anything, only rename it.
fn visit_exprs(body: &mut [Stmt], f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
    fn expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
        if f(e) {
            return true;
        }
        match &mut e.kind {
            ExprKind::Attribute { value, .. } => expr(value, f),
            ExprKind::Subscript { value, index } => {
                if expr(value, f) {
                    return true;
                }
                match &mut **index {
                    Index::Single(i) => expr(i, f),
                    Index::Slice { lower, upper } => {
                        lower.as_mut().is_some_and(|l| expr(l, f))
                            || upper.as_mut().is_some_and(|u| expr(u, f))
                    }
                }
            }
            ExprKind::Call { func, args, kwargs } => {
                expr(func, f)
                    || args.iter_mut().any(|a| expr(a, f))
                    || kwargs.iter_mut().any(|(_, v)| expr(v, f))
            }
            ExprKind::BinOp { left, right, .. } => expr(left, f) || expr(right, f),
            ExprKind::UnaryOp { operand, .. } => expr(operand, f),
            ExprKind::BoolOp { values, .. } => values.iter_mut().any(|v| expr(v, f)),
            ExprKind::Compare {
                left, comparators, ..
            } => expr(left, f) || comparators.iter_mut().any(|c| expr(c, f)),
            ExprKind::IfExp { test, body, orelse } => {
                expr(test, f) || expr(body, f) || expr(orelse, f)
            }
            ExprKind::List(items) | ExprKind::Tuple(items) => items.iter_mut().any(|i| expr(i, f)),
            ExprKind::Lambda { body, .. } => expr(body, f),
            _ => false,
        }
    }
    fn stmts(body: &mut [Stmt], f: &mut impl FnMut(&mut Expr) -> bool) -> bool {
        for s in body {
            let hit = match &mut s.kind {
                StmtKind::FunctionDef { body, .. } => stmts(body, f),
                StmtKind::Return(Some(e)) | StmtKind::ExprStmt(e) => expr(e, f),
                StmtKind::Assign { value, .. } | StmtKind::AugAssign { value, .. } => {
                    expr(value, f)
                }
                StmtKind::If { test, body, orelse } => {
                    expr(test, f) || stmts(body, f) || stmts(orelse, f)
                }
                StmtKind::While { test, body } => expr(test, f) || stmts(body, f),
                StmtKind::For { iter, body, .. } => expr(iter, f) || stmts(body, f),
                StmtKind::Assert { test, msg } => {
                    expr(test, f) || msg.as_mut().is_some_and(|m| expr(m, f))
                }
                StmtKind::Raise(Some(e)) => expr(e, f),
                _ => false,
            };
            if hit {
                return true;
            }
        }
        false
    }
    stmts(body, f)
}

fn count_exprs(module: &mut Module) -> usize {
    let mut n = 0;
    visit_exprs(&mut module.body, &mut |_| {
        n += 1;
        false
    });
    n
}

fn apply_expr_mutation(module: &mut Module, target: usize, op: ExprOp) -> bool {
    let mut idx = 0;
    visit_exprs(&mut module.body, &mut |e| {
        let here = idx == target;
        idx += 1;
        here && apply_expr_op(e, op)
    })
}

// ---- the greedy loop ---------------------------------------------------

/// Per-candidate wall-clock budget (a mutant may loop forever).
const CANDIDATE_TIMEOUT: Duration = Duration::from_secs(10);

/// Minimize `src` while it keeps failing the oracle named `oracle`.
///
/// `feeds` and the gate flags are those of the original case — shrinking
/// never changes the function signature, so they stay valid. Returns the
/// smallest source found; if nothing could be removed, that is the input
/// itself (normalized through the AST printer).
pub fn minimize(
    src: &str,
    feeds: &[(String, Tensor)],
    lantern_ok: bool,
    differentiable: bool,
    cfg: &OracleCfg,
    oracle: &str,
) -> ShrinkResult {
    // only run the oracles that can reproduce this failure: everything
    // else just slows each candidate down (a different-oracle failure is
    // a rejection either way)
    let cfg = OracleCfg {
        check_lantern: cfg.check_lantern && oracle == "eager-vs-lantern",
        check_grad: cfg.check_grad && oracle == "fd-grad",
        check_restage: cfg.check_restage && oracle == "restage-determinism",
        check_explain: cfg.check_explain && oracle.starts_with("explain"),
        ..cfg.clone()
    };
    let reproduces = |candidate: &Module| -> bool {
        let src = ast_to_source(candidate);
        let out = oracle::check_src_watchdog(
            &src,
            feeds,
            lantern_ok,
            differentiable,
            &cfg,
            CANDIDATE_TIMEOUT,
        );
        out.failing_oracle() == Some(oracle)
    };

    let Ok(mut best) = autograph_pylang::parse_module(src) else {
        // unparseable input (shouldn't happen): return it unchanged
        return ShrinkResult {
            src: src.to_string(),
            steps: 0,
            stmt_count: usize::MAX,
        };
    };
    let mut steps = 0;

    // greedy fixed point: scan all mutations, accept the first that
    // still fails the same oracle, restart; bounded for safety
    'rounds: for _ in 0..200 {
        // statement ops, biggest cuts first
        let n_bodies = count_bodies(&mut best);
        for b in 0..n_bodies {
            let len = body_len(&mut best, b);
            let mut ops: Vec<StmtOp> = Vec::new();
            if len >= 4 {
                ops.push(StmtOp::DeleteHalf(false));
                ops.push(StmtOp::DeleteHalf(true));
            }
            for k in (0..len).rev() {
                ops.push(StmtOp::DeleteAt(k));
                ops.push(StmtOp::UnwrapAt(k));
                ops.push(StmtOp::KeepElseAt(k));
                ops.push(StmtOp::DropElseAt(k));
            }
            for op in ops {
                let mut cand = best.clone();
                if apply_stmt_op(&mut cand, b, op) && reproduces(&cand) {
                    best = cand;
                    steps += 1;
                    continue 'rounds;
                }
            }
        }
        // expression ops
        let n_exprs = count_exprs(&mut best);
        for t in 0..n_exprs {
            for op in [
                ExprOp::Child(0),
                ExprOp::Child(1),
                ExprOp::Child(2),
                ExprOp::LitOne,
                ExprOp::LitHalf,
            ] {
                let mut cand = best.clone();
                if apply_expr_mutation(&mut cand, t, op) && reproduces(&cand) {
                    best = cand;
                    steps += 1;
                    continue 'rounds;
                }
            }
        }
        break; // full scan, nothing accepted: fixed point
    }

    let out = ast_to_source(&best);
    let count = stmt_count(&out);
    ShrinkResult {
        src: out,
        steps,
        stmt_count: count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> Module {
        autograph_pylang::parse_module(src).expect("parse")
    }

    #[test]
    fn stmt_delete_and_unwrap() {
        let mut m =
            parse("def f(x):\n    y = x\n    if x > 0:\n        y = y + 1.0\n    return y\n");
        // body 0 = module, body 1 = f's body, body 2 = if body
        assert!(apply_stmt_op(&mut m, 1, StmtOp::UnwrapAt(1)));
        let src = ast_to_source(&m);
        assert!(!src.contains("if"), "{src}");
        assert!(
            src.contains("y = (y + 1.0)") || src.contains("y = y + 1.0"),
            "{src}"
        );

        let mut m2 = parse("def f(x):\n    y = x\n    return y\n");
        assert!(apply_stmt_op(&mut m2, 1, StmtOp::DeleteAt(0)));
        assert_eq!(stmt_count(&ast_to_source(&m2)), 1);
    }

    #[test]
    fn keep_else_selects_orelse() {
        let mut m = parse(
            "def f(x):\n    if x > 0:\n        y = x\n    else:\n        y = x * 2.0\n    return y\n",
        );
        assert!(apply_stmt_op(&mut m, 1, StmtOp::KeepElseAt(0)));
        let src = ast_to_source(&m);
        assert!(src.contains("2.0") && !src.contains("if"), "{src}");
    }

    #[test]
    fn expr_projection_and_literals() {
        let mut m = parse("def f(x):\n    return tf.tanh(x + 1.0)\n");
        let n = count_exprs(&mut m);
        assert!(n >= 3, "{n}");
        // find some mutation that strips the call down to its argument
        let mut found = false;
        for t in 0..n {
            let mut cand = m.clone();
            if apply_expr_mutation(&mut cand, t, ExprOp::Child(0)) {
                let src = ast_to_source(&cand);
                if src.contains("return (x + 1.0)") || src.contains("return x + 1.0") {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn stmt_counting_ignores_defs() {
        assert_eq!(stmt_count("def f(x):\n    return x\n"), 1);
        assert_eq!(
            stmt_count("def f(x):\n    y = x\n    if y > 0:\n        y = y + 1.0\n    return y\n"),
            4
        );
    }
}
