//! Shrinker demonstration (ISSUE 5 acceptance): with a deliberately
//! injected kernel bug, the minimizer must reduce a failing generated
//! program to ≤ 8 statements, and the emitted reproducer must replay.
//!
//! The "bug" is `error@graph/tanh:1` from `crates/faults`: every graph
//! dispatch of the `tanh` kernel errors, while the eager site is
//! untouched — so eager succeeds, the staged graph fails, and the
//! `graph-run-t1` oracle fires. Fault state is process-global, so this
//! file contains exactly one test function.

use genprog::oracle::{check, check_src, OracleCfg, Outcome};
use genprog::{generate, repro, shrink};

/// Clears the installed fault plan even if the test panics.
struct PlanGuard;
impl Drop for PlanGuard {
    fn drop(&mut self) {
        autograph::faults::clear();
    }
}

#[test]
fn injected_kernel_bug_shrinks_to_a_tiny_reproducer() {
    // a generated program that actually stages a tanh kernel
    let case = (0..200)
        .map(generate)
        .find(|c| c.src.contains("tf.tanh"))
        .expect("some seed generates tf.tanh");

    let cfg = OracleCfg::default();
    assert!(
        matches!(check(&case, &cfg), Outcome::Pass),
        "case must pass before the fault is installed"
    );

    let _guard = PlanGuard;
    autograph::faults::install(
        autograph::faults::FaultPlan::parse("error@graph/tanh:1").expect("plan"),
    );

    // the injected bug turns the case into a failure on the graph path
    let divergence = match check(&case, &cfg) {
        Outcome::Fail(d) => d,
        other => panic!("expected a failure under the injected fault, got {other:?}"),
    };
    assert_eq!(divergence.oracle, "graph-run-t1", "{}", divergence.detail);
    assert!(
        divergence.detail.contains("injected"),
        "failure should be the injected fault: {}",
        divergence.detail
    );

    // minimize while the same oracle keeps failing
    let before = shrink::stmt_count(&case.src);
    let r = shrink::minimize(
        &case.src,
        &case.feeds,
        case.lantern_ok,
        case.differentiable,
        &cfg,
        &divergence.oracle,
    );
    assert!(
        r.stmt_count <= 8,
        "minimizer left {} statements (started from {before}):\n{}",
        r.stmt_count,
        r.src
    );
    assert!(r.stmt_count >= 1, "a reproducer needs at least a return");
    assert!(
        r.src.contains("tf.tanh"),
        "the faulty op must survive minimization:\n{}",
        r.src
    );

    // the reproducer round-trips through the .pylite format and still
    // fails the same oracle
    let min_case = genprog::GenCase {
        src: r.src.clone(),
        ..case.clone()
    };
    let text = repro::to_pylite(&min_case, &divergence.oracle);
    let (replayed, oracle) = repro::from_pylite(&text).expect("reproducer parses");
    assert_eq!(oracle, "graph-run-t1");
    assert_eq!(replayed.src, min_case.src);
    match check_src(
        &replayed.src,
        &replayed.feeds,
        replayed.lantern_ok,
        replayed.differentiable,
        &cfg,
    ) {
        Outcome::Fail(d) => assert_eq!(d.oracle, "graph-run-t1"),
        other => panic!("reproducer must still fail under the fault, got {other:?}"),
    }

    // once the "bug" is fixed (fault cleared), the reproducer passes —
    // the contract for committing it to tests/regressions/
    autograph::faults::clear();
    assert!(
        matches!(
            check_src(
                &replayed.src,
                &replayed.feeds,
                replayed.lantern_ok,
                replayed.differentiable,
                &cfg,
            ),
            Outcome::Pass
        ),
        "reproducer must pass once the fault is gone"
    );
}
