//! # autograph
//!
//! A Rust reproduction of **AutoGraph: Imperative-style Coding with
//! Graph-based Performance** (Moldovan et al., MLSys 2019).
//!
//! AutoGraph lets you write idiomatic, imperative code — including
//! data-dependent `if`/`while`/`for`, `break`, `continue` and early
//! `return` — and converts it, via source-code transformation plus runtime
//! dynamic dispatch, into code that *stages* a dataflow-graph IR with
//! whole-program optimization, or the Lantern S-expression IR with support
//! for recursive models.
//!
//! The "Python" here is **PyLite**, a Python-subset language with its own
//! parser and interpreter (see [`autograph_pylang`] and
//! [`autograph_runtime`]); the "TensorFlow" is the dataflow graph of
//! [`autograph_graph`] with an eager counterpart in [`autograph_eager`].
//!
//! ## Quickstart
//!
//! ```
//! use autograph::prelude::*;
//!
//! let src = "
//! def f(x):
//!     if x > 0:
//!         x = x * x
//!     return x
//! ";
//! // 1. convert + load (the @ag.convert() decorator analog)
//! let mut rt = Runtime::load(src, true)?;
//!
//! // 2. imperative call — a Python int dispatches imperatively
//! let y = rt.call("f", vec![Value::Int(3)])?;
//! assert_eq!(y.as_int()?, 9);
//!
//! // 3. staged call — a placeholder stages tf.cond into a graph
//! let staged = rt.stage_to_graph("f", vec![GraphArg::Placeholder("x".into())])?;
//! let mut sess = Session::new(staged.graph);
//! let out = sess.run(&[("x", Tensor::scalar_f32(5.0))], &staged.outputs)?;
//! assert_eq!(out[0].scalar_value_f32()?, 25.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | layer | crate |
//! |---|---|
//! | PyLite frontend (lexer/parser/AST/codegen/templates) | [`autograph_pylang`] |
//! | static analyses (CFG, activity, liveness, reaching defs) | [`autograph_analysis`] |
//! | conversion passes (§7.2) + source maps | [`autograph_transforms`] |
//! | tensor kernels | [`autograph_tensor`] |
//! | dataflow graph IR, session, symbolic grads, optimizations | [`autograph_graph`] |
//! | eager runtime + tape autodiff | [`autograph_eager`] |
//! | interpreter + `ag.*` dynamic dispatch | [`autograph_runtime`] |
//! | Lantern backend (recursion + CPS-style AD) | [`autograph_lantern`] |

pub use autograph_analysis as analysis;
pub use autograph_eager as eager;
pub use autograph_faults as faults;
pub use autograph_graph as graph;
pub use autograph_lantern as lantern;
pub use autograph_pylang as pylang;
pub use autograph_runtime as runtime;
pub use autograph_tensor as tensor;
pub use autograph_transforms as transforms;

pub use autograph_graph::{CancelToken, ErrorKind, ExecMode, GraphError, RunOptions};
pub use autograph_runtime::runtime::{CompiledFunction, GraphArg, LanternArg, StagedGraph};
pub use autograph_runtime::{Runtime, RuntimeError, Value};
pub use autograph_transforms::{
    convert_module, ConversionConfig, ConversionPolicy, ConversionWarning, Converted,
};

/// Convert PyLite source to converted PyLite source — the pure
/// source-to-source view of AutoGraph ("the generated code can be
/// inspected, and even modified by the user", §10).
///
/// # Errors
///
/// Returns conversion errors located in the original source.
///
/// # Example
///
/// ```
/// let out = autograph::convert_source("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n")?;
/// assert!(out.contains("ag.if_stmt"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn convert_source(source: &str) -> Result<String, autograph_transforms::ConversionError> {
    autograph_transforms::pipeline::convert_source(source, &ConversionConfig::default())
}

/// Common imports for working with the library.
pub mod prelude {
    pub use crate::convert_source;
    pub use autograph_graph::{CancelToken, ExecMode, RunOptions, Session};
    pub use autograph_lantern::Engine;
    pub use autograph_runtime::runtime::{CompiledFunction, GraphArg, LanternArg, StagedGraph};
    pub use autograph_runtime::{Runtime, Value};
    pub use autograph_tensor::{DType, Rng64, Tensor};
    pub use autograph_transforms::{ConversionConfig, ConversionPolicy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn convert_source_listing1() {
        let out =
            crate::convert_source("def f(x):\n    if x > 0:\n        x = x * x\n    return x\n")
                .unwrap();
        assert!(out.contains("ag.if_stmt"));
        assert!(out.contains("@ag.autograph_artifact"));
    }

    #[test]
    fn end_to_end_quickstart_path() {
        let mut rt = Runtime::load(
            "def double_positive(x):\n    if x > 0:\n        return x * 2.0\n    return x\n",
            true,
        )
        .unwrap();
        let staged = rt
            .stage_to_graph("double_positive", vec![GraphArg::Placeholder("x".into())])
            .unwrap();
        let mut sess = Session::new(staged.graph);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(4.0))], &staged.outputs)
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 8.0);
    }
}
