//! # autograph-planstore
//!
//! A versioned on-disk cache for staged-and-compiled execution plans:
//! the persistence layer behind `AUTOGRAPH_PLAN_CACHE` (ROADMAP item 3).
//!
//! Staging (lex → parse → convert → stage → optimize → compile) is a
//! one-time cost amortized over many executions — the paper's central
//! premise. This crate extends that amortization across *process
//! lifetimes*: a warm start deserializes the staged artifact instead of
//! re-running the pipeline.
//!
//! ## Design rules
//!
//! * **Keys are content hashes** over (source text, conversion flags,
//!   optimizer/compiler version tag, exec mode) — see [`cache_key`]. The
//!   same FNV-1a core ([`content_hash`]) backs the in-process staging
//!   memo in `autograph-serve`, so in-memory and on-disk keys can never
//!   diverge.
//! * **Payloads are opaque bytes.** The graph crate owns the plan
//!   serialization; this crate only frames it (magic, version, key,
//!   length) and seals it with a CRC-32 trailer.
//! * **Corruption falls back, never lies.** Any framing, key, length or
//!   checksum mismatch is a [`Load::Corrupt`] — callers stage cold and
//!   overwrite. A cache can cost time; it must never change results.
//! * **Writes are atomic**: temp file + rename in the same directory,
//!   safe under concurrent processes warming the same cache (last
//!   writer wins; both wrote identical bytes for identical keys).
//! * **std-only**: no serialization or filesystem dependencies.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Bump when the artifact *payload* encoding changes (graph/program
/// serialization, optimizer rewrites that must invalidate old plans).
/// Part of every cache key, so stale artifacts miss instead of decode.
pub const VERSION_TAG: &str = "agplan-v1";

/// Artifact file magic: "AutoGraph Plan Cache".
pub const MAGIC: [u8; 4] = *b"AGPC";

/// Version of the *container framing* (header/trailer layout), distinct
/// from [`VERSION_TAG`] which versions the payload encoding.
pub const FORMAT_VERSION: u16 = 1;

// ---------------------------------------------------------------------
// Hashing

/// FNV-1a over the program source + staging flags — byte-identical to
/// the staging memo historically embedded in `autograph-serve`, now the
/// single shared definition.
pub fn content_hash(source: &str, flags: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in source.as_bytes().iter().chain(flags.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The on-disk cache key: FNV-1a over all four invalidation axes, each
/// terminated by a `0xff` separator (no byte of valid UTF-8, so
/// `("ab", "c")` can never collide with `("a", "bc")`).
///
/// Any change to the function source text, the conversion flags, the
/// optimizer/compiler [`VERSION_TAG`], or the execution mode yields a
/// different key — a stale artifact is unreachable, not misread.
pub fn cache_key(source: &str, flags: &str, version_tag: &str, exec_mode: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in [source, flags, version_tag, exec_mode] {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE), computed via a lazily-built 256-entry table.

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 {
                    0xedb88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c: u32 = 0xffff_ffff;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Artifact framing

/// Why a cached artifact was rejected. Every variant is a clean
/// fall-back-to-cold signal; none can surface as wrong results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// File shorter than the fixed header + trailer.
    Truncated,
    /// Magic bytes are not `AGPC`.
    BadMagic,
    /// Container format version unknown to this build.
    BadFormatVersion(u16),
    /// The embedded key differs from the requested one (hash collision
    /// in the file name, or a renamed file).
    KeyMismatch,
    /// Declared payload length disagrees with the file size.
    LengthMismatch,
    /// CRC-32 trailer does not match header + payload.
    ChecksumMismatch,
}

impl std::fmt::Display for Corruption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Corruption::Truncated => write!(f, "artifact truncated"),
            Corruption::BadMagic => write!(f, "bad magic (not an AGPC artifact)"),
            Corruption::BadFormatVersion(v) => write!(f, "unknown container format version {v}"),
            Corruption::KeyMismatch => write!(f, "embedded key does not match request"),
            Corruption::LengthMismatch => write!(f, "declared payload length disagrees with file"),
            Corruption::ChecksumMismatch => write!(f, "checksum trailer mismatch"),
        }
    }
}

/// Header layout: `MAGIC(4) | format_version(2 LE) | key(8 LE) |
/// payload_len(8 LE)`, then the payload, then `crc32(4 LE)` over
/// everything before the trailer.
const HEADER_LEN: usize = 4 + 2 + 8 + 8;
const TRAILER_LEN: usize = 4;

/// Frame a payload into a self-describing artifact with a checksum
/// trailer.
pub fn encode_artifact(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validate framing + checksum and return the payload slice.
///
/// # Errors
///
/// Returns the specific [`Corruption`] detected; callers must treat
/// every variant identically — fall back to cold staging.
pub fn decode_artifact(bytes: &[u8], expect_key: u64) -> Result<&[u8], Corruption> {
    if bytes.len() < HEADER_LEN + TRAILER_LEN {
        return Err(Corruption::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(Corruption::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(Corruption::BadFormatVersion(version));
    }
    let mut k = [0u8; 8];
    k.copy_from_slice(&bytes[6..14]);
    if u64::from_le_bytes(k) != expect_key {
        return Err(Corruption::KeyMismatch);
    }
    let mut l = [0u8; 8];
    l.copy_from_slice(&bytes[14..22]);
    let payload_len = u64::from_le_bytes(l) as usize;
    if bytes.len() != HEADER_LEN + payload_len + TRAILER_LEN {
        return Err(Corruption::LengthMismatch);
    }
    let body = &bytes[..HEADER_LEN + payload_len];
    let mut c = [0u8; 4];
    c.copy_from_slice(&bytes[HEADER_LEN + payload_len..]);
    if crc32(body) != u32::from_le_bytes(c) {
        return Err(Corruption::ChecksumMismatch);
    }
    Ok(&bytes[HEADER_LEN..HEADER_LEN + payload_len])
}

// ---------------------------------------------------------------------
// Process-wide counters (feed Session::stats, obs and /metrics)

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    load_ns: AtomicU64,
}

fn counters() -> &'static Counters {
    static C: std::sync::OnceLock<Counters> = std::sync::OnceLock::new();
    C.get_or_init(Counters::default)
}

/// A snapshot of the process-wide plan-cache counters (all stores in
/// this process), exported through `/metrics` by `autograph-serve`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts loaded and validated successfully.
    pub hits: u64,
    /// Lookups that found no artifact file.
    pub misses: u64,
    /// Artifacts rejected by framing/checksum validation (each also
    /// counted the `plan_cache_corrupt` obs counter).
    pub corrupt: u64,
    /// Artifacts written (atomic temp-file + rename completions).
    pub writes: u64,
    /// Total artifact bytes read on hits.
    pub bytes_read: u64,
    /// Total artifact bytes written.
    pub bytes_written: u64,
    /// Total wall time spent reading + validating artifacts, ns.
    pub load_ns: u64,
}

/// Count a payload-level corruption discovered *after* the container
/// checksum passed (e.g. a structural decode failure in the graph
/// deserializer). Keeps all corruption — framing or payload — on the
/// same `plan_cache_corrupt` counter the test wall watches.
pub fn note_corrupt(detail: &str) {
    counters().corrupt.fetch_add(1, Ordering::Relaxed);
    autograph_obs::count("planstore", "plan_cache_corrupt", 1);
    let _ = detail;
}

/// Snapshot the process-wide counters.
pub fn stats() -> StoreStats {
    let c = counters();
    StoreStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        corrupt: c.corrupt.load(Ordering::Relaxed),
        writes: c.writes.load(Ordering::Relaxed),
        bytes_read: c.bytes_read.load(Ordering::Relaxed),
        bytes_written: c.bytes_written.load(Ordering::Relaxed),
        load_ns: c.load_ns.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// The store

/// Result of a cache lookup.
#[derive(Debug)]
pub enum Load {
    /// A valid artifact: its payload, on-disk size and load wall time.
    Hit {
        /// The framed payload, checksum-verified.
        payload: Vec<u8>,
        /// Whole-file size in bytes.
        bytes: u64,
        /// Read + validate wall time in nanoseconds.
        load_ns: u64,
    },
    /// No artifact file for this key.
    Miss,
    /// An artifact file exists but failed validation (or could not be
    /// read); callers stage cold.
    Corrupt(String),
}

/// A directory of plan artifacts, one file per cache key
/// (`<key:016x>.agpc`).
#[derive(Debug, Clone)]
pub struct PlanStore {
    dir: PathBuf,
}

impl PlanStore {
    /// Open (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<PlanStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(PlanStore { dir })
    }

    /// The store configured by `AUTOGRAPH_PLAN_CACHE`, if the variable
    /// is set, non-empty and the directory is creatable. An unusable
    /// directory disables caching (with an obs counter) rather than
    /// failing the pipeline.
    pub fn from_env() -> Option<PlanStore> {
        let dir = std::env::var("AUTOGRAPH_PLAN_CACHE").ok()?;
        let dir = dir.trim();
        if dir.is_empty() {
            return None;
        }
        match PlanStore::open(dir) {
            Ok(s) => Some(s),
            Err(_) => {
                autograph_obs::count("planstore", "plan_cache_open_failed", 1);
                None
            }
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The artifact path for a key.
    pub fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.agpc"))
    }

    /// Look up an artifact. Corruption of any kind — truncation, bit
    /// flips, bad framing — returns [`Load::Corrupt`] and bumps the
    /// `planstore/plan_cache_corrupt` counter; it never returns wrong
    /// payload bytes (checksum-sealed).
    pub fn load(&self, key: u64) -> Load {
        let t0 = Instant::now();
        let bytes = match std::fs::read(self.path_for(key)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                counters().misses.fetch_add(1, Ordering::Relaxed);
                autograph_obs::count("planstore", "plan_cache_miss", 1);
                return Load::Miss;
            }
            Err(e) => {
                counters().corrupt.fetch_add(1, Ordering::Relaxed);
                autograph_obs::count("planstore", "plan_cache_corrupt", 1);
                return Load::Corrupt(format!("read failed: {e}"));
            }
        };
        match decode_artifact(&bytes, key) {
            Ok(payload) => {
                let load_ns = t0.elapsed().as_nanos() as u64;
                let c = counters();
                c.hits.fetch_add(1, Ordering::Relaxed);
                c.bytes_read
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                c.load_ns.fetch_add(load_ns, Ordering::Relaxed);
                if autograph_obs::enabled() {
                    autograph_obs::count("planstore", "plan_cache_hit", 1);
                    autograph_obs::count("planstore", "plan_cache_bytes_read", bytes.len() as u64);
                    autograph_obs::observe("planstore", "plan_cache_load_ns", load_ns);
                }
                Load::Hit {
                    payload: payload.to_vec(),
                    bytes: bytes.len() as u64,
                    load_ns,
                }
            }
            Err(c) => {
                counters().corrupt.fetch_add(1, Ordering::Relaxed);
                autograph_obs::count("planstore", "plan_cache_corrupt", 1);
                Load::Corrupt(c.to_string())
            }
        }
    }

    /// Atomically persist an artifact: the framed payload is written to
    /// a unique temp file in the cache directory and renamed into
    /// place, so concurrent writers (or a crash mid-write) can never
    /// leave a partially-written artifact under the final name.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers treat a failed save as "cache
    /// stays cold", never as a pipeline error.
    pub fn save(&self, key: u64, payload: &[u8]) -> std::io::Result<()> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let framed = encode_artifact(key, payload);
        let tmp = self.dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_all()?;
        }
        match std::fs::rename(&tmp, self.path_for(key)) {
            Ok(()) => {
                let c = counters();
                c.writes.fetch_add(1, Ordering::Relaxed);
                c.bytes_written
                    .fetch_add(framed.len() as u64, Ordering::Relaxed);
                if autograph_obs::enabled() {
                    autograph_obs::count("planstore", "plan_cache_write", 1);
                    autograph_obs::count(
                        "planstore",
                        "plan_cache_bytes_written",
                        framed.len() as u64,
                    );
                }
                Ok(())
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("agplanstore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn content_hash_matches_the_historical_serve_memo() {
        // the FNV-1a constants are a compatibility contract with the
        // in-process staging memo; a change here silently invalidates
        // every deployed cache, so lock the exact values down
        assert_eq!(content_hash("", ""), 0xcbf29ce484222325);
        assert_eq!(content_hash("a", ""), content_hash("", "a"));
        assert_ne!(content_hash("ab", "c"), content_hash("a", "bc") ^ 1);
    }

    #[test]
    fn cache_key_separates_all_four_axes() {
        let base = cache_key("src", "flags", "v1", "vm");
        assert_ne!(base, cache_key("src2", "flags", "v1", "vm"), "source");
        assert_ne!(base, cache_key("src", "flags2", "v1", "vm"), "flags");
        assert_ne!(base, cache_key("src", "flags", "v2", "vm"), "version");
        assert_ne!(base, cache_key("src", "flags", "v1", "interp"), "mode");
        // the separator keeps adjacent axes from bleeding into each other
        assert_ne!(cache_key("ab", "c", "", ""), cache_key("a", "bc", "", ""));
        assert_eq!(base, cache_key("src", "flags", "v1", "vm"));
    }

    #[test]
    fn artifact_round_trips() {
        let payload = b"hello plan".to_vec();
        let framed = encode_artifact(42, &payload);
        assert_eq!(decode_artifact(&framed, 42).unwrap(), &payload[..]);
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let framed = encode_artifact(7, b"payload bytes under test");
        for i in 0..framed.len() {
            let mut bad = framed.clone();
            bad[i] ^= 0x01;
            assert!(
                decode_artifact(&bad, 7).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let framed = encode_artifact(7, b"payload bytes under test");
        for len in 0..framed.len() {
            assert!(
                decode_artifact(&framed[..len], 7).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn key_mismatch_is_detected() {
        let framed = encode_artifact(1, b"x");
        assert_eq!(decode_artifact(&framed, 2), Err(Corruption::KeyMismatch));
    }

    #[test]
    fn store_save_load_round_trip_and_counters() {
        let store = PlanStore::open(tmp_dir("roundtrip")).unwrap();
        let before = stats();
        assert!(matches!(store.load(9), Load::Miss));
        store.save(9, b"unit payload").unwrap();
        match store.load(9) {
            Load::Hit { payload, bytes, .. } => {
                assert_eq!(payload, b"unit payload");
                assert!(bytes > b"unit payload".len() as u64, "framing adds bytes");
            }
            other => panic!("expected hit, got {other:?}"),
        }
        let after = stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses + 1);
        assert_eq!(after.writes, before.writes + 1);
        assert!(after.bytes_read > before.bytes_read);
        assert!(after.bytes_written > before.bytes_written);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_file_loads_as_corrupt_and_counts() {
        let store = PlanStore::open(tmp_dir("corrupt")).unwrap();
        store.save(3, b"soon to be damaged").unwrap();
        let path = store.path_for(3);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let before = stats().corrupt;
        assert!(matches!(store.load(3), Load::Corrupt(_)));
        assert_eq!(stats().corrupt, before + 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_tmp_files_survive_a_save() {
        let store = PlanStore::open(tmp_dir("tmpfiles")).unwrap();
        store.save(11, b"a").unwrap();
        store.save(12, b"b").unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
