//! Structured (compositional) liveness.
//!
//! The conversion passes rebuild the AST top-down and need, at each
//! compound statement, the set of symbols *live after* it. Rather than
//! keying CFG results back to tree nodes, this module computes liveness
//! compositionally on the tree. It is conservative (a superset of the CFG
//! answer) in the presence of `break`/`continue`, which only ever adds
//! loop-state variables — never loses one.

use crate::activity::{expr_activity, stmt_activity, target_defs};
use crate::SymbolSet;
use autograph_pylang::ast::{Stmt, StmtKind};

/// Symbols live on entry to `body` given the symbols live after it.
pub fn live_into(body: &[Stmt], live_out: &SymbolSet) -> SymbolSet {
    let mut live = live_out.clone();
    for stmt in body.iter().rev() {
        live = live_into_stmt(stmt, &live);
    }
    live
}

/// Symbols live on entry to a single statement given the symbols live
/// after it.
pub fn live_into_stmt(stmt: &Stmt, live_out: &SymbolSet) -> SymbolSet {
    match &stmt.kind {
        StmtKind::If { test, body, orelse } => {
            let mut live = live_into(body, live_out);
            live.extend(live_into(orelse, live_out));
            live.extend(expr_activity(test).read_roots());
            live
        }
        StmtKind::While { test, body } => {
            // Fixpoint: the loop may execute zero or more times.
            let test_reads = expr_activity(test).read_roots();
            let mut live = live_out.clone();
            live.extend(test_reads.iter().cloned());
            loop {
                let mut next = live_into(body, &live);
                next.extend(live.iter().cloned());
                if next == live {
                    break;
                }
                live = next;
            }
            live
        }
        StmtKind::For { target, iter, body } => {
            let iter_reads = expr_activity(iter).read_roots();
            let defs = target_defs(target);
            let mut live = live_out.clone();
            loop {
                let body_live = live_into(body, &live);
                let mut next: SymbolSet = body_live
                    .iter()
                    .filter(|s| !defs.contains(*s))
                    .cloned()
                    .collect();
                next.extend(live.iter().cloned());
                if next == live {
                    break;
                }
                live = next;
            }
            live.extend(iter_reads);
            live
        }
        StmtKind::Return(v) => {
            // Nothing after a return matters on this path.
            match v {
                Some(v) => expr_activity(v).read_roots(),
                None => SymbolSet::new(),
            }
        }
        StmtKind::Break | StmtKind::Continue => {
            // Conservative: keep the surrounding live set (the loop
            // fixpoint above folds loop state in).
            live_out.clone()
        }
        _ => {
            let act = stmt_activity(stmt);
            let defs = act.modified_simple_roots();
            let mut live: SymbolSet = live_out
                .iter()
                .filter(|s| !defs.contains(*s))
                .cloned()
                .collect();
            live.extend(act.read_roots());
            live
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn set(items: &[&str]) -> SymbolSet {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn live(src: &str, out: &[&str]) -> SymbolSet {
        live_into(&parse_module(src).unwrap().body, &set(out))
    }

    #[test]
    fn straight_line_kill_and_gen() {
        let l = live("y = x + 1\nz = y\n", &["z"]);
        assert!(l.contains("x"));
        assert!(!l.contains("y") && !l.contains("z"));
    }

    #[test]
    fn branch_partial_kill() {
        let l = live("if c:\n    x = 1\ny = x\n", &["y"]);
        assert!(l.contains("x") && l.contains("c"));
        let l2 = live("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n", &["y"]);
        assert!(!l2.contains("x"));
    }

    #[test]
    fn while_loop_carries_state() {
        let l = live("while c:\n    x = x + d\n", &["x"]);
        assert!(l.contains("x") && l.contains("c") && l.contains("d"));
    }

    #[test]
    fn for_target_not_live_before() {
        let l = live("for i in xs:\n    s = s + i\n", &["s"]);
        assert!(l.contains("xs") && l.contains("s"));
        assert!(!l.contains("i"));
    }

    #[test]
    fn return_cuts_liveness() {
        let l = live("return a\nx = b\n", &["x"]);
        assert!(l.contains("a"));
        // b is technically dead code; structured walk is conservative going
        // backwards but return replaces the live set.
        assert!(!l.contains("x"));
    }

    #[test]
    fn matches_cfg_liveness_on_examples() {
        // Cross-check against the CFG fixpoint implementation.
        for (src, out) in [
            ("y = x + 1\nz = y\n", vec!["z"]),
            ("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n", vec!["y"]),
            ("while c:\n    x = x + d\nr = x\n", vec!["r"]),
            ("for i in xs:\n    s = s + i\nr = s\n", vec!["r"]),
        ] {
            let body = parse_module(src).unwrap().body;
            let structured = live_into(&body, &out.iter().map(|s| s.to_string()).collect());
            let cfg = crate::cfg::Cfg::build(&body);
            let fix = crate::dataflow::liveness(&cfg, &out.iter().map(|s| s.to_string()).collect());
            // structured must be a superset of the precise CFG answer …
            for s in &fix.live_in[crate::cfg::ENTRY] {
                assert!(structured.contains(s), "{src}: missing {s}");
            }
            // … and on these break-free examples, exactly equal.
            assert_eq!(structured, fix.live_in[crate::cfg::ENTRY], "{src}");
        }
    }
}
