//! Qualified-name resolution (§7.1).
//!
//! Extends the notion of a symbol to compound names such as `a.b`, so that
//! activity analysis can report `a.b = c` as modifying `a.b` (and not `a`).

use autograph_pylang::{Expr, ExprKind};
use std::fmt;

/// A (possibly dotted) symbol name: `a`, `a.b`, `a.b.c` …
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QualName(Vec<String>);

impl QualName {
    /// A simple (undotted) name.
    pub fn simple(name: impl Into<String>) -> QualName {
        QualName(vec![name.into()])
    }

    /// Build from parts; panics if empty.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty — a qualified name has at least a root.
    pub fn from_parts(parts: Vec<String>) -> QualName {
        assert!(!parts.is_empty(), "qualified name needs at least one part");
        QualName(parts)
    }

    /// The root symbol (`a` for `a.b.c`).
    pub fn root(&self) -> &str {
        &self.0[0]
    }

    /// True for undotted names.
    pub fn is_simple(&self) -> bool {
        self.0.len() == 1
    }

    /// Extend with another attribute: `a.b` + `c` = `a.b.c`.
    pub fn attr(&self, name: impl Into<String>) -> QualName {
        let mut parts = self.0.clone();
        parts.push(name.into());
        QualName(parts)
    }

    /// The component parts.
    pub fn parts(&self) -> &[String] {
        &self.0
    }
}

impl fmt::Display for QualName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.join("."))
    }
}

/// Resolve an expression to a qualified name if it is one
/// (`Name` or a chain of `Attribute`s over a `Name`).
pub fn qualname_of(expr: &Expr) -> Option<QualName> {
    match &expr.kind {
        ExprKind::Name(n) => Some(QualName::simple(n.clone())),
        ExprKind::Attribute { value, attr } => {
            let base = qualname_of(value)?;
            Some(base.attr(attr.clone()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;
    use autograph_pylang::StmtKind;

    fn expr_of(src: &str) -> Expr {
        let m = parse_module(src).unwrap();
        match m.body.into_iter().next().unwrap().kind {
            StmtKind::ExprStmt(e) => e,
            _ => panic!("expected expression statement"),
        }
    }

    #[test]
    fn simple_and_dotted() {
        assert_eq!(qualname_of(&expr_of("a\n")).unwrap().to_string(), "a");
        let q = qualname_of(&expr_of("a.b.c\n")).unwrap();
        assert_eq!(q.to_string(), "a.b.c");
        assert_eq!(q.root(), "a");
        assert!(!q.is_simple());
        assert_eq!(q.parts().len(), 3);
    }

    #[test]
    fn non_names_resolve_to_none() {
        assert!(qualname_of(&expr_of("f(x)\n")).is_none());
        assert!(qualname_of(&expr_of("a[0]\n")).is_none());
        assert!(qualname_of(&expr_of("f(x).b\n")).is_none());
        assert!(qualname_of(&expr_of("1 + 2\n")).is_none());
    }

    #[test]
    fn attr_builder() {
        let q = QualName::simple("tf").attr("matmul");
        assert_eq!(q.to_string(), "tf.matmul");
    }

    #[test]
    fn ordering_deterministic() {
        let mut v = [
            QualName::simple("b"),
            QualName::simple("a"),
            QualName::simple("a").attr("x"),
        ];
        v.sort();
        let s: Vec<String> = v.iter().map(|q| q.to_string()).collect();
        assert_eq!(s, vec!["a", "a.x", "b"]);
    }
}
