//! Classic worklist dataflow over the CFG: liveness (backward may),
//! reaching definitions (forward may) and definite assignment (forward
//! must). These are the "standard dataflow analyses" of §7.1.

use crate::cfg::{Cfg, NodeId, ENTRY};
use crate::SymbolSet;
use std::collections::{BTreeSet, VecDeque};

/// Result of liveness analysis: live sets at node entry and exit.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Symbols live on entry to each node.
    pub live_in: Vec<SymbolSet>,
    /// Symbols live on exit from each node.
    pub live_out: Vec<SymbolSet>,
}

/// Run backward liveness to a fixpoint.
///
/// `live_at_exit` seeds the live set at the function's exit node (e.g. the
/// returned variables when analyzing a fragment).
pub fn liveness(cfg: &Cfg, live_at_exit: &SymbolSet) -> Liveness {
    let n = cfg.len();
    let mut live_in = vec![SymbolSet::new(); n];
    let mut live_out = vec![SymbolSet::new(); n];
    live_in[crate::cfg::EXIT] = live_at_exit.clone();

    let mut work: VecDeque<NodeId> = (0..n).rev().collect();
    while let Some(node) = work.pop_front() {
        let mut out = SymbolSet::new();
        for &s in cfg.succs(node) {
            out.extend(live_in[s].iter().cloned());
        }
        if node == crate::cfg::EXIT {
            out.extend(live_at_exit.iter().cloned());
        }
        let mut inn: SymbolSet = out
            .iter()
            .filter(|s| !cfg.nodes[node].defs.contains(*s))
            .cloned()
            .collect();
        inn.extend(cfg.nodes[node].uses.iter().cloned());
        if node == crate::cfg::EXIT {
            inn.extend(live_at_exit.iter().cloned());
        }
        if inn != live_in[node] || out != live_out[node] {
            live_in[node] = inn;
            live_out[node] = out;
            for &p in cfg.preds(node) {
                if !work.contains(&p) {
                    work.push_back(p);
                }
            }
        }
    }
    Liveness { live_in, live_out }
}

/// A definition site: `(node, symbol)`.
pub type Def = (NodeId, String);

/// Result of reaching-definitions analysis.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Definitions reaching each node's entry.
    pub reach_in: Vec<BTreeSet<Def>>,
    /// Definitions reaching each node's exit.
    pub reach_out: Vec<BTreeSet<Def>>,
}

impl ReachingDefs {
    /// The definitions of `symbol` that reach the entry of `node`.
    pub fn defs_of(&self, node: NodeId, symbol: &str) -> Vec<NodeId> {
        self.reach_in[node]
            .iter()
            .filter(|(_, s)| s == symbol)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Symbols with at least one reaching definition at `node` entry —
    /// the "symbols defined on entry" annotation of §7.1.
    pub fn defined_symbols_at(&self, node: NodeId) -> SymbolSet {
        self.reach_in[node].iter().map(|(_, s)| s.clone()).collect()
    }
}

/// Run forward reaching definitions to a fixpoint.
///
/// `params` are treated as definitions at the entry node.
pub fn reaching_definitions(cfg: &Cfg, params: &SymbolSet) -> ReachingDefs {
    let n = cfg.len();
    let mut reach_in = vec![BTreeSet::new(); n];
    let mut reach_out = vec![BTreeSet::new(); n];
    let entry_defs: BTreeSet<Def> = params.iter().map(|p| (ENTRY, p.clone())).collect();
    reach_out[ENTRY] = entry_defs;

    let mut work: VecDeque<NodeId> = (0..n).collect();
    while let Some(node) = work.pop_front() {
        let mut inn: BTreeSet<Def> = BTreeSet::new();
        for &p in cfg.preds(node) {
            inn.extend(reach_out[p].iter().cloned());
        }
        let node_defs = &cfg.nodes[node].defs;
        let mut out: BTreeSet<Def> = inn
            .iter()
            .filter(|(_, s)| !node_defs.contains(s))
            .cloned()
            .collect();
        for d in node_defs {
            out.insert((node, d.clone()));
        }
        if node == ENTRY {
            out.extend(params.iter().map(|p| (ENTRY, p.clone())));
        }
        if inn != reach_in[node] || out != reach_out[node] {
            reach_in[node] = inn;
            reach_out[node] = out;
            for &s in cfg.succs(node) {
                if !work.contains(&s) {
                    work.push_back(s);
                }
            }
        }
    }
    ReachingDefs {
        reach_in,
        reach_out,
    }
}

/// Forward *must* analysis: symbols definitely assigned at each node's
/// entry, along every path from function entry.
pub fn definite_assignment(cfg: &Cfg, params: &SymbolSet) -> Vec<SymbolSet> {
    let n = cfg.len();
    // Start from "everything defined" (top) except entry.
    let all: SymbolSet = cfg
        .nodes
        .iter()
        .flat_map(|nd| nd.defs.iter().cloned())
        .chain(params.iter().cloned())
        .collect();
    let mut def_in = vec![all.clone(); n];
    let mut def_out = vec![all.clone(); n];
    def_in[ENTRY] = params.clone();
    def_out[ENTRY] = params.clone();

    let mut work: VecDeque<NodeId> = (0..n).collect();
    while let Some(node) = work.pop_front() {
        if node != ENTRY {
            let mut inn: Option<SymbolSet> = None;
            for &p in cfg.preds(node) {
                inn = Some(match inn {
                    None => def_out[p].clone(),
                    Some(acc) => acc.intersection(&def_out[p]).cloned().collect(),
                });
            }
            let inn = inn.unwrap_or_default();
            let mut out = inn.clone();
            out.extend(cfg.nodes[node].defs.iter().cloned());
            if inn != def_in[node] || out != def_out[node] {
                def_in[node] = inn;
                def_out[node] = out;
                for &s in cfg.succs(node) {
                    if !work.contains(&s) {
                        work.push_back(s);
                    }
                }
            }
        }
    }
    def_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Cfg, EXIT};
    use autograph_pylang::parse_module;

    fn build(src: &str) -> Cfg {
        Cfg::build(&parse_module(src).unwrap().body)
    }

    fn set(items: &[&str]) -> SymbolSet {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn liveness_straight_line() {
        let g = build("y = x + 1\nz = y\n");
        let l = liveness(&g, &set(&["z"]));
        // x live at entry; y not (defined before use)
        assert!(l.live_in[ENTRY].contains("x"));
        assert!(!l.live_in[ENTRY].contains("y"));
        assert!(!l.live_in[ENTRY].contains("z"));
    }

    #[test]
    fn liveness_through_loop() {
        let g = build("while c:\n    x = x + d\nr = x\n");
        let l = liveness(&g, &set(&["r"]));
        for v in ["c", "x", "d"] {
            assert!(l.live_in[ENTRY].contains(v), "{v} should be live at entry");
        }
    }

    #[test]
    fn liveness_kill_in_branch_only() {
        // x defined in one branch only -> still live at entry
        let g = build("if c:\n    x = 1\ny = x\n");
        let l = liveness(&g, &set(&["y"]));
        assert!(l.live_in[ENTRY].contains("x"));
        // but if both branches define it, not live
        let g2 = build("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n");
        let l2 = liveness(&g2, &set(&["y"]));
        assert!(!l2.live_in[ENTRY].contains("x"));
    }

    #[test]
    fn liveness_exit_seed() {
        let g = build("x = 1\n");
        let l = liveness(&g, &set(&["q"]));
        assert!(l.live_in[ENTRY].contains("q"));
        assert!(l.live_in[EXIT].contains("q"));
    }

    #[test]
    fn reaching_defs_linear() {
        let g = build("x = 1\nx = 2\ny = x\n");
        let r = reaching_definitions(&g, &SymbolSet::new());
        let n_y = g.find("stmt@3:1").unwrap();
        let defs = r.defs_of(n_y, "x");
        // only the second definition reaches
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0], g.find("stmt@2:1").unwrap());
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let g = build("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n");
        let r = reaching_definitions(&g, &SymbolSet::new());
        let n_y = g.find("stmt@5:1").unwrap();
        assert_eq!(r.defs_of(n_y, "x").len(), 2);
    }

    #[test]
    fn reaching_defs_params() {
        let g = build("y = x\n");
        let r = reaching_definitions(&g, &set(&["x"]));
        let n_y = g.find("stmt@1:1").unwrap();
        assert_eq!(r.defs_of(n_y, "x"), vec![ENTRY]);
        assert!(r.defined_symbols_at(n_y).contains("x"));
    }

    #[test]
    fn reaching_defs_loop_carried() {
        let g = build("x = 0\nwhile c:\n    x = x + 1\n");
        let r = reaching_definitions(&g, &SymbolSet::new());
        let n_body = g.find("stmt@3:5").unwrap();
        // both the initial def and the loop-carried def reach the body
        assert_eq!(r.defs_of(n_body, "x").len(), 2);
    }

    #[test]
    fn definite_assignment_branches() {
        let g = build("if c:\n    x = 1\nelse:\n    x = 2\n    y = 3\nz = x\n");
        let d = definite_assignment(&g, &SymbolSet::new());
        let n_z = g.find("stmt@6:1").unwrap();
        assert!(d[n_z].contains("x"), "x assigned on both paths");
        assert!(!d[n_z].contains("y"), "y assigned on one path only");
    }

    #[test]
    fn definite_assignment_loop_body_may_not_run() {
        let g = build("while c:\n    x = 1\ny = 2\n");
        let d = definite_assignment(&g, &SymbolSet::new());
        let n_y = g.find("stmt@3:1").unwrap();
        assert!(!d[n_y].contains("x"));
    }
}
