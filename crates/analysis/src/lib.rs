//! # autograph-analysis
//!
//! The static analyses of AutoGraph §7.1, implemented over the PyLite AST:
//!
//! * [`cfg`](mod@cfg) — standard intra-procedural control-flow-graph construction;
//! * [`qualname`] — qualified-name resolution (`a.b` as a compound symbol);
//! * [`activity`] — per-node read/modified symbol sets with lexical scope
//!   tracking;
//! * [`dataflow`] — classic worklist **reaching definitions** (forward) and
//!   **liveness** (backward) over the CFG;
//! * [`liveness`] / [`definedness`] — compositional (structured) versions
//!   of the same analyses, which the conversion passes consume while
//!   rebuilding the tree. A property test in the workspace cross-checks the
//!   structured liveness against the CFG fixpoint.
//!
//! ## Example
//!
//! ```
//! use autograph_pylang::parse_module;
//! use autograph_analysis::activity::body_activity;
//!
//! let m = parse_module("x = a + b\ny = x * 2\n")?;
//! let act = body_activity(&m.body);
//! assert!(act.reads_root("a") && act.modifies_root("x"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod activity;
pub mod cfg;
pub mod dataflow;
pub mod definedness;
pub mod liveness;
pub mod qualname;

pub use activity::Activity;
pub use qualname::QualName;

use std::collections::BTreeSet;

/// A set of root symbol names, ordered for deterministic output.
pub type SymbolSet = BTreeSet<String>;
