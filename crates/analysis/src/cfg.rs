//! Standard intra-procedural control-flow graph construction (§7.1).
//!
//! Nodes are individual simple statements plus branch/loop headers; edges
//! follow Python control flow including `break`, `continue` and `return`.
//! The graph backs the classic worklist analyses in [`crate::dataflow`].

use crate::activity::{expr_activity, stmt_activity};
use crate::SymbolSet;
use autograph_pylang::ast::{Stmt, StmtKind};
use autograph_pylang::Span;

/// Index of a CFG node.
pub type NodeId = usize;

/// A node in the control-flow graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable label (used in dumps and tests).
    pub label: String,
    /// Root symbols used (read) by this node.
    pub uses: SymbolSet,
    /// Root symbols fully defined (killed) by this node — simple
    /// assignments only; `x[i] = v` does not kill `x`.
    pub defs: SymbolSet,
    /// Source span of the originating statement.
    pub span: Span,
}

/// An intra-procedural control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; index 0 is entry, index 1 is exit.
    pub nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    preds: Vec<Vec<NodeId>>,
}

/// Entry node id.
pub const ENTRY: NodeId = 0;
/// Exit node id.
pub const EXIT: NodeId = 1;

impl Cfg {
    /// Build the CFG of a function body.
    pub fn build(body: &[Stmt]) -> Cfg {
        let mut b = Builder {
            cfg: Cfg {
                nodes: vec![
                    Node {
                        label: "<entry>".into(),
                        uses: SymbolSet::new(),
                        defs: SymbolSet::new(),
                        span: Span::synthetic(),
                    },
                    Node {
                        label: "<exit>".into(),
                        uses: SymbolSet::new(),
                        defs: SymbolSet::new(),
                        span: Span::synthetic(),
                    },
                ],
                succs: vec![Vec::new(), Vec::new()],
                preds: vec![Vec::new(), Vec::new()],
            },
        };
        let frontier = b.chain(body, vec![ENTRY], &mut Vec::new(), &mut Vec::new());
        for p in frontier {
            b.edge(p, EXIT);
        }
        b.cfg
    }

    /// Successors of a node.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n]
    }

    /// Predecessors of a node.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has only entry/exit.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 2
    }

    /// Find a node id by label (testing helper).
    pub fn find(&self, label: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.label == label)
    }

    /// Render as Graphviz dot (for debugging).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph cfg {\n");
        for (i, n) in self.nodes.iter().enumerate() {
            s.push_str(&format!(
                "  n{} [label=\"{}\"];\n",
                i,
                n.label.replace('"', "'")
            ));
        }
        for (i, ss) in self.succs.iter().enumerate() {
            for t in ss {
                s.push_str(&format!("  n{i} -> n{t};\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

struct Builder {
    cfg: Cfg,
}

impl Builder {
    fn node(&mut self, label: String, uses: SymbolSet, defs: SymbolSet, span: Span) -> NodeId {
        self.cfg.nodes.push(Node {
            label,
            uses,
            defs,
            span,
        });
        self.cfg.succs.push(Vec::new());
        self.cfg.preds.push(Vec::new());
        self.cfg.nodes.len() - 1
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        if !self.cfg.succs[from].contains(&to) {
            self.cfg.succs[from].push(to);
            self.cfg.preds[to].push(from);
        }
    }

    fn connect_all(&mut self, froms: &[NodeId], to: NodeId) {
        for &f in froms {
            self.edge(f, to);
        }
    }

    /// Lay down `body`, entered from `preds`. Returns the fall-through
    /// frontier. `breaks`/`continues` collect jump sources for the
    /// innermost enclosing loop.
    fn chain(
        &mut self,
        body: &[Stmt],
        mut preds: Vec<NodeId>,
        breaks: &mut Vec<NodeId>,
        continues: &mut Vec<NodeId>,
    ) -> Vec<NodeId> {
        for stmt in body {
            if preds.is_empty() {
                break; // unreachable code after return/break/continue
            }
            match &stmt.kind {
                StmtKind::If { test, body, orelse } => {
                    let a = expr_activity(test);
                    let n = self.node(
                        format!("if@{}", stmt.span),
                        a.read_roots(),
                        SymbolSet::new(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    let body_end = self.chain(body, vec![n], breaks, continues);
                    let orelse_end = if orelse.is_empty() {
                        vec![n]
                    } else {
                        self.chain(orelse, vec![n], breaks, continues)
                    };
                    preds = body_end;
                    preds.extend(orelse_end);
                }
                StmtKind::While { test, body } => {
                    let a = expr_activity(test);
                    let n = self.node(
                        format!("while@{}", stmt.span),
                        a.read_roots(),
                        SymbolSet::new(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    let mut inner_breaks = Vec::new();
                    let mut inner_continues = Vec::new();
                    let body_end =
                        self.chain(body, vec![n], &mut inner_breaks, &mut inner_continues);
                    self.connect_all(&body_end, n);
                    self.connect_all(&inner_continues, n);
                    preds = vec![n];
                    preds.extend(inner_breaks);
                }
                StmtKind::For { target, iter, body } => {
                    let it = expr_activity(iter);
                    let tgt =
                        crate::activity::body_activity(&[Stmt::synthetic(StmtKind::Assign {
                            target: target.clone(),
                            value: iter.clone(),
                        })]);
                    let n = self.node(
                        format!("for@{}", stmt.span),
                        it.read_roots(),
                        tgt.modified_simple_roots(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    let mut inner_breaks = Vec::new();
                    let mut inner_continues = Vec::new();
                    let body_end =
                        self.chain(body, vec![n], &mut inner_breaks, &mut inner_continues);
                    self.connect_all(&body_end, n);
                    self.connect_all(&inner_continues, n);
                    preds = vec![n];
                    preds.extend(inner_breaks);
                }
                StmtKind::Break => {
                    let n = self.node(
                        "break".into(),
                        SymbolSet::new(),
                        SymbolSet::new(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    breaks.push(n);
                    preds = Vec::new();
                }
                StmtKind::Continue => {
                    let n = self.node(
                        "continue".into(),
                        SymbolSet::new(),
                        SymbolSet::new(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    continues.push(n);
                    preds = Vec::new();
                }
                StmtKind::Return(_) => {
                    let a = stmt_activity(stmt);
                    let n = self.node(
                        format!("return@{}", stmt.span),
                        a.read_roots(),
                        SymbolSet::new(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    self.edge(n, EXIT);
                    preds = Vec::new();
                }
                _ => {
                    let a = stmt_activity(stmt);
                    let n = self.node(
                        format!("stmt@{}", stmt.span),
                        a.read_roots(),
                        a.modified_simple_roots(),
                        stmt.span,
                    );
                    self.connect_all(&preds, n);
                    preds = vec![n];
                }
            }
        }
        preds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn cfg(src: &str) -> Cfg {
        Cfg::build(&parse_module(src).unwrap().body)
    }

    #[test]
    fn straight_line() {
        let g = cfg("x = 1\ny = x\n");
        // entry, exit, two statements
        assert_eq!(g.len(), 4);
        assert_eq!(g.succs(ENTRY), &[2]);
        assert_eq!(g.succs(2), &[3]);
        assert_eq!(g.succs(3), &[EXIT]);
        assert_eq!(g.preds(EXIT), &[3]);
    }

    #[test]
    fn if_diamond() {
        let g = cfg("if c:\n    x = 1\nelse:\n    x = 2\ny = x\n");
        let n_if = g.find("if@1:1").unwrap();
        assert_eq!(g.succs(n_if).len(), 2);
        let n_join = g.find("stmt@5:1").unwrap();
        assert_eq!(g.preds(n_join).len(), 2);
    }

    #[test]
    fn if_without_else_falls_through() {
        let g = cfg("if c:\n    x = 1\ny = 2\n");
        let n_if = g.find("if@1:1").unwrap();
        let n_y = g.find("stmt@3:1").unwrap();
        // if-node reaches y both directly (false) and through the body
        assert!(g.preds(n_y).contains(&n_if));
        assert_eq!(g.preds(n_y).len(), 2);
    }

    #[test]
    fn while_loop_back_edge() {
        let g = cfg("while c:\n    x = x + 1\ny = x\n");
        let n_while = g.find("while@1:1").unwrap();
        let n_body = g.find("stmt@2:5").unwrap();
        assert!(g.succs(n_body).contains(&n_while), "back edge missing");
        assert!(g.succs(n_while).contains(&n_body));
    }

    #[test]
    fn break_exits_loop() {
        let g = cfg("while c:\n    if d:\n        break\n    x = 1\ny = 2\n");
        let n_break = g.find("break").unwrap();
        let n_after = g.find("stmt@5:1").unwrap();
        assert!(g.succs(n_break).contains(&n_after));
    }

    #[test]
    fn continue_back_to_header() {
        let g = cfg("while c:\n    if d:\n        continue\n    x = 1\n");
        let n_cont = g.find("continue").unwrap();
        let n_while = g.find("while@1:1").unwrap();
        assert!(g.succs(n_cont).contains(&n_while));
    }

    #[test]
    fn return_goes_to_exit_and_kills_fallthrough() {
        let g = cfg("if c:\n    return 1\nx = 2\n");
        let n_ret = g.find("return@2:5").unwrap();
        assert_eq!(g.succs(n_ret), &[EXIT]);
        let n_x = g.find("stmt@3:1").unwrap();
        // x reachable only via the false edge of if
        assert_eq!(g.preds(n_x).len(), 1);
    }

    #[test]
    fn unreachable_after_return_skipped() {
        let g = cfg("return 1\nx = 2\n");
        assert!(g.find("stmt@2:1").is_none());
    }

    #[test]
    fn for_loop_defs_target() {
        let g = cfg("for i in xs:\n    s = s + i\n");
        let n_for = g.find("for@1:1").unwrap();
        assert!(g.nodes[n_for].defs.contains("i"));
        assert!(g.nodes[n_for].uses.contains("xs"));
    }

    #[test]
    fn subscript_assign_does_not_kill() {
        let g = cfg("x[i] = 1\n");
        let n = g.find("stmt@1:1").unwrap();
        assert!(!g.nodes[n].defs.contains("x"));
        assert!(g.nodes[n].uses.contains("x"));
    }

    #[test]
    fn dot_output() {
        let g = cfg("x = 1\n");
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
    }
}
