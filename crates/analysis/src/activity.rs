//! Activity analysis (§7.1): which symbols a statement reads and which it
//! directly modifies, with lexical-scope awareness for nested functions and
//! lambdas.
//!
//! Matching the paper: only *direct* modifications count as writes — in
//! `a.b = c`, the qualified name `a.b` is modified but `a` is not.

use crate::qualname::{qualname_of, QualName};
use crate::SymbolSet;
use autograph_pylang::ast::{Expr, ExprKind, Index, Param, Stmt, StmtKind};
use std::collections::BTreeSet;

/// The read/modified sets of a program fragment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Activity {
    /// Qualified names read (used) by the fragment.
    pub read: BTreeSet<QualName>,
    /// Qualified names directly modified by the fragment.
    pub modified: BTreeSet<QualName>,
}

impl Activity {
    /// Merge another activity into this one.
    pub fn merge(&mut self, other: Activity) {
        self.read.extend(other.read);
        self.modified.extend(other.modified);
    }

    /// Root symbols that are read.
    pub fn read_roots(&self) -> SymbolSet {
        self.read.iter().map(|q| q.root().to_string()).collect()
    }

    /// Root symbols that are modified (including via `a.b = c`, whose root
    /// is `a` — callers that need the paper's strict semantics should use
    /// [`Activity::modified`] directly).
    pub fn modified_roots(&self) -> SymbolSet {
        self.modified.iter().map(|q| q.root().to_string()).collect()
    }

    /// Root symbols modified through *simple* (undotted) assignments only.
    /// These are the symbols that control-flow functionalization must
    /// thread through branch functions.
    pub fn modified_simple_roots(&self) -> SymbolSet {
        self.modified
            .iter()
            .filter(|q| q.is_simple())
            .map(|q| q.root().to_string())
            .collect()
    }

    /// Whether the fragment reads the given root symbol.
    pub fn reads_root(&self, name: &str) -> bool {
        self.read.iter().any(|q| q.root() == name)
    }

    /// Whether the fragment modifies the given root symbol.
    pub fn modifies_root(&self, name: &str) -> bool {
        self.modified.iter().any(|q| q.root() == name)
    }
}

/// Activity of a whole statement body.
pub fn body_activity(body: &[Stmt]) -> Activity {
    let mut act = Activity::default();
    for s in body {
        act.merge(stmt_activity(s));
    }
    act
}

/// Activity of a single statement (including nested blocks).
pub fn stmt_activity(stmt: &Stmt) -> Activity {
    let mut act = Activity::default();
    match &stmt.kind {
        StmtKind::FunctionDef {
            name,
            params,
            body,
            decorators,
            ..
        } => {
            // The function name is modified at the def site; free variables
            // of the body are reads (captured closure variables).
            act.modified.insert(QualName::simple(name.clone()));
            for d in decorators {
                act.merge(expr_activity(d));
            }
            let free = free_variables(params, body);
            for f in free {
                act.read.insert(QualName::simple(f));
            }
        }
        StmtKind::Return(v) => {
            if let Some(v) = v {
                act.merge(expr_activity(v));
            }
        }
        StmtKind::Assign { target, value } => {
            act.merge(expr_activity(value));
            act.merge(target_activity(target));
        }
        StmtKind::AugAssign { target, value, .. } => {
            // `x += v` both reads and modifies x.
            act.merge(expr_activity(value));
            act.merge(expr_activity(target));
            act.merge(target_activity(target));
        }
        StmtKind::If { test, body, orelse } => {
            act.merge(expr_activity(test));
            act.merge(body_activity(body));
            act.merge(body_activity(orelse));
        }
        StmtKind::While { test, body } => {
            act.merge(expr_activity(test));
            act.merge(body_activity(body));
        }
        StmtKind::For { target, iter, body } => {
            act.merge(expr_activity(iter));
            act.merge(target_activity(target));
            act.merge(body_activity(body));
        }
        StmtKind::Assert { test, msg } => {
            act.merge(expr_activity(test));
            if let Some(m) = msg {
                act.merge(expr_activity(m));
            }
        }
        StmtKind::ExprStmt(e) => act.merge(expr_activity(e)),
        StmtKind::Del(names) => {
            for n in names {
                act.modified.insert(QualName::simple(n.clone()));
            }
        }
        StmtKind::Raise(v) => {
            if let Some(v) = v {
                act.merge(expr_activity(v));
            }
        }
        StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Pass
        | StmtKind::Global(_)
        | StmtKind::Nonlocal(_) => {}
    }
    act
}

/// Activity of an assignment target: the target itself is modified; index
/// and attribute-base expressions are read.
fn target_activity(target: &Expr) -> Activity {
    let mut act = Activity::default();
    match &target.kind {
        ExprKind::Name(_) | ExprKind::Attribute { .. } => {
            if let Some(q) = qualname_of(target) {
                act.modified.insert(q);
            } else if let ExprKind::Attribute { value, .. } = &target.kind {
                // attribute over a non-name (e.g. f(x).a = 1): base is read
                act.merge(expr_activity(value));
            }
        }
        ExprKind::Subscript { value, index } => {
            // x[i] = v modifies the *element* x[i] (recorded as the
            // non-simple qualified name `x.[]` so it never kills `x`)
            // and reads the container x.
            if let Some(q) = qualname_of(value) {
                act.modified.insert(q.attr("[]"));
                act.read.insert(q);
            } else {
                act.merge(expr_activity(value));
            }
            match &**index {
                Index::Single(e) => act.merge(expr_activity(e)),
                Index::Slice { lower, upper } => {
                    if let Some(l) = lower {
                        act.merge(expr_activity(l));
                    }
                    if let Some(u) = upper {
                        act.merge(expr_activity(u));
                    }
                }
            }
        }
        ExprKind::Tuple(items) | ExprKind::List(items) => {
            for i in items {
                act.merge(target_activity(i));
            }
        }
        _ => act.merge(expr_activity(target)),
    }
    act
}

/// Activity of an expression: every qualified name mentioned is a read.
pub fn expr_activity(expr: &Expr) -> Activity {
    let mut act = Activity::default();
    collect_expr(expr, &mut act);
    act
}

fn collect_expr(expr: &Expr, act: &mut Activity) {
    if let Some(q) = qualname_of(expr) {
        act.read.insert(q);
        return;
    }
    match &expr.kind {
        ExprKind::Attribute { value, .. } => collect_expr(value, act),
        ExprKind::Subscript { value, index } => {
            collect_expr(value, act);
            match &**index {
                Index::Single(e) => collect_expr(e, act),
                Index::Slice { lower, upper } => {
                    if let Some(l) = lower {
                        collect_expr(l, act);
                    }
                    if let Some(u) = upper {
                        collect_expr(u, act);
                    }
                }
            }
        }
        ExprKind::Call { func, args, kwargs } => {
            collect_expr(func, act);
            for a in args {
                collect_expr(a, act);
            }
            for (_, v) in kwargs {
                collect_expr(v, act);
            }
        }
        ExprKind::BinOp { left, right, .. } => {
            collect_expr(left, act);
            collect_expr(right, act);
        }
        ExprKind::UnaryOp { operand, .. } => collect_expr(operand, act),
        ExprKind::BoolOp { values, .. } => {
            for v in values {
                collect_expr(v, act);
            }
        }
        ExprKind::Compare {
            left, comparators, ..
        } => {
            collect_expr(left, act);
            for c in comparators {
                collect_expr(c, act);
            }
        }
        ExprKind::IfExp { test, body, orelse } => {
            collect_expr(test, act);
            collect_expr(body, act);
            collect_expr(orelse, act);
        }
        ExprKind::List(items) | ExprKind::Tuple(items) => {
            for i in items {
                collect_expr(i, act);
            }
        }
        ExprKind::Lambda { params, body } => {
            // free variables of the lambda are reads
            let bound: SymbolSet = params.iter().map(|p| p.name.clone()).collect();
            for p in params {
                if let Some(d) = &p.default {
                    collect_expr(d, act);
                }
            }
            let mut inner = Activity::default();
            collect_expr(body, &mut inner);
            for q in inner.read {
                if !bound.contains(q.root()) {
                    act.read.insert(q);
                }
            }
        }
        ExprKind::Name(_)
        | ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::NoneLit => {}
    }
}

/// Root symbols fully defined by an assignment/loop target (Name and Tuple
/// targets only; subscript/attribute targets do not kill).
pub fn target_defs(target: &Expr) -> SymbolSet {
    let mut out = SymbolSet::new();
    collect_target_defs(target, &mut out);
    out
}

fn collect_target_defs(target: &Expr, out: &mut SymbolSet) {
    match &target.kind {
        ExprKind::Name(n) => {
            out.insert(n.clone());
        }
        ExprKind::Tuple(items) | ExprKind::List(items) => {
            for i in items {
                collect_target_defs(i, out);
            }
        }
        _ => {}
    }
}

/// Free variables of a function: root symbols read anywhere in the body
/// that are neither parameters nor locally assigned.
pub fn free_variables(params: &[Param], body: &[Stmt]) -> SymbolSet {
    let act = body_activity(body);
    let mut bound: SymbolSet = params.iter().map(|p| p.name.clone()).collect();
    bound.extend(act.modified_roots());
    act.read_roots()
        .into_iter()
        .filter(|r| !bound.contains(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn act(src: &str) -> Activity {
        body_activity(&parse_module(src).unwrap().body)
    }

    #[test]
    fn simple_assign() {
        let a = act("x = a + b\n");
        assert!(a.reads_root("a") && a.reads_root("b"));
        assert!(a.modifies_root("x"));
        assert!(!a.reads_root("x"));
    }

    #[test]
    fn attribute_write_is_direct_only() {
        // Paper: in `a.b = c`, a.b is modified but a is not.
        let a = act("a.b = c\n");
        assert!(a.modified.contains(&QualName::simple("a").attr("b")));
        assert!(!a.modified.contains(&QualName::simple("a")));
        // a.b is not a *simple* root modification
        assert!(a.modified_simple_roots().is_empty());
    }

    #[test]
    fn subscript_write_reads_container() {
        let a = act("x[i] = y\n");
        assert!(a.modifies_root("x"));
        assert!(a.reads_root("x"));
        assert!(a.reads_root("i") && a.reads_root("y"));
    }

    #[test]
    fn aug_assign_reads_and_writes() {
        let a = act("x += 1\n");
        assert!(a.reads_root("x") && a.modifies_root("x"));
    }

    #[test]
    fn control_flow_collects_all_branches() {
        let a = act("if c:\n    x = 1\nelse:\n    y = z\nwhile w:\n    q = q + 1\n");
        for r in ["c", "z", "w", "q"] {
            assert!(a.reads_root(r), "missing read {r}");
        }
        for m in ["x", "y", "q"] {
            assert!(a.modifies_root(m), "missing write {m}");
        }
    }

    #[test]
    fn for_target_is_modified() {
        let a = act("for i, v in pairs:\n    s = s + v\n");
        assert!(a.modifies_root("i") && a.modifies_root("v") && a.modifies_root("s"));
        assert!(a.reads_root("pairs"));
    }

    #[test]
    fn nested_def_captures_free_vars() {
        let a = act("def inner():\n    return x + y\n");
        assert!(a.modifies_root("inner"));
        assert!(a.reads_root("x") && a.reads_root("y"));
    }

    #[test]
    fn nested_def_params_and_locals_not_free() {
        let a = act("def inner(x):\n    y = 2\n    return x + y\n");
        assert!(!a.reads_root("x") && !a.reads_root("y"));
    }

    #[test]
    fn lambda_free_vars() {
        let a = act("f = lambda v: v + w\n");
        assert!(a.reads_root("w"));
        assert!(!a.reads_root("v"));
        assert!(a.modifies_root("f"));
    }

    #[test]
    fn call_reads_function_name() {
        let a = act("y = tf.matmul(a, b)\n");
        assert!(a.read.contains(&QualName::simple("tf").attr("matmul")));
        assert!(a.reads_root("tf"));
    }

    #[test]
    fn del_modifies() {
        let a = act("del x\n");
        assert!(a.modifies_root("x"));
    }

    #[test]
    fn free_variable_helper() {
        let m = parse_module("def f(a):\n    b = a + c\n    return b\n").unwrap();
        if let autograph_pylang::StmtKind::FunctionDef { params, body, .. } = &m.body[0].kind {
            let free = free_variables(params, body);
            assert_eq!(free.into_iter().collect::<Vec<_>>(), vec!["c".to_string()]);
        } else {
            panic!();
        }
    }

    #[test]
    fn ternary_and_boolop() {
        let a = act("r = x if c else y\ns = p and q or t\n");
        for r in ["x", "c", "y", "p", "q", "t"] {
            assert!(a.reads_root(r));
        }
    }
}
