//! Structured definite-assignment analysis.
//!
//! The control-flow conversion pass must know which symbols are
//! *definitely defined* before a staged conditional or loop: symbols that a
//! branch modifies but that may be undefined on entry are reified with the
//! special "undefined" value (§7.2, Control Flow). This is the structured
//! (must-) counterpart of [`crate::dataflow::definite_assignment`].

use crate::activity::{stmt_activity, target_defs};
use crate::SymbolSet;
use autograph_pylang::ast::{Stmt, StmtKind};

/// Symbols definitely defined after executing `body`, given those
/// definitely defined before it.
pub fn defined_after(body: &[Stmt], before: &SymbolSet) -> SymbolSet {
    let mut defined = before.clone();
    for stmt in body {
        defined = defined_after_stmt(stmt, &defined);
    }
    defined
}

/// Symbols definitely defined after a single statement.
pub fn defined_after_stmt(stmt: &Stmt, before: &SymbolSet) -> SymbolSet {
    match &stmt.kind {
        StmtKind::If { body, orelse, .. } => {
            let then_out = defined_after(body, before);
            let else_out = defined_after(orelse, before);
            // Paths that return never reach the join; a branch ending in
            // return contributes "everything" (no constraint). Detect the
            // common pattern of a trailing return.
            let then_returns = ends_in_return(body);
            let else_returns = ends_in_return(orelse) && !orelse.is_empty();
            match (then_returns, else_returns) {
                (true, true) => before.clone(),
                (true, false) => else_out,
                (false, true) => then_out,
                (false, false) => then_out.intersection(&else_out).cloned().collect(),
            }
        }
        StmtKind::While { .. } => {
            // Body may never run.
            before.clone()
        }
        StmtKind::For { .. } => before.clone(),
        StmtKind::Del(names) => {
            let mut out = before.clone();
            for n in names {
                out.remove(n);
            }
            out
        }
        StmtKind::Break | StmtKind::Continue | StmtKind::Return(_) | StmtKind::Raise(_) => {
            // No fall-through; value unused at the join.
            before.clone()
        }
        _ => {
            let mut out = before.clone();
            out.extend(stmt_activity(stmt).modified_simple_roots());
            out
        }
    }
}

/// Symbols a statement's inner bodies may define that are not definitely
/// defined on entry — these are the ones needing "undefined" reification
/// before functionalization.
pub fn maybe_undefined_outputs(stmt: &Stmt, defined_before: &SymbolSet) -> SymbolSet {
    let modified = match &stmt.kind {
        StmtKind::If { .. } | StmtKind::While { .. } => stmt_activity(stmt).modified_simple_roots(),
        StmtKind::For { target, .. } => {
            let mut m = stmt_activity(stmt).modified_simple_roots();
            // the loop target itself may stay undefined if the iterable is
            // empty
            m.extend(target_defs(target));
            m
        }
        _ => SymbolSet::new(),
    };
    modified
        .into_iter()
        .filter(|s| !defined_before.contains(s))
        .collect()
}

fn ends_in_return(body: &[Stmt]) -> bool {
    matches!(body.last().map(|s| &s.kind), Some(StmtKind::Return(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograph_pylang::parse_module;

    fn set(items: &[&str]) -> SymbolSet {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn after(src: &str, before: &[&str]) -> SymbolSet {
        defined_after(&parse_module(src).unwrap().body, &set(before))
    }

    #[test]
    fn linear_defines() {
        let d = after("x = 1\ny, z = f()\n", &[]);
        assert_eq!(d, set(&["x", "y", "z"]));
    }

    #[test]
    fn branch_intersection() {
        let d = after("if c:\n    x = 1\n    y = 1\nelse:\n    x = 2\n", &[]);
        assert!(d.contains("x"));
        assert!(!d.contains("y"));
    }

    #[test]
    fn branch_with_return_contributes_nothing() {
        let d = after("if c:\n    return 0\nx = 1\n", &[]);
        assert!(d.contains("x"));
        let d2 = after("if c:\n    y = 1\n    return y\nelse:\n    x = 2\n", &[]);
        assert!(
            d2.contains("x"),
            "else branch defines x; then branch returns"
        );
    }

    #[test]
    fn loops_guarantee_nothing() {
        let d = after("while c:\n    x = 1\n", &[]);
        assert!(!d.contains("x"));
        let d2 = after("for i in xs:\n    y = 1\n", &[]);
        assert!(!d2.contains("y") && !d2.contains("i"));
    }

    #[test]
    fn del_removes() {
        let d = after("x = 1\ndel x\n", &[]);
        assert!(!d.contains("x"));
    }

    #[test]
    fn maybe_undefined_for_if() {
        let m = parse_module("if c:\n    x = 1\n    y = 2\n").unwrap();
        let u = maybe_undefined_outputs(&m.body[0], &set(&["x"]));
        assert_eq!(u, set(&["y"]));
    }

    #[test]
    fn maybe_undefined_for_for_includes_target() {
        let m = parse_module("for i in xs:\n    s = 1\n").unwrap();
        let u = maybe_undefined_outputs(&m.body[0], &set(&[]));
        assert_eq!(u, set(&["i", "s"]));
    }

    #[test]
    fn subscript_write_not_a_definition() {
        let d = after("x[0] = 1\n", &[]);
        assert!(!d.contains("x"));
    }
}
