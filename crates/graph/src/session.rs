//! The `tf.Session` analog: owns a graph, its variable state and a cache
//! of compiled execution plans.
//!
//! ## Threads
//!
//! `Session::run` dispatches through the parallel wavefront scheduler
//! when more than one thread is available. The thread count resolves in
//! priority order:
//!
//! 1. [`Session::set_threads`] on this session;
//! 2. the process-wide default from [`set_default_threads`] (what bench
//!    binaries set from `--threads`);
//! 3. the `AUTOGRAPH_THREADS` environment variable;
//! 4. the machine's available parallelism.
//!
//! A resolved count of 1 runs the original sequential executor; any
//! other count produces bitwise-identical results (see `sched.rs`).

use crate::exec::{ExecEnv, Plan};
use crate::ir::{GValue, Graph, NodeId};
use crate::report::{self, NodeCost, RunReport};
use crate::run::{RunCtx, RunOptions};
use crate::Result;
use autograph_obs as obs;
use autograph_par as par;
use autograph_tensor::Tensor;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide thread default set by [`set_default_threads`];
/// 0 = unset.
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// How a session executes its compiled plans.
///
/// Both modes produce bitwise-identical results (locked down by the
/// VM-vs-interpreter differential test wall); they differ only in cost.
/// The mode resolves in priority order:
///
/// 1. [`Session::set_exec_mode`] on this session;
/// 2. the process-wide default from [`set_default_exec_mode`];
/// 3. the `AUTOGRAPH_EXEC` environment variable (`"interp"` / `"vm"`);
/// 4. [`ExecMode::Vm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Per-node interpretive dispatch over the graph (the original
    /// executor; the only mode that uses the parallel wavefront
    /// scheduler at `threads > 1`).
    Interp,
    /// Compiled register-bytecode execution with fused elementwise
    /// kernels and buffer recycling (see `crate::compile` /
    /// `crate::vm`).
    Vm,
}

/// Process-wide exec-mode default; 0 = unset, 1 = interp, 2 = vm.
static DEFAULT_EXEC: AtomicU8 = AtomicU8::new(0);

/// Set the process-wide default execution mode for sessions that don't
/// call [`Session::set_exec_mode`]. `AUTOGRAPH_EXEC` is only consulted
/// while this is unset.
pub fn set_default_exec_mode(mode: ExecMode) {
    let v = match mode {
        ExecMode::Interp => 1,
        ExecMode::Vm => 2,
    };
    DEFAULT_EXEC.store(v, Ordering::Relaxed);
}

/// `AUTOGRAPH_EXEC`, parsed once per process.
fn env_exec_mode() -> Option<ExecMode> {
    static CACHE: OnceLock<Option<ExecMode>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        match std::env::var("AUTOGRAPH_EXEC")
            .ok()?
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "interp" | "interpreter" => Some(ExecMode::Interp),
            "vm" | "bytecode" => Some(ExecMode::Vm),
            _ => None,
        }
    })
}

/// The execution mode a session created without [`Session::set_exec_mode`]
/// would resolve to right now — the process default, then `AUTOGRAPH_EXEC`,
/// then [`ExecMode::Vm`]. The persistent plan cache folds this into its
/// cache key so an interp-mode process never loads a VM-mode artifact's
/// accounting expectations (and vice versa).
pub fn default_exec_mode() -> ExecMode {
    resolve_exec_mode(None)
}

/// Resolve the effective execution mode for a session (see [`ExecMode`]
/// for the priority order).
fn resolve_exec_mode(session_mode: Option<ExecMode>) -> ExecMode {
    if let Some(m) = session_mode {
        return m;
    }
    match DEFAULT_EXEC.load(Ordering::Relaxed) {
        1 => ExecMode::Interp,
        2 => ExecMode::Vm,
        _ => env_exec_mode().unwrap_or(ExecMode::Vm),
    }
}

/// Set the process-wide default thread count for sessions that don't
/// call [`Session::set_threads`]. `AUTOGRAPH_THREADS` and machine
/// parallelism are only consulted while this is unset.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// `AUTOGRAPH_THREADS`, parsed once per process.
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("AUTOGRAPH_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// Resolve the effective thread count for a session (see the module docs
/// for the priority order).
fn resolve_threads(session_threads: Option<usize>) -> usize {
    if let Some(n) = session_threads {
        return n.max(1);
    }
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(par::available_parallelism),
        n => n,
    }
}

/// A rolling estimate of one node's per-run self-time, fed from
/// [`RunReport::node_costs`] whenever reporting is enabled. The
/// exponentially weighted moving average (α = 1/8) smooths run-to-run
/// noise while still tracking drift; the first sample seeds the
/// estimate directly. This is the stable cost signal a future
/// cost-aware scheduler reads — nothing in the run path consumes it
/// yet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSelfTime {
    /// The node's staged name.
    pub name: String,
    /// Op mnemonic.
    pub op: &'static str,
    /// EWMA of the node's per-run self-time, in nanoseconds.
    pub ewma_ns: u64,
    /// How many reported runs have contributed a sample.
    pub samples: u64,
}

impl NodeSelfTime {
    /// Fold one run's self-time sample into the estimate. The first
    /// sample seeds the EWMA; later samples blend in at α = 1/8:
    /// `new = old − old/8 + sample/8`.
    fn observe(&mut self, self_ns: u64) {
        if self.samples == 0 {
            self.ewma_ns = self_ns;
        } else {
            self.ewma_ns = self.ewma_ns - self.ewma_ns / 8 + self_ns / 8;
        }
        self.samples += 1;
    }
}

/// Plan-cache accounting snapshot for one [`Session`], returned by
/// [`Session::stats`]. A miss means a fetch set was compiled; a hit
/// means an existing plan was reused. Build time is tracked per fetch
/// set.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Runs that reused a cached plan.
    pub plan_cache_hits: u64,
    /// Runs that compiled (and cached) a new plan.
    pub plan_cache_misses: u64,
    /// Wall time spent compiling each fetch set's plan, in nanoseconds.
    pub plan_build_ns: HashMap<Vec<NodeId>, u64>,
    /// Graph nodes dispatched across all runs — including work done
    /// before a failed run's error, so partial progress is visible.
    pub nodes_executed: u64,
    /// Staged `While` iterations completed across all runs (failed runs
    /// included).
    pub while_iters: u64,
    /// Per-node self-time EWMAs accumulated from reported runs (empty
    /// unless [`Session::set_reporting`] was on for at least one run).
    pub node_self_ewma: HashMap<NodeId, NodeSelfTime>,
    /// Persistent plan-store loads that hit (artifact deserialized,
    /// staging skipped). Recorded by the warm-restage layer via
    /// [`SessionStatsShared::record_store_hit`].
    pub plan_store_hits: u64,
    /// Persistent plan-store lookups that missed (or fell back after
    /// corruption) and staged cold.
    pub plan_store_misses: u64,
    /// Artifact bytes deserialized from the persistent store.
    pub plan_store_bytes: u64,
    /// Wall time spent loading + decoding persistent artifacts, in
    /// nanoseconds.
    pub plan_store_load_ns: u64,
}

impl SessionStats {
    /// Total nanoseconds spent compiling plans across all fetch sets.
    pub fn total_build_ns(&self) -> u64 {
        self.plan_build_ns.values().sum()
    }
}

/// The live, thread-safe counters behind [`SessionStats`]. Shared via
/// `Arc` ([`Session::stats_handle`]) so concurrent observers — a metrics
/// poller, another thread's progress display — can read while the
/// session runs.
#[derive(Debug, Default)]
pub struct SessionStatsShared {
    hits: AtomicU64,
    misses: AtomicU64,
    build_ns: Mutex<HashMap<Vec<NodeId>, u64>>,
    nodes_executed: AtomicU64,
    while_iters: AtomicU64,
    node_ewma: Mutex<HashMap<NodeId, NodeSelfTime>>,
    store_hits: AtomicU64,
    store_misses: AtomicU64,
    store_bytes: AtomicU64,
    store_load_ns: AtomicU64,
}

impl SessionStatsShared {
    /// Runs that reused a cached plan.
    pub fn plan_cache_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Runs that compiled (and cached) a new plan.
    pub fn plan_cache_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Nodes dispatched across all runs, failed runs included.
    pub fn nodes_executed(&self) -> u64 {
        self.nodes_executed.load(Ordering::Relaxed)
    }

    /// Staged `While` iterations completed across all runs.
    pub fn while_iters(&self) -> u64 {
        self.while_iters.load(Ordering::Relaxed)
    }

    /// Current per-node self-time EWMAs (empty until a reported run
    /// lands samples).
    pub fn node_self_ewma(&self) -> HashMap<NodeId, NodeSelfTime> {
        self.node_ewma
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Fold one reported run's per-node costs into the rolling
    /// self-time estimates.
    pub fn fold_node_costs(&self, costs: &[NodeCost]) {
        let mut ewma = self.node_ewma.lock().unwrap_or_else(|p| p.into_inner());
        for c in costs {
            ewma.entry(c.node)
                .or_insert_with(|| NodeSelfTime {
                    name: c.name.clone(),
                    op: c.op,
                    ewma_ns: 0,
                    samples: 0,
                })
                .observe(c.self_ns);
        }
    }

    /// Record a persistent plan-store hit for this session: `bytes`
    /// deserialized in `load_ns` nanoseconds. Called by the runtime's
    /// warm-restage layer after installing a decoded artifact.
    pub fn record_store_hit(&self, bytes: u64, load_ns: u64) {
        self.store_hits.fetch_add(1, Ordering::Relaxed);
        self.store_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.store_load_ns.fetch_add(load_ns, Ordering::Relaxed);
    }

    /// Record a persistent plan-store miss (cold staging ran).
    pub fn record_store_miss(&self) {
        self.store_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Persistent plan-store hits recorded on this session.
    pub fn plan_store_hits(&self) -> u64 {
        self.store_hits.load(Ordering::Relaxed)
    }

    /// Persistent plan-store misses recorded on this session.
    pub fn plan_store_misses(&self) -> u64 {
        self.store_misses.load(Ordering::Relaxed)
    }

    /// Snapshot the counters into a plain [`SessionStats`].
    pub fn snapshot(&self) -> SessionStats {
        SessionStats {
            plan_cache_hits: self.hits.load(Ordering::Relaxed),
            plan_cache_misses: self.misses.load(Ordering::Relaxed),
            plan_build_ns: self
                .build_ns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
            nodes_executed: self.nodes_executed.load(Ordering::Relaxed),
            while_iters: self.while_iters.load(Ordering::Relaxed),
            node_self_ewma: self.node_self_ewma(),
            plan_store_hits: self.store_hits.load(Ordering::Relaxed),
            plan_store_misses: self.store_misses.load(Ordering::Relaxed),
            plan_store_bytes: self.store_bytes.load(Ordering::Relaxed),
            plan_store_load_ns: self.store_load_ns.load(Ordering::Relaxed),
        }
    }
}

/// Executes fetches against a graph, with persistent variables and
/// per-fetch-set plan caching. One `run` call per training step is the
/// "Model In Graph, Loop In Python" configuration of Table 2; a single
/// `run` of a `While` node is "Model And Loop In Graph".
#[derive(Debug)]
pub struct Session {
    graph: Graph,
    variables: HashMap<String, Tensor>,
    plans: HashMap<Vec<NodeId>, Plan>,
    stats: Arc<SessionStatsShared>,
    threads: Option<usize>,
    exec_mode: Option<ExecMode>,
    /// Whether runs collect a [`RunReport`] (memory accounting, scheduler
    /// utilization, critical path). Off by default: the run path then
    /// pays only an `Option` check per node.
    reporting: bool,
    last_report: Option<RunReport>,
}

impl Session {
    /// Create a session; variables start at their registered initial
    /// values.
    pub fn new(graph: Graph) -> Session {
        let variables = graph.variables.iter().cloned().collect();
        Session {
            graph,
            variables,
            plans: HashMap::new(),
            stats: Arc::new(SessionStatsShared::default()),
            threads: None,
            exec_mode: None,
            reporting: false,
            last_report: None,
        }
    }

    /// The graph this session executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Pin this session's thread count, overriding the process default
    /// and `AUTOGRAPH_THREADS`. `1` reproduces the sequential executor
    /// exactly.
    pub fn set_threads(&mut self, threads: usize) -> &mut Session {
        self.threads = Some(threads.max(1));
        self
    }

    /// The thread count the next `run` call will use.
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// Pin this session's execution mode, overriding the process default
    /// and `AUTOGRAPH_EXEC`.
    pub fn set_exec_mode(&mut self, mode: ExecMode) -> &mut Session {
        self.exec_mode = Some(mode);
        self
    }

    /// The execution mode the next `run` call will use.
    pub fn effective_exec_mode(&self) -> ExecMode {
        resolve_exec_mode(self.exec_mode)
    }

    /// Enable or disable per-run reporting. While enabled, every run
    /// collects per-node self-times and allocation attribution, diffs
    /// the process-wide tensor-memory ledger and worker-pool meters, and
    /// stores the resulting [`RunReport`] (see [`Session::last_report`]).
    /// Adds per-node timing overhead; leave off for peak throughput.
    pub fn set_reporting(&mut self, on: bool) -> &mut Session {
        self.reporting = on;
        self
    }

    /// Whether per-run reporting is enabled.
    pub fn reporting_enabled(&self) -> bool {
        self.reporting
    }

    /// The report of the most recent run (successful or failed), if
    /// reporting was enabled for it.
    pub fn last_report(&self) -> Option<&RunReport> {
        self.last_report.as_ref()
    }

    /// Plan-cache statistics accumulated over this session's runs
    /// (a snapshot of the live counters).
    pub fn stats(&self) -> SessionStats {
        self.stats.snapshot()
    }

    /// Shared handle to the live counters, readable from other threads
    /// while this session runs.
    pub fn stats_handle(&self) -> Arc<SessionStatsShared> {
        Arc::clone(&self.stats)
    }

    /// Pre-seed the plan cache from a deserialized
    /// [`CompiledUnit`](crate::artifact::CompiledUnit): the unit's fetch
    /// set gets a plan with the bytecode program already installed, so
    /// the first `run` for those fetches is a plan-cache hit that skips
    /// both plan compilation and VM lowering — the warm-restage path.
    ///
    /// The unit must have been built for this session's graph (the
    /// persistent store's content-hash key guarantees it on the cache
    /// path).
    ///
    /// # Errors
    ///
    /// Returns staging errors if the unit's fetch ids don't fit the
    /// graph.
    pub fn install_compiled(&mut self, unit: &crate::artifact::CompiledUnit) -> Result<()> {
        let plan = unit.plan()?;
        self.plans.insert(unit.outputs.clone(), plan);
        Ok(())
    }

    /// Current value of a variable.
    pub fn variable(&self, name: &str) -> Option<&Tensor> {
        self.variables.get(name)
    }

    /// Overwrite a variable (e.g. to reset training state).
    pub fn set_variable(&mut self, name: &str, value: Tensor) {
        self.variables.insert(name.to_string(), value);
    }

    /// Run the graph: feed placeholders, fetch node values as tensors.
    ///
    /// # Errors
    ///
    /// Returns staging errors for invalid fetches and runtime errors from
    /// kernels, annotated with node names/spans. Fetching a non-tensor
    /// value (array/tuple) is an error — use [`Session::run_values`].
    pub fn run(&mut self, feeds: &[(&str, Tensor)], fetches: &[NodeId]) -> Result<Vec<Tensor>> {
        self.run_with_options(feeds, fetches, &RunOptions::default())
    }

    /// [`Session::run`] under explicit limits: a wall-clock deadline, a
    /// global while-iteration cap, and/or a [`crate::run::CancelToken`]
    /// another thread can trigger. Limits are checked at every node
    /// dispatch and loop iteration on both the sequential and parallel
    /// paths; a tripped limit returns a
    /// [`GraphError`](crate::GraphError) whose
    /// `is_cancelled()`/`is_deadline_exceeded()` predicate holds, with
    /// [`Session::stats`] still reflecting the work done up to that
    /// point.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::run`], plus cancellation and
    /// deadline expiry.
    pub fn run_with_options(
        &mut self,
        feeds: &[(&str, Tensor)],
        fetches: &[NodeId],
        options: &RunOptions,
    ) -> Result<Vec<Tensor>> {
        self.run_values_with_options(feeds, fetches, options)?
            .into_iter()
            .map(|v| v.as_tensor().cloned())
            .collect()
    }

    /// Like [`Session::run`] but returns structured [`GValue`]s.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::run`].
    pub fn run_values(
        &mut self,
        feeds: &[(&str, Tensor)],
        fetches: &[NodeId],
    ) -> Result<Vec<GValue>> {
        self.run_values_with_options(feeds, fetches, &RunOptions::default())
    }

    /// [`Session::run_with_options`] returning structured [`GValue`]s.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::run_with_options`].
    pub fn run_values_with_options(
        &mut self,
        feeds: &[(&str, Tensor)],
        fetches: &[NodeId],
        options: &RunOptions,
    ) -> Result<Vec<GValue>> {
        let key = fetches.to_vec();
        if self.plans.contains_key(&key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            obs::count("session", "plan_cache_hit", 1);
        } else {
            let t0 = std::time::Instant::now();
            let plan = Plan::compile(&self.graph, fetches)?;
            let build_ns = t0.elapsed().as_nanos() as u64;
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            *self
                .stats
                .build_ns
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .entry(key.clone())
                .or_insert(0) += build_ns;
            if obs::enabled() {
                obs::count("session", "plan_cache_miss", 1);
                obs::observe("session", "plan_build_ns", build_ns);
            }
            self.plans.insert(key.clone(), plan);
        }
        let plan = &self.plans[&key];
        let feed_map: HashMap<String, Tensor> = feeds
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let mut env = ExecEnv {
            feeds: &feed_map,
            variables: &mut self.variables,
        };
        // the run-level span closes on every exit path (drop guard), so
        // Chrome traces of failed runs stay well-formed
        let _run_span = obs::span("session", "run");
        let threads = resolve_threads(self.threads);
        let mut ctx = RunCtx::from_options(&options.clone().resolved());
        // reporting: turn on the process-wide meters for the duration of
        // the run and snapshot them on both sides
        let before = if self.reporting {
            ctx.collector = Some(report::Collector::new(self.graph.nodes.len()));
            autograph_tensor::mem::track_begin();
            par::meter_begin();
            autograph_tensor::mem::reset_peak();
            Some((autograph_tensor::mem::snapshot(), par::pool_snapshot()))
        } else {
            None
        };
        let t0 = std::time::Instant::now();
        let result = match resolve_exec_mode(self.exec_mode) {
            ExecMode::Vm => plan.run_vm_ctx(&self.graph, &mut env, fetches, threads, &ctx),
            ExecMode::Interp => plan.run_threads_ctx(&self.graph, &mut env, fetches, threads, &ctx),
        };
        // fold progress into the session counters on success AND failure:
        // stats after a failed run reflect the work done before the error
        self.stats.nodes_executed.fetch_add(
            ctx.nodes_executed.load(Ordering::Relaxed),
            Ordering::Relaxed,
        );
        self.stats
            .while_iters
            .fetch_add(ctx.while_iters.load(Ordering::Relaxed), Ordering::Relaxed);
        if let (Some((mem0, pool0)), Some(collector)) = (before, ctx.collector.as_ref()) {
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let mem1 = autograph_tensor::mem::snapshot();
            let pool1 = par::pool_snapshot();
            par::meter_end();
            autograph_tensor::mem::track_end();
            let run_report = report::build(report::ReportInputs {
                graph: &self.graph,
                order: plan.order(),
                collector,
                wall_ns,
                threads,
                succeeded: result.is_ok(),
                error: result.as_ref().err().map(|e| e.to_string()),
                nodes_executed: ctx.nodes_executed.load(Ordering::Relaxed),
                while_iters: ctx.while_iters.load(Ordering::Relaxed),
                mem_before: mem0,
                mem_after: mem1,
                pool_before: pool0,
                pool_after: pool1,
            });
            if obs::enabled() {
                obs::gauge("mem", "run_peak_bytes", run_report.mem.peak_bytes);
                obs::gauge("mem", "run_live_bytes", run_report.mem.live_bytes_end);
                obs::gauge("mem", "run_allocated_bytes", run_report.mem.allocated_bytes);
                obs::gauge(
                    "sched",
                    "utilization_permille",
                    (run_report.sched.utilization * 1000.0).round() as u64,
                );
                obs::gauge("sched", "queue_depth_max", run_report.sched.queue_depth_max);
                for w in &run_report.sched.workers {
                    obs::gauge_dyn("sched", || format!("busy_ns[{}]", w.label), w.busy_ns);
                }
            }
            self.stats.fold_node_costs(&run_report.node_costs);
            self.last_report = Some(run_report);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn run_with_feeds() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let y = b.placeholder("y");
        let s = b.add_op(x, y);
        let mut sess = Session::new(b.finish());
        let out = sess
            .run(
                &[
                    ("x", Tensor::scalar_f32(2.0)),
                    ("y", Tensor::scalar_f32(5.0)),
                ],
                &[s],
            )
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 7.0);
    }

    #[test]
    fn variables_persist_across_runs() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(0.0));
        let one = b.scalar(1.0);
        let inc = b.add_op(w, one);
        let train = b.assign("w", inc);
        let read = b.variable("w", Tensor::scalar_f32(0.0));
        let mut sess = Session::new(b.finish());
        for _ in 0..5 {
            sess.run(&[], &[train]).unwrap();
        }
        let out = sess.run(&[], &[read]).unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 5.0);
        assert_eq!(sess.variable("w").unwrap().scalar_value_f32().unwrap(), 5.0);
    }

    #[test]
    fn plan_cached_per_fetch_set() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        let s = b.add_op(a, c);
        let m = b.mul(a, c);
        let mut sess = Session::new(b.finish());
        sess.run(&[], &[s]).unwrap();
        sess.run(&[], &[s]).unwrap();
        sess.run(&[], &[m]).unwrap();
        assert_eq!(sess.plans.len(), 2);
    }

    #[test]
    fn stats_count_hits_and_misses_per_fetch_set() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        let s = b.add_op(a, c);
        let mut sess = Session::new(b.finish());
        // same fetch set twice: one miss (compile), then one hit
        sess.run(&[], &[s]).unwrap();
        assert_eq!(sess.stats().plan_cache_misses, 1);
        assert_eq!(sess.stats().plan_cache_hits, 0);
        sess.run(&[], &[s]).unwrap();
        assert_eq!(sess.stats().plan_cache_misses, 1);
        assert_eq!(sess.stats().plan_cache_hits, 1);
        // build time recorded for exactly the one compiled fetch set
        assert_eq!(sess.stats().plan_build_ns.len(), 1);
        assert!(sess.stats().plan_build_ns.contains_key(&vec![s]));
        assert_eq!(
            sess.stats().total_build_ns(),
            sess.stats().plan_build_ns[&vec![s]]
        );
    }

    #[test]
    fn node_ewma_seeds_then_blends_at_one_eighth() {
        use autograph_pylang::Span;
        let shared = SessionStatsShared::default();
        let cost = |self_ns| NodeCost {
            node: 0,
            name: "mul_0".to_string(),
            op: "Mul",
            span: Span::new(1, 1),
            self_ns,
            alloc_bytes: 0,
            evals: 1,
        };
        // first sample seeds the estimate directly
        shared.fold_node_costs(&[cost(800)]);
        let e = shared.node_self_ewma()[&0].clone();
        assert_eq!(e.ewma_ns, 800);
        assert_eq!(e.samples, 1);
        // second sample blends at α = 1/8: 800 − 100 + 0 = 700
        shared.fold_node_costs(&[cost(0)]);
        let e = shared.node_self_ewma()[&0].clone();
        assert_eq!(e.ewma_ns, 700);
        assert_eq!(e.samples, 2);
        // a third sample keeps moving toward the new level
        shared.fold_node_costs(&[cost(0)]);
        let e = shared.node_self_ewma()[&0].clone();
        assert_eq!(e.ewma_ns, 613); // 700 − 87
        assert_eq!(e.name, "mul_0");
        assert_eq!(e.op, "Mul");
    }

    #[test]
    fn reported_runs_accumulate_node_self_time_ewmas() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let two = b.scalar(2.0);
        let y = b.mul(x, two);
        let mut sess = Session::new(b.finish());
        // unreported runs leave the estimate table empty
        sess.run(&[("x", Tensor::scalar_f32(1.0))], &[y]).unwrap();
        assert!(sess.stats().node_self_ewma.is_empty());
        sess.set_reporting(true);
        sess.run(&[("x", Tensor::scalar_f32(1.0))], &[y]).unwrap();
        sess.run(&[("x", Tensor::scalar_f32(1.0))], &[y]).unwrap();
        let stats = sess.stats();
        assert!(!stats.node_self_ewma.is_empty());
        let report = sess.last_report().unwrap();
        for c in &report.node_costs {
            let e = &stats.node_self_ewma[&c.node];
            assert_eq!(e.name, c.name);
            assert_eq!(e.samples, 2, "one sample per reported run");
        }
        // the live handle exposes the same table for concurrent readers
        assert_eq!(sess.stats_handle().node_self_ewma(), stats.node_self_ewma);
    }

    #[test]
    fn stats_readable_concurrently_with_runs() {
        // the satellite fix: stats must be safely observable from another
        // thread while the session executes
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let two = b.scalar(2.0);
        let y = b.mul(x, two);
        let mut sess = Session::new(b.finish());
        let handle = sess.stats_handle();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let watcher = std::thread::spawn(move || {
            let mut last = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                let s = handle.snapshot();
                let total = s.plan_cache_hits + s.plan_cache_misses;
                assert!(total >= last, "counters must be monotonic");
                last = total;
                std::thread::yield_now();
            }
            last
        });
        for _ in 0..200 {
            sess.run(&[("x", Tensor::scalar_f32(3.0))], &[y]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let observed = watcher.join().unwrap();
        assert!(observed <= 200);
        assert_eq!(sess.stats().plan_cache_misses, 1);
        assert_eq!(sess.stats().plan_cache_hits, 199);
    }

    #[test]
    fn explicit_threads_override_resolution() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let two = b.scalar(2.0);
        let y = b.mul(x, two);
        let mut sess = Session::new(b.finish());
        sess.set_threads(4);
        assert_eq!(sess.effective_threads(), 4);
        let out = sess.run(&[("x", Tensor::scalar_f32(21.0))], &[y]).unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 42.0);
        sess.set_threads(1);
        assert_eq!(sess.effective_threads(), 1);
    }

    /// A staged `while True: i += 1` with no max_iters — only run limits
    /// can stop it.
    fn infinite_loop_graph() -> (Graph, NodeId) {
        use crate::builder::SubGraphBuilder;
        use crate::ir::OpKind;
        let mut b = GraphBuilder::new();
        let i0 = b.scalar(0.0);
        let (mut cb, _cp) = SubGraphBuilder::new(1);
        let t = cb.b.constant(Tensor::scalar_bool(true));
        let cond_g = cb.finish(vec![t]);
        let (mut bb, bp) = SubGraphBuilder::new(1);
        let one = bb.b.scalar(1.0);
        let i1 = bb.b.add_op(bp[0], one);
        let body_g = bb.finish(vec![i1]);
        let w = b.add(
            OpKind::While {
                cond_g,
                body_g,
                max_iters: None,
            },
            vec![i0],
        );
        (b.finish(), w)
    }

    #[test]
    fn deadline_kills_infinite_loop_on_both_paths() {
        use crate::run::RunOptions;
        for threads in [1usize, 4] {
            let (g, w) = infinite_loop_graph();
            let mut sess = Session::new(g);
            sess.set_threads(threads);
            let opts = RunOptions::default().with_deadline(std::time::Duration::from_millis(50));
            let t0 = std::time::Instant::now();
            let err = sess.run_with_options(&[], &[w], &opts).unwrap_err();
            assert!(err.is_deadline_exceeded(), "threads={threads}: {err}");
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(10),
                "terminated promptly"
            );
            // partial progress is visible after the failed run
            let stats = sess.stats();
            assert!(stats.while_iters > 0, "threads={threads}");
            assert!(stats.nodes_executed > 0, "threads={threads}");
        }
    }

    #[test]
    fn cancel_token_kills_infinite_loop_on_both_paths() {
        use crate::run::{CancelToken, RunOptions};
        for threads in [1usize, 4] {
            let (g, w) = infinite_loop_graph();
            let mut sess = Session::new(g);
            sess.set_threads(threads);
            let token = CancelToken::new();
            let remote = token.clone();
            let canceller = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                remote.cancel();
            });
            let err = sess
                .run_with_options(&[], &[w], &RunOptions::default().with_cancel(token))
                .unwrap_err();
            canceller.join().unwrap();
            assert!(err.is_cancelled(), "threads={threads}: {err}");
        }
    }

    #[test]
    fn max_while_iters_option_caps_unbounded_loop() {
        use crate::run::RunOptions;
        let (g, w) = infinite_loop_graph();
        let mut sess = Session::new(g);
        sess.set_threads(1);
        let err = sess
            .run_with_options(&[], &[w], &RunOptions::default().with_max_while_iters(10))
            .unwrap_err();
        assert!(err.to_string().contains("max_iters=10"), "{err}");
        assert_eq!(sess.stats().while_iters, 10);
    }

    #[test]
    fn stats_after_failed_run_reflect_partial_work() {
        // regression: counters must cover nodes executed BEFORE the
        // failing node, not reset to zero on error
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        let ok = b.add_op(a, c);
        let bad = b.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let fail = b.matmul(bad, bad); // rank-1 matmul fails at runtime
        let grp = b.add(crate::ir::OpKind::Group, vec![ok, fail]);
        let mut sess = Session::new(b.finish());
        sess.set_threads(1);
        let err = sess.run(&[], &[grp]).unwrap_err();
        assert!(err.node.is_some(), "{err}");
        let stats = sess.stats();
        assert!(
            stats.nodes_executed >= 3,
            "work before the failure is counted: {stats:?}"
        );
        // a successful follow-up run keeps accumulating
        let before = stats.nodes_executed;
        sess.run(&[], &[ok]).unwrap();
        assert!(sess.stats().nodes_executed > before);
    }

    #[test]
    fn set_variable_resets() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(3.0));
        let mut sess = Session::new(b.finish());
        sess.set_variable("w", Tensor::scalar_f32(9.0));
        let out = sess.run(&[], &[w]).unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 9.0);
    }
}
