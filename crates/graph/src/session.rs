//! The `tf.Session` analog: owns a graph, its variable state and a cache
//! of compiled execution plans.

use crate::exec::{ExecEnv, Plan};
use crate::ir::{GValue, Graph, NodeId};
use crate::Result;
use autograph_obs as obs;
use autograph_tensor::Tensor;
use std::collections::HashMap;

/// Plan-cache accounting for one [`Session`], exposed via
/// [`Session::stats`]. A miss means a fetch set was compiled; a hit means
/// an existing plan was reused. Build time is tracked per fetch set.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Runs that reused a cached plan.
    pub plan_cache_hits: u64,
    /// Runs that compiled (and cached) a new plan.
    pub plan_cache_misses: u64,
    /// Wall time spent compiling each fetch set's plan, in nanoseconds.
    pub plan_build_ns: HashMap<Vec<NodeId>, u64>,
}

impl SessionStats {
    /// Total nanoseconds spent compiling plans across all fetch sets.
    pub fn total_build_ns(&self) -> u64 {
        self.plan_build_ns.values().sum()
    }
}

/// Executes fetches against a graph, with persistent variables and
/// per-fetch-set plan caching. One `run` call per training step is the
/// "Model In Graph, Loop In Python" configuration of Table 2; a single
/// `run` of a `While` node is "Model And Loop In Graph".
#[derive(Debug)]
pub struct Session {
    graph: Graph,
    variables: HashMap<String, Tensor>,
    plans: HashMap<Vec<NodeId>, Plan>,
    stats: SessionStats,
}

impl Session {
    /// Create a session; variables start at their registered initial
    /// values.
    pub fn new(graph: Graph) -> Session {
        let variables = graph.variables.iter().cloned().collect();
        Session {
            graph,
            variables,
            plans: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// The graph this session executes.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Plan-cache statistics accumulated over this session's runs.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Current value of a variable.
    pub fn variable(&self, name: &str) -> Option<&Tensor> {
        self.variables.get(name)
    }

    /// Overwrite a variable (e.g. to reset training state).
    pub fn set_variable(&mut self, name: &str, value: Tensor) {
        self.variables.insert(name.to_string(), value);
    }

    /// Run the graph: feed placeholders, fetch node values as tensors.
    ///
    /// # Errors
    ///
    /// Returns staging errors for invalid fetches and runtime errors from
    /// kernels, annotated with node names/spans. Fetching a non-tensor
    /// value (array/tuple) is an error — use [`Session::run_values`].
    pub fn run(&mut self, feeds: &[(&str, Tensor)], fetches: &[NodeId]) -> Result<Vec<Tensor>> {
        self.run_values(feeds, fetches)?
            .into_iter()
            .map(|v| v.as_tensor().cloned())
            .collect()
    }

    /// Like [`Session::run`] but returns structured [`GValue`]s.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Session::run`].
    pub fn run_values(
        &mut self,
        feeds: &[(&str, Tensor)],
        fetches: &[NodeId],
    ) -> Result<Vec<GValue>> {
        let key = fetches.to_vec();
        if self.plans.contains_key(&key) {
            self.stats.plan_cache_hits += 1;
            obs::count("session", "plan_cache_hit", 1);
        } else {
            let t0 = std::time::Instant::now();
            let plan = Plan::compile(&self.graph, fetches)?;
            let build_ns = t0.elapsed().as_nanos() as u64;
            self.stats.plan_cache_misses += 1;
            *self.stats.plan_build_ns.entry(key.clone()).or_insert(0) += build_ns;
            if obs::enabled() {
                obs::count("session", "plan_cache_miss", 1);
                obs::observe("session", "plan_build_ns", build_ns);
            }
            self.plans.insert(key.clone(), plan);
        }
        let plan = &self.plans[&key];
        let feed_map: HashMap<String, Tensor> = feeds
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        let mut env = ExecEnv {
            feeds: &feed_map,
            variables: &mut self.variables,
        };
        plan.run(&self.graph, &mut env, fetches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn run_with_feeds() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let y = b.placeholder("y");
        let s = b.add_op(x, y);
        let mut sess = Session::new(b.finish());
        let out = sess
            .run(
                &[
                    ("x", Tensor::scalar_f32(2.0)),
                    ("y", Tensor::scalar_f32(5.0)),
                ],
                &[s],
            )
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 7.0);
    }

    #[test]
    fn variables_persist_across_runs() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(0.0));
        let one = b.scalar(1.0);
        let inc = b.add_op(w, one);
        let train = b.assign("w", inc);
        let read = b.variable("w", Tensor::scalar_f32(0.0));
        let mut sess = Session::new(b.finish());
        for _ in 0..5 {
            sess.run(&[], &[train]).unwrap();
        }
        let out = sess.run(&[], &[read]).unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 5.0);
        assert_eq!(sess.variable("w").unwrap().scalar_value_f32().unwrap(), 5.0);
    }

    #[test]
    fn plan_cached_per_fetch_set() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        let s = b.add_op(a, c);
        let m = b.mul(a, c);
        let mut sess = Session::new(b.finish());
        sess.run(&[], &[s]).unwrap();
        sess.run(&[], &[s]).unwrap();
        sess.run(&[], &[m]).unwrap();
        assert_eq!(sess.plans.len(), 2);
    }

    #[test]
    fn stats_count_hits_and_misses_per_fetch_set() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        let s = b.add_op(a, c);
        let mut sess = Session::new(b.finish());
        // same fetch set twice: one miss (compile), then one hit
        sess.run(&[], &[s]).unwrap();
        assert_eq!(sess.stats().plan_cache_misses, 1);
        assert_eq!(sess.stats().plan_cache_hits, 0);
        sess.run(&[], &[s]).unwrap();
        assert_eq!(sess.stats().plan_cache_misses, 1);
        assert_eq!(sess.stats().plan_cache_hits, 1);
        // build time recorded for exactly the one compiled fetch set
        assert_eq!(sess.stats().plan_build_ns.len(), 1);
        assert!(sess.stats().plan_build_ns.contains_key(&vec![s]));
        assert_eq!(
            sess.stats().total_build_ns(),
            sess.stats().plan_build_ns[&vec![s]]
        );
    }

    #[test]
    fn set_variable_resets() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(3.0));
        let mut sess = Session::new(b.finish());
        sess.set_variable("w", Tensor::scalar_f32(9.0));
        let out = sess.run(&[], &[w]).unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 9.0);
    }
}
