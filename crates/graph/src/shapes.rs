//! Static shape inference and staging-time validation.
//!
//! Appendix B classifies shape errors as *staging errors* that are "only
//! detectable at runtime" and notes better detection as future work — this
//! module implements that extension with TensorFlow-style **partial
//! shapes**: each dimension is independently known or unknown, so
//! constraints propagate through placeholders (e.g. `matmul(x, w)` with
//! known `w` yields `[?, cols(w)]`). Provable inconsistencies are reported
//! **before** execution, attributed to the staged node's original source
//! span.

use crate::ir::{Graph, OpKind};
use crate::{GraphError, Result};

/// One dimension: `Some(n)` known, `None` unknown.
pub type Dim = Option<usize>;

/// A partial shape: `None` = rank unknown; `Some(dims)` = rank known,
/// individual dims possibly unknown.
pub type PShape = Option<Vec<Dim>>;

/// Fully-known partial shape from concrete dims.
fn known(dims: &[usize]) -> PShape {
    Some(dims.iter().map(|&d| Some(d)).collect())
}

/// Broadcast two partial shapes; `Err(())` when provably incompatible.
fn broadcast(a: &[Dim], b: &[Dim]) -> std::result::Result<Vec<Dim>, ()> {
    let rank = a.len().max(b.len());
    let mut out = Vec::with_capacity(rank);
    for i in 0..rank {
        let x = if i < rank - a.len() {
            Some(1)
        } else {
            a[i - (rank - a.len())]
        };
        let y = if i < rank - b.len() {
            Some(1)
        } else {
            b[i - (rank - b.len())]
        };
        out.push(match (x, y) {
            (Some(1), d) | (d, Some(1)) => d,
            (Some(m), Some(n)) if m == n => Some(m),
            (Some(_), Some(_)) => return Err(()),
            (Some(m), None) | (None, Some(m)) => {
                // the unknown side may be 1 or m — result unknown unless m == 1
                if m == 1 {
                    None
                } else {
                    Some(m) // other side must be m or 1; result is m either way
                }
            }
            (None, None) => None,
        });
    }
    Ok(out)
}

/// Infer per-node partial output shapes (tensor-valued nodes only; arrays,
/// tuples and control flow yield `None`).
pub fn infer(graph: &Graph) -> Vec<PShape> {
    let mut shapes: Vec<PShape> = Vec::with_capacity(graph.nodes.len());
    for node in &graph.nodes {
        let get = |i: usize| -> PShape { shapes[node.inputs[i]].clone() };
        let s: PShape = match &node.op {
            OpKind::Const(t) => known(t.shape()),
            OpKind::Variable { name } => graph
                .variables
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, t)| known(t.shape())),
            OpKind::Add
            | OpKind::Sub
            | OpKind::Mul
            | OpKind::Div
            | OpKind::FloorDiv
            | OpKind::Mod
            | OpKind::Pow
            | OpKind::Maximum
            | OpKind::Minimum
            | OpKind::Less
            | OpKind::LessEqual
            | OpKind::Greater
            | OpKind::GreaterEqual
            | OpKind::Equal
            | OpKind::NotEqual
            | OpKind::LogicalAnd
            | OpKind::LogicalOr => match (get(0), get(1)) {
                (Some(a), Some(b)) => broadcast(&a, &b).ok(),
                _ => None,
            },
            OpKind::Neg
            | OpKind::Abs
            | OpKind::Sqrt
            | OpKind::Exp
            | OpKind::Log
            | OpKind::Square
            | OpKind::Tanh
            | OpKind::Sigmoid
            | OpKind::Relu
            | OpKind::Softmax
            | OpKind::LogSoftmax
            | OpKind::LogicalNot
            | OpKind::Cast(_)
            | OpKind::Identity
            | OpKind::StopGradient
            | OpKind::Print(_)
            | OpKind::AssertOp(_)
            | OpKind::SetItemAxis0 => get(0),
            OpKind::MatMul => match (get(0), get(1)) {
                (Some(a), Some(b)) if a.len() == 2 && b.len() == 2 => Some(vec![a[0], b[1]]),
                // one side unknown: rank-2 matmul still pins the other axis
                (Some(a), None) if a.len() == 2 => Some(vec![a[0], None]),
                (None, Some(b)) if b.len() == 2 => Some(vec![None, b[1]]),
                _ => None,
            },
            OpKind::Transpose(perm) => get(0).and_then(|s| {
                if perm.len() == s.len() {
                    Some(perm.iter().map(|&p| s[p]).collect())
                } else {
                    None
                }
            }),
            OpKind::Reshape(dims) => {
                if dims.contains(&usize::MAX) {
                    get(0).map(|s| {
                        let total: Option<usize> = s
                            .iter()
                            .copied()
                            .collect::<Option<Vec<_>>>()
                            .map(|v| v.iter().product());
                        let knowns: usize = dims.iter().filter(|&&d| d != usize::MAX).product();
                        match total {
                            Some(total) if knowns > 0 && total % knowns == 0 => dims
                                .iter()
                                .map(|&d| {
                                    if d == usize::MAX {
                                        Some(total / knowns)
                                    } else {
                                        Some(d)
                                    }
                                })
                                .collect(),
                            _ => dims
                                .iter()
                                .map(|&d| if d == usize::MAX { None } else { Some(d) })
                                .collect(),
                        }
                    })
                } else {
                    known(dims)
                }
            }
            OpKind::ExpandDims(ax) => get(0).and_then(|mut s| {
                let rank = s.len() as isize;
                let a = if *ax < 0 { *ax + rank + 1 } else { *ax };
                if a < 0 || a > rank {
                    None
                } else {
                    s.insert(a as usize, Some(1));
                    Some(s)
                }
            }),
            OpKind::Squeeze(None) => get(0).and_then(|s| {
                // unknown dims might be 1: result rank unknown unless all known
                if s.iter().all(Option::is_some) {
                    Some(s.into_iter().filter(|d| *d != Some(1)).collect())
                } else {
                    None
                }
            }),
            OpKind::Squeeze(Some(ax)) => get(0).and_then(|mut s| {
                let rank = s.len() as isize;
                let a = if *ax < 0 { *ax + rank } else { *ax };
                if a < 0 || a >= rank {
                    None
                } else {
                    s.remove(a as usize);
                    Some(s)
                }
            }),
            OpKind::ReduceSum(ax)
            | OpKind::ReduceMean(ax)
            | OpKind::ReduceMax(ax)
            | OpKind::ReduceMin(ax)
            | OpKind::ReduceAll(ax)
            | OpKind::ReduceAny(ax) => match ax {
                None => Some(vec![]),
                Some(a) => get(0).and_then(|mut s| {
                    let rank = s.len() as isize;
                    let a = if *a < 0 { *a + rank } else { *a };
                    if a < 0 || a >= rank {
                        None
                    } else {
                        s.remove(a as usize);
                        Some(s)
                    }
                }),
            },
            OpKind::ArgMax(a) => get(0).and_then(|mut s| {
                let rank = s.len() as isize;
                let a = if *a < 0 { *a + rank } else { *a };
                if a < 0 || a >= rank {
                    None
                } else {
                    s.remove(a as usize);
                    Some(s)
                }
            }),
            OpKind::Shape => get(0).map(|s| vec![Some(s.len())]),
            OpKind::Size | OpKind::DimSize(_) => Some(vec![]),
            OpKind::IndexAxis0 => get(0).and_then(|s| {
                if s.is_empty() {
                    None
                } else {
                    Some(s[1..].to_vec())
                }
            }),
            OpKind::OneHot(depth) => get(0).map(|mut s| {
                s.push(Some(*depth));
                s
            }),
            OpKind::TopKValues(k) | OpKind::TopKIndices(k) => get(0).and_then(|mut s| {
                if s.is_empty() {
                    None
                } else {
                    *s.last_mut().expect("nonempty") = Some(*k);
                    Some(s)
                }
            }),
            OpKind::Gather => match (get(0), get(1)) {
                (Some(x), Some(idx)) if !x.is_empty() => {
                    let mut out = idx;
                    out.extend_from_slice(&x[1..]);
                    Some(out)
                }
                _ => None,
            },
            OpKind::StackOp => {
                let all: Option<Vec<Vec<Dim>>> = (0..node.inputs.len()).map(get).collect();
                all.and_then(|shapes| {
                    if shapes.windows(2).all(|w| w[0].len() == w[1].len()) && !shapes.is_empty() {
                        let mut out = vec![Some(shapes.len())];
                        out.extend_from_slice(&shapes[0]);
                        Some(out)
                    } else {
                        None
                    }
                })
            }
            _ => None,
        };
        shapes.push(s);
    }
    shapes
}

/// Render a partial shape for error messages: `[?, 4]`.
fn render(s: &[Dim]) -> String {
    let parts: Vec<String> = s
        .iter()
        .map(|d| match d {
            Some(n) => n.to_string(),
            None => "?".to_string(),
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

/// Validate statically-provable shape constraints, reporting staging
/// errors at the offending node (with its original source span).
///
/// # Errors
///
/// Returns [`GraphError`] (staging phase) for provable mismatches:
/// matmul inner dimensions, broadcast incompatibilities, transpose rank,
/// `select` branch shapes.
pub fn validate(graph: &Graph) -> Result<()> {
    let shapes = infer(graph);
    for node in graph.nodes.iter() {
        let get = |i: usize| -> PShape { shapes[node.inputs[i]].clone() };
        let fail = |msg: String| -> Result<()> {
            Err(GraphError::staging(msg)
                .at_node(node.name.clone())
                .at_span(node.span))
        };
        match &node.op {
            OpKind::MatMul => {
                if let (Some(a), Some(b)) = (get(0), get(1)) {
                    if a.len() == 2 && b.len() == 2 {
                        if let (Some(k), Some(j)) = (a[1], b[0]) {
                            if k != j {
                                fail(format!(
                                    "matmul inner dimensions disagree: {} x {}",
                                    render(&a),
                                    render(&b)
                                ))?;
                            }
                        }
                    }
                }
            }
            OpKind::Add | OpKind::Sub | OpKind::Mul | OpKind::Div => {
                if let (Some(a), Some(b)) = (get(0), get(1)) {
                    if broadcast(&a, &b).is_err() {
                        fail(format!(
                            "cannot broadcast {} with {}",
                            render(&a),
                            render(&b)
                        ))?;
                    }
                }
            }
            OpKind::Transpose(perm) => {
                if let Some(s) = get(0) {
                    if perm.len() != s.len() {
                        fail(format!(
                            "transpose permutation {perm:?} does not match rank {}",
                            s.len()
                        ))?;
                    }
                }
            }
            OpKind::Select => {
                if let (Some(a), Some(b)) = (get(1), get(2)) {
                    if broadcast(&a, &b).is_err() {
                        fail(format!(
                            "select branches have incompatible shapes {} / {}",
                            render(&a),
                            render(&b)
                        ))?;
                    }
                }
            }
            // recurse into subgraphs (their params are unknown, so only
            // internally-provable errors surface)
            OpKind::Cond { then_g, else_g } => {
                validate(&then_g.graph)?;
                validate(&else_g.graph)?;
            }
            OpKind::While { cond_g, body_g, .. } => {
                validate(&cond_g.graph)?;
                validate(&body_g.graph)?;
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use autograph_tensor::{DType, Tensor};

    #[test]
    fn infers_through_arithmetic_and_matmul() {
        let mut b = GraphBuilder::new();
        let a = b.constant(Tensor::zeros(DType::F32, &[2, 3]));
        let w = b.constant(Tensor::zeros(DType::F32, &[3, 4]));
        let m = b.matmul(a, w);
        let bias = b.constant(Tensor::zeros(DType::F32, &[4]));
        let out = b.add_op(m, bias);
        let t = b.tanh(out);
        let g = b.finish();
        let shapes = infer(&g);
        assert_eq!(shapes[m], known(&[2, 4]));
        assert_eq!(shapes[out], known(&[2, 4]));
        assert_eq!(shapes[t], known(&[2, 4]));
    }

    #[test]
    fn partial_shapes_flow_through_placeholders() {
        // matmul(x_unknown, w[3,4]) -> [?, 4]; then matmul with [5, 2]
        // is provably wrong even though x is a placeholder
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let w1 = b.constant(Tensor::zeros(DType::F32, &[3, 4]));
        let a = b.matmul(x, w1);
        let g = b.finish();
        let shapes = infer(&g);
        assert_eq!(shapes[x], None);
        assert_eq!(shapes[a], Some(vec![None, Some(4)]));
    }

    #[test]
    fn variable_shapes_known() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::zeros(DType::F32, &[5, 2]));
        let g = b.finish();
        assert_eq!(infer(&g)[w], known(&[5, 2]));
    }

    #[test]
    fn reductions_indexing_and_stack() {
        let mut b = GraphBuilder::new();
        let m = b.constant(Tensor::zeros(DType::F32, &[4, 6]));
        let s0 = b.add(OpKind::ReduceSum(Some(0)), vec![m]);
        let full = b.add(OpKind::ReduceMean(None), vec![m]);
        let i = b.constant(Tensor::scalar_i64(1));
        let row = b.add(OpKind::IndexAxis0, vec![m, i]);
        let st = b.add(OpKind::StackOp, vec![row, row]);
        let oh = {
            let idx = b.constant(Tensor::from_vec_i64(vec![0, 1], &[2]).unwrap());
            b.add(OpKind::OneHot(7), vec![idx])
        };
        let g = b.finish();
        let shapes = infer(&g);
        assert_eq!(shapes[s0], known(&[6]));
        assert_eq!(shapes[full], known(&[]));
        assert_eq!(shapes[row], known(&[6]));
        assert_eq!(shapes[st], known(&[2, 6]));
        assert_eq!(shapes[oh], known(&[2, 7]));
    }

    #[test]
    fn reshape_with_inferred_dim() {
        let mut b = GraphBuilder::new();
        let m = b.constant(Tensor::zeros(DType::F32, &[3, 4]));
        let r = b.add(OpKind::Reshape(vec![2, usize::MAX]), vec![m]);
        let g = b.finish();
        assert_eq!(infer(&g)[r], known(&[2, 6]));
        // unknown total -> unknown inferred dim, known static dims kept
        let mut b2 = GraphBuilder::new();
        let x = b2.placeholder("x");
        let r2 = b2.add(OpKind::Reshape(vec![7, usize::MAX]), vec![x]);
        let g2 = b2.finish();
        assert_eq!(infer(&g2)[r2], None); // input rank unknown
    }

    #[test]
    fn validate_catches_matmul_mismatch_before_execution() {
        let mut b = GraphBuilder::new();
        b.set_span(autograph_pylang::Span::new(7, 5));
        let a = b.constant(Tensor::zeros(DType::F32, &[2, 3]));
        let w = b.constant(Tensor::zeros(DType::F32, &[4, 2]));
        let _m = b.matmul(a, w);
        let g = b.finish();
        let err = validate(&g).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("staging error"), "{msg}");
        assert!(msg.contains("inner dimensions"), "{msg}");
        assert!(msg.contains("7:5"), "original span attached: {msg}");
    }

    #[test]
    fn validate_catches_mismatch_through_placeholder() {
        // the key partial-shape payoff: [?, 4] x [5, 2] is provably wrong
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let w1 = b.constant(Tensor::zeros(DType::F32, &[3, 4]));
        let a = b.matmul(x, w1);
        let w2 = b.constant(Tensor::zeros(DType::F32, &[5, 2]));
        let _bad = b.matmul(a, w2);
        let g = b.finish();
        let msg = validate(&g).unwrap_err().to_string();
        assert!(msg.contains("[?, 4]"), "{msg}");
        assert!(msg.contains("[5, 2]"), "{msg}");
    }

    #[test]
    fn validate_catches_broadcast_mismatch() {
        let mut b = GraphBuilder::new();
        let a = b.constant(Tensor::zeros(DType::F32, &[2, 3]));
        let c = b.constant(Tensor::zeros(DType::F32, &[4]));
        let _s = b.add_op(a, c);
        let g = b.finish();
        assert!(validate(&g).unwrap_err().to_string().contains("broadcast"));
    }

    #[test]
    fn unknown_dims_never_false_positive() {
        // [?, 4] broadcast [2, 1] is satisfiable -> no error
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let w = b.constant(Tensor::zeros(DType::F32, &[3, 4]));
        let a = b.matmul(x, w); // [?, 4]
        let c = b.constant(Tensor::zeros(DType::F32, &[2, 1]));
        let _s = b.add_op(a, c);
        let g = b.finish();
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn validate_recurses_into_cond_branches() {
        use crate::builder::SubGraphBuilder;
        let mut b = GraphBuilder::new();
        let pred = b.constant(Tensor::scalar_bool(true));
        let then_g = {
            let (mut sb, _p) = SubGraphBuilder::new(0);
            let x = sb.b.constant(Tensor::zeros(DType::F32, &[2, 3]));
            let y = sb.b.constant(Tensor::zeros(DType::F32, &[5, 7]));
            let bad = sb.b.matmul(x, y);
            sb.finish(vec![bad])
        };
        let else_g = {
            let (mut sb, _p) = SubGraphBuilder::new(0);
            let z = sb.b.scalar(0.0);
            sb.finish(vec![z])
        };
        let _c = b.cond(pred, vec![], then_g, else_g);
        let g = b.finish();
        assert!(validate(&g).is_err());
    }

    #[test]
    fn partial_broadcast_rules() {
        assert_eq!(
            broadcast(&[Some(2), Some(3)], &[Some(3)]).unwrap(),
            vec![Some(2), Some(3)]
        );
        assert_eq!(
            broadcast(&[None, Some(3)], &[Some(3)]).unwrap(),
            vec![None, Some(3)]
        );
        // unknown vs known-non-1: result takes the known dim
        assert_eq!(broadcast(&[None], &[Some(5)]).unwrap(), vec![Some(5)]);
        // unknown vs 1: stays unknown
        assert_eq!(broadcast(&[None], &[Some(1)]).unwrap(), vec![None]);
        assert!(broadcast(&[Some(2)], &[Some(3)]).is_err());
    }
}
