//! Graph staging and execution errors.
//!
//! Appendix B distinguishes *staging* errors (raised while the graph is
//! constructed) from *runtime* errors (raised when the staged IR executes).
//! Both carry the node name and, when available, the original user-source
//! span that produced the node — the error-rewriting half of the source-map
//! machinery.

use autograph_pylang::Span;
use autograph_tensor::TensorError;
use std::fmt;

/// Which execution phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// While building the graph (invalid argument types/shapes, Appendix B
    /// "staging errors").
    Staging,
    /// While executing the staged IR (Appendix B "runtime errors").
    Runtime,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Staging => f.write_str("staging"),
            Phase::Runtime => f.write_str("graph execution"),
        }
    }
}

/// Classification of a runtime failure beyond its message — what callers
/// branch on to decide recovery (retry, surface, abandon the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorKind {
    /// A kernel/staging failure (the common case).
    #[default]
    Fault,
    /// The run's [`crate::run::CancelToken`] was triggered.
    Cancelled,
    /// The run's deadline (`RunOptions::deadline` /
    /// `AUTOGRAPH_RUN_TIMEOUT_MS`) elapsed.
    DeadlineExceeded,
    /// A kernel panicked and the executor's `catch_unwind` boundary
    /// converted it (the process never aborts).
    Panic,
}

/// An error from graph construction or execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphError {
    /// Which phase failed.
    pub phase: Phase,
    /// Failure classification (cancellation, deadline, panic, or plain
    /// fault).
    pub kind: ErrorKind,
    /// Description of the failure.
    pub message: String,
    /// The name of the graph node involved, when known.
    pub node: Option<String>,
    /// The user-source location that staged the node, when known.
    pub span: Option<Span>,
}

impl GraphError {
    /// A staging-phase error.
    pub fn staging(message: impl Into<String>) -> Self {
        GraphError {
            phase: Phase::Staging,
            kind: ErrorKind::Fault,
            message: message.into(),
            node: None,
            span: None,
        }
    }

    /// A runtime-phase error.
    pub fn runtime(message: impl Into<String>) -> Self {
        GraphError {
            phase: Phase::Runtime,
            kind: ErrorKind::Fault,
            message: message.into(),
            node: None,
            span: None,
        }
    }

    /// A run cancelled through its [`crate::run::CancelToken`].
    pub fn cancelled() -> Self {
        GraphError {
            kind: ErrorKind::Cancelled,
            ..GraphError::runtime("run cancelled")
        }
    }

    /// A run that outlived its deadline.
    pub fn deadline_exceeded(limit: std::time::Duration) -> Self {
        GraphError {
            kind: ErrorKind::DeadlineExceeded,
            ..GraphError::runtime(format!("run deadline exceeded ({limit:?})"))
        }
    }

    /// A caught kernel panic, with the extracted panic message.
    pub fn panic(message: impl Into<String>) -> Self {
        GraphError {
            kind: ErrorKind::Panic,
            ..GraphError::runtime(message)
        }
    }

    /// Whether this is a cancellation.
    pub fn is_cancelled(&self) -> bool {
        self.kind == ErrorKind::Cancelled
    }

    /// Whether this is a deadline expiry.
    pub fn is_deadline_exceeded(&self) -> bool {
        self.kind == ErrorKind::DeadlineExceeded
    }

    /// Attach the offending node's name. The innermost attribution wins:
    /// an error bubbling out of a While/If body keeps the body node that
    /// actually failed, not the enclosing control-flow node.
    pub fn at_node(mut self, node: impl Into<String>) -> Self {
        if self.node.is_none() {
            self.node = Some(node.into());
        }
        self
    }

    /// Attach the user-source span that staged the node. Like
    /// [`GraphError::at_node`], the innermost (first) non-synthetic span is
    /// kept.
    pub fn at_span(mut self, span: Span) -> Self {
        if self.span.is_none() && !span.is_synthetic() {
            self.span = Some(span);
        }
        self
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.phase, self.message)?;
        if let Some(node) = &self.node {
            write!(f, " (node '{node}')")?;
        }
        if let Some(span) = &self.span {
            write!(f, " [from original source {span}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for GraphError {}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::runtime(e.to_string())
    }
}

/// Extract the human-readable message from a caught panic payload
/// (`panic!("...")` yields `&str` or `String`; anything else is opaque).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_node_and_span() {
        let e = GraphError::runtime("division by zero")
            .at_node("div_3")
            .at_span(Span::new(7, 5));
        let s = e.to_string();
        assert!(s.contains("graph execution"));
        assert!(s.contains("div_3"));
        assert!(s.contains("7:5"));
    }

    #[test]
    fn staging_phase_display() {
        assert!(GraphError::staging("bad dtype")
            .to_string()
            .starts_with("staging error"));
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::RankMismatch {
            op: "matmul",
            got: 1,
            expected: "2",
        };
        let ge: GraphError = te.into();
        assert_eq!(ge.phase, Phase::Runtime);
    }

    #[test]
    fn innermost_attribution_wins() {
        // nested frames (While body → While node) each call at_node/at_span;
        // the first — innermost — attribution must survive
        let e = GraphError::runtime("boom")
            .at_node("body/matmul_1")
            .at_span(Span::new(4, 9))
            .at_node("while_4")
            .at_span(Span::new(3, 5));
        assert_eq!(e.node.as_deref(), Some("body/matmul_1"));
        assert_eq!(e.span, Some(Span::new(4, 9)));
        // a synthetic inner span leaves room for the outer frame's real one
        let e = GraphError::runtime("boom")
            .at_span(Span::synthetic())
            .at_span(Span::new(3, 5));
        assert_eq!(e.span, Some(Span::new(3, 5)));
    }

    #[test]
    fn synthetic_span_not_attached() {
        let e = GraphError::runtime("x").at_span(Span::synthetic());
        assert!(e.span.is_none());
    }

    #[test]
    fn kind_predicates() {
        assert!(GraphError::cancelled().is_cancelled());
        assert!(!GraphError::cancelled().is_deadline_exceeded());
        let d = GraphError::deadline_exceeded(std::time::Duration::from_millis(5));
        assert!(d.is_deadline_exceeded());
        assert!(d.to_string().contains("deadline exceeded"));
        assert_eq!(GraphError::runtime("x").kind, ErrorKind::Fault);
        assert_eq!(GraphError::panic("boom").kind, ErrorKind::Panic);
    }

    #[test]
    fn panic_message_extraction() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(p.as_ref()), "owned");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
