//! Graph staging and execution errors.
//!
//! Appendix B distinguishes *staging* errors (raised while the graph is
//! constructed) from *runtime* errors (raised when the staged IR executes).
//! Both carry the node name and, when available, the original user-source
//! span that produced the node — the error-rewriting half of the source-map
//! machinery.

use autograph_pylang::Span;
use autograph_tensor::TensorError;
use std::fmt;

/// Which execution phase produced the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// While building the graph (invalid argument types/shapes, Appendix B
    /// "staging errors").
    Staging,
    /// While executing the staged IR (Appendix B "runtime errors").
    Runtime,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Staging => f.write_str("staging"),
            Phase::Runtime => f.write_str("graph execution"),
        }
    }
}

/// An error from graph construction or execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphError {
    /// Which phase failed.
    pub phase: Phase,
    /// Description of the failure.
    pub message: String,
    /// The name of the graph node involved, when known.
    pub node: Option<String>,
    /// The user-source location that staged the node, when known.
    pub span: Option<Span>,
}

impl GraphError {
    /// A staging-phase error.
    pub fn staging(message: impl Into<String>) -> Self {
        GraphError {
            phase: Phase::Staging,
            message: message.into(),
            node: None,
            span: None,
        }
    }

    /// A runtime-phase error.
    pub fn runtime(message: impl Into<String>) -> Self {
        GraphError {
            phase: Phase::Runtime,
            message: message.into(),
            node: None,
            span: None,
        }
    }

    /// Attach the offending node's name.
    pub fn at_node(mut self, node: impl Into<String>) -> Self {
        self.node = Some(node.into());
        self
    }

    /// Attach the user-source span that staged the node.
    pub fn at_span(mut self, span: Span) -> Self {
        if !span.is_synthetic() {
            self.span = Some(span);
        }
        self
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.phase, self.message)?;
        if let Some(node) = &self.node {
            write!(f, " (node '{node}')")?;
        }
        if let Some(span) = &self.span {
            write!(f, " [from original source {span}]")?;
        }
        Ok(())
    }
}

impl std::error::Error for GraphError {}

impl From<TensorError> for GraphError {
    fn from(e: TensorError) -> Self {
        GraphError::runtime(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_node_and_span() {
        let e = GraphError::runtime("division by zero")
            .at_node("div_3")
            .at_span(Span::new(7, 5));
        let s = e.to_string();
        assert!(s.contains("graph execution"));
        assert!(s.contains("div_3"));
        assert!(s.contains("7:5"));
    }

    #[test]
    fn staging_phase_display() {
        assert!(GraphError::staging("bad dtype")
            .to_string()
            .starts_with("staging error"));
    }

    #[test]
    fn tensor_error_converts() {
        let te = TensorError::RankMismatch {
            op: "matmul",
            got: 1,
            expected: "2",
        };
        let ge: GraphError = te.into();
        assert_eq!(ge.phase, Phase::Runtime);
    }

    #[test]
    fn synthetic_span_not_attached() {
        let e = GraphError::runtime("x").at_span(Span::synthetic());
        assert!(e.span.is_none());
    }
}
