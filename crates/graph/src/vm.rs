//! The bytecode VM: a linear fetch–execute loop over programs lowered by
//! [`crate::compile`].
//!
//! Semantics mirror the interpreter in [`crate::exec`] exactly — same
//! errors (message, node name, innermost-wins span attribution), same
//! fault-injection sites, same observability counters and spans, same
//! `RunCtx` dispatch accounting, same cost collection — so the two tiers
//! are differential-testable for bitwise-identical results. What changes
//! is the cost model:
//!
//! * dispatch is a `match` on a pre-resolved instruction, not a graph
//!   walk through an `Option<GValue>` side table;
//! * subgraph frames are flat register files reused across `While`
//!   iterations;
//! * fused instructions evaluate whole elementwise chains in one loop
//!   over the data (falling back to exact op-by-op dispatch whenever
//!   eligibility — all-f32, broadcast-compatible — does not hold, or
//!   when per-op observability spans were requested);
//! * registers past their last use are recycled through a
//!   [`FusedArena`], so loop-carried temporaries reuse buffers instead
//!   of round-tripping the allocator.
//!
//! Cost attribution through fusion: a fused instruction's measured time
//! is split across its covered source nodes (each with its real span),
//! so `RunReport` node costs and the `autograph-explain` coverage gate
//! see every source line even when its op never ran standalone.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::compile::{CoverArg, CoverOp, FusedGroup, IKind, Instr, Proc, Program};
use crate::error::panic_message;
use crate::exec::{pack_outputs, ExecEnv};
use crate::ir::GValue;
use crate::ops;
use crate::run::RunCtx;
use crate::{GraphError, Result};
use autograph_faults as faults;
use autograph_obs as obs;
use autograph_tensor::fused::FusedArena;
use autograph_tensor::Tensor;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Cheap placeholder for empty / freed registers.
fn nil() -> GValue {
    GValue::Tuple(Vec::new())
}

/// Pool of register frames for sub-procedure calls. `Cond` (and `While`
/// nested inside sub-procedures) would otherwise allocate fresh frames
/// on every execution — every iteration of an enclosing loop.
#[derive(Default)]
struct Frames {
    pool: Vec<Vec<GValue>>,
}

impl Frames {
    fn take(&mut self) -> Vec<GValue> {
        self.pool.pop().unwrap_or_default()
    }
    fn give(&mut self, frame: Vec<GValue>) {
        self.pool.push(frame);
    }
}

/// Execute a lowered program's top-level procedure and serve `fetches`.
///
/// # Errors
///
/// Returns the same runtime errors as the interpreter, annotated with
/// the failing node's name and staged source span.
pub(crate) fn run_program(
    program: &Program,
    env: &mut ExecEnv<'_>,
    fetches: &[crate::ir::NodeId],
    ctx: &RunCtx,
) -> Result<Vec<GValue>> {
    obs::env::maybe_init_from_env();
    faults::maybe_init_from_env();
    let mut arena = FusedArena::new();
    let mut frames = Frames::default();
    let top = &program.procs[0];
    let mut regs: Vec<GValue> = vec![nil(); top.nregs];
    for instr in &top.code {
        let started = ctx.collector.as_ref().map(|_| {
            (
                std::time::Instant::now(),
                autograph_tensor::mem::thread_allocated(),
            )
        });
        let v = exec_instr_guarded(program, instr, &mut regs, env, ctx, &mut arena, &mut frames);
        if let (Some(col), Some((t0, alloc0))) = (ctx.collector.as_ref(), started) {
            record_cost(
                col,
                instr,
                t0.elapsed().as_nanos() as u64,
                autograph_tensor::mem::thread_allocated().wrapping_sub(alloc0),
            );
        }
        let v = v.map_err(|e| e.at_node(instr.name.clone()).at_span(instr.span))?;
        regs[instr.dst as usize] = v;
        // the top level never frees: any plan node may be fetched
    }
    fetches
        .iter()
        .map(|&f| match program.reg_of_node.get(f).copied().flatten() {
            Some(r) => Ok(regs[r as usize].clone()),
            None => Err(GraphError::runtime(format!("fetch {f} was not computed"))),
        })
        .collect()
}

/// Record one instruction's measured cost. A fused instruction's time is
/// split across its covered source nodes (evenly, remainder to the
/// first, so totals are conserved); allocations go to the root, which
/// owns the output buffer.
fn record_cost(col: &crate::report::Collector, instr: &Instr, elapsed_ns: u64, alloc: u64) {
    if let IKind::Fused(group) = &instr.kind {
        let k = group.cover.len() as u64;
        let share = elapsed_ns / k;
        let rem = elapsed_ns - share * k;
        for (i, c) in group.cover.iter().enumerate() {
            let ns = if i == 0 { share + rem } else { share };
            let alloc_share = if i + 1 == group.cover.len() { alloc } else { 0 };
            col.record(c.node, ns, alloc_share);
        }
    } else {
        col.record(instr.node, elapsed_ns, alloc);
    }
}

/// Execute a sub-procedure with `args` bound to its params. `regs` is a
/// reusable frame (cleared and resized here); dead registers are
/// recycled into the arena as instructions release them.
#[allow(clippy::too_many_arguments)]
fn exec_proc(
    program: &Program,
    proc: &Proc,
    args: &[GValue],
    regs: &mut Vec<GValue>,
    env: &mut ExecEnv<'_>,
    ctx: &RunCtx,
    arena: &mut FusedArena,
    frames: &mut Frames,
) -> Result<Vec<GValue>> {
    if args.len() != proc.num_params {
        return Err(GraphError::runtime(format!(
            "subgraph expects {} arguments, got {}",
            proc.num_params,
            args.len()
        )));
    }
    regs.clear();
    regs.resize(proc.nregs, nil());
    for instr in &proc.code {
        let v = match &instr.kind {
            // params bind without dispatch accounting, like the
            // interpreter's short-circuit
            IKind::Param(i) => args
                .get(*i)
                .cloned()
                .ok_or_else(|| GraphError::runtime(format!("missing subgraph argument {i}"))),
            _ => exec_instr_guarded(program, instr, regs, env, ctx, arena, frames),
        }
        .map_err(|e| e.at_node(instr.name.clone()).at_span(instr.span))?;
        regs[instr.dst as usize] = v;
        for &r in &instr.free_after {
            let dead = std::mem::replace(&mut regs[r as usize], nil());
            reclaim(dead, arena);
        }
    }
    let outs: Vec<GValue> = proc
        .outputs
        .iter()
        .map(|&r| regs[r as usize].clone())
        .collect();
    // drain what's left of the frame into the arena for the next
    // iteration / call (outputs were just cloned, so their buffers are
    // shared and reclaim leaves them alone)
    for r in regs.drain(..) {
        reclaim(r, arena);
    }
    Ok(outs)
}

/// Offer a dead value's buffer to the arena. Only works for uniquely
/// owned f32 tensors; shared or non-f32 values just drop.
fn reclaim(v: GValue, arena: &mut FusedArena) {
    if let GValue::Tensor(t) = v {
        if let Some(buf) = t.into_f32_buffer() {
            arena.give(buf);
        }
    }
}

/// One instruction behind a `catch_unwind` boundary: a panicking kernel
/// surfaces as a [`GraphError`]. Fused fast paths install inner
/// boundaries per covered op, so panics attribute to the innermost
/// failing source node.
#[allow(clippy::too_many_arguments)]
fn exec_instr_guarded(
    program: &Program,
    instr: &Instr,
    regs: &mut [GValue],
    env: &mut ExecEnv<'_>,
    ctx: &RunCtx,
    arena: &mut FusedArena,
    frames: &mut Frames,
) -> Result<GValue> {
    match catch_unwind(AssertUnwindSafe(|| {
        exec_instr(program, instr, regs, env, ctx, arena, frames)
    })) {
        Ok(r) => r,
        Err(payload) => Err(GraphError::panic(format!(
            "kernel panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_instr(
    program: &Program,
    instr: &Instr,
    regs: &mut [GValue],
    env: &mut ExecEnv<'_>,
    ctx: &RunCtx,
    arena: &mut FusedArena,
    frames: &mut Frames,
) -> Result<GValue> {
    if let IKind::Fused(group) = &instr.kind {
        // fused groups account one dispatch per covered node
        return exec_fused(instr, group, regs, ctx, arena);
    }
    ctx.before_node()?;
    match &instr.kind {
        IKind::Const(p) => {
            faults::inject("graph", instr.mnemonic)
                .map_err(|e| GraphError::runtime(e.to_string()))?;
            if obs::enabled() {
                obs::count("graph", "node_evals", 1);
                let _span = obs::span("graph_op", instr.mnemonic);
                Ok(GValue::Tensor(program.pool[*p].clone()))
            } else {
                Ok(GValue::Tensor(program.pool[*p].clone()))
            }
        }
        IKind::Feed(name) => env
            .feeds
            .get(name)
            .cloned()
            .map(GValue::Tensor)
            .ok_or_else(|| GraphError::runtime(format!("placeholder '{name}' was not fed"))),
        IKind::ReadVar(name) => env
            .variables
            .get(name)
            .cloned()
            .map(GValue::Tensor)
            .ok_or_else(|| GraphError::runtime(format!("variable '{name}' is not initialized"))),
        IKind::Assign(name) => {
            let v = regs[instr.srcs[0] as usize].as_tensor()?.clone();
            env.variables.insert(name.clone(), v.clone());
            Ok(GValue::Tensor(v))
        }
        IKind::Group => Ok(instr
            .srcs
            .last()
            .map(|&r| regs[r as usize].clone())
            .unwrap_or(GValue::Tuple(vec![]))),
        IKind::ParamTop(i) => Err(GraphError::staging(format!(
            "param {i} evaluated outside a subgraph"
        ))),
        IKind::Param(i) => Err(GraphError::staging(format!(
            "param {i} evaluated outside a subgraph"
        ))),
        IKind::Op(op) => {
            faults::inject("graph", instr.mnemonic)
                .map_err(|e| GraphError::runtime(e.to_string()))?;
            let run = |inputs: &[GValue]| {
                if obs::enabled() {
                    obs::count("graph", "node_evals", 1);
                    let _span = obs::span("graph_op", instr.mnemonic);
                    ops::execute(op, inputs)
                } else {
                    ops::execute(op, inputs)
                }
            };
            // common arities stay on the stack; only wide ops heap-allocate
            let at = |i: usize| regs[instr.srcs[i] as usize].clone();
            match instr.srcs.len() {
                0 => run(&[]),
                1 => run(&[at(0)]),
                2 => run(&[at(0), at(1)]),
                3 => run(&[at(0), at(1), at(2)]),
                n => {
                    let inputs: Vec<GValue> = (0..n).map(at).collect();
                    run(&inputs)
                }
            }
        }
        IKind::Cond { then_p, else_p } => {
            let pred = ops::as_bool_scalar(&regs[instr.srcs[0] as usize])?;
            if obs::enabled() {
                obs::count(
                    "graph",
                    if pred {
                        "cond_then_taken"
                    } else {
                        "cond_else_taken"
                    },
                    1,
                );
            }
            let args: Vec<GValue> = instr.srcs[1..]
                .iter()
                .map(|&r| regs[r as usize].clone())
                .collect();
            let p = if pred { *then_p } else { *else_p };
            let mut frame = frames.take();
            let outs = exec_proc(
                program,
                &program.procs[p],
                &args,
                &mut frame,
                env,
                ctx,
                arena,
                frames,
            );
            frames.give(frame);
            Ok(pack_outputs(outs?))
        }
        IKind::While {
            cond_p,
            body_p,
            max_iters,
        } => {
            let mut state: Vec<GValue> = instr
                .srcs
                .iter()
                .map(|&r| regs[r as usize].clone())
                .collect();
            let mut iters = 0u64;
            let limit = ctx.while_limit(*max_iters);
            // frames are allocated once and reused across iterations;
            // each iteration's dead registers feed the arena, so
            // loop-carried temporaries recycle buffers
            let mut cond_frame = frames.take();
            let mut body_frame = frames.take();
            let cond_proc = &program.procs[*cond_p];
            let body_proc = &program.procs[*body_p];
            let outcome = loop {
                let keep = match exec_proc(
                    program,
                    cond_proc,
                    &state,
                    &mut cond_frame,
                    env,
                    ctx,
                    arena,
                    frames,
                )
                .and_then(|c| {
                    c.first()
                        .ok_or_else(|| GraphError::runtime("while condition returned nothing"))
                        .and_then(ops::as_bool_scalar)
                }) {
                    Ok(k) => k,
                    Err(e) => break Err(e),
                };
                if !keep {
                    break Ok(());
                }
                let next = match exec_proc(
                    program,
                    body_proc,
                    &state,
                    &mut body_frame,
                    env,
                    ctx,
                    arena,
                    frames,
                ) {
                    Ok(s) => s,
                    Err(e) => break Err(e),
                };
                // the previous state is dead now — recycle its buffers
                for v in std::mem::replace(&mut state, next) {
                    reclaim(v, arena);
                }
                iters += 1;
                if let Err(e) = ctx.after_while_iter() {
                    break Err(e);
                }
                if let Some(limit) = limit {
                    if iters >= limit {
                        break Err(GraphError::runtime(format!(
                            "while loop exceeded max_iters={limit}"
                        )));
                    }
                }
            };
            frames.give(cond_frame);
            frames.give(body_frame);
            obs::observe("graph", "while_iters", iters);
            outcome?;
            Ok(GValue::Tuple(state))
        }
        IKind::Fused(_) => Err(GraphError::runtime("unreachable: fused handled above")),
    }
}

/// Execute a fused elementwise group: single-loop kernel when eligible,
/// exact op-by-op fallback otherwise. Either way every covered source
/// node keeps its dispatch count, fault-injection site, and error
/// attribution.
fn exec_fused(
    instr: &Instr,
    group: &FusedGroup,
    regs: &mut [GValue],
    ctx: &RunCtx,
    arena: &mut FusedArena,
) -> Result<GValue> {
    // one dispatch check per covered source node — same nodes_executed
    // accounting (and deadline/cancel granularity) as the interpreter
    for _ in &group.cover {
        ctx.before_node()?;
    }
    let srcs: Vec<&GValue> = instr.srcs.iter().map(|&r| &regs[r as usize]).collect();
    // per-op spans only exist on the fallback path; when observability
    // is on, take it so profiles see each op
    let all_tensors = srcs.iter().all(|v| matches!(v, GValue::Tensor(_)));
    if !obs::enabled() && all_tensors {
        let tensors: Vec<&Tensor> = srcs
            .iter()
            .filter_map(|v| match v {
                GValue::Tensor(t) => Some(t),
                _ => None,
            })
            .collect();
        if group.spec.eligible(&tensors) {
            // fire each covered node's fault site (in execution order)
            // before the kernel, so chaos plans behave identically
            for c in &group.cover {
                inject_cover(c)?;
            }
            if let Some(out) = group.spec.try_eval(&tensors, arena) {
                return Ok(GValue::Tensor(out));
            }
            // eligibility raced/failed inside eval: fall through to the
            // exact path, but don't re-fire injection sites
            return eval_cover(group, &srcs, false);
        }
    }
    eval_cover(group, &srcs, true)
}

/// Fire one covered op's fault-injection site under its own panic
/// boundary, attributing failures to that source node (innermost wins).
fn inject_cover(c: &CoverOp) -> Result<()> {
    let r = catch_unwind(AssertUnwindSafe(|| {
        faults::inject("graph", c.mnemonic).map_err(|e| GraphError::runtime(e.to_string()))
    }));
    match r {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(e.at_node(c.name.clone()).at_span(c.span)),
        Err(payload) => Err(GraphError::panic(format!(
            "kernel panicked: {}",
            panic_message(payload.as_ref())
        ))
        .at_node(c.name.clone())
        .at_span(c.span)),
    }
}

/// Exact fallback: evaluate the covered ops one by one through the same
/// kernel table as the interpreter, with per-op fault sites, obs spans,
/// and innermost-wins error attribution.
fn eval_cover(group: &FusedGroup, srcs: &[&GValue], with_injects: bool) -> Result<GValue> {
    let mut vals: Vec<Option<GValue>> = vec![None; group.cover.len()];
    for (k, c) in group.cover.iter().enumerate() {
        let inputs: Vec<GValue> = c
            .args
            .iter()
            .map(|a| match a {
                CoverArg::Ext(s) => Ok(srcs[*s].clone()),
                CoverArg::Int(i) => vals[*i]
                    .clone()
                    .ok_or_else(|| GraphError::runtime(format!("fused operand {i} not computed"))),
            })
            .collect::<Result<_>>()?;
        let r = catch_unwind(AssertUnwindSafe(|| -> Result<GValue> {
            if with_injects {
                faults::inject("graph", c.mnemonic)
                    .map_err(|e| GraphError::runtime(e.to_string()))?;
            }
            if obs::enabled() {
                obs::count("graph", "node_evals", 1);
                let _span = obs::span("graph_op", c.mnemonic);
                ops::execute(&c.op, &inputs)
            } else {
                ops::execute(&c.op, &inputs)
            }
        }));
        let v = match r {
            Ok(r) => r,
            Err(payload) => Err(GraphError::panic(format!(
                "kernel panicked: {}",
                panic_message(payload.as_ref())
            ))),
        }
        .map_err(|e| e.at_node(c.name.clone()).at_span(c.span))?;
        vals[k] = Some(v);
    }
    vals.pop()
        .flatten()
        .ok_or_else(|| GraphError::runtime("fused group produced no value"))
}
