//! The dataflow-graph data structures.

use autograph_pylang::Span;
use autograph_tensor::{DType, Tensor};

/// Index of a node within its graph.
pub type NodeId = usize;

/// A value flowing along graph edges during execution.
#[derive(Debug, Clone, PartialEq)]
pub enum GValue {
    /// A dense tensor.
    Tensor(Tensor),
    /// A tensor array / staged list (the "low level tensor list" of
    /// Table 5).
    Array(Vec<Tensor>),
    /// A tuple of values (e.g. the state of a `While` loop).
    Tuple(Vec<GValue>),
}

impl GValue {
    /// View as a tensor.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`crate::GraphError`] if the value is not a
    /// tensor.
    pub fn as_tensor(&self) -> crate::Result<&Tensor> {
        match self {
            GValue::Tensor(t) => Ok(t),
            other => Err(crate::GraphError::runtime(format!(
                "expected a tensor, got {}",
                other.kind_name()
            ))),
        }
    }

    /// View as a tensor array.
    ///
    /// # Errors
    ///
    /// Returns a runtime [`crate::GraphError`] if the value is not an
    /// array.
    pub fn as_array(&self) -> crate::Result<&Vec<Tensor>> {
        match self {
            GValue::Array(v) => Ok(v),
            other => Err(crate::GraphError::runtime(format!(
                "expected a tensor array, got {}",
                other.kind_name()
            ))),
        }
    }

    /// Short name of the value kind for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            GValue::Tensor(_) => "tensor",
            GValue::Array(_) => "tensor array",
            GValue::Tuple(_) => "tuple",
        }
    }
}

impl From<Tensor> for GValue {
    fn from(t: Tensor) -> Self {
        GValue::Tensor(t)
    }
}

/// A nested graph with an explicit signature, used by functional control
/// flow (`Cond` branch bodies, `While` condition/body).
#[derive(Debug, Clone, PartialEq)]
pub struct SubGraph {
    /// The nested graph; its `Param(i)` nodes receive the i-th argument.
    pub graph: Graph,
    /// Number of parameters the subgraph expects.
    pub num_params: usize,
    /// The nodes whose values the subgraph returns.
    pub outputs: Vec<NodeId>,
}

/// Every operation the graph IR supports.
///
/// Attribute-style configuration (axes, shapes, dtypes) lives in the
/// variant; tensor operands arrive through node inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum OpKind {
    // ---- leaves --------------------------------------------------------
    /// Named feed point.
    Placeholder {
        /// Feed name.
        name: String,
    },
    /// Embedded constant.
    Const(Tensor),
    /// Stateful variable, read from the session's variable store.
    Variable {
        /// Variable name (key into the session store).
        name: String,
    },
    /// Subgraph parameter `i`.
    Param(usize),

    // ---- elementwise arithmetic ---------------------------------------
    /// `a + b` (broadcasting).
    Add,
    /// `a - b`.
    Sub,
    /// `a * b`.
    Mul,
    /// `a / b` (true division).
    Div,
    /// `a // b`.
    FloorDiv,
    /// `a % b` (Euclidean).
    Mod,
    /// `a ** b`.
    Pow,
    /// Elementwise max.
    Maximum,
    /// Elementwise min.
    Minimum,
    /// `-a`.
    Neg,
    /// `|a|`.
    Abs,
    /// `sqrt(a)`.
    Sqrt,
    /// `exp(a)`.
    Exp,
    /// `ln(a)`.
    Log,
    /// `a * a`.
    Square,

    // ---- activations / nn ----------------------------------------------
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Rectified linear.
    Relu,
    /// Row softmax (last axis).
    Softmax,
    /// Row log-softmax.
    LogSoftmax,
    /// Mean softmax cross-entropy; inputs `[logits, labels]`.
    SoftmaxCrossEntropy,

    // ---- comparisons / logic -------------------------------------------
    /// `a < b`.
    Less,
    /// `a <= b`.
    LessEqual,
    /// `a > b`.
    Greater,
    /// `a >= b`.
    GreaterEqual,
    /// `a == b`.
    Equal,
    /// `a != b`.
    NotEqual,
    /// Boolean and.
    LogicalAnd,
    /// Boolean or.
    LogicalOr,
    /// Boolean not.
    LogicalNot,
    /// `select(cond, a, b)`; inputs `[cond, a, b]`.
    Select,

    // ---- linear algebra / shape ----------------------------------------
    /// Matrix product.
    MatMul,
    /// Axis permutation.
    Transpose(Vec<usize>),
    /// Static reshape (`usize::MAX` infers one dimension).
    Reshape(Vec<usize>),
    /// Insert a size-1 axis.
    ExpandDims(isize),
    /// Remove size-1 axes.
    Squeeze(Option<isize>),
    /// Cast to dtype.
    Cast(DType),
    /// Shape as an i64 vector.
    Shape,
    /// Total element count as an f32 scalar.
    Size,
    /// Extent of one axis as an f32 scalar.
    DimSize(isize),
    /// `[0..n)` as i64; input `[n]` (scalar).
    Range,
    /// Tile along axis 0.
    TileAxis0(usize),

    // ---- reductions ------------------------------------------------------
    /// Sum (all or one axis).
    ReduceSum(Option<isize>),
    /// Mean.
    ReduceMean(Option<isize>),
    /// Max.
    ReduceMax(Option<isize>),
    /// Min.
    ReduceMin(Option<isize>),
    /// Boolean all.
    ReduceAll(Option<isize>),
    /// Boolean any.
    ReduceAny(Option<isize>),
    /// Index of max along axis.
    ArgMax(isize),

    // ---- indexing --------------------------------------------------------
    /// `x[i]` along axis 0; inputs `[x, i]` (i scalar tensor).
    IndexAxis0,
    /// Static range slice along axis 0.
    SliceAxis0 {
        /// Lower bound (None = 0).
        start: Option<i64>,
        /// Upper bound (None = end).
        stop: Option<i64>,
    },
    /// Value-semantics element write; inputs `[x, i, v]`.
    SetItemAxis0,
    /// Row gather; inputs `[x, indices]`.
    Gather,
    /// One-hot encode.
    OneHot(usize),
    /// Fused top-k: returns `Tuple[values, indices]` along the last axis.
    TopK(usize),
    /// Top-k values along last axis.
    TopKValues(usize),
    /// Top-k indices along last axis.
    TopKIndices(usize),
    /// Concatenate n inputs along axis.
    Concat(isize),
    /// Stack n inputs along new axis 0.
    StackOp,

    // ---- tensor arrays / staged lists -----------------------------------
    /// New empty array.
    ArrayNew,
    /// Append; inputs `[array, value]`.
    ArrayPush,
    /// Pop; inputs `[array]`; returns `Tuple[array, value]`.
    ArrayPop,
    /// Write at index; inputs `[array, i, value]` (grows as needed).
    ArrayWrite,
    /// Read at index; inputs `[array, i]`.
    ArrayRead,
    /// Stack all elements into one tensor; inputs `[array]`.
    ArrayStack,
    /// Current length as i64 scalar.
    ArraySize,

    // ---- gradient helpers --------------------------------------------------
    /// Reduce-sum `g` down to the shape of a reference tensor (undoes
    /// broadcasting in gradients); inputs `[g, ref]`.
    SumToShape,
    /// Broadcast `g` up to the shape of a reference tensor; inputs
    /// `[g, ref]`.
    BroadcastLike,
    /// Reshape `g` to the shape of a reference tensor; inputs `[g, ref]`.
    ReshapeLike,
    /// Fused gradient of mean softmax cross-entropy w.r.t. logits:
    /// `(softmax(logits) - one_hot(labels)) / batch`; inputs
    /// `[logits, labels]`.
    XentGrad,

    // ---- structure -------------------------------------------------------
    /// Pack inputs into a tuple value.
    TupleOp,
    /// Project element `i` of a tuple input.
    TupleGet(usize),
    /// Identity (also the gradient stop).
    Identity,
    /// Gradient barrier: identity forward, zero gradient.
    StopGradient,
    /// Log the input tensor at execution time (the staged `print`);
    /// passes the value through.
    Print(String),
    /// Staged assertion: fails execution when the (scalar bool) input is
    /// false; passes the value through.
    AssertOp(String),

    // ---- state ------------------------------------------------------------
    /// Write a variable; inputs `[value]`, attribute names the variable.
    /// Returns the written value.
    Assign {
        /// Variable to write.
        name: String,
    },
    /// Evaluate all inputs for effect; returns the last (a `train_op`
    /// grouping node).
    Group,

    // ---- functional control flow ------------------------------------------
    /// `cond(pred, then, else)`; node inputs `[pred, captures...]`, both
    /// branches take the captures as params.
    Cond {
        /// Then-branch subgraph.
        then_g: SubGraph,
        /// Else-branch subgraph.
        else_g: SubGraph,
    },
    /// Functional while loop; node inputs are the initial state, `cond_g`
    /// returns a scalar bool, `body_g` returns the next state. The node's
    /// value is the final state tuple.
    While {
        /// Condition subgraph.
        cond_g: SubGraph,
        /// Body subgraph.
        body_g: SubGraph,
        /// Iteration safety limit (None = unbounded).
        max_iters: Option<u64>,
    },
}

impl OpKind {
    /// Short mnemonic used in auto-generated node names and dumps.
    pub fn mnemonic(&self) -> &'static str {
        use OpKind::*;
        match self {
            Placeholder { .. } => "placeholder",
            Const(_) => "const",
            Variable { .. } => "variable",
            Param(_) => "param",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            FloorDiv => "floordiv",
            Mod => "mod",
            Pow => "pow",
            Maximum => "maximum",
            Minimum => "minimum",
            Neg => "neg",
            Abs => "abs",
            Sqrt => "sqrt",
            Exp => "exp",
            Log => "log",
            Square => "square",
            Tanh => "tanh",
            Sigmoid => "sigmoid",
            Relu => "relu",
            Softmax => "softmax",
            LogSoftmax => "log_softmax",
            SoftmaxCrossEntropy => "softmax_xent",
            Less => "less",
            LessEqual => "less_equal",
            Greater => "greater",
            GreaterEqual => "greater_equal",
            Equal => "equal",
            NotEqual => "not_equal",
            LogicalAnd => "logical_and",
            LogicalOr => "logical_or",
            LogicalNot => "logical_not",
            Select => "select",
            MatMul => "matmul",
            Transpose(_) => "transpose",
            Reshape(_) => "reshape",
            ExpandDims(_) => "expand_dims",
            Squeeze(_) => "squeeze",
            Cast(_) => "cast",
            Shape => "shape",
            Size => "size",
            DimSize(_) => "dim_size",
            Range => "range",
            TileAxis0(_) => "tile",
            ReduceSum(_) => "reduce_sum",
            ReduceMean(_) => "reduce_mean",
            ReduceMax(_) => "reduce_max",
            ReduceMin(_) => "reduce_min",
            ReduceAll(_) => "reduce_all",
            ReduceAny(_) => "reduce_any",
            ArgMax(_) => "argmax",
            IndexAxis0 => "index",
            SliceAxis0 { .. } => "slice",
            SetItemAxis0 => "setitem",
            Gather => "gather",
            OneHot(_) => "one_hot",
            TopK(_) => "top_k",
            TopKValues(_) => "top_k_values",
            TopKIndices(_) => "top_k_indices",
            Concat(_) => "concat",
            StackOp => "stack",
            SumToShape => "sum_to_shape",
            BroadcastLike => "broadcast_like",
            ReshapeLike => "reshape_like",
            XentGrad => "xent_grad",
            ArrayNew => "array_new",
            ArrayPush => "array_push",
            ArrayPop => "array_pop",
            ArrayWrite => "array_write",
            ArrayRead => "array_read",
            ArrayStack => "array_stack",
            ArraySize => "array_size",
            TupleOp => "tuple",
            TupleGet(_) => "tuple_get",
            Identity => "identity",
            StopGradient => "stop_gradient",
            Print(_) => "print",
            AssertOp(_) => "assert",
            Assign { .. } => "assign",
            Group => "group",
            Cond { .. } => "cond",
            While { .. } => "while",
        }
    }

    /// Pure ops may be constant-folded and deduplicated; stateful or
    /// effectful ops may not.
    pub fn is_pure(&self) -> bool {
        !matches!(
            self,
            OpKind::Placeholder { .. }
                | OpKind::Variable { .. }
                | OpKind::Param(_)
                | OpKind::Assign { .. }
                | OpKind::Group
                | OpKind::Print(_)
                | OpKind::AssertOp(_)
                | OpKind::Cond { .. }
                | OpKind::While { .. }
        )
    }
}

/// One pre-rewrite node consumed by an optimizer rewrite: its id in the
/// graph the pass read, plus the name/span that stay meaningful after the
/// id is remapped away.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvSource {
    /// Node id in the pre-pass graph.
    pub node: NodeId,
    /// The node's staged name.
    pub name: String,
    /// The node's user-source span.
    pub span: Span,
}

/// One optimizer rewrite in a node's provenance chain.
///
/// The recording contract for passes (see DESIGN.md "Provenance"): a pass
/// that rewrites a node in place *appends* a record to that node's chain;
/// a pass that merges node B into node A appends a record to A naming B
/// as a source; a pass that removes a node outright reports it in the
/// run's [`crate::optimize::OptTrace`] instead (the node no longer exists
/// to carry a chain). Chains are ordered oldest-first and must be
/// deterministic for a given input graph (restaging reproduces them
/// bitwise).
#[derive(Debug, Clone, PartialEq)]
pub struct PassRecord {
    /// The pass that performed the rewrite (e.g. `"const_fold"`, `"cse"`).
    pub pass: &'static str,
    /// What the rewrite did (e.g. `"folded-inputs"`,
    /// `"absorbed-duplicate"`).
    pub action: &'static str,
    /// The pre-rewrite nodes the rewrite consumed.
    pub sources: Vec<ProvSource>,
}

/// A graph node: an operation applied to the values of its inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The operation.
    pub op: OpKind,
    /// Producer nodes.
    pub inputs: Vec<NodeId>,
    /// Unique display name (scoped).
    pub name: String,
    /// The user-source location that staged this node (for Appendix B
    /// error rewriting).
    pub span: Span,
    /// Rewrite lineage: one record per optimizer pass that created,
    /// fused, or rewrote this node, oldest first. Empty for nodes that
    /// staged directly and were never rewritten.
    pub prov: Vec<PassRecord>,
}

impl Node {
    /// A node with an empty provenance chain (the normal staging path).
    pub fn staged(op: OpKind, inputs: Vec<NodeId>, name: String, span: Span) -> Node {
        Node {
            op,
            inputs,
            name,
            span,
            prov: Vec::new(),
        }
    }

    /// Render the rewrite lineage compactly, e.g.
    /// `const_fold(folded-inputs: c_1@1:5, c_2@1:9); cse(absorbed-duplicate: tanh_4@3:4)`.
    /// Empty string for never-rewritten nodes.
    pub fn lineage(&self) -> String {
        let mut out = String::new();
        for (i, rec) in self.prov.iter().enumerate() {
            if i > 0 {
                out.push_str("; ");
            }
            out.push_str(rec.pass);
            out.push('(');
            out.push_str(rec.action);
            if !rec.sources.is_empty() {
                out.push_str(": ");
                for (j, s) in rec.sources.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&s.name);
                    out.push('@');
                    out.push_str(&s.span.to_string());
                }
            }
            out.push(')');
        }
        out
    }
}

/// A dataflow graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    /// All nodes, in creation order (inputs always precede users).
    pub nodes: Vec<Node>,
    /// Variables referenced by the graph with their initial values.
    pub variables: Vec<(String, Tensor)>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Graph {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total node count including nested subgraphs (cost metric for
    /// optimization tests and the ablation bench).
    pub fn deep_len(&self) -> usize {
        let mut n = 0;
        for node in &self.nodes {
            n += 1;
            match &node.op {
                OpKind::Cond { then_g, else_g } => {
                    n += then_g.graph.deep_len() + else_g.graph.deep_len();
                }
                OpKind::While { cond_g, body_g, .. } => {
                    n += cond_g.graph.deep_len() + body_g.graph.deep_len();
                }
                _ => {}
            }
        }
        n
    }

    /// Render as Graphviz dot (top level only). Each node label carries
    /// its staged name, op + originating source span, and — when the
    /// graph has been optimized — its rewrite lineage.
    pub fn to_dot(&self) -> String {
        fn dot_esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut s = String::from("digraph g {\n  rankdir=LR;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let mut label = format!("{}\\n{} @ {}", dot_esc(&n.name), n.op.mnemonic(), n.span);
            let lineage = n.lineage();
            if !lineage.is_empty() {
                label.push_str("\\n");
                label.push_str(&dot_esc(&lineage));
            }
            s.push_str(&format!("  n{i} [label=\"{label}\"];\n"));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for inp in &n.inputs {
                s.push_str(&format!("  n{inp} -> n{i};\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gvalue_accessors() {
        let t = GValue::Tensor(Tensor::scalar_f32(1.0));
        assert!(t.as_tensor().is_ok());
        assert!(t.as_array().is_err());
        let a = GValue::Array(vec![]);
        assert!(a.as_array().is_ok());
        assert_eq!(a.kind_name(), "tensor array");
    }

    #[test]
    fn purity_classification() {
        assert!(OpKind::Add.is_pure());
        assert!(OpKind::Const(Tensor::scalar_f32(0.0)).is_pure());
        assert!(!OpKind::Placeholder { name: "x".into() }.is_pure());
        assert!(!OpKind::Assign { name: "w".into() }.is_pure());
        assert!(!OpKind::Print(String::new()).is_pure());
    }

    #[test]
    fn mnemonics_unique_enough() {
        assert_eq!(OpKind::MatMul.mnemonic(), "matmul");
        assert_eq!(
            OpKind::While {
                cond_g: empty_sub(),
                body_g: empty_sub(),
                max_iters: None
            }
            .mnemonic(),
            "while"
        );
    }

    fn empty_sub() -> SubGraph {
        SubGraph {
            graph: Graph::new(),
            num_params: 0,
            outputs: vec![],
        }
    }

    #[test]
    fn deep_len_counts_subgraphs() {
        let mut inner = Graph::new();
        inner.nodes.push(Node {
            op: OpKind::Param(0),
            inputs: vec![],
            name: "p".into(),
            span: Span::synthetic(),
            prov: vec![],
        });
        let sub = SubGraph {
            graph: inner,
            num_params: 1,
            outputs: vec![0],
        };
        let mut g = Graph::new();
        g.nodes.push(Node {
            op: OpKind::Cond {
                then_g: sub.clone(),
                else_g: sub,
            },
            inputs: vec![],
            name: "cond".into(),
            span: Span::synthetic(),
            prov: vec![],
        });
        assert_eq!(g.len(), 1);
        assert_eq!(g.deep_len(), 3);
    }

    #[test]
    fn dot_dump() {
        let mut g = Graph::new();
        g.nodes.push(Node {
            op: OpKind::Const(Tensor::scalar_f32(1.0)),
            inputs: vec![],
            name: "c0".into(),
            span: Span::synthetic(),
            prov: vec![],
        });
        assert!(g.to_dot().contains("c0"));
    }
}
