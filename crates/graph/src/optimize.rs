//! Whole-program graph optimizations — the benefit the paper attributes to
//! graph-based systems ("can benefit from whole-program optimization").
//!
//! Three classic passes:
//!
//! * **constant folding** — pure nodes whose inputs are all constants are
//!   evaluated at optimization time and replaced with `Const`;
//! * **common-subexpression elimination** — identical pure nodes (same op,
//!   same inputs) are merged;
//! * **dead-code elimination** — nodes not reachable from any protected
//!   output are dropped.
//!
//! `optimize` returns the new graph plus the remapped ids of the protected
//! nodes. Subgraphs (`Cond`/`While` bodies) are optimized recursively with
//! their own outputs protected.

use crate::ir::{GValue, Graph, Node, NodeId, OpKind, SubGraph};
use crate::ops;
use autograph_obs as obs;
use std::collections::HashMap;

/// Statistics from one optimization run (used by the ablation bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Nodes evaluated at optimization time.
    pub folded: usize,
    /// Nodes merged by CSE.
    pub deduped: usize,
    /// Nodes removed as dead.
    pub eliminated: usize,
}

/// Run all passes. Returns `(optimized graph, remapped protected ids,
/// stats)`.
pub fn optimize(graph: &Graph, protected: &[NodeId]) -> (Graph, Vec<NodeId>, OptStats) {
    let mut stats = OptStats::default();
    let nodes_in = graph.nodes.len();
    let (g, remap) = {
        let _span = obs::span("optimize", "fold_and_cse");
        fold_and_cse(graph, &mut stats)
    };
    if obs::enabled() {
        obs::observe(
            "optimize",
            "fold_cse_nodes_removed",
            (nodes_in - g.nodes.len()) as u64,
        );
    }
    let protected_mid: Vec<NodeId> = protected.iter().map(|&p| remap[p]).collect();
    let nodes_mid = g.nodes.len();
    let (g, remap2) = {
        let _span = obs::span("optimize", "dce");
        dce(&g, &protected_mid, &mut stats)
    };
    if obs::enabled() {
        obs::observe(
            "optimize",
            "dce_nodes_removed",
            (nodes_mid - g.nodes.len()) as u64,
        );
    }
    let protected_out = protected_mid
        .iter()
        .map(|&p| remap2[p].expect("protected nodes survive DCE"))
        .collect();
    (g, protected_out, stats)
}

/// Constant folding + CSE in one forward walk.
fn fold_and_cse(graph: &Graph, stats: &mut OptStats) -> (Graph, Vec<NodeId>) {
    let mut out = Graph {
        nodes: Vec::with_capacity(graph.nodes.len()),
        variables: graph.variables.clone(),
    };
    let mut remap: Vec<NodeId> = Vec::with_capacity(graph.nodes.len());
    // key: (mnemonic-discriminated op debug, inputs) — OpKind is PartialEq,
    // so key on a rendered form for hashing.
    let mut seen: HashMap<String, NodeId> = HashMap::new();

    for node in &graph.nodes {
        let new_inputs: Vec<NodeId> = node.inputs.iter().map(|&i| remap[i]).collect();

        // Recursively optimize subgraphs.
        let op = match &node.op {
            OpKind::Cond { then_g, else_g } => OpKind::Cond {
                then_g: optimize_sub(then_g, stats),
                else_g: optimize_sub(else_g, stats),
            },
            OpKind::While {
                cond_g,
                body_g,
                max_iters,
            } => OpKind::While {
                cond_g: optimize_sub(cond_g, stats),
                body_g: optimize_sub(body_g, stats),
                max_iters: *max_iters,
            },
            other => other.clone(),
        };

        // Constant folding: all-const inputs to a pure op.
        let foldable = op.is_pure()
            && !matches!(op, OpKind::Const(_))
            && !new_inputs.is_empty()
            && new_inputs
                .iter()
                .all(|&i| matches!(out.nodes[i].op, OpKind::Const(_)));
        if foldable {
            let input_values: Vec<GValue> = new_inputs
                .iter()
                .map(|&i| match &out.nodes[i].op {
                    OpKind::Const(t) => GValue::Tensor(t.clone()),
                    _ => unreachable!("checked const"),
                })
                .collect();
            if let Ok(GValue::Tensor(t)) = ops::execute(&op, &input_values) {
                stats.folded += 1;
                let folded = OpKind::Const(t);
                let key = cse_key(&folded, &[]);
                if let Some(&existing) = seen.get(&key) {
                    stats.deduped += 1;
                    remap.push(existing);
                    continue;
                }
                out.nodes.push(Node {
                    op: folded.clone(),
                    inputs: vec![],
                    name: node.name.clone(),
                    span: node.span,
                });
                let id = out.nodes.len() - 1;
                seen.insert(key, id);
                remap.push(id);
                continue;
            }
        }

        // CSE for pure ops.
        if op.is_pure() {
            let key = cse_key(&op, &new_inputs);
            if let Some(&existing) = seen.get(&key) {
                stats.deduped += 1;
                remap.push(existing);
                continue;
            }
            out.nodes.push(Node {
                op: op.clone(),
                inputs: new_inputs.clone(),
                name: node.name.clone(),
                span: node.span,
            });
            let id = out.nodes.len() - 1;
            seen.insert(key, id);
            remap.push(id);
        } else {
            out.nodes.push(Node {
                op,
                inputs: new_inputs,
                name: node.name.clone(),
                span: node.span,
            });
            remap.push(out.nodes.len() - 1);
        }
    }
    (out, remap)
}

fn optimize_sub(sub: &SubGraph, stats: &mut OptStats) -> SubGraph {
    let (g, outputs, s) = optimize(&sub.graph, &sub.outputs);
    stats.folded += s.folded;
    stats.deduped += s.deduped;
    stats.eliminated += s.eliminated;
    SubGraph {
        graph: g,
        num_params: sub.num_params,
        outputs,
    }
}

fn cse_key(op: &OpKind, inputs: &[NodeId]) -> String {
    // Tensors render with a truncated preview; include full data for small
    // constants so folding stays sound, and fall back to pointer-free
    // structural identity for the rest.
    match op {
        OpKind::Const(t) if t.num_elements() <= 16 => {
            format!("const:{:?}:{:?}:{:?}", t.dtype(), t.shape(), t.to_f32_vec())
        }
        OpKind::Const(t) => format!("const-big:{:p}", t.data()),
        _ => format!("{op:?}:{inputs:?}"),
    }
}

/// Dead-code elimination: keep only nodes reachable from `protected`.
fn dce(graph: &Graph, protected: &[NodeId], stats: &mut OptStats) -> (Graph, Vec<Option<NodeId>>) {
    let mut needed = vec![false; graph.nodes.len()];
    let mut stack: Vec<NodeId> = protected.to_vec();
    while let Some(n) = stack.pop() {
        if needed[n] {
            continue;
        }
        needed[n] = true;
        stack.extend(graph.nodes[n].inputs.iter().copied());
    }
    let mut out = Graph {
        nodes: Vec::new(),
        variables: graph.variables.clone(),
    };
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        if !needed[i] {
            stats.eliminated += 1;
            continue;
        }
        let inputs = node
            .inputs
            .iter()
            .map(|&x| remap[x].expect("inputs precede users"))
            .collect();
        out.nodes.push(Node {
            op: node.op.clone(),
            inputs,
            name: node.name.clone(),
            span: node.span,
        });
        remap[i] = Some(out.nodes.len() - 1);
    }
    (out, remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::session::Session;
    use autograph_tensor::Tensor;

    #[test]
    fn folds_constants() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(2.0);
        let c = b.scalar(3.0);
        let s = b.add_op(a, c);
        let x = b.placeholder("x");
        let y = b.mul(s, x);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[y]);
        assert!(stats.folded >= 1);
        // the add node became a const
        assert!(og
            .nodes
            .iter()
            .any(|n| matches!(&n.op, OpKind::Const(t) if t.scalar_value_f32() == Ok(5.0))));
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(4.0))], &[keep[0]])
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 20.0);
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let a1 = b.tanh(x);
        let a2 = b.tanh(x);
        let s = b.add_op(a1, a2);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[s]);
        assert_eq!(stats.deduped, 1);
        let tanh_count = og
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Tanh))
            .count();
        assert_eq!(tanh_count, 1);
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(1.0))], &[keep[0]])
            .unwrap();
        assert!((out[0].scalar_value_f32().unwrap() - 2.0 * 1f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn dce_drops_unreachable() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let used = b.tanh(x);
        let _dead1 = b.sigmoid(x);
        let _dead2 = b.relu(x);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[used]);
        assert_eq!(stats.eliminated, 2);
        assert_eq!(og.len(), 2);
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn effectful_nodes_never_folded_or_merged() {
        let mut b = GraphBuilder::new();
        let c = b.scalar(1.0);
        let p1 = b.add(OpKind::Print("a".into()), vec![c]);
        let p2 = b.add(OpKind::Print("a".into()), vec![c]);
        let s = b.add_op(p1, p2);
        let g = b.finish();
        let (og, _, _) = optimize(&g, &[s]);
        let prints = og
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Print(_)))
            .count();
        assert_eq!(prints, 2);
    }

    #[test]
    fn subgraphs_optimized_recursively() {
        use crate::builder::SubGraphBuilder;
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let pred = {
            let zero = b.scalar(0.0);
            b.add(OpKind::Greater, vec![x, zero])
        };
        let (mut tb, tp) = SubGraphBuilder::new(1);
        let c1 = tb.b.scalar(2.0);
        let c2 = tb.b.scalar(3.0);
        let c3 = tb.b.add_op(c1, c2); // foldable inside subgraph
        let r = tb.b.mul(tp[0], c3);
        let then_g = tb.finish(vec![r]);
        let (eb, ep) = SubGraphBuilder::new(1);
        let else_g = eb.finish(vec![ep[0]]);
        let c = b.cond(pred, vec![x], then_g, else_g);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[c]);
        assert!(stats.folded >= 1);
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(2.0))], &[keep[0]])
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 10.0);
    }

    #[test]
    fn optimization_preserves_variable_semantics() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(1.0));
        let two = b.scalar(2.0);
        let doubled = b.mul(w, two);
        let assign = b.assign("w", doubled);
        let g = b.finish();
        let (og, keep, _) = optimize(&g, &[assign]);
        let mut sess = Session::new(og);
        sess.run(&[], &[keep[0]]).unwrap();
        sess.run(&[], &[keep[0]]).unwrap();
        assert_eq!(sess.variable("w").unwrap().scalar_value_f32().unwrap(), 4.0);
    }
}
