//! Whole-program graph optimizations — the benefit the paper attributes to
//! graph-based systems ("can benefit from whole-program optimization").
//!
//! Three classic passes:
//!
//! * **constant folding** — pure nodes whose inputs are all constants are
//!   evaluated at optimization time and replaced with `Const`;
//! * **common-subexpression elimination** — identical pure nodes (same op,
//!   same inputs) are merged;
//! * **dead-code elimination** — nodes not reachable from any protected
//!   output are dropped.
//!
//! `optimize` returns the new graph plus the remapped ids of the protected
//! nodes. Subgraphs (`Cond`/`While` bodies) are optimized recursively with
//! their own outputs protected.

use crate::ir::{GValue, Graph, Node, NodeId, OpKind, PassRecord, ProvSource, SubGraph};
use crate::ops;
use autograph_obs as obs;
use autograph_pylang::Span;
use std::collections::HashMap;

/// Statistics from one optimization run (used by the ablation bench).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Nodes evaluated at optimization time.
    pub folded: usize,
    /// Nodes merged by CSE.
    pub deduped: usize,
    /// Nodes removed as dead.
    pub eliminated: usize,
}

/// A node removed outright by an optimization pass. Surviving nodes carry
/// their own rewrite lineage ([`crate::ir::PassRecord`]); removed ones no
/// longer exist to carry anything, so their record lives here.
#[derive(Debug, Clone, PartialEq)]
pub struct ElimRecord {
    /// The pass that removed the node (`"cse"`, `"dce"`).
    pub pass: &'static str,
    /// The removed node's staged name.
    pub name: String,
    /// Its op mnemonic.
    pub op: &'static str,
    /// Its user-source span.
    pub span: Span,
    /// For CSE merges: the surviving duplicate the users were remapped
    /// to. `None` for plain dead-code removal.
    pub merged_into: Option<String>,
}

/// Everything the optimizer removed, including from nested subgraphs —
/// the complement of the per-node provenance chains.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptTrace {
    /// Removed nodes, in pass-then-graph order (deterministic).
    pub eliminated: Vec<ElimRecord>,
}

/// Run all passes. Returns `(optimized graph, remapped protected ids,
/// stats)`. Use [`optimize_traced`] to also receive the elimination
/// trace.
pub fn optimize(graph: &Graph, protected: &[NodeId]) -> (Graph, Vec<NodeId>, OptStats) {
    let (g, p, stats, _) = optimize_traced(graph, protected);
    (g, p, stats)
}

/// Run all passes, additionally returning an [`OptTrace`] recording every
/// node the passes removed. Surviving nodes carry their rewrite history
/// in [`Node::prov`].
pub fn optimize_traced(
    graph: &Graph,
    protected: &[NodeId],
) -> (Graph, Vec<NodeId>, OptStats, OptTrace) {
    let mut stats = OptStats::default();
    let mut trace = OptTrace::default();
    let nodes_in = graph.nodes.len();
    let (g, remap) = {
        let _span = obs::span("optimize", "fold_and_cse");
        fold_and_cse(graph, &mut stats, &mut trace)
    };
    if obs::enabled() {
        obs::observe(
            "optimize",
            "fold_cse_nodes_removed",
            (nodes_in - g.nodes.len()) as u64,
        );
    }
    let protected_mid: Vec<NodeId> = protected.iter().map(|&p| remap[p]).collect();
    let nodes_mid = g.nodes.len();
    let (g, remap2) = {
        let _span = obs::span("optimize", "dce");
        dce(&g, &protected_mid, &mut stats, &mut trace)
    };
    if obs::enabled() {
        obs::observe(
            "optimize",
            "dce_nodes_removed",
            (nodes_mid - g.nodes.len()) as u64,
        );
    }
    let protected_out = protected_mid
        .iter()
        .map(|&p| remap2[p].expect("protected nodes survive DCE"))
        .collect();
    (g, protected_out, stats, trace)
}

/// The provenance sources of a pre-pass node set (by id, in the graph the
/// pass is reading).
fn sources_of(graph: &Graph, ids: &[NodeId]) -> Vec<ProvSource> {
    ids.iter()
        .map(|&i| ProvSource {
            node: i,
            name: graph.nodes[i].name.clone(),
            span: graph.nodes[i].span,
        })
        .collect()
}

/// Constant folding + CSE in one forward walk.
fn fold_and_cse(graph: &Graph, stats: &mut OptStats, trace: &mut OptTrace) -> (Graph, Vec<NodeId>) {
    let mut out = Graph {
        nodes: Vec::with_capacity(graph.nodes.len()),
        variables: graph.variables.clone(),
    };
    let mut remap: Vec<NodeId> = Vec::with_capacity(graph.nodes.len());
    // key: (mnemonic-discriminated op debug, inputs) — OpKind is PartialEq,
    // so key on a rendered form for hashing.
    let mut seen: HashMap<String, NodeId> = HashMap::new();

    for (node_id, node) in graph.nodes.iter().enumerate() {
        let new_inputs: Vec<NodeId> = node.inputs.iter().map(|&i| remap[i]).collect();

        // Recursively optimize subgraphs.
        let op = match &node.op {
            OpKind::Cond { then_g, else_g } => OpKind::Cond {
                then_g: optimize_sub(then_g, stats, trace),
                else_g: optimize_sub(else_g, stats, trace),
            },
            OpKind::While {
                cond_g,
                body_g,
                max_iters,
            } => OpKind::While {
                cond_g: optimize_sub(cond_g, stats, trace),
                body_g: optimize_sub(body_g, stats, trace),
                max_iters: *max_iters,
            },
            other => other.clone(),
        };

        // Records a CSE merge: the survivor gains a lineage entry naming
        // the absorbed node; the absorbed node goes to the trace.
        let mut merge_into = |out: &mut Graph, existing: NodeId, node: &Node| {
            out.nodes[existing].prov.push(PassRecord {
                pass: "cse",
                action: "absorbed-duplicate",
                sources: vec![ProvSource {
                    node: node_id,
                    name: node.name.clone(),
                    span: node.span,
                }],
            });
            trace.eliminated.push(ElimRecord {
                pass: "cse",
                name: node.name.clone(),
                op: node.op.mnemonic(),
                span: node.span,
                merged_into: Some(out.nodes[existing].name.clone()),
            });
        };

        // Constant folding: all-const inputs to a pure op.
        let foldable = op.is_pure()
            && !matches!(op, OpKind::Const(_))
            && !new_inputs.is_empty()
            && new_inputs
                .iter()
                .all(|&i| matches!(out.nodes[i].op, OpKind::Const(_)));
        if foldable {
            let input_values: Vec<GValue> = new_inputs
                .iter()
                .map(|&i| match &out.nodes[i].op {
                    OpKind::Const(t) => GValue::Tensor(t.clone()),
                    _ => unreachable!("checked const"),
                })
                .collect();
            if let Ok(GValue::Tensor(t)) = ops::execute(&op, &input_values) {
                stats.folded += 1;
                let folded = OpKind::Const(t);
                let key = cse_key(&folded, &[]);
                if let Some(&existing) = seen.get(&key) {
                    stats.deduped += 1;
                    merge_into(&mut out, existing, node);
                    remap.push(existing);
                    continue;
                }
                let mut prov = node.prov.clone();
                prov.push(PassRecord {
                    pass: "const_fold",
                    action: "folded-inputs",
                    sources: sources_of(graph, &node.inputs),
                });
                out.nodes.push(Node {
                    op: folded.clone(),
                    inputs: vec![],
                    name: node.name.clone(),
                    span: node.span,
                    prov,
                });
                let id = out.nodes.len() - 1;
                seen.insert(key, id);
                remap.push(id);
                continue;
            }
        }

        // CSE for pure ops.
        if op.is_pure() {
            let key = cse_key(&op, &new_inputs);
            if let Some(&existing) = seen.get(&key) {
                stats.deduped += 1;
                merge_into(&mut out, existing, node);
                remap.push(existing);
                continue;
            }
            out.nodes.push(Node {
                op: op.clone(),
                inputs: new_inputs.clone(),
                name: node.name.clone(),
                span: node.span,
                prov: node.prov.clone(),
            });
            let id = out.nodes.len() - 1;
            seen.insert(key, id);
            remap.push(id);
        } else {
            out.nodes.push(Node {
                op,
                inputs: new_inputs,
                name: node.name.clone(),
                span: node.span,
                prov: node.prov.clone(),
            });
            remap.push(out.nodes.len() - 1);
        }
    }
    (out, remap)
}

fn optimize_sub(sub: &SubGraph, stats: &mut OptStats, trace: &mut OptTrace) -> SubGraph {
    let (g, outputs, s, sub_trace) = optimize_traced(&sub.graph, &sub.outputs);
    stats.folded += s.folded;
    stats.deduped += s.deduped;
    stats.eliminated += s.eliminated;
    trace.eliminated.extend(sub_trace.eliminated);
    SubGraph {
        graph: g,
        num_params: sub.num_params,
        outputs,
    }
}

fn cse_key(op: &OpKind, inputs: &[NodeId]) -> String {
    // Tensors render with a truncated preview; include full data for small
    // constants so folding stays sound, and fall back to pointer-free
    // structural identity for the rest.
    match op {
        OpKind::Const(t) if t.num_elements() <= 16 => {
            format!("const:{:?}:{:?}:{:?}", t.dtype(), t.shape(), t.to_f32_vec())
        }
        OpKind::Const(t) => format!("const-big:{:p}", t.data()),
        _ => format!("{op:?}:{inputs:?}"),
    }
}

/// Dead-code elimination: keep only nodes reachable from `protected`.
fn dce(
    graph: &Graph,
    protected: &[NodeId],
    stats: &mut OptStats,
    trace: &mut OptTrace,
) -> (Graph, Vec<Option<NodeId>>) {
    let mut needed = vec![false; graph.nodes.len()];
    let mut stack: Vec<NodeId> = protected.to_vec();
    while let Some(n) = stack.pop() {
        if needed[n] {
            continue;
        }
        needed[n] = true;
        stack.extend(graph.nodes[n].inputs.iter().copied());
    }
    let mut out = Graph {
        nodes: Vec::new(),
        variables: graph.variables.clone(),
    };
    let mut remap: Vec<Option<NodeId>> = vec![None; graph.nodes.len()];
    for (i, node) in graph.nodes.iter().enumerate() {
        if !needed[i] {
            stats.eliminated += 1;
            trace.eliminated.push(ElimRecord {
                pass: "dce",
                name: node.name.clone(),
                op: node.op.mnemonic(),
                span: node.span,
                merged_into: None,
            });
            continue;
        }
        let inputs = node
            .inputs
            .iter()
            .map(|&x| remap[x].expect("inputs precede users"))
            .collect();
        out.nodes.push(Node {
            op: node.op.clone(),
            inputs,
            name: node.name.clone(),
            span: node.span,
            prov: node.prov.clone(),
        });
        remap[i] = Some(out.nodes.len() - 1);
    }
    (out, remap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::session::Session;
    use autograph_tensor::Tensor;

    #[test]
    fn folds_constants() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(2.0);
        let c = b.scalar(3.0);
        let s = b.add_op(a, c);
        let x = b.placeholder("x");
        let y = b.mul(s, x);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[y]);
        assert!(stats.folded >= 1);
        // the add node became a const
        assert!(og
            .nodes
            .iter()
            .any(|n| matches!(&n.op, OpKind::Const(t) if t.scalar_value_f32() == Ok(5.0))));
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(4.0))], &[keep[0]])
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 20.0);
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let a1 = b.tanh(x);
        let a2 = b.tanh(x);
        let s = b.add_op(a1, a2);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[s]);
        assert_eq!(stats.deduped, 1);
        let tanh_count = og
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Tanh))
            .count();
        assert_eq!(tanh_count, 1);
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(1.0))], &[keep[0]])
            .unwrap();
        assert!((out[0].scalar_value_f32().unwrap() - 2.0 * 1f32.tanh()).abs() < 1e-6);
    }

    #[test]
    fn dce_drops_unreachable() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let used = b.tanh(x);
        let _dead1 = b.sigmoid(x);
        let _dead2 = b.relu(x);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[used]);
        assert_eq!(stats.eliminated, 2);
        assert_eq!(og.len(), 2);
        assert_eq!(keep.len(), 1);
    }

    #[test]
    fn effectful_nodes_never_folded_or_merged() {
        let mut b = GraphBuilder::new();
        let c = b.scalar(1.0);
        let p1 = b.add(OpKind::Print("a".into()), vec![c]);
        let p2 = b.add(OpKind::Print("a".into()), vec![c]);
        let s = b.add_op(p1, p2);
        let g = b.finish();
        let (og, _, _) = optimize(&g, &[s]);
        let prints = og
            .nodes
            .iter()
            .filter(|n| matches!(n.op, OpKind::Print(_)))
            .count();
        assert_eq!(prints, 2);
    }

    #[test]
    fn subgraphs_optimized_recursively() {
        use crate::builder::SubGraphBuilder;
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let pred = {
            let zero = b.scalar(0.0);
            b.add(OpKind::Greater, vec![x, zero])
        };
        let (mut tb, tp) = SubGraphBuilder::new(1);
        let c1 = tb.b.scalar(2.0);
        let c2 = tb.b.scalar(3.0);
        let c3 = tb.b.add_op(c1, c2); // foldable inside subgraph
        let r = tb.b.mul(tp[0], c3);
        let then_g = tb.finish(vec![r]);
        let (eb, ep) = SubGraphBuilder::new(1);
        let else_g = eb.finish(vec![ep[0]]);
        let c = b.cond(pred, vec![x], then_g, else_g);
        let g = b.finish();
        let (og, keep, stats) = optimize(&g, &[c]);
        assert!(stats.folded >= 1);
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(2.0))], &[keep[0]])
            .unwrap();
        assert_eq!(out[0].scalar_value_f32().unwrap(), 10.0);
    }

    #[test]
    fn provenance_records_fold_cse_and_dce() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let a = b.scalar(2.0);
        let c = b.scalar(3.0);
        let folded = b.add_op(a, c); // const-folds to 5.0
        let t1 = b.tanh(x);
        let t2 = b.tanh(x); // CSE-merges into t1
        let dead = b.sigmoid(x); // DCE'd
        let y = {
            let s = b.add_op(t1, t2);
            b.mul(s, folded)
        };
        let _ = dead;
        let g = b.finish();
        let (og, keep, _, trace) = optimize_traced(&g, &[y]);

        // the folded node carries a const_fold record naming its inputs
        let fold_node = og
            .nodes
            .iter()
            .find(|n| n.prov.iter().any(|r| r.pass == "const_fold"))
            .expect("folded node records its pass");
        let rec = &fold_node.prov[0];
        assert_eq!(rec.action, "folded-inputs");
        assert_eq!(rec.sources.len(), 2);
        assert!(fold_node.lineage().contains("const_fold(folded-inputs:"));

        // the surviving tanh absorbed its duplicate
        let survivor = og
            .nodes
            .iter()
            .find(|n| matches!(n.op, OpKind::Tanh))
            .expect("one tanh survives");
        assert!(survivor
            .prov
            .iter()
            .any(|r| r.pass == "cse" && r.action == "absorbed-duplicate"));

        // the trace covers both removal kinds
        assert!(trace
            .eliminated
            .iter()
            .any(|e| e.pass == "cse" && e.op == "tanh" && e.merged_into.is_some()));
        assert!(trace
            .eliminated
            .iter()
            .any(|e| e.pass == "dce" && e.op == "sigmoid" && e.merged_into.is_none()));

        // the optimized graph still computes the right thing
        let mut sess = Session::new(og);
        let out = sess
            .run(&[("x", Tensor::scalar_f32(1.0))], &[keep[0]])
            .unwrap();
        assert!((out[0].scalar_value_f32().unwrap() - 2.0 * 1f32.tanh() * 5.0).abs() < 1e-5);
    }

    #[test]
    fn provenance_is_deterministic_across_reruns() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let a = b.scalar(1.0);
        let c = b.scalar(1.0);
        let s = b.add_op(a, c);
        let t1 = b.tanh(x);
        let t2 = b.tanh(x);
        let u = b.add_op(t1, t2);
        let y = b.mul(u, s);
        let g = b.finish();
        let (g1, k1, _, t1_) = optimize_traced(&g, &[y]);
        let (g2, k2, _, t2_) = optimize_traced(&g, &[y]);
        assert_eq!(g1, g2);
        assert_eq!(k1, k2);
        assert_eq!(t1_, t2_);
        assert_eq!(format!("{g1:?}{t1_:?}"), format!("{g2:?}{t2_:?}"));
    }

    #[test]
    fn optimization_preserves_variable_semantics() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(1.0));
        let two = b.scalar(2.0);
        let doubled = b.mul(w, two);
        let assign = b.assign("w", doubled);
        let g = b.finish();
        let (og, keep, _) = optimize(&g, &[assign]);
        let mut sess = Session::new(og);
        sess.run(&[], &[keep[0]]).unwrap();
        sess.run(&[], &[keep[0]]).unwrap();
        assert_eq!(sess.variable("w").unwrap().scalar_value_f32().unwrap(), 4.0);
    }
}
