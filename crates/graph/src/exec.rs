//! The graph evaluator: executes nodes in a precomputed topological plan,
//! handling feeds, variables, and functional control flow.
//!
//! Every node evaluation runs inside a `catch_unwind` boundary: a kernel
//! panic becomes a [`GraphError`] carrying the node name and staged
//! source span instead of aborting the process. Run limits (deadline,
//! cancellation, while-iteration caps — see [`crate::run`]) are checked
//! at node-dispatch and loop-iteration granularity.

// The executor error paths must never themselves panic: a stray unwrap
// here would defeat the catch_unwind contract. Enforced by CI.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::panic_message;
use crate::ir::{GValue, Graph, NodeId, OpKind, SubGraph};
use crate::ops;
use crate::run::RunCtx;
use crate::{GraphError, Result};
use autograph_faults as faults;
use autograph_obs as obs;
use autograph_tensor::Tensor;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The state threaded through one evaluation: feed values and the mutable
/// variable store.
pub struct ExecEnv<'a> {
    /// Feed values by placeholder name.
    pub feeds: &'a HashMap<String, Tensor>,
    /// Variable store (persists across `Session::run` calls).
    pub variables: &'a mut HashMap<String, Tensor>,
}

/// A compiled execution plan: the nodes needed for a fetch set, in
/// topological order. Computing the plan once and reusing it across run
/// calls is what makes graph execution cheap per step — the "whole-program"
/// half of the paper's performance story.
#[derive(Debug, Clone)]
pub struct Plan {
    order: Vec<NodeId>,
    /// Scheduling metadata (consumer lists, pending counts, control
    /// edges) for the parallel executor; computed once at compile time.
    wave: crate::sched::WaveMeta,
    /// The fetch set the plan was compiled for; fusion in the bytecode
    /// tier must keep these nodes materialized.
    fetches: Vec<NodeId>,
    /// Lazily-lowered bytecode program for [`crate::vm`]; built on first
    /// VM-mode run and shared across runs (and plan clones made before
    /// the first run compile independently).
    vm: std::sync::OnceLock<std::sync::Arc<crate::compile::Program>>,
}

impl Plan {
    /// Build a plan covering `fetches`.
    pub fn compile(graph: &Graph, fetches: &[NodeId]) -> Result<Plan> {
        let mut needed = vec![false; graph.nodes.len()];
        let mut stack: Vec<NodeId> = fetches.to_vec();
        // Assertions and prints execute even when their value is unused
        // (the control-dependency wiring real AutoGraph adds).
        for (i, n) in graph.nodes.iter().enumerate() {
            if matches!(n.op, OpKind::AssertOp(_) | OpKind::Print(_)) {
                stack.push(i);
            }
        }
        while let Some(n) = stack.pop() {
            if n >= graph.nodes.len() {
                return Err(GraphError::staging(format!(
                    "fetch of unknown node id {n} (graph has {} nodes)",
                    graph.nodes.len()
                )));
            }
            if needed[n] {
                continue;
            }
            needed[n] = true;
            stack.extend(graph.nodes[n].inputs.iter().copied());
        }
        // nodes are stored in creation order, which is already topological
        let order: Vec<NodeId> = (0..graph.nodes.len()).filter(|&i| needed[i]).collect();
        let wave = crate::sched::wave_meta(graph, order.clone());
        Ok(Plan {
            order,
            wave,
            fetches: fetches.to_vec(),
            vm: std::sync::OnceLock::new(),
        })
    }

    /// Build a plan covering `fetches` with an already-lowered bytecode
    /// program pre-seeded, so the first VM-mode run skips lowering —
    /// the warm-restage path of the persistent plan cache.
    pub(crate) fn with_program(
        graph: &Graph,
        fetches: &[NodeId],
        program: std::sync::Arc<crate::compile::Program>,
    ) -> Result<Plan> {
        let plan = Plan::compile(graph, fetches)?;
        let _ = plan.vm.set(program);
        Ok(plan)
    }

    /// Number of nodes the plan executes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The plan's node set in execution (topological) order.
    pub(crate) fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Execute the plan, returning the values of `fetches`.
    ///
    /// # Errors
    ///
    /// Returns runtime errors annotated with the failing node's name and
    /// staged source span.
    pub fn run(
        &self,
        graph: &Graph,
        env: &mut ExecEnv<'_>,
        fetches: &[NodeId],
    ) -> Result<Vec<GValue>> {
        self.run_ctx(graph, env, fetches, &RunCtx::unbounded())
    }

    /// [`Plan::run`] under explicit run limits (deadline/cancel/loop
    /// caps); progress counters accumulate into `ctx` even on failure.
    pub(crate) fn run_ctx(
        &self,
        graph: &Graph,
        env: &mut ExecEnv<'_>,
        fetches: &[NodeId],
        ctx: &RunCtx,
    ) -> Result<Vec<GValue>> {
        // PROFILE_NODES=1 / AUTOGRAPH_FAULTS compatibility: install from
        // the environment on first use. One OnceLock load afterwards.
        obs::env::maybe_init_from_env();
        faults::maybe_init_from_env();
        let mut values: Vec<Option<GValue>> = vec![None; graph.nodes.len()];
        let mut inbuf: Vec<GValue> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = &graph.nodes[id];
            // per-node cost collection (reporting sessions only): time
            // the evaluation and attribute this thread's allocations
            let started = ctx.collector.as_ref().map(|_| {
                (
                    std::time::Instant::now(),
                    autograph_tensor::mem::thread_allocated(),
                )
            });
            let v = eval_node_guarded(graph, id, &values, env, &mut inbuf, ctx);
            if let (Some(col), Some((t0, alloc0))) = (ctx.collector.as_ref(), started) {
                col.record(
                    id,
                    t0.elapsed().as_nanos() as u64,
                    autograph_tensor::mem::thread_allocated().wrapping_sub(alloc0),
                );
            }
            let v = v.map_err(|e| e.at_node(node.name.clone()).at_span(node.span))?;
            values[id] = Some(v);
        }
        fetches
            .iter()
            .map(|&f| {
                values[f]
                    .clone()
                    .ok_or_else(|| GraphError::runtime(format!("fetch {f} was not computed")))
            })
            .collect()
    }

    /// Execute the plan with up to `threads` threads. `threads <= 1`
    /// reproduces [`Plan::run`] exactly (same code path); larger values
    /// dispatch ready nodes to the shared worker pool via the wavefront
    /// scheduler in `crate::sched`. Results are bitwise identical at
    /// any thread count — see the determinism notes in `sched.rs`.
    ///
    /// # Errors
    ///
    /// Returns runtime errors annotated with the failing node's name and
    /// staged source span; under parallel execution the first error wins
    /// and remaining queued nodes are skipped.
    pub fn run_threads(
        &self,
        graph: &Graph,
        env: &mut ExecEnv<'_>,
        fetches: &[NodeId],
        threads: usize,
    ) -> Result<Vec<GValue>> {
        self.run_threads_ctx(graph, env, fetches, threads, &RunCtx::unbounded())
    }

    /// [`Plan::run_threads`] under explicit run limits.
    pub(crate) fn run_threads_ctx(
        &self,
        graph: &Graph,
        env: &mut ExecEnv<'_>,
        fetches: &[NodeId],
        threads: usize,
        ctx: &RunCtx,
    ) -> Result<Vec<GValue>> {
        if threads <= 1 {
            return self.run_ctx(graph, env, fetches, ctx);
        }
        autograph_par::configure(threads);
        crate::sched::run_plan_parallel(graph, &self.wave, env, fetches, ctx)
    }

    /// Execute the plan through the compiled bytecode tier (see
    /// [`crate::compile`] and [`crate::vm`]). The program is lowered on
    /// the first call and cached on the plan. The VM's instruction
    /// stream is linear on the calling thread, so results are bitwise
    /// identical at every thread count by construction; `threads` still
    /// configures the worker pool for tensor kernels that parallelize
    /// internally.
    pub(crate) fn run_vm_ctx(
        &self,
        graph: &Graph,
        env: &mut ExecEnv<'_>,
        fetches: &[NodeId],
        threads: usize,
        ctx: &RunCtx,
    ) -> Result<Vec<GValue>> {
        if threads > 1 {
            autograph_par::configure(threads);
        }
        let program = self
            .vm
            .get_or_init(|| {
                std::sync::Arc::new(crate::compile::compile(graph, &self.order, &self.fetches))
            })
            .clone();
        crate::vm::run_program(&program, env, fetches, ctx)
    }
}

/// Fill `buf` with clones of the node's input values (cheap `Arc` bumps).
fn gather_inputs<'a>(
    graph: &Graph,
    id: NodeId,
    values: &[Option<GValue>],
    buf: &'a mut Vec<GValue>,
) -> Result<&'a [GValue]> {
    buf.clear();
    for &i in &graph.nodes[id].inputs {
        match &values[i] {
            Some(v) => buf.push(v.clone()),
            None => {
                return Err(GraphError::runtime(format!(
                    "input node {i} not yet computed"
                )))
            }
        }
    }
    Ok(buf)
}

/// Evaluate one node behind a `catch_unwind` boundary: a panicking
/// kernel surfaces as a [`GraphError`] (the caller attaches node name and
/// span) and the process keeps running. Inner control flow installs its
/// own boundaries per node, so panics are attributed to the innermost
/// failing node.
fn eval_node_guarded(
    graph: &Graph,
    id: NodeId,
    values: &[Option<GValue>],
    env: &mut ExecEnv<'_>,
    inbuf: &mut Vec<GValue>,
    ctx: &RunCtx,
) -> Result<GValue> {
    match catch_unwind(AssertUnwindSafe(|| {
        eval_node(graph, id, values, env, inbuf, ctx)
    })) {
        Ok(r) => r,
        Err(payload) => Err(GraphError::panic(format!(
            "kernel panicked: {}",
            panic_message(payload.as_ref())
        ))),
    }
}

fn eval_node(
    graph: &Graph,
    id: NodeId,
    values: &[Option<GValue>],
    env: &mut ExecEnv<'_>,
    inbuf: &mut Vec<GValue>,
    ctx: &RunCtx,
) -> Result<GValue> {
    ctx.before_node()?;
    let node = &graph.nodes[id];
    match &node.op {
        OpKind::Placeholder { name } => env
            .feeds
            .get(name)
            .cloned()
            .map(GValue::Tensor)
            .ok_or_else(|| GraphError::runtime(format!("placeholder '{name}' was not fed"))),
        OpKind::Variable { name } => env
            .variables
            .get(name)
            .cloned()
            .map(GValue::Tensor)
            .ok_or_else(|| GraphError::runtime(format!("variable '{name}' is not initialized"))),
        OpKind::Assign { name } => {
            let inputs = gather_inputs(graph, id, values, inbuf)?;
            let v = inputs[0].as_tensor()?.clone();
            env.variables.insert(name.clone(), v.clone());
            Ok(GValue::Tensor(v))
        }
        OpKind::Group => {
            let inputs = gather_inputs(graph, id, values, inbuf)?;
            Ok(inputs.last().cloned().unwrap_or(GValue::Tuple(vec![])))
        }
        OpKind::Param(i) => Err(GraphError::staging(format!(
            "param {i} evaluated outside a subgraph"
        ))),
        OpKind::Cond { then_g, else_g } => {
            let inputs = gather_inputs(graph, id, values, inbuf)?.to_vec();
            let pred = ops::as_bool_scalar(&inputs[0])?;
            if obs::enabled() {
                obs::count(
                    "graph",
                    if pred {
                        "cond_then_taken"
                    } else {
                        "cond_else_taken"
                    },
                    1,
                );
            }
            let args = &inputs[1..];
            let branch = if pred { then_g } else { else_g };
            let outs = eval_subgraph_ctx(branch, args, env, ctx)?;
            Ok(pack_outputs(outs))
        }
        OpKind::While {
            cond_g,
            body_g,
            max_iters,
        } => {
            let mut state = gather_inputs(graph, id, values, inbuf)?.to_vec();
            let mut iters = 0u64;
            let limit = ctx.while_limit(*max_iters);
            // scratch buffers and pruned execution orders are computed
            // once per loop execution and reused across iterations — the
            // executor's job is to make staged loops cheap per step
            let mut cond_scratch: Vec<Option<GValue>> = vec![None; cond_g.graph.nodes.len()];
            let mut body_scratch: Vec<Option<GValue>> = vec![None; body_g.graph.nodes.len()];
            let cond_order = subgraph_order(cond_g);
            let body_order = subgraph_order(body_g);
            let outcome = loop {
                let keep = match eval_subgraph_pruned(
                    cond_g,
                    &state,
                    env,
                    &mut cond_scratch,
                    &cond_order,
                    ctx,
                )
                .and_then(|c| {
                    c.first()
                        .ok_or_else(|| GraphError::runtime("while condition returned nothing"))
                        .and_then(ops::as_bool_scalar)
                }) {
                    Ok(k) => k,
                    Err(e) => break Err(e),
                };
                if !keep {
                    break Ok(());
                }
                state = match eval_subgraph_pruned(
                    body_g,
                    &state,
                    env,
                    &mut body_scratch,
                    &body_order,
                    ctx,
                ) {
                    Ok(s) => s,
                    Err(e) => break Err(e),
                };
                iters += 1;
                if let Err(e) = ctx.after_while_iter() {
                    break Err(e);
                }
                if let Some(limit) = limit {
                    if iters >= limit {
                        break Err(GraphError::runtime(format!(
                            "while loop exceeded max_iters={limit}"
                        )));
                    }
                }
            };
            // flush the partial iteration count even when the loop failed,
            // so metrics and traces of failed runs reflect work done.
            // observe() is a no-op (one relaxed atomic load) when disabled
            obs::observe("graph", "while_iters", iters);
            outcome?;
            Ok(GValue::Tuple(state))
        }
        _ => {
            let inputs = gather_inputs(graph, id, values, inbuf)?;
            // chaos-test hook; one relaxed atomic load when no plan is
            // installed
            faults::inject("graph", node.op.mnemonic())
                .map_err(|e| GraphError::runtime(e.to_string()))?;
            if obs::enabled() {
                obs::count("graph", "node_evals", 1);
                let _span = obs::span("graph_op", node.op.mnemonic());
                ops::execute(&node.op, inputs)
            } else {
                ops::execute(&node.op, inputs)
            }
        }
    }
}

pub(crate) fn pack_outputs(mut outs: Vec<GValue>) -> GValue {
    match outs.len() {
        1 => match outs.pop() {
            Some(v) => v,
            None => GValue::Tuple(vec![]),
        },
        _ => GValue::Tuple(outs),
    }
}

/// Evaluate a subgraph with `args` bound to its params; returns the values
/// of its declared outputs.
pub fn eval_subgraph(
    sub: &SubGraph,
    args: &[GValue],
    env: &mut ExecEnv<'_>,
) -> Result<Vec<GValue>> {
    eval_subgraph_ctx(sub, args, env, &RunCtx::unbounded())
}

/// [`eval_subgraph`] under explicit run limits.
pub(crate) fn eval_subgraph_ctx(
    sub: &SubGraph,
    args: &[GValue],
    env: &mut ExecEnv<'_>,
    ctx: &RunCtx,
) -> Result<Vec<GValue>> {
    let mut scratch: Vec<Option<GValue>> = vec![None; sub.graph.nodes.len()];
    // prune to output-reachable (+ effectful) nodes: inside loop bodies a
    // Cond executes per iteration, so skipping dead branch plumbing pays
    let order = subgraph_order(sub);
    eval_subgraph_pruned(sub, args, env, &mut scratch, &order, ctx)
}

/// Pruned execution order for a subgraph: nodes reachable from its
/// outputs, plus effectful nodes (asserts, prints, assigns) which execute
/// unconditionally.
pub(crate) fn subgraph_order(sub: &SubGraph) -> Vec<NodeId> {
    let n = sub.graph.nodes.len();
    let mut needed = vec![false; n];
    let mut stack: Vec<NodeId> = sub.outputs.clone();
    for (i, node) in sub.graph.nodes.iter().enumerate() {
        if matches!(
            node.op,
            OpKind::AssertOp(_) | OpKind::Print(_) | OpKind::Assign { .. }
        ) {
            stack.push(i);
        }
    }
    while let Some(id) = stack.pop() {
        if needed[id] {
            continue;
        }
        needed[id] = true;
        stack.extend(sub.graph.nodes[id].inputs.iter().copied());
    }
    (0..n).filter(|&i| needed[i]).collect()
}

/// Evaluate a subgraph along a precomputed pruned order.
fn eval_subgraph_pruned(
    sub: &SubGraph,
    args: &[GValue],
    env: &mut ExecEnv<'_>,
    values: &mut [Option<GValue>],
    order: &[NodeId],
    ctx: &RunCtx,
) -> Result<Vec<GValue>> {
    if args.len() != sub.num_params {
        return Err(GraphError::runtime(format!(
            "subgraph expects {} arguments, got {}",
            sub.num_params,
            args.len()
        )));
    }
    debug_assert_eq!(values.len(), sub.graph.nodes.len());
    for v in values.iter_mut() {
        *v = None;
    }
    let mut inbuf: Vec<GValue> = Vec::with_capacity(8);
    for &id in order {
        let node = &sub.graph.nodes[id];
        let v = match &node.op {
            OpKind::Param(i) => args
                .get(*i)
                .cloned()
                .ok_or_else(|| GraphError::runtime(format!("missing subgraph argument {i}"))),
            _ => eval_node_guarded(&sub.graph, id, values, env, &mut inbuf, ctx),
        }
        .map_err(|e| e.at_node(node.name.clone()).at_span(node.span))?;
        values[id] = Some(v);
    }
    sub.outputs
        .iter()
        .map(|&o| {
            values[o]
                .clone()
                .ok_or_else(|| GraphError::runtime(format!("subgraph output {o} not computed")))
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, SubGraphBuilder};

    fn env_run(graph: &Graph, fetches: &[NodeId]) -> Vec<GValue> {
        let feeds = HashMap::new();
        let mut vars: HashMap<String, Tensor> = graph.variables.iter().cloned().collect();
        let mut env = ExecEnv {
            feeds: &feeds,
            variables: &mut vars,
        };
        let plan = Plan::compile(graph, fetches).unwrap();
        plan.run(graph, &mut env, fetches).unwrap()
    }

    #[test]
    fn plan_prunes_unneeded_nodes() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        let used = b.add_op(a, c);
        let _unused = b.mul(a, c);
        let g = b.finish();
        let plan = Plan::compile(&g, &[used]).unwrap();
        assert_eq!(plan.len(), 3);
    }

    #[test]
    fn arithmetic_through_plan() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(3.0);
        let c = b.scalar(4.0);
        let s = b.add_op(a, c);
        let sq = b.mul(s, s);
        let g = b.finish();
        let out = env_run(&g, &[sq]);
        assert_eq!(
            out[0].as_tensor().unwrap().scalar_value_f32().unwrap(),
            49.0
        );
    }

    #[test]
    fn placeholder_feed_and_missing_feed() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let two = b.scalar(2.0);
        let y = b.mul(x, two);
        let g = b.finish();
        let mut feeds = HashMap::new();
        feeds.insert("x".to_string(), Tensor::scalar_f32(5.0));
        let mut vars = HashMap::new();
        let mut env = ExecEnv {
            feeds: &feeds,
            variables: &mut vars,
        };
        let plan = Plan::compile(&g, &[y]).unwrap();
        let out = plan.run(&g, &mut env, &[y]).unwrap();
        assert_eq!(
            out[0].as_tensor().unwrap().scalar_value_f32().unwrap(),
            10.0
        );

        let empty = HashMap::new();
        let mut env2 = ExecEnv {
            feeds: &empty,
            variables: &mut vars,
        };
        let err = plan.run(&g, &mut env2, &[y]).unwrap_err();
        assert!(err.to_string().contains("was not fed"));
    }

    #[test]
    fn variables_and_assign() {
        let mut b = GraphBuilder::new();
        let w = b.variable("w", Tensor::scalar_f32(1.0));
        let one = b.scalar(1.0);
        let next = b.add_op(w, one);
        let assign = b.assign("w", next);
        let g = b.finish();

        let feeds = HashMap::new();
        let mut vars: HashMap<String, Tensor> = g.variables.iter().cloned().collect();
        let plan = Plan::compile(&g, &[assign]).unwrap();
        for step in 1..=3 {
            let mut env = ExecEnv {
                feeds: &feeds,
                variables: &mut vars,
            };
            let out = plan.run(&g, &mut env, &[assign]).unwrap();
            assert_eq!(
                out[0].as_tensor().unwrap().scalar_value_f32().unwrap(),
                1.0 + step as f32
            );
        }
        assert_eq!(vars["w"].scalar_value_f32().unwrap(), 4.0);
    }

    #[test]
    fn cond_takes_correct_branch() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let zero = b.scalar(0.0);
        let pred = b.add(OpKind::Greater, vec![x, zero]);
        let (mut tb, tp) = SubGraphBuilder::new(1);
        let sq = tb.b.mul(tp[0], tp[0]);
        let then_g = tb.finish(vec![sq]);
        let (mut eb, ep) = SubGraphBuilder::new(1);
        let neg = eb.b.add(OpKind::Neg, vec![ep[0]]);
        let else_g = eb.finish(vec![neg]);
        let c = b.cond(pred, vec![x], then_g, else_g);
        let g = b.finish();

        for (input, expected) in [(3.0f32, 9.0f32), (-4.0, 4.0)] {
            let mut feeds = HashMap::new();
            feeds.insert("x".to_string(), Tensor::scalar_f32(input));
            let mut vars = HashMap::new();
            let mut env = ExecEnv {
                feeds: &feeds,
                variables: &mut vars,
            };
            let plan = Plan::compile(&g, &[c]).unwrap();
            let out = plan.run(&g, &mut env, &[c]).unwrap();
            assert_eq!(
                out[0].as_tensor().unwrap().scalar_value_f32().unwrap(),
                expected
            );
        }
    }

    #[test]
    fn while_loop_counts() {
        // while i < 10: i = i + 1; s = s + i
        let mut b = GraphBuilder::new();
        let i0 = b.scalar(0.0);
        let s0 = b.scalar(0.0);
        let (mut cb, cp) = SubGraphBuilder::new(2);
        let ten = cb.b.scalar(10.0);
        let lt = cb.b.add(OpKind::Less, vec![cp[0], ten]);
        let cond_g = cb.finish(vec![lt]);
        let (mut bb, bp) = SubGraphBuilder::new(2);
        let one = bb.b.scalar(1.0);
        let i1 = bb.b.add_op(bp[0], one);
        let s1 = bb.b.add_op(bp[1], i1);
        let body_g = bb.finish(vec![i1, s1]);
        let w = b.while_loop(vec![i0, s0], cond_g, body_g);
        let s_final = b.tuple_get(w, 1);
        let g = b.finish();
        let out = env_run(&g, &[s_final]);
        assert_eq!(
            out[0].as_tensor().unwrap().scalar_value_f32().unwrap(),
            55.0
        );
    }

    #[test]
    fn while_zero_trips() {
        let mut b = GraphBuilder::new();
        let i0 = b.scalar(100.0);
        let (mut cb, cp) = SubGraphBuilder::new(1);
        let ten = cb.b.scalar(10.0);
        let lt = cb.b.add(OpKind::Less, vec![cp[0], ten]);
        let cond_g = cb.finish(vec![lt]);
        let (mut bb, bp) = SubGraphBuilder::new(1);
        let one = bb.b.scalar(1.0);
        let i1 = bb.b.add_op(bp[0], one);
        let body_g = bb.finish(vec![i1]);
        let w = b.while_loop(vec![i0], cond_g, body_g);
        let i_final = b.tuple_get(w, 0);
        let g = b.finish();
        let out = env_run(&g, &[i_final]);
        assert_eq!(
            out[0].as_tensor().unwrap().scalar_value_f32().unwrap(),
            100.0
        );
    }

    #[test]
    fn while_max_iters_guard() {
        let mut b = GraphBuilder::new();
        let i0 = b.scalar(0.0);
        let (mut cb, _cp) = SubGraphBuilder::new(1);
        let t = cb.b.constant(Tensor::scalar_bool(true));
        let cond_g = cb.finish(vec![t]);
        let (bb, bp) = SubGraphBuilder::new(1);
        let body_g = bb.finish(vec![bp[0]]);
        let w = b.add(
            OpKind::While {
                cond_g,
                body_g,
                max_iters: Some(5),
            },
            vec![i0],
        );
        let g = b.finish();
        let feeds = HashMap::new();
        let mut vars = HashMap::new();
        let mut env = ExecEnv {
            feeds: &feeds,
            variables: &mut vars,
        };
        let plan = Plan::compile(&g, &[w]).unwrap();
        let err = plan.run(&g, &mut env, &[w]).unwrap_err();
        assert!(err.to_string().contains("max_iters"));
    }

    #[test]
    fn error_carries_node_name() {
        let mut b = GraphBuilder::new();
        let bad = b.constant(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let m = b.matmul(bad, bad); // rank-1 matmul fails at runtime
        let g = b.finish();
        let feeds = HashMap::new();
        let mut vars = HashMap::new();
        let mut env = ExecEnv {
            feeds: &feeds,
            variables: &mut vars,
        };
        let plan = Plan::compile(&g, &[m]).unwrap();
        let err = plan.run(&g, &mut env, &[m]).unwrap_err();
        assert!(err.to_string().contains("matmul_"), "{err}");
    }

    #[test]
    fn bad_fetch_rejected_at_compile() {
        let g = GraphBuilder::new().finish();
        assert!(Plan::compile(&g, &[3]).is_err());
    }
}
