//! Kernel implementations: executing one pure op on already-computed
//! input values. Stateful and structural ops (placeholders, variables,
//! control flow) are handled by the executor in [`crate::exec`].

use crate::ir::{GValue, OpKind};
use crate::{GraphError, Result};
use autograph_obs as obs;
use autograph_tensor::{DType, Tensor};

fn t(inputs: &[GValue], i: usize) -> Result<&Tensor> {
    inputs
        .get(i)
        .ok_or_else(|| GraphError::runtime(format!("missing input {i}")))?
        .as_tensor()
}

fn arr(inputs: &[GValue], i: usize) -> Result<&Vec<Tensor>> {
    inputs
        .get(i)
        .ok_or_else(|| GraphError::runtime(format!("missing input {i}")))?
        .as_array()
}

/// Execute a pure op over its input values.
///
/// # Errors
///
/// Propagates kernel failures (shape/dtype mismatches etc.) as runtime
/// [`GraphError`]s; returns a staging-phase error for ops the evaluator
/// should have intercepted (control flow, state).
pub fn execute(op: &OpKind, inputs: &[GValue]) -> Result<GValue> {
    use OpKind::*;
    let out: GValue = match op {
        Const(c) => c.clone().into(),
        Add => t(inputs, 0)?.add(t(inputs, 1)?)?.into(),
        Sub => t(inputs, 0)?.sub(t(inputs, 1)?)?.into(),
        Mul => t(inputs, 0)?.mul(t(inputs, 1)?)?.into(),
        Div => t(inputs, 0)?.div(t(inputs, 1)?)?.into(),
        FloorDiv => t(inputs, 0)?.floordiv(t(inputs, 1)?)?.into(),
        Mod => t(inputs, 0)?.rem(t(inputs, 1)?)?.into(),
        Pow => t(inputs, 0)?.pow(t(inputs, 1)?)?.into(),
        Maximum => t(inputs, 0)?.maximum(t(inputs, 1)?)?.into(),
        Minimum => t(inputs, 0)?.minimum(t(inputs, 1)?)?.into(),
        Neg => t(inputs, 0)?.neg()?.into(),
        Abs => t(inputs, 0)?.abs()?.into(),
        Sqrt => t(inputs, 0)?.sqrt()?.into(),
        Exp => t(inputs, 0)?.exp()?.into(),
        Log => t(inputs, 0)?.log()?.into(),
        Square => t(inputs, 0)?.square()?.into(),
        Tanh => t(inputs, 0)?.tanh()?.into(),
        Sigmoid => t(inputs, 0)?.sigmoid()?.into(),
        Relu => t(inputs, 0)?.relu()?.into(),
        Softmax => t(inputs, 0)?.softmax()?.into(),
        LogSoftmax => t(inputs, 0)?.log_softmax()?.into(),
        SoftmaxCrossEntropy => Tensor::softmax_cross_entropy(t(inputs, 0)?, t(inputs, 1)?)?.into(),
        Less => t(inputs, 0)?.less(t(inputs, 1)?)?.into(),
        LessEqual => t(inputs, 0)?.less_equal(t(inputs, 1)?)?.into(),
        Greater => t(inputs, 0)?.greater(t(inputs, 1)?)?.into(),
        GreaterEqual => t(inputs, 0)?.greater_equal(t(inputs, 1)?)?.into(),
        Equal => t(inputs, 0)?.equal(t(inputs, 1)?)?.into(),
        NotEqual => t(inputs, 0)?.not_equal(t(inputs, 1)?)?.into(),
        LogicalAnd => t(inputs, 0)?.logical_and(t(inputs, 1)?)?.into(),
        LogicalOr => t(inputs, 0)?.logical_or(t(inputs, 1)?)?.into(),
        LogicalNot => t(inputs, 0)?.logical_not()?.into(),
        Select => Tensor::select(t(inputs, 0)?, t(inputs, 1)?, t(inputs, 2)?)?.into(),
        MatMul => t(inputs, 0)?.matmul(t(inputs, 1)?)?.into(),
        Transpose(perm) => t(inputs, 0)?.transpose(perm)?.into(),
        Reshape(shape) => t(inputs, 0)?.reshape(shape)?.into(),
        ExpandDims(axis) => t(inputs, 0)?.expand_dims(*axis)?.into(),
        Squeeze(axis) => t(inputs, 0)?.squeeze(*axis)?.into(),
        Cast(dtype) => t(inputs, 0)?.cast(*dtype).into(),
        Shape => {
            let shape: Vec<i64> = t(inputs, 0)?.shape().iter().map(|&d| d as i64).collect();
            let n = shape.len();
            Tensor::from_vec_i64(shape, &[n])
                .expect("shape vector construction")
                .into()
        }
        Size => Tensor::scalar_f32(t(inputs, 0)?.num_elements() as f32).into(),
        DimSize(axis) => {
            let x = t(inputs, 0)?;
            let rank = x.rank() as isize;
            let ax = if *axis < 0 { *axis + rank } else { *axis };
            if ax < 0 || ax >= rank {
                return Err(GraphError::runtime(format!(
                    "dim_size axis {axis} out of range for rank {rank}"
                )));
            }
            Tensor::scalar_f32(x.shape()[ax as usize] as f32).into()
        }
        Range => Tensor::range_i64(t(inputs, 0)?.scalar_value_i64()?).into(),
        TileAxis0(reps) => t(inputs, 0)?.tile_axis0(*reps)?.into(),
        ReduceSum(axis) => t(inputs, 0)?.reduce_sum(*axis)?.into(),
        ReduceMean(axis) => t(inputs, 0)?.reduce_mean(*axis)?.into(),
        ReduceMax(axis) => t(inputs, 0)?.reduce_max(*axis)?.into(),
        ReduceMin(axis) => t(inputs, 0)?.reduce_min(*axis)?.into(),
        ReduceAll(axis) => t(inputs, 0)?.reduce_all(*axis)?.into(),
        ReduceAny(axis) => t(inputs, 0)?.reduce_any(*axis)?.into(),
        ArgMax(axis) => t(inputs, 0)?.argmax(*axis)?.into(),
        IndexAxis0 => {
            let i = t(inputs, 1)?.scalar_value_i64()?;
            t(inputs, 0)?.index_axis0(i)?.into()
        }
        SliceAxis0 { start, stop } => t(inputs, 0)?.slice_axis0(*start, *stop)?.into(),
        SetItemAxis0 => {
            let i = t(inputs, 1)?.scalar_value_i64()?;
            t(inputs, 0)?.set_index_axis0(i, t(inputs, 2)?)?.into()
        }
        Gather => t(inputs, 0)?.gather(t(inputs, 1)?)?.into(),
        OneHot(depth) => t(inputs, 0)?.one_hot(*depth)?.into(),
        TopK(k) => {
            let (v, i) = t(inputs, 0)?.top_k(*k)?;
            GValue::Tuple(vec![GValue::Tensor(v), GValue::Tensor(i)])
        }
        TopKValues(k) => t(inputs, 0)?.top_k(*k)?.0.into(),
        TopKIndices(k) => t(inputs, 0)?.top_k(*k)?.1.into(),
        Concat(axis) => {
            let ts: Result<Vec<Tensor>> =
                (0..inputs.len()).map(|i| t(inputs, i).cloned()).collect();
            Tensor::concat(&ts?, *axis)?.into()
        }
        StackOp => {
            let ts: Result<Vec<Tensor>> =
                (0..inputs.len()).map(|i| t(inputs, i).cloned()).collect();
            Tensor::stack(&ts?)?.into()
        }
        SumToShape => sum_to_shape(t(inputs, 0)?, t(inputs, 1)?.shape())?.into(),
        BroadcastLike => {
            let g = t(inputs, 0)?;
            let r = t(inputs, 1)?;
            if g.shape() == r.shape() {
                g.clone().into()
            } else {
                g.add(&Tensor::zeros(DType::F32, r.shape()))?.into()
            }
        }
        ReshapeLike => {
            let r_shape = t(inputs, 1)?.shape().to_vec();
            t(inputs, 0)?.reshape(&r_shape)?.into()
        }
        XentGrad => {
            let logits = t(inputs, 0)?;
            let labels = t(inputs, 1)?;
            let sm = logits.softmax()?;
            let classes = *logits
                .shape()
                .last()
                .ok_or_else(|| GraphError::runtime("xent_grad expects rank-2 logits"))?;
            let oh = labels.one_hot(classes)?;
            let batch = logits.shape()[0].max(1) as f32;
            sm.sub(&oh)?.div(&Tensor::scalar_f32(batch))?.into()
        }
        ArrayNew => GValue::Array(Vec::new()),
        ArrayPush => {
            let mut a = arr(inputs, 0)?.clone();
            a.push(t(inputs, 1)?.clone());
            GValue::Array(a)
        }
        ArrayPop => {
            let mut a = arr(inputs, 0)?.clone();
            let v = a
                .pop()
                .ok_or_else(|| GraphError::runtime("pop from empty tensor array"))?;
            GValue::Tuple(vec![GValue::Array(a), GValue::Tensor(v)])
        }
        ArrayWrite => {
            let mut a = arr(inputs, 0)?.clone();
            let i = t(inputs, 1)?.scalar_value_i64()?;
            if i < 0 {
                return Err(GraphError::runtime(format!(
                    "array write at negative index {i}"
                )));
            }
            let i = i as usize;
            let v = t(inputs, 2)?.clone();
            if i >= a.len() {
                a.resize(i + 1, Tensor::scalar_f32(0.0));
            }
            a[i] = v;
            GValue::Array(a)
        }
        ArrayRead => {
            let a = arr(inputs, 0)?;
            let i = t(inputs, 1)?.scalar_value_i64()?;
            let idx = if i < 0 { i + a.len() as i64 } else { i };
            a.get(idx.max(0) as usize)
                .filter(|_| idx >= 0)
                .cloned()
                .map(GValue::Tensor)
                .ok_or_else(|| {
                    GraphError::runtime(format!(
                        "array read index {i} out of range for length {}",
                        a.len()
                    ))
                })?
        }
        ArrayStack => {
            let a = arr(inputs, 0)?;
            if a.is_empty() {
                return Err(GraphError::runtime("cannot stack an empty tensor array"));
            }
            Tensor::stack(a)?.into()
        }
        ArraySize => Tensor::scalar_i64(arr(inputs, 0)?.len() as i64).into(),
        TupleOp => GValue::Tuple(inputs.to_vec()),
        TupleGet(i) => match inputs.first() {
            Some(GValue::Tuple(items)) => items
                .get(*i)
                .cloned()
                .ok_or_else(|| GraphError::runtime(format!("tuple index {i} out of range")))?,
            _ => return Err(GraphError::runtime("tuple_get on non-tuple")),
        },
        Identity | StopGradient => inputs
            .first()
            .cloned()
            .ok_or_else(|| GraphError::runtime("identity with no input"))?,
        Print(prefix) => {
            let v = t(inputs, 0)?;
            let line = format!("{prefix}{v}");
            // a print-capturing recorder (tests, profiling) swallows the
            // line; otherwise keep the user-visible stdout behavior
            if !obs::emit_print(&line) {
                println!("{line}");
            }
            v.clone().into()
        }
        AssertOp(msg) => {
            let v = t(inputs, 0)?;
            if !v.scalar_value_bool().map_err(|e| {
                GraphError::runtime(format!("assert condition must be a scalar bool: {e}"))
            })? {
                return Err(GraphError::runtime(format!("assertion failed: {msg}")));
            }
            v.clone().into()
        }
        Placeholder { .. }
        | Variable { .. }
        | Param(_)
        | Assign { .. }
        | Group
        | Cond { .. }
        | While { .. } => {
            return Err(GraphError::staging(format!(
                "op '{}' must be handled by the evaluator, not the kernel table",
                op.mnemonic()
            )));
        }
    };
    Ok(out)
}

/// Reduce-sum `g` over broadcast dimensions so its shape becomes
/// `target` (the adjoint of NumPy broadcasting).
#[allow(clippy::needless_range_loop)]
fn sum_to_shape(g: &Tensor, target: &[usize]) -> Result<Tensor> {
    if g.shape() == target {
        return Ok(g.clone());
    }
    let mut out = g.clone();
    // collapse leading broadcast dimensions
    while out.rank() > target.len() {
        out = out.reduce_sum(Some(0))?;
    }
    // collapse size-1 target dims that were broadcast up
    for ax in 0..target.len() {
        if target[ax] == 1 && out.shape()[ax] != 1 {
            let summed = out.reduce_sum(Some(ax as isize))?;
            // reinstate the size-1 axis
            let mut shape = summed.shape().to_vec();
            shape.insert(ax, 1);
            out = summed.reshape(&shape)?;
        }
    }
    if out.shape() != target {
        return Err(GraphError::runtime(format!(
            "sum_to_shape: cannot reduce {:?} to {:?}",
            g.shape(),
            target
        )));
    }
    Ok(out)
}

/// Cast a boolean scalar out of a value (used by `Cond`/`While`).
pub fn as_bool_scalar(v: &GValue) -> Result<bool> {
    let t = v.as_tensor()?;
    t.scalar_value_bool()
        .map_err(|e| GraphError::runtime(format!("predicate must be a scalar bool: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(v: Vec<f32>) -> GValue {
        let n = v.len();
        GValue::Tensor(Tensor::from_vec(v, &[n]).unwrap())
    }

    #[test]
    fn arithmetic_kernels() {
        let r = execute(&OpKind::Add, &[tv(vec![1.0, 2.0]), tv(vec![3.0, 4.0])]).unwrap();
        assert_eq!(r.as_tensor().unwrap().as_f32().unwrap(), &[4.0, 6.0]);
        let r = execute(&OpKind::Square, &[tv(vec![3.0])]).unwrap();
        assert_eq!(r.as_tensor().unwrap().as_f32().unwrap(), &[9.0]);
    }

    #[test]
    fn shape_and_size() {
        let m = GValue::Tensor(Tensor::zeros(DType::F32, &[2, 3]));
        let s = execute(&OpKind::Shape, std::slice::from_ref(&m)).unwrap();
        assert_eq!(s.as_tensor().unwrap().as_i64().unwrap(), &[2, 3]);
        let n = execute(&OpKind::Size, std::slice::from_ref(&m)).unwrap();
        assert_eq!(n.as_tensor().unwrap().scalar_value_f32().unwrap(), 6.0);
        let d = execute(&OpKind::DimSize(-1), &[m]).unwrap();
        assert_eq!(d.as_tensor().unwrap().scalar_value_f32().unwrap(), 3.0);
    }

    #[test]
    fn array_ops_value_semantics() {
        let a0 = execute(&OpKind::ArrayNew, &[]).unwrap();
        let a1 = execute(&OpKind::ArrayPush, &[a0.clone(), tv(vec![1.0, 2.0])]).unwrap();
        let a2 = execute(&OpKind::ArrayPush, &[a1.clone(), tv(vec![3.0, 4.0])]).unwrap();
        // a1 unchanged (value semantics)
        assert_eq!(a1.as_array().unwrap().len(), 1);
        assert_eq!(a2.as_array().unwrap().len(), 2);
        let stacked = execute(&OpKind::ArrayStack, std::slice::from_ref(&a2)).unwrap();
        assert_eq!(stacked.as_tensor().unwrap().shape(), &[2, 2]);
        let size = execute(&OpKind::ArraySize, std::slice::from_ref(&a2)).unwrap();
        assert_eq!(size.as_tensor().unwrap().scalar_value_i64().unwrap(), 2);
        let popped = execute(&OpKind::ArrayPop, &[a2]).unwrap();
        match popped {
            GValue::Tuple(items) => {
                assert_eq!(items[0].as_array().unwrap().len(), 1);
                assert_eq!(items[1].as_tensor().unwrap().as_f32().unwrap(), &[3.0, 4.0]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn array_write_grows() {
        let a0 = execute(&OpKind::ArrayNew, &[]).unwrap();
        let i = GValue::Tensor(Tensor::scalar_i64(2));
        let a1 = execute(&OpKind::ArrayWrite, &[a0, i.clone(), tv(vec![7.0])]).unwrap();
        assert_eq!(a1.as_array().unwrap().len(), 3);
        let r = execute(&OpKind::ArrayRead, &[a1, i]).unwrap();
        assert_eq!(r.as_tensor().unwrap().as_f32().unwrap(), &[7.0]);
    }

    #[test]
    fn array_errors() {
        let a0 = execute(&OpKind::ArrayNew, &[]).unwrap();
        assert!(execute(&OpKind::ArrayPop, std::slice::from_ref(&a0)).is_err());
        assert!(execute(&OpKind::ArrayStack, std::slice::from_ref(&a0)).is_err());
        let i = GValue::Tensor(Tensor::scalar_i64(0));
        assert!(execute(&OpKind::ArrayRead, &[a0, i]).is_err());
    }

    #[test]
    fn tuple_ops() {
        let t = execute(&OpKind::TupleOp, &[tv(vec![1.0]), tv(vec![2.0])]).unwrap();
        let x = execute(&OpKind::TupleGet(1), std::slice::from_ref(&t)).unwrap();
        assert_eq!(x.as_tensor().unwrap().as_f32().unwrap(), &[2.0]);
        assert!(execute(&OpKind::TupleGet(5), &[t]).is_err());
        assert!(execute(&OpKind::TupleGet(0), &[tv(vec![1.0])]).is_err());
    }

    #[test]
    fn index_and_setitem() {
        let x = GValue::Tensor(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let i = GValue::Tensor(Tensor::scalar_i64(1));
        let r = execute(&OpKind::IndexAxis0, &[x.clone(), i.clone()]).unwrap();
        assert_eq!(r.as_tensor().unwrap().scalar_value_f32().unwrap(), 2.0);
        let v = GValue::Tensor(Tensor::scalar_f32(9.0));
        let w = execute(&OpKind::SetItemAxis0, &[x, i, v]).unwrap();
        assert_eq!(w.as_tensor().unwrap().as_f32().unwrap(), &[1.0, 9.0, 3.0]);
    }

    #[test]
    fn structural_ops_rejected_by_kernel_table() {
        assert!(execute(&OpKind::Param(0), &[]).is_err());
        assert!(execute(&OpKind::Group, &[]).is_err());
    }

    #[test]
    fn bool_scalar_helper() {
        assert!(as_bool_scalar(&GValue::Tensor(Tensor::scalar_bool(true))).unwrap());
        assert!(as_bool_scalar(&tv(vec![1.0])).is_err());
    }

    #[test]
    fn shape_manipulation_kernels() {
        let m = GValue::Tensor(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let t = execute(&OpKind::Transpose(vec![1, 0]), std::slice::from_ref(&m)).unwrap();
        assert_eq!(
            t.as_tensor().unwrap().as_f32().unwrap(),
            &[1.0, 3.0, 2.0, 4.0]
        );
        let r = execute(&OpKind::Reshape(vec![4]), std::slice::from_ref(&m)).unwrap();
        assert_eq!(r.as_tensor().unwrap().shape(), &[4]);
        let e = execute(&OpKind::ExpandDims(0), std::slice::from_ref(&m)).unwrap();
        assert_eq!(e.as_tensor().unwrap().shape(), &[1, 2, 2]);
        let s = execute(&OpKind::Squeeze(Some(0)), &[e]).unwrap();
        assert_eq!(s.as_tensor().unwrap().shape(), &[2, 2]);
        let c = execute(&OpKind::Cast(DType::I64), &[m]).unwrap();
        assert_eq!(c.as_tensor().unwrap().as_i64().unwrap(), &[1, 2, 3, 4]);
    }

    #[test]
    fn range_slice_tile_kernels() {
        let n = GValue::Tensor(Tensor::scalar_i64(4));
        let r = execute(&OpKind::Range, &[n]).unwrap();
        assert_eq!(r.as_tensor().unwrap().as_i64().unwrap(), &[0, 1, 2, 3]);
        let s = execute(
            &OpKind::SliceAxis0 {
                start: Some(1),
                stop: Some(3),
            },
            std::slice::from_ref(&r),
        )
        .unwrap();
        assert_eq!(s.as_tensor().unwrap().as_i64().unwrap(), &[1, 2]);
        let t = execute(&OpKind::TileAxis0(2), &[s]).unwrap();
        assert_eq!(t.as_tensor().unwrap().as_i64().unwrap(), &[1, 2, 1, 2]);
    }

    #[test]
    fn gather_onehot_concat_stack_kernels() {
        let m = GValue::Tensor(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let idx = GValue::Tensor(Tensor::from_vec_i64(vec![1, 0], &[2]).unwrap());
        let g = execute(&OpKind::Gather, &[m.clone(), idx.clone()]).unwrap();
        assert_eq!(
            g.as_tensor().unwrap().as_f32().unwrap(),
            &[3.0, 4.0, 1.0, 2.0]
        );
        let oh = execute(&OpKind::OneHot(3), &[idx]).unwrap();
        assert_eq!(oh.as_tensor().unwrap().shape(), &[2, 3]);
        let row = GValue::Tensor(Tensor::from_vec(vec![9.0, 9.0], &[1, 2]).unwrap());
        let cc = execute(&OpKind::Concat(0), &[m.clone(), row]).unwrap();
        assert_eq!(cc.as_tensor().unwrap().shape(), &[3, 2]);
        let st = execute(&OpKind::StackOp, &[tv(vec![1.0]), tv(vec![2.0])]).unwrap();
        assert_eq!(st.as_tensor().unwrap().shape(), &[2, 1]);
    }

    #[test]
    fn gradient_helper_kernels() {
        let g = GValue::Tensor(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let r = GValue::Tensor(Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap());
        // sum over the broadcast (leading) dim
        let s = execute(&OpKind::SumToShape, &[g.clone(), r.clone()]).unwrap();
        assert_eq!(s.as_tensor().unwrap().as_f32().unwrap(), &[4.0, 6.0]);
        // broadcast a row grad back up
        let b = execute(&OpKind::BroadcastLike, &[r.clone(), g.clone()]).unwrap();
        assert_eq!(b.as_tensor().unwrap().shape(), &[2, 2]);
        // reshape-like
        let flat = GValue::Tensor(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap());
        let rl = execute(&OpKind::ReshapeLike, &[flat, g.clone()]).unwrap();
        assert_eq!(rl.as_tensor().unwrap().shape(), &[2, 2]);
        // sum_to_shape identity fast path
        let same = execute(&OpKind::SumToShape, &[g.clone(), g]).unwrap();
        assert_eq!(same.as_tensor().unwrap().shape(), &[2, 2]);
        // xent grad rows sum to ~0 (softmax minus one-hot)
        let logits = GValue::Tensor(Tensor::from_vec(vec![1.0, 2.0, 0.5, 0.1], &[2, 2]).unwrap());
        let labels = GValue::Tensor(Tensor::from_vec_i64(vec![0, 1], &[2]).unwrap());
        let xg = execute(&OpKind::XentGrad, &[logits, labels]).unwrap();
        let v = xg.as_tensor().unwrap().as_f32().unwrap().to_vec();
        assert!(
            (v[0] + v[1]).abs() < 1e-5 && (v[2] + v[3]).abs() < 1e-5,
            "{v:?}"
        );
    }

    #[test]
    fn nn_kernels_via_table() {
        let x = tv(vec![0.0, 1.0]);
        for (op, check0) in [
            (OpKind::Tanh, 0.0f32),
            (OpKind::Sigmoid, 0.5),
            (OpKind::Relu, 0.0),
        ] {
            let r = execute(&op, std::slice::from_ref(&x)).unwrap();
            assert!((r.as_tensor().unwrap().as_f32().unwrap()[0] - check0).abs() < 1e-6);
        }
        let sm = execute(&OpKind::Softmax, std::slice::from_ref(&x)).unwrap();
        let total: f32 = sm.as_tensor().unwrap().as_f32().unwrap().iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
        let lsm = execute(&OpKind::LogSoftmax, std::slice::from_ref(&x)).unwrap();
        assert!(lsm.as_tensor().unwrap().as_f32().unwrap()[0] < 0.0);
        let labels = GValue::Tensor(Tensor::from_vec_i64(vec![1], &[1]).unwrap());
        let logits = GValue::Tensor(Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap());
        let ce = execute(&OpKind::SoftmaxCrossEntropy, &[logits, labels]).unwrap();
        assert!((ce.as_tensor().unwrap().scalar_value_f32().unwrap() - 2.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn shape_size_dimsize_kernels() {
        let m = GValue::Tensor(Tensor::zeros(DType::F32, &[3, 5]));
        assert_eq!(
            execute(&OpKind::Shape, std::slice::from_ref(&m))
                .unwrap()
                .as_tensor()
                .unwrap()
                .as_i64()
                .unwrap(),
            &[3, 5]
        );
        assert_eq!(
            execute(&OpKind::Size, std::slice::from_ref(&m))
                .unwrap()
                .as_tensor()
                .unwrap()
                .scalar_value_f32()
                .unwrap(),
            15.0
        );
        assert!(execute(&OpKind::DimSize(7), &[m]).is_err());
    }

    #[test]
    fn assert_kernel() {
        let ok = GValue::Tensor(Tensor::scalar_bool(true));
        let r = execute(&OpKind::AssertOp("m".into()), &[ok]).unwrap();
        assert!(r.as_tensor().unwrap().scalar_value_bool().unwrap());
        let bad = GValue::Tensor(Tensor::scalar_bool(false));
        let err = execute(&OpKind::AssertOp("boom".into()), &[bad]).unwrap_err();
        assert!(err.to_string().contains("boom"));
        let non_scalar = tv(vec![1.0, 2.0]);
        assert!(execute(&OpKind::AssertOp("m".into()), &[non_scalar]).is_err());
    }

    #[test]
    fn fused_top_k_matches_parts() {
        let x = tv(vec![3.0, 1.0, 2.0]);
        let fused = execute(&OpKind::TopK(2), std::slice::from_ref(&x)).unwrap();
        let v = execute(&OpKind::TopKValues(2), std::slice::from_ref(&x)).unwrap();
        let i = execute(&OpKind::TopKIndices(2), &[x]).unwrap();
        match fused {
            GValue::Tuple(items) => {
                assert_eq!(items[0], v);
                assert_eq!(items[1], i);
            }
            _ => panic!("fused top_k must return a tuple"),
        }
    }

    #[test]
    fn top_k_ops() {
        let x = tv(vec![1.0, 5.0, 3.0]);
        let v = execute(&OpKind::TopKValues(2), std::slice::from_ref(&x)).unwrap();
        assert_eq!(v.as_tensor().unwrap().as_f32().unwrap(), &[5.0, 3.0]);
        let i = execute(&OpKind::TopKIndices(2), &[x]).unwrap();
        assert_eq!(i.as_tensor().unwrap().as_i64().unwrap(), &[1, 2]);
    }
}
