//! Symbolic reverse-mode differentiation on the dataflow graph — the
//! `tf.gradients` analog. Gradient nodes are appended to the same builder,
//! so a single staged graph can contain forward pass, gradients, and
//! parameter updates (the ingredient that makes the in-graph training loop
//! of Table 2 possible).

use crate::builder::GraphBuilder;
use crate::ir::{NodeId, OpKind};
use crate::{GraphError, Result};
use autograph_tensor::Tensor;
use std::collections::HashMap;

/// Build gradient nodes of scalar `loss` with respect to each node in
/// `wrt`. Returns one gradient node per `wrt` entry.
///
/// # Errors
///
/// Returns a staging error when the loss depends on an op with no
/// registered gradient.
pub fn gradients(b: &mut GraphBuilder, loss: NodeId, wrt: &[NodeId]) -> Result<Vec<NodeId>> {
    // Snapshot the forward graph (gradient nodes are appended after).
    let forward_len = b.len();
    let nodes: Vec<(OpKind, Vec<NodeId>)> = b
        .graph()
        .nodes
        .iter()
        .take(forward_len)
        .map(|n| (n.op.clone(), n.inputs.clone()))
        .collect();

    // Reachability: which forward nodes does the loss depend on?
    let mut needed = vec![false; forward_len];
    let mut stack = vec![loss];
    while let Some(n) = stack.pop() {
        if needed[n] {
            continue;
        }
        needed[n] = true;
        stack.extend(nodes[n].1.iter().copied());
    }

    // Active set: nodes through which a wrt target can influence the loss
    // (forward-reachable from wrt). Adjoints only flow through active
    // nodes, so e.g. a non-differentiable data-indexing path that does not
    // touch the parameters never demands a gradient rule.
    let mut active = vec![false; forward_len];
    for &w in wrt {
        if w < forward_len {
            active[w] = true;
        }
    }
    for id in 0..forward_len {
        if !active[id] && nodes[id].1.iter().any(|&i| active[i]) {
            active[id] = true;
        }
    }

    let mut grads: HashMap<NodeId, NodeId> = HashMap::new();
    let one = b.constant(Tensor::scalar_f32(1.0));
    grads.insert(loss, one);

    // Creation order is topological; walk backwards accumulating adjoints.
    for id in (0..forward_len).rev() {
        if !needed[id] || (!active[id] && id != loss) {
            continue;
        }
        if !nodes[id].1.iter().any(|&i| active[i]) {
            continue; // leaf or no active inputs: nothing to propagate
        }
        let Some(&g) = grads.get(&id) else { continue };
        let (op, inputs) = &nodes[id];
        let contribs = vjp(b, op, inputs, id, g)?;
        for (input, contrib) in contribs {
            if !active[input] {
                continue;
            }
            match grads.get(&input) {
                Some(&existing) => {
                    let sum = b.add_op(existing, contrib);
                    grads.insert(input, sum);
                }
                None => {
                    grads.insert(input, contrib);
                }
            }
        }
    }

    // Missing gradients (no dependency path) are zeros of the right shape.
    Ok(wrt
        .iter()
        .map(|&w| match grads.get(&w) {
            Some(&g) => {
                // ensure adjoint has the primal's shape
                b.add(OpKind::SumToShape, vec![g, w])
            }
            None => {
                let zero = b.constant(Tensor::scalar_f32(0.0));
                b.add(OpKind::BroadcastLike, vec![zero, w])
            }
        })
        .collect())
}

/// Vector-Jacobian product: for node `out = op(inputs)` with adjoint `g`,
/// return `(input, contribution)` pairs.
fn vjp(
    b: &mut GraphBuilder,
    op: &OpKind,
    inputs: &[NodeId],
    out: NodeId,
    g: NodeId,
) -> Result<Vec<(NodeId, NodeId)>> {
    use OpKind::*;
    let r = match op {
        Const(_) | Placeholder { .. } | Variable { .. } | Param(_) => vec![],
        Add => {
            let ga = b.add(SumToShape, vec![g, inputs[0]]);
            let gb = b.add(SumToShape, vec![g, inputs[1]]);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        Sub => {
            let ga = b.add(SumToShape, vec![g, inputs[0]]);
            let ng = b.add(Neg, vec![g]);
            let gb = b.add(SumToShape, vec![ng, inputs[1]]);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        Mul => {
            let gb_full = b.mul(g, inputs[0]);
            let ga_full = b.mul(g, inputs[1]);
            let ga = b.add(SumToShape, vec![ga_full, inputs[0]]);
            let gb = b.add(SumToShape, vec![gb_full, inputs[1]]);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        Div => {
            // d(a/b) = g/b ; -g*a/b^2
            let ga_full = b.div(g, inputs[1]);
            let ga = b.add(SumToShape, vec![ga_full, inputs[0]]);
            let b2 = b.add(Square, vec![inputs[1]]);
            let num = b.mul(g, inputs[0]);
            let frac = b.div(num, b2);
            let gb_full = b.add(Neg, vec![frac]);
            let gb = b.add(SumToShape, vec![gb_full, inputs[1]]);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        Pow => {
            // da = g * p * a^(p-1);  db = g * out * ln(a)
            let one = b.scalar(1.0);
            let pm1 = b.sub(inputs[1], one);
            let apm1 = b.add(Pow, vec![inputs[0], pm1]);
            let t1 = b.mul(inputs[1], apm1);
            let ga_full = b.mul(g, t1);
            let ga = b.add(SumToShape, vec![ga_full, inputs[0]]);
            let lna = b.add(Log, vec![inputs[0]]);
            let t2 = b.mul(out, lna);
            let gb_full = b.mul(g, t2);
            let gb = b.add(SumToShape, vec![gb_full, inputs[1]]);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        Neg => {
            let ga = b.add(Neg, vec![g]);
            vec![(inputs[0], ga)]
        }
        Abs => {
            let zero = b.scalar(0.0);
            let pos = b.add(GreaterEqual, vec![inputs[0], zero]);
            let ng = b.add(Neg, vec![g]);
            let ga = b.add(Select, vec![pos, g, ng]);
            vec![(inputs[0], ga)]
        }
        Exp => {
            let ga = b.mul(g, out);
            vec![(inputs[0], ga)]
        }
        Log => {
            let ga = b.div(g, inputs[0]);
            vec![(inputs[0], ga)]
        }
        Sqrt => {
            let half = b.scalar(0.5);
            let hg = b.mul(g, half);
            let ga = b.div(hg, out);
            vec![(inputs[0], ga)]
        }
        Square => {
            let two = b.scalar(2.0);
            let t = b.mul(inputs[0], two);
            let ga = b.mul(g, t);
            vec![(inputs[0], ga)]
        }
        Tanh => {
            let y2 = b.add(Square, vec![out]);
            let one = b.scalar(1.0);
            let d = b.sub(one, y2);
            let ga = b.mul(g, d);
            vec![(inputs[0], ga)]
        }
        Sigmoid => {
            let one = b.scalar(1.0);
            let om = b.sub(one, out);
            let d = b.mul(out, om);
            let ga = b.mul(g, d);
            vec![(inputs[0], ga)]
        }
        Relu => {
            let zero = b.scalar(0.0);
            let mask = b.add(Greater, vec![inputs[0], zero]);
            let maskf = b.cast(mask, autograph_tensor::DType::F32);
            let ga = b.mul(g, maskf);
            vec![(inputs[0], ga)]
        }
        SoftmaxCrossEntropy => {
            let d = b.add(XentGrad, vec![inputs[0], inputs[1]]);
            let ga = b.mul(g, d);
            vec![(inputs[0], ga)]
        }
        MatMul => {
            // da = g @ b^T ; db = a^T @ g
            let bt = b.add(Transpose(vec![1, 0]), vec![inputs[1]]);
            let ga = b.matmul(g, bt);
            let at = b.add(Transpose(vec![1, 0]), vec![inputs[0]]);
            let gb = b.matmul(at, g);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        Transpose(perm) => {
            let mut inv = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inv[p] = i;
            }
            let ga = b.add(Transpose(inv), vec![g]);
            vec![(inputs[0], ga)]
        }
        Reshape(_) | ExpandDims(_) | Squeeze(_) => {
            let ga = b.add(ReshapeLike, vec![g, inputs[0]]);
            vec![(inputs[0], ga)]
        }
        Cast(_) => {
            let ga = b.add(ReshapeLike, vec![g, inputs[0]]);
            vec![(inputs[0], ga)]
        }
        Identity | Print(_) => vec![(inputs[0], g)],
        StopGradient => vec![],
        ReduceSum(None) => {
            let ga = b.add(BroadcastLike, vec![g, inputs[0]]);
            vec![(inputs[0], ga)]
        }
        ReduceSum(Some(ax)) => {
            let ge = b.add(ExpandDims(*ax), vec![g]);
            let ga = b.add(BroadcastLike, vec![ge, inputs[0]]);
            vec![(inputs[0], ga)]
        }
        ReduceMean(None) => {
            let n = b.add(Size, vec![inputs[0]]);
            let gb = b.add(BroadcastLike, vec![g, inputs[0]]);
            let ga = b.div(gb, n);
            vec![(inputs[0], ga)]
        }
        ReduceMean(Some(ax)) => {
            let ge = b.add(ExpandDims(*ax), vec![g]);
            let gb = b.add(BroadcastLike, vec![ge, inputs[0]]);
            let n = b.add(DimSize(*ax), vec![inputs[0]]);
            let ga = b.div(gb, n);
            vec![(inputs[0], ga)]
        }
        Select => {
            let zero = b.scalar(0.0);
            let zl = b.add(BroadcastLike, vec![zero, inputs[1]]);
            let ga = b.add(Select, vec![inputs[0], g, zl]);
            let zr = b.add(BroadcastLike, vec![zero, inputs[2]]);
            let gb = b.add(Select, vec![inputs[0], zr, g]);
            let gas = b.add(SumToShape, vec![ga, inputs[1]]);
            let gbs = b.add(SumToShape, vec![gb, inputs[2]]);
            vec![(inputs[1], gas), (inputs[2], gbs)]
        }
        Maximum | Minimum => {
            let cmp = if matches!(op, Maximum) {
                b.add(GreaterEqual, vec![inputs[0], inputs[1]])
            } else {
                b.add(LessEqual, vec![inputs[0], inputs[1]])
            };
            let m = b.cast(cmp, autograph_tensor::DType::F32);
            let ga_full = b.mul(g, m);
            let one = b.scalar(1.0);
            let inv = b.sub(one, m);
            let gb_full = b.mul(g, inv);
            let ga = b.add(SumToShape, vec![ga_full, inputs[0]]);
            let gb = b.add(SumToShape, vec![gb_full, inputs[1]]);
            vec![(inputs[0], ga), (inputs[1], gb)]
        }
        StackOp => {
            // each input's grad is the corresponding row of g
            inputs
                .iter()
                .enumerate()
                .map(|(i, &inp)| {
                    let idx = b.constant(Tensor::scalar_i64(i as i64));
                    let gi = b.add(IndexAxis0, vec![g, idx]);
                    (inp, gi)
                })
                .collect()
        }
        SumToShape | BroadcastLike | ReshapeLike => {
            // gradient helpers appear only in gradient graphs; taking
            // second-order gradients of SumToShape is re-broadcasting
            let ga = match op {
                SumToShape => b.add(BroadcastLike, vec![g, inputs[0]]),
                BroadcastLike => b.add(SumToShape, vec![g, inputs[0]]),
                _ => b.add(ReshapeLike, vec![g, inputs[0]]),
            };
            vec![(inputs[0], ga)]
        }
        // comparisons, logicals, integer ops: zero gradient (non-differentiable
        // outputs are never on a differentiable path to an f32 loss)
        Less | LessEqual | Greater | GreaterEqual | Equal | NotEqual | LogicalAnd | LogicalOr
        | LogicalNot | ArgMax(_) | Shape | Size | DimSize(_) | Range | OneHot(_) | FloorDiv
        | Mod => vec![],
        other => {
            return Err(GraphError::staging(format!(
                "no gradient registered for op '{}'",
                other.mnemonic()
            )));
        }
    };
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use autograph_tensor::Rng64;

    /// Finite-difference check of d loss / d x at a placeholder.
    fn check_grad(build: impl Fn(&mut GraphBuilder, NodeId) -> NodeId, x0: Tensor, tol: f32) {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let loss = build(&mut b, x);
        let grads = gradients(&mut b, loss, &[x]).unwrap();
        let gx = grads[0];
        let mut sess = Session::new(b.finish());

        let analytic = sess.run(&[("x", x0.clone())], &[gx]).unwrap()[0].clone();
        let eps = 1e-3f32;
        let base = x0.as_f32().unwrap().to_vec();
        let mut numeric = Vec::with_capacity(base.len());
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let lp = sess
                .run(
                    &[("x", Tensor::from_vec(plus, x0.shape()).unwrap())],
                    &[loss],
                )
                .unwrap()[0]
                .scalar_value_f32()
                .unwrap();
            let lm = sess
                .run(
                    &[("x", Tensor::from_vec(minus, x0.shape()).unwrap())],
                    &[loss],
                )
                .unwrap()[0]
                .scalar_value_f32()
                .unwrap();
            numeric.push((lp - lm) / (2.0 * eps));
        }
        let a = analytic.as_f32().unwrap();
        assert_eq!(a.len(), numeric.len());
        for (i, (&av, nv)) in a.iter().zip(&numeric).enumerate() {
            assert!(
                (av - nv).abs() < tol * (1.0 + nv.abs()),
                "grad mismatch at {i}: analytic {av} vs numeric {nv}"
            );
        }
    }

    fn vec_t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    #[test]
    fn grad_of_square_sum() {
        check_grad(
            |b, x| {
                let sq = b.add(OpKind::Square, vec![x]);
                b.add(OpKind::ReduceSum(None), vec![sq])
            },
            vec_t(vec![1.0, -2.0, 3.0]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_tanh_sigmoid_relu_exp_log() {
        check_grad(
            |b, x| {
                let t = b.tanh(x);
                let s = b.sigmoid(t);
                let r = b.relu(s);
                let e = b.add(OpKind::Exp, vec![r]);
                let l = b.add(OpKind::Log, vec![e]);
                b.add(OpKind::ReduceSum(None), vec![l])
            },
            vec_t(vec![0.5, -0.3, 1.2]),
            1e-2,
        );
    }

    #[test]
    fn grad_through_broadcast_add() {
        // loss = sum((x + c)^2) where c broadcasts
        check_grad(
            |b, x| {
                let c = b.constant(Tensor::scalar_f32(2.0));
                let s = b.add_op(x, c);
                let sq = b.add(OpKind::Square, vec![s]);
                b.add(OpKind::ReduceSum(None), vec![sq])
            },
            vec_t(vec![1.0, 2.0]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_matmul_chain() {
        let mut rng = Rng64::new(5);
        let w = rng.normal_tensor(&[3, 2], 1.0);
        check_grad(
            move |b, x| {
                let xm = b.add(OpKind::Reshape(vec![1, 3]), vec![x]);
                let wc = b.constant(w.clone());
                let y = b.matmul(xm, wc);
                let sq = b.add(OpKind::Square, vec![y]);
                b.add(OpKind::ReduceSum(None), vec![sq])
            },
            vec_t(vec![0.7, -0.2, 0.4]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_mean_and_axis_sum() {
        check_grad(
            |b, x| {
                let m = b.add(OpKind::Reshape(vec![2, 3]), vec![x]);
                let row = b.add(OpKind::ReduceSum(Some(1)), vec![m]);
                let mean = b.add(OpKind::ReduceMean(None), vec![row]);
                let sq = b.add(OpKind::Square, vec![mean]);
                b.add(OpKind::ReduceSum(None), vec![sq])
            },
            vec_t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_select_and_maximum() {
        check_grad(
            |b, x| {
                let zero = b.scalar(0.0);
                let half = b.scalar(0.5);
                let cond = b.add(OpKind::Greater, vec![x, half]);
                let nx = b.add(OpKind::Neg, vec![x]);
                let sel = b.add(OpKind::Select, vec![cond, x, nx]);
                let mx = b.add(OpKind::Maximum, vec![sel, zero]);
                let sq = b.add(OpKind::Square, vec![mx]);
                b.add(OpKind::ReduceSum(None), vec![sq])
            },
            vec_t(vec![1.0, 0.2, -0.7]),
            1e-2,
        );
    }

    #[test]
    fn grad_of_cross_entropy_matches_fd() {
        let labels = Tensor::from_vec_i64(vec![0, 2], &[2]).unwrap();
        check_grad(
            move |b, x| {
                let logits = b.add(OpKind::Reshape(vec![2, 3]), vec![x]);
                let lab = b.constant(labels.clone());
                b.add(OpKind::SoftmaxCrossEntropy, vec![logits, lab])
            },
            vec_t(vec![0.1, 0.5, -0.2, 0.7, 0.0, 0.3]),
            1e-2,
        );
    }

    #[test]
    fn unused_wrt_gets_zero_grad() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let y = b.placeholder("y");
        let loss = b.add(OpKind::ReduceSum(None), vec![x]);
        let grads = gradients(&mut b, loss, &[y]).unwrap();
        let mut sess = Session::new(b.finish());
        let out = sess
            .run(
                &[("x", vec_t(vec![1.0])), ("y", vec_t(vec![2.0, 3.0]))],
                &[grads[0]],
            )
            .unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[0.0, 0.0]);
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = sum(x*x + 3x): dx = 2x + 3
        check_grad(
            |b, x| {
                let three = b.scalar(3.0);
                let xx = b.mul(x, x);
                let tx = b.mul(x, three);
                let s = b.add_op(xx, tx);
                b.add(OpKind::ReduceSum(None), vec![s])
            },
            vec_t(vec![1.0, -2.0]),
            1e-2,
        );
    }

    #[test]
    fn unsupported_grad_errors() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let idx = b.constant(Tensor::scalar_i64(0));
        let gathered = b.add(OpKind::Gather, vec![x, idx]);
        let loss = b.add(OpKind::ReduceSum(None), vec![gathered]);
        let err = gradients(&mut b, loss, &[x]).unwrap_err();
        assert!(err.to_string().contains("no gradient"));
    }

    #[test]
    fn stop_gradient_blocks() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let s = b.add(OpKind::StopGradient, vec![x]);
        let sq = b.add(OpKind::Square, vec![s]);
        let loss = b.add(OpKind::ReduceSum(None), vec![sq]);
        let grads = gradients(&mut b, loss, &[x]).unwrap();
        let mut sess = Session::new(b.finish());
        let out = sess.run(&[("x", vec_t(vec![3.0]))], &[grads[0]]).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[0.0]);
    }
}
