//! Run-level controls: cancellation tokens, deadlines, and the internal
//! context both executors consult at node-dispatch and
//! while-loop-iteration granularity.
//!
//! Serving staged programs needs the `tf.Session` robustness contract: a
//! runaway loop must be killable, a stuck run must time out, and a caller
//! must always get a structured error (never a hang, never an abort).
//! [`RunOptions`] is the per-run knob set; [`RunCtx`] is the internal
//! carrier threaded through `exec.rs` and `sched.rs`, which also
//! accumulates progress counters so `Session::stats()` reflects work done
//! even when the run fails.

use crate::error::GraphError;
use crate::Result;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A shareable cancellation flag: clone it, hand a copy to another
/// thread, and [`CancelToken::cancel`] aborts the run at its next
/// dispatch check with [`GraphError::cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Trigger cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Per-run execution limits for `Session::run_with_options`.
///
/// `Default` reads `AUTOGRAPH_RUN_TIMEOUT_MS` for the deadline (unset ⇒
/// unlimited), so plain `Session::run` calls inherit a process-wide
/// timeout without code changes.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Wall-clock budget for the whole run.
    pub deadline: Option<Duration>,
    /// Iteration cap applied to every staged `While` loop in the run (a
    /// loop's own `max_iters` still applies; the smaller bound wins).
    pub max_while_iters: Option<u64>,
    /// Cooperative cancellation; checked at every node dispatch and loop
    /// iteration.
    pub cancel: Option<CancelToken>,
}

/// `AUTOGRAPH_RUN_TIMEOUT_MS`, parsed once per process.
fn env_timeout() -> Option<Duration> {
    static CACHE: OnceLock<Option<Duration>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("AUTOGRAPH_RUN_TIMEOUT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map(Duration::from_millis)
    })
}

impl RunOptions {
    /// Options with the `AUTOGRAPH_RUN_TIMEOUT_MS` deadline applied when
    /// none was set explicitly. This is what `Session::run` uses.
    pub fn resolved(mut self) -> RunOptions {
        if self.deadline.is_none() {
            self.deadline = env_timeout();
        }
        self
    }

    /// Set the wall-clock budget.
    pub fn with_deadline(mut self, d: Duration) -> RunOptions {
        self.deadline = Some(d);
        self
    }

    /// Set the global while-loop iteration cap.
    pub fn with_max_while_iters(mut self, n: u64) -> RunOptions {
        self.max_while_iters = Some(n);
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> RunOptions {
        self.cancel = Some(token);
        self
    }
}

/// The internal per-run state threaded through both executors: limits to
/// enforce plus progress counters (atomics — the parallel scheduler
/// bumps them from worker threads).
#[derive(Debug, Default)]
pub(crate) struct RunCtx {
    /// Absolute wall-clock cutoff, precomputed from the deadline.
    pub deadline: Option<Instant>,
    /// The original budget, echoed in the error message.
    pub deadline_budget: Option<Duration>,
    pub cancel: Option<CancelToken>,
    pub max_while_iters: Option<u64>,
    /// Nodes dispatched so far (all ops, both executors).
    pub nodes_executed: AtomicU64,
    /// Staged `While` iterations completed so far.
    pub while_iters: AtomicU64,
    /// Per-node cost collector, present when the session has reporting
    /// enabled. Only top-level plan nodes record into it (subgraph node
    /// ids would collide; their cost folds into the owning node).
    pub collector: Option<crate::report::Collector>,
}

impl RunCtx {
    /// A context enforcing nothing — used by the public `Plan::run` entry
    /// points that predate run options.
    pub fn unbounded() -> RunCtx {
        RunCtx::default()
    }

    pub fn from_options(opts: &RunOptions) -> RunCtx {
        RunCtx {
            deadline: opts.deadline.map(|d| Instant::now() + d),
            deadline_budget: opts.deadline,
            cancel: opts.cancel.clone(),
            max_while_iters: opts.max_while_iters,
            nodes_executed: AtomicU64::new(0),
            while_iters: AtomicU64::new(0),
            collector: None,
        }
    }

    /// Cancellation/deadline check — called before every node dispatch
    /// and every while-loop iteration. Two relaxed loads in the common
    /// (unbounded) case.
    pub fn check(&self) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(GraphError::cancelled());
            }
        }
        if let Some(cutoff) = self.deadline {
            if Instant::now() >= cutoff {
                return Err(GraphError::deadline_exceeded(
                    self.deadline_budget.unwrap_or_default(),
                ));
            }
        }
        Ok(())
    }

    /// Check limits and count one node dispatch.
    pub fn before_node(&self) -> Result<()> {
        self.check()?;
        self.nodes_executed.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Count one completed while-loop iteration and re-check limits.
    pub fn after_while_iter(&self) -> Result<()> {
        self.while_iters.fetch_add(1, Ordering::Relaxed);
        self.check()
    }

    /// The while-loop iteration cap for a loop staged with its own
    /// `max_iters`: the smaller of the two bounds.
    pub fn while_limit(&self, staged: Option<u64>) -> Option<u64> {
        match (staged, self.max_while_iters) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_roundtrip() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel()).join().unwrap();
        assert!(t.is_cancelled());
    }

    #[test]
    fn unbounded_ctx_never_trips() {
        let ctx = RunCtx::unbounded();
        for _ in 0..1000 {
            ctx.before_node().unwrap();
            ctx.after_while_iter().unwrap();
        }
        assert_eq!(ctx.nodes_executed.load(Ordering::Relaxed), 1000);
        assert_eq!(ctx.while_iters.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn deadline_trips_after_budget() {
        let opts = RunOptions::default().with_deadline(Duration::from_millis(5));
        let ctx = RunCtx::from_options(&opts);
        assert!(ctx.check().is_ok());
        std::thread::sleep(Duration::from_millis(10));
        let err = ctx.check().unwrap_err();
        assert!(err.is_deadline_exceeded());
    }

    #[test]
    fn cancel_trips_immediately() {
        let token = CancelToken::new();
        let ctx = RunCtx::from_options(&RunOptions::default().with_cancel(token.clone()));
        assert!(ctx.check().is_ok());
        token.cancel();
        assert!(ctx.check().unwrap_err().is_cancelled());
    }

    #[test]
    fn while_limit_takes_smaller_bound() {
        let ctx = RunCtx::from_options(&RunOptions::default().with_max_while_iters(10));
        assert_eq!(ctx.while_limit(None), Some(10));
        assert_eq!(ctx.while_limit(Some(3)), Some(3));
        assert_eq!(ctx.while_limit(Some(50)), Some(10));
        assert_eq!(RunCtx::unbounded().while_limit(Some(7)), Some(7));
        assert_eq!(RunCtx::unbounded().while_limit(None), None);
    }
}
