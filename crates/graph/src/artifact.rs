//! Binary serialization of staged-and-compiled execution plans — the
//! payload format behind `autograph-planstore` (ROADMAP item 3).
//!
//! A [`CompiledUnit`] bundles everything a warm start needs to execute
//! without re-staging: the optimized [`Graph`] (provenance chains
//! included, so the explain layer keeps working), the fetch set, and the
//! eagerly-lowered bytecode [`Program`](crate::compile) the VM runs.
//! Installing a decoded unit into a [`Session`](crate::session::Session)
//! via [`Session::install_compiled`](crate::session::Session::install_compiled)
//! pre-seeds the plan cache so the first `run` call neither compiles a
//! plan nor lowers bytecode.
//!
//! ## Encoding rules
//!
//! * Everything is little-endian; lengths/counts are `u64`, floats are
//!   stored as IEEE-754 bit patterns (decode reproduces them bitwise —
//!   the warm-vs-cold oracle depends on it).
//! * The format is self-describing only down to the field level: the
//!   container (magic/version/checksum) lives in `planstore`, which
//!   versions this payload encoding via its `VERSION_TAG`. Changing
//!   anything here requires bumping that tag.
//! * Decoding is **total**: every read is bounds-checked and every tag
//!   validated, returning `Err(String)` — never a panic, never an
//!   out-of-bounds slice — so a corrupted payload that slipped past the
//!   checksum still degrades to cold staging.
//! * Derived fields are not stored: instruction mnemonics are recomputed
//!   from their op kinds, and `FusedSpec`s are re-validated through
//!   [`FusedSpec::new`] so an invalid spec cannot be smuggled in.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::compile::{self, CoverArg, CoverOp, FusedGroup, IKind, Instr, Proc, Program, Reg};
use crate::exec::Plan;
use crate::ir::{Graph, Node, NodeId, OpKind, PassRecord, ProvSource, SubGraph};
use autograph_pylang::Span;
use autograph_tensor::fused::{FusedOp, FusedSpec};
use autograph_tensor::{DType, Tensor};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Byte-level reader/writer (shared with the runtime/serve layers for
// their metadata envelopes)

/// An append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Finish and take the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32` (LE).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (LE).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` (LE).
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its IEEE-754 bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append `Some`ness then the value via `f`.
    pub fn opt<T>(&mut self, v: Option<T>, f: impl FnOnce(&mut ByteWriter, T)) {
        match v {
            Some(v) => {
                self.u8(1);
                f(self, v);
            }
            None => self.u8(0),
        }
    }
}

/// A bounds-checked little-endian byte reader; every method fails with
/// a description instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decode failure description.
pub type DecodeError = String;

impl<'a> ByteReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| "length overflow".to_string())?;
        if end > self.buf.len() {
            return Err(format!(
                "unexpected end of payload (need {n} bytes at offset {}, have {})",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read an `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    /// Read an `f32` bit pattern.
    pub fn f32(&mut self) -> Result<f32, DecodeError> {
        Ok(f32::from_bits(self.u32()?))
    }

    /// Read a `u64` and validate it fits a `usize` count bounded by the
    /// remaining payload (every element costs ≥ 1 byte, so any count
    /// beyond the remaining bytes is corrupt — this caps allocations).
    pub fn count(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > remaining {
            return Err(format!("count {n} exceeds remaining payload {remaining}"));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.count()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("invalid utf-8 string: {e}"))
    }

    /// Read an option via `f`.
    pub fn opt<T>(
        &mut self,
        f: impl FnOnce(&mut ByteReader<'a>) -> Result<T, DecodeError>,
    ) -> Result<Option<T>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            t => Err(format!("invalid option tag {t}")),
        }
    }
}

// ---------------------------------------------------------------------
// Leaf encoders

fn put_span(w: &mut ByteWriter, s: Span) {
    w.u32(s.line);
    w.u32(s.col);
}

fn get_span(r: &mut ByteReader<'_>) -> Result<Span, DecodeError> {
    Ok(Span::new(r.u32()?, r.u32()?))
}

fn put_tensor(w: &mut ByteWriter, t: &Tensor) {
    let shape = t.shape();
    w.u64(shape.len() as u64);
    for &d in shape {
        w.u64(d as u64);
    }
    match t.data() {
        autograph_tensor::Data::F32(v) => {
            w.u8(0);
            w.u64(v.len() as u64);
            for &x in v {
                w.f32(x);
            }
        }
        autograph_tensor::Data::I64(v) => {
            w.u8(1);
            w.u64(v.len() as u64);
            for &x in v {
                w.i64(x);
            }
        }
        autograph_tensor::Data::Bool(v) => {
            w.u8(2);
            w.u64(v.len() as u64);
            for &x in v {
                w.u8(u8::from(x));
            }
        }
    }
}

fn get_tensor(r: &mut ByteReader<'_>) -> Result<Tensor, DecodeError> {
    let rank = r.count()?;
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.u64()? as usize);
    }
    let tag = r.u8()?;
    let n = r.count()?;
    let t = match tag {
        0 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f32()?);
            }
            Tensor::from_vec(v, &shape)
        }
        1 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            Tensor::from_vec_i64(v, &shape)
        }
        2 => {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.u8()? != 0);
            }
            Tensor::from_vec_bool(v, &shape)
        }
        t => return Err(format!("invalid tensor dtype tag {t}")),
    };
    t.map_err(|e| format!("tensor reconstruction failed: {e}"))
}

fn put_opt_isize(w: &mut ByteWriter, v: Option<isize>) {
    w.opt(v, |w, v| w.i64(v as i64));
}

fn get_opt_isize(r: &mut ByteReader<'_>) -> Result<Option<isize>, DecodeError> {
    r.opt(|r| Ok(r.i64()? as isize))
}

/// Known optimizer pass/action names, interned back to `&'static str`
/// on decode. Unknown names (a newer writer) fall back to leaking the
/// string — bounded by the artifact's content, read once per load.
fn intern(s: String) -> &'static str {
    match s.as_str() {
        "cse" => "cse",
        "const_fold" => "const_fold",
        "dce" => "dce",
        "absorbed-duplicate" => "absorbed-duplicate",
        "folded-inputs" => "folded-inputs",
        _ => Box::leak(s.into_boxed_str()),
    }
}

// ---------------------------------------------------------------------
// OpKind

fn put_op(w: &mut ByteWriter, op: &OpKind) {
    use OpKind::*;
    match op {
        Placeholder { name } => {
            w.u8(0);
            w.str(name);
        }
        Const(t) => {
            w.u8(1);
            put_tensor(w, t);
        }
        Variable { name } => {
            w.u8(2);
            w.str(name);
        }
        Param(i) => {
            w.u8(3);
            w.u64(*i as u64);
        }
        Add => w.u8(4),
        Sub => w.u8(5),
        Mul => w.u8(6),
        Div => w.u8(7),
        FloorDiv => w.u8(8),
        Mod => w.u8(9),
        Pow => w.u8(10),
        Maximum => w.u8(11),
        Minimum => w.u8(12),
        Neg => w.u8(13),
        Abs => w.u8(14),
        Sqrt => w.u8(15),
        Exp => w.u8(16),
        Log => w.u8(17),
        Square => w.u8(18),
        Tanh => w.u8(19),
        Sigmoid => w.u8(20),
        Relu => w.u8(21),
        Softmax => w.u8(22),
        LogSoftmax => w.u8(23),
        SoftmaxCrossEntropy => w.u8(24),
        Less => w.u8(25),
        LessEqual => w.u8(26),
        Greater => w.u8(27),
        GreaterEqual => w.u8(28),
        Equal => w.u8(29),
        NotEqual => w.u8(30),
        LogicalAnd => w.u8(31),
        LogicalOr => w.u8(32),
        LogicalNot => w.u8(33),
        Select => w.u8(34),
        MatMul => w.u8(35),
        Transpose(perm) => {
            w.u8(36);
            w.u64(perm.len() as u64);
            for &p in perm {
                w.u64(p as u64);
            }
        }
        Reshape(dims) => {
            w.u8(37);
            w.u64(dims.len() as u64);
            for &d in dims {
                w.u64(d as u64);
            }
        }
        ExpandDims(a) => {
            w.u8(38);
            w.i64(*a as i64);
        }
        Squeeze(a) => {
            w.u8(39);
            put_opt_isize(w, *a);
        }
        Cast(dt) => {
            w.u8(40);
            w.u8(match dt {
                DType::F32 => 0,
                DType::I64 => 1,
                DType::Bool => 2,
            });
        }
        Shape => w.u8(41),
        Size => w.u8(42),
        DimSize(a) => {
            w.u8(43);
            w.i64(*a as i64);
        }
        Range => w.u8(44),
        TileAxis0(n) => {
            w.u8(45);
            w.u64(*n as u64);
        }
        ReduceSum(a) => {
            w.u8(46);
            put_opt_isize(w, *a);
        }
        ReduceMean(a) => {
            w.u8(47);
            put_opt_isize(w, *a);
        }
        ReduceMax(a) => {
            w.u8(48);
            put_opt_isize(w, *a);
        }
        ReduceMin(a) => {
            w.u8(49);
            put_opt_isize(w, *a);
        }
        ReduceAll(a) => {
            w.u8(50);
            put_opt_isize(w, *a);
        }
        ReduceAny(a) => {
            w.u8(51);
            put_opt_isize(w, *a);
        }
        ArgMax(a) => {
            w.u8(52);
            w.i64(*a as i64);
        }
        IndexAxis0 => w.u8(53),
        SliceAxis0 { start, stop } => {
            w.u8(54);
            w.opt(*start, |w, v| w.i64(v));
            w.opt(*stop, |w, v| w.i64(v));
        }
        SetItemAxis0 => w.u8(55),
        Gather => w.u8(56),
        OneHot(n) => {
            w.u8(57);
            w.u64(*n as u64);
        }
        TopK(k) => {
            w.u8(58);
            w.u64(*k as u64);
        }
        TopKValues(k) => {
            w.u8(59);
            w.u64(*k as u64);
        }
        TopKIndices(k) => {
            w.u8(60);
            w.u64(*k as u64);
        }
        Concat(a) => {
            w.u8(61);
            w.i64(*a as i64);
        }
        StackOp => w.u8(62),
        ArrayNew => w.u8(63),
        ArrayPush => w.u8(64),
        ArrayPop => w.u8(65),
        ArrayWrite => w.u8(66),
        ArrayRead => w.u8(67),
        ArrayStack => w.u8(68),
        ArraySize => w.u8(69),
        SumToShape => w.u8(70),
        BroadcastLike => w.u8(71),
        ReshapeLike => w.u8(72),
        XentGrad => w.u8(73),
        TupleOp => w.u8(74),
        TupleGet(i) => {
            w.u8(75);
            w.u64(*i as u64);
        }
        Identity => w.u8(76),
        StopGradient => w.u8(77),
        Print(tag) => {
            w.u8(78);
            w.str(tag);
        }
        AssertOp(msg) => {
            w.u8(79);
            w.str(msg);
        }
        Assign { name } => {
            w.u8(80);
            w.str(name);
        }
        Group => w.u8(81),
        Cond { then_g, else_g } => {
            w.u8(82);
            put_subgraph(w, then_g);
            put_subgraph(w, else_g);
        }
        While {
            cond_g,
            body_g,
            max_iters,
        } => {
            w.u8(83);
            put_subgraph(w, cond_g);
            put_subgraph(w, body_g);
            w.opt(*max_iters, |w, v| w.u64(v));
        }
    }
}

fn get_op(r: &mut ByteReader<'_>) -> Result<OpKind, DecodeError> {
    use OpKind::*;
    Ok(match r.u8()? {
        0 => Placeholder { name: r.str()? },
        1 => Const(get_tensor(r)?),
        2 => Variable { name: r.str()? },
        3 => Param(r.u64()? as usize),
        4 => Add,
        5 => Sub,
        6 => Mul,
        7 => Div,
        8 => FloorDiv,
        9 => Mod,
        10 => Pow,
        11 => Maximum,
        12 => Minimum,
        13 => Neg,
        14 => Abs,
        15 => Sqrt,
        16 => Exp,
        17 => Log,
        18 => Square,
        19 => Tanh,
        20 => Sigmoid,
        21 => Relu,
        22 => Softmax,
        23 => LogSoftmax,
        24 => SoftmaxCrossEntropy,
        25 => Less,
        26 => LessEqual,
        27 => Greater,
        28 => GreaterEqual,
        29 => Equal,
        30 => NotEqual,
        31 => LogicalAnd,
        32 => LogicalOr,
        33 => LogicalNot,
        34 => Select,
        35 => MatMul,
        36 => {
            let n = r.count()?;
            let mut perm = Vec::with_capacity(n);
            for _ in 0..n {
                perm.push(r.u64()? as usize);
            }
            Transpose(perm)
        }
        37 => {
            let n = r.count()?;
            let mut dims = Vec::with_capacity(n);
            for _ in 0..n {
                dims.push(r.u64()? as usize);
            }
            Reshape(dims)
        }
        38 => ExpandDims(r.i64()? as isize),
        39 => Squeeze(get_opt_isize(r)?),
        40 => Cast(match r.u8()? {
            0 => DType::F32,
            1 => DType::I64,
            2 => DType::Bool,
            t => return Err(format!("invalid dtype tag {t}")),
        }),
        41 => Shape,
        42 => Size,
        43 => DimSize(r.i64()? as isize),
        44 => Range,
        45 => TileAxis0(r.u64()? as usize),
        46 => ReduceSum(get_opt_isize(r)?),
        47 => ReduceMean(get_opt_isize(r)?),
        48 => ReduceMax(get_opt_isize(r)?),
        49 => ReduceMin(get_opt_isize(r)?),
        50 => ReduceAll(get_opt_isize(r)?),
        51 => ReduceAny(get_opt_isize(r)?),
        52 => ArgMax(r.i64()? as isize),
        53 => IndexAxis0,
        54 => SliceAxis0 {
            start: r.opt(|r| r.i64())?,
            stop: r.opt(|r| r.i64())?,
        },
        55 => SetItemAxis0,
        56 => Gather,
        57 => OneHot(r.u64()? as usize),
        58 => TopK(r.u64()? as usize),
        59 => TopKValues(r.u64()? as usize),
        60 => TopKIndices(r.u64()? as usize),
        61 => Concat(r.i64()? as isize),
        62 => StackOp,
        63 => ArrayNew,
        64 => ArrayPush,
        65 => ArrayPop,
        66 => ArrayWrite,
        67 => ArrayRead,
        68 => ArrayStack,
        69 => ArraySize,
        70 => SumToShape,
        71 => BroadcastLike,
        72 => ReshapeLike,
        73 => XentGrad,
        74 => TupleOp,
        75 => TupleGet(r.u64()? as usize),
        76 => Identity,
        77 => StopGradient,
        78 => Print(r.str()?),
        79 => AssertOp(r.str()?),
        80 => Assign { name: r.str()? },
        81 => Group,
        82 => Cond {
            then_g: get_subgraph(r)?,
            else_g: get_subgraph(r)?,
        },
        83 => While {
            cond_g: get_subgraph(r)?,
            body_g: get_subgraph(r)?,
            max_iters: r.opt(|r| r.u64())?,
        },
        t => return Err(format!("invalid op tag {t}")),
    })
}

// ---------------------------------------------------------------------
// Graph

fn put_node_ids(w: &mut ByteWriter, ids: &[NodeId]) {
    w.u64(ids.len() as u64);
    for &i in ids {
        w.u64(i as u64);
    }
}

fn get_node_ids(r: &mut ByteReader<'_>) -> Result<Vec<NodeId>, DecodeError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u64()? as NodeId);
    }
    Ok(out)
}

fn put_node(w: &mut ByteWriter, node: &Node) {
    put_op(w, &node.op);
    put_node_ids(w, &node.inputs);
    w.str(&node.name);
    put_span(w, node.span);
    w.u64(node.prov.len() as u64);
    for rec in &node.prov {
        w.str(rec.pass);
        w.str(rec.action);
        w.u64(rec.sources.len() as u64);
        for s in &rec.sources {
            w.u64(s.node as u64);
            w.str(&s.name);
            put_span(w, s.span);
        }
    }
}

fn get_node(r: &mut ByteReader<'_>) -> Result<Node, DecodeError> {
    let op = get_op(r)?;
    let inputs = get_node_ids(r)?;
    let name = r.str()?;
    let span = get_span(r)?;
    let nprov = r.count()?;
    let mut prov = Vec::with_capacity(nprov);
    for _ in 0..nprov {
        let pass = intern(r.str()?);
        let action = intern(r.str()?);
        let nsrc = r.count()?;
        let mut sources = Vec::with_capacity(nsrc);
        for _ in 0..nsrc {
            sources.push(ProvSource {
                node: r.u64()? as NodeId,
                name: r.str()?,
                span: get_span(r)?,
            });
        }
        prov.push(PassRecord {
            pass,
            action,
            sources,
        });
    }
    Ok(Node {
        op,
        inputs,
        name,
        span,
        prov,
    })
}

/// Encode a graph (nodes, variables, provenance chains) into `w`.
pub fn put_graph(w: &mut ByteWriter, g: &Graph) {
    w.u64(g.nodes.len() as u64);
    for n in &g.nodes {
        put_node(w, n);
    }
    w.u64(g.variables.len() as u64);
    for (name, init) in &g.variables {
        w.str(name);
        put_tensor(w, init);
    }
}

/// Decode a graph encoded by [`put_graph`].
///
/// # Errors
///
/// Fails (without panicking) on any malformed byte sequence.
pub fn get_graph(r: &mut ByteReader<'_>) -> Result<Graph, DecodeError> {
    let nnodes = r.count()?;
    let mut nodes = Vec::with_capacity(nnodes);
    for _ in 0..nnodes {
        nodes.push(get_node(r)?);
    }
    let nvars = r.count()?;
    let mut variables = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let name = r.str()?;
        let init = get_tensor(r)?;
        variables.push((name, init));
    }
    Ok(Graph { nodes, variables })
}

fn put_subgraph(w: &mut ByteWriter, s: &SubGraph) {
    put_graph(w, &s.graph);
    w.u64(s.num_params as u64);
    put_node_ids(w, &s.outputs);
}

fn get_subgraph(r: &mut ByteReader<'_>) -> Result<SubGraph, DecodeError> {
    Ok(SubGraph {
        graph: get_graph(r)?,
        num_params: r.u64()? as usize,
        outputs: get_node_ids(r)?,
    })
}

// ---------------------------------------------------------------------
// Program

fn put_regs(w: &mut ByteWriter, regs: &[Reg]) {
    w.u64(regs.len() as u64);
    for &r in regs {
        w.u32(r);
    }
}

fn get_regs(r: &mut ByteReader<'_>) -> Result<Vec<Reg>, DecodeError> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32()?);
    }
    Ok(out)
}

fn put_fused_op(w: &mut ByteWriter, op: FusedOp) {
    use FusedOp::*;
    match op {
        Input(i) => {
            w.u8(0);
            w.u8(i);
        }
        Add => w.u8(1),
        Sub => w.u8(2),
        Mul => w.u8(3),
        Div => w.u8(4),
        FloorDiv => w.u8(5),
        Mod => w.u8(6),
        Pow => w.u8(7),
        Maximum => w.u8(8),
        Minimum => w.u8(9),
        Neg => w.u8(10),
        Abs => w.u8(11),
        Sqrt => w.u8(12),
        Exp => w.u8(13),
        Log => w.u8(14),
        Square => w.u8(15),
        Tanh => w.u8(16),
        Sigmoid => w.u8(17),
        Relu => w.u8(18),
    }
}

fn get_fused_op(r: &mut ByteReader<'_>) -> Result<FusedOp, DecodeError> {
    use FusedOp::*;
    Ok(match r.u8()? {
        0 => Input(r.u8()?),
        1 => Add,
        2 => Sub,
        3 => Mul,
        4 => Div,
        5 => FloorDiv,
        6 => Mod,
        7 => Pow,
        8 => Maximum,
        9 => Minimum,
        10 => Neg,
        11 => Abs,
        12 => Sqrt,
        13 => Exp,
        14 => Log,
        15 => Square,
        16 => Tanh,
        17 => Sigmoid,
        18 => Relu,
        t => return Err(format!("invalid fused-op tag {t}")),
    })
}

fn put_fused_group(w: &mut ByteWriter, g: &FusedGroup) {
    let ops = g.spec.ops();
    w.u64(ops.len() as u64);
    for &op in ops {
        put_fused_op(w, op);
    }
    w.u64(g.spec.num_inputs() as u64);
    w.u64(g.cover.len() as u64);
    for c in &g.cover {
        put_op(w, &c.op);
        w.u64(c.args.len() as u64);
        for &a in &c.args {
            match a {
                CoverArg::Ext(i) => {
                    w.u8(0);
                    w.u64(i as u64);
                }
                CoverArg::Int(i) => {
                    w.u8(1);
                    w.u64(i as u64);
                }
            }
        }
        w.u64(c.node as u64);
        w.str(&c.name);
        put_span(w, c.span);
    }
}

fn get_fused_group(r: &mut ByteReader<'_>) -> Result<FusedGroup, DecodeError> {
    let nops = r.count()?;
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        ops.push(get_fused_op(r)?);
    }
    let num_inputs = r.u64()? as usize;
    // revalidate through the public constructor — the spec's structural
    // invariants (arity balance, size limits) are re-proven, not trusted
    let spec = FusedSpec::new(ops, num_inputs)
        .ok_or_else(|| "fused spec failed revalidation".to_string())?;
    let ncover = r.count()?;
    let mut cover = Vec::with_capacity(ncover);
    for _ in 0..ncover {
        let op = get_op(r)?;
        let nargs = r.count()?;
        let mut args = Vec::with_capacity(nargs);
        for _ in 0..nargs {
            args.push(match r.u8()? {
                0 => CoverArg::Ext(r.u64()? as usize),
                1 => CoverArg::Int(r.u64()? as usize),
                t => return Err(format!("invalid cover-arg tag {t}")),
            });
        }
        let node = r.u64()? as NodeId;
        let name = r.str()?;
        let span = get_span(r)?;
        let mnemonic = op.mnemonic();
        cover.push(CoverOp {
            op,
            args,
            node,
            name,
            span,
            mnemonic,
        });
    }
    if cover.is_empty() {
        return Err("fused group with empty cover".to_string());
    }
    Ok(FusedGroup { spec, cover })
}

fn put_instr(w: &mut ByteWriter, i: &Instr) {
    match &i.kind {
        IKind::Const(p) => {
            w.u8(0);
            w.u64(*p as u64);
        }
        IKind::Feed(name) => {
            w.u8(1);
            w.str(name);
        }
        IKind::ReadVar(name) => {
            w.u8(2);
            w.str(name);
        }
        IKind::Assign(name) => {
            w.u8(3);
            w.str(name);
        }
        IKind::Param(p) => {
            w.u8(4);
            w.u64(*p as u64);
        }
        IKind::ParamTop(p) => {
            w.u8(5);
            w.u64(*p as u64);
        }
        IKind::Group => w.u8(6),
        IKind::Op(op) => {
            w.u8(7);
            put_op(w, op);
        }
        IKind::Fused(g) => {
            w.u8(8);
            put_fused_group(w, g);
        }
        IKind::Cond { then_p, else_p } => {
            w.u8(9);
            w.u64(*then_p as u64);
            w.u64(*else_p as u64);
        }
        IKind::While {
            cond_p,
            body_p,
            max_iters,
        } => {
            w.u8(10);
            w.u64(*cond_p as u64);
            w.u64(*body_p as u64);
            w.opt(*max_iters, |w, v| w.u64(v));
        }
    }
    w.u32(i.dst);
    put_regs(w, &i.srcs);
    put_regs(w, &i.free_after);
    w.u64(i.node as u64);
    w.str(&i.name);
    put_span(w, i.span);
    // mnemonic is derived from the kind on decode — not stored
}

/// The mnemonic an instruction kind carries — recomputed on decode so it
/// can never drift from the op it describes.
fn mnemonic_of(kind: &IKind) -> &'static str {
    match kind {
        IKind::Const(_) => "const",
        IKind::Feed(_) => "placeholder",
        IKind::ReadVar(_) => "variable",
        IKind::Assign(_) => "assign",
        IKind::Param(_) | IKind::ParamTop(_) => "param",
        IKind::Group => "group",
        IKind::Op(op) => op.mnemonic(),
        IKind::Fused(g) => g.cover.last().map_or("fused", |c| c.mnemonic),
        IKind::Cond { .. } => "cond",
        IKind::While { .. } => "while",
    }
}

fn get_instr(r: &mut ByteReader<'_>) -> Result<Instr, DecodeError> {
    let kind = match r.u8()? {
        0 => IKind::Const(r.u64()? as usize),
        1 => IKind::Feed(r.str()?),
        2 => IKind::ReadVar(r.str()?),
        3 => IKind::Assign(r.str()?),
        4 => IKind::Param(r.u64()? as usize),
        5 => IKind::ParamTop(r.u64()? as usize),
        6 => IKind::Group,
        7 => IKind::Op(get_op(r)?),
        8 => IKind::Fused(get_fused_group(r)?),
        9 => IKind::Cond {
            then_p: r.u64()? as usize,
            else_p: r.u64()? as usize,
        },
        10 => IKind::While {
            cond_p: r.u64()? as usize,
            body_p: r.u64()? as usize,
            max_iters: r.opt(|r| r.u64())?,
        },
        t => return Err(format!("invalid instruction tag {t}")),
    };
    let dst = r.u32()?;
    let srcs = get_regs(r)?;
    let free_after = get_regs(r)?;
    let node = r.u64()? as NodeId;
    let name = r.str()?;
    let span = get_span(r)?;
    let mnemonic = mnemonic_of(&kind);
    Ok(Instr {
        kind,
        dst,
        srcs,
        free_after,
        node,
        name,
        span,
        mnemonic,
    })
}

fn put_program(w: &mut ByteWriter, p: &Program) {
    w.u64(p.procs.len() as u64);
    for proc in &p.procs {
        w.u64(proc.code.len() as u64);
        for i in &proc.code {
            put_instr(w, i);
        }
        w.u64(proc.nregs as u64);
        put_regs(w, &proc.outputs);
        w.u64(proc.num_params as u64);
    }
    w.u64(p.pool.len() as u64);
    for t in &p.pool {
        put_tensor(w, t);
    }
    w.u64(p.reg_of_node.len() as u64);
    for slot in &p.reg_of_node {
        w.opt(*slot, |w, v| w.u32(v));
    }
}

fn get_program(r: &mut ByteReader<'_>) -> Result<Program, DecodeError> {
    let nprocs = r.count()?;
    let mut procs = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let ncode = r.count()?;
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            code.push(get_instr(r)?);
        }
        let nregs = r.u64()? as usize;
        let outputs = get_regs(r)?;
        let num_params = r.u64()? as usize;
        procs.push(Proc {
            code,
            nregs,
            outputs,
            num_params,
        });
    }
    let npool = r.count()?;
    let mut pool = Vec::with_capacity(npool);
    for _ in 0..npool {
        pool.push(get_tensor(r)?);
    }
    let nreg = r.count()?;
    let mut reg_of_node = Vec::with_capacity(nreg);
    for _ in 0..nreg {
        reg_of_node.push(r.opt(|r| r.u32())?);
    }
    Ok(Program {
        procs,
        pool,
        reg_of_node,
    })
}

// ---------------------------------------------------------------------
// The unit

/// An optimized graph plus its eagerly-lowered bytecode program for one
/// fetch set — everything a warm start needs.
#[derive(Debug, Clone)]
pub struct CompiledUnit {
    /// The optimized graph (provenance chains intact).
    pub graph: Graph,
    /// The fetch set the program was compiled for.
    pub outputs: Vec<NodeId>,
    pub(crate) program: Arc<Program>,
}

impl CompiledUnit {
    /// Compile a plan + bytecode program for `outputs` over `graph` —
    /// the cold half of the pipeline (the `Plan::compile` + VM-lowering
    /// work a warm start skips).
    ///
    /// # Errors
    ///
    /// Propagates plan-compilation failures (unknown fetch ids).
    pub fn build(graph: Graph, outputs: Vec<NodeId>) -> crate::Result<CompiledUnit> {
        let plan = Plan::compile(&graph, &outputs)?;
        let program = Arc::new(compile::compile(&graph, plan.order(), &outputs));
        Ok(CompiledUnit {
            graph,
            outputs,
            program,
        })
    }

    /// The plan with the pre-lowered program installed, ready for a
    /// session's plan cache.
    pub(crate) fn plan(&self) -> crate::Result<Plan> {
        Plan::with_program(&self.graph, &self.outputs, Arc::clone(&self.program))
    }

    /// Serialize to the planstore payload encoding.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_graph(&mut w, &self.graph);
        put_node_ids(&mut w, &self.outputs);
        put_program(&mut w, &self.program);
        w.into_bytes()
    }

    /// Deserialize a payload produced by [`CompiledUnit::encode`].
    ///
    /// # Errors
    ///
    /// Fails with a description on any malformed input; never panics —
    /// callers fall back to cold staging.
    pub fn decode(bytes: &[u8]) -> Result<CompiledUnit, DecodeError> {
        let mut r = ByteReader::new(bytes);
        let unit = CompiledUnit::decode_from(&mut r)?;
        if !r.is_done() {
            return Err("trailing bytes after compiled unit".to_string());
        }
        Ok(unit)
    }

    /// Decode one unit from a reader positioned at its first byte
    /// (for bundle formats that concatenate several units).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CompiledUnit::decode`].
    pub fn decode_from(r: &mut ByteReader<'_>) -> Result<CompiledUnit, DecodeError> {
        let graph = get_graph(r)?;
        let outputs = get_node_ids(r)?;
        let program = get_program(r)?;
        for &o in &outputs {
            if o >= graph.nodes.len() {
                return Err(format!(
                    "output id {o} out of range (graph has {} nodes)",
                    graph.nodes.len()
                ));
            }
        }
        if program.reg_of_node.len() != graph.nodes.len() {
            return Err("program register map disagrees with graph size".to_string());
        }
        Ok(CompiledUnit {
            graph,
            outputs,
            program: Arc::new(program),
        })
    }

    /// Encode one unit into an existing writer (bundle formats).
    pub fn encode_into(&self, w: &mut ByteWriter) {
        put_graph(w, &self.graph);
        put_node_ids(w, &self.outputs);
        put_program(w, &self.program);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::builder::{GraphBuilder, SubGraphBuilder};
    use crate::session::Session;
    use autograph_tensor::Tensor;

    /// A graph exercising most encoder paths: constants, placeholders,
    /// variables, fusion chains, a While with nested subgraphs, tuple
    /// projection and assignment.
    fn rich_graph() -> (Graph, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let w = b.variable("w", Tensor::scalar_f32(0.5));
        let two = b.scalar(2.0);
        let m = b.mul(x, two);
        let s = b.add_op(m, w);
        let t = b.add(OpKind::Tanh, vec![s]);
        let i0 = b.scalar(0.0);
        let (mut cb, cp) = SubGraphBuilder::new(1);
        let ten = cb.b.scalar(3.0);
        let lt = cb.b.add(OpKind::Less, vec![cp[0], ten]);
        let cond_g = cb.finish(vec![lt]);
        let (mut bb, bp) = SubGraphBuilder::new(1);
        let one = bb.b.scalar(1.0);
        let i1 = bb.b.add_op(bp[0], one);
        let body_g = bb.finish(vec![i1]);
        let lp = b.while_loop(vec![i0], cond_g, body_g);
        let proj = b.tuple_get(lp, 0);
        let asn = b.assign("w", t);
        let grp = b.add(OpKind::Group, vec![asn]);
        (b.finish(), vec![t, proj, grp])
    }

    #[test]
    fn graph_round_trips_bitwise_including_provenance() {
        let (g, outputs) = rich_graph();
        let (opt, opt_outputs, _) = crate::optimize::optimize(&g, &outputs);
        let mut w = ByteWriter::new();
        put_graph(&mut w, &opt);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = get_graph(&mut r).unwrap();
        assert!(r.is_done());
        // Graph derives PartialEq over nodes (ops, names, spans, prov
        // chains) and variables — equality IS the bitwise contract
        assert_eq!(back, opt);
        let _ = opt_outputs;
    }

    #[test]
    fn unit_round_trip_executes_identically() {
        let (g, outputs) = rich_graph();
        let (opt, opt_outputs, _) = crate::optimize::optimize(&g, &outputs);
        let unit = CompiledUnit::build(opt.clone(), opt_outputs.clone()).unwrap();
        let bytes = unit.encode();
        let back = CompiledUnit::decode(&bytes).unwrap();
        assert_eq!(back.graph, opt);
        assert_eq!(back.outputs, opt_outputs);

        let feeds = [("x", Tensor::scalar_f32(1.25))];
        let mut cold = Session::new(opt.clone());
        let want = cold.run(&feeds, &opt_outputs).unwrap();
        let mut warm = Session::new(back.graph.clone());
        warm.install_compiled(&back).unwrap();
        let got = warm.run(&feeds, &opt_outputs).unwrap();
        assert_eq!(want.len(), got.len());
        for (a, b) in want.iter().zip(&got) {
            assert_eq!(a.shape(), b.shape());
            assert_eq!(
                a.as_f32()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.as_f32()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
        // the pre-installed plan means the first run was a cache hit
        assert_eq!(warm.stats().plan_cache_hits, 1);
        assert_eq!(warm.stats().plan_cache_misses, 0);
    }

    #[test]
    fn decode_never_panics_on_mutated_payloads() {
        let (g, outputs) = rich_graph();
        let unit = CompiledUnit::build(g, outputs).unwrap();
        let bytes = unit.encode();
        // single-byte flips across the whole payload: decode must return
        // (Ok or Err) — any panic fails the test harness
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x5a;
            let _ = CompiledUnit::decode(&bad);
        }
        // truncations
        for len in (0..bytes.len()).step_by(11) {
            let _ = CompiledUnit::decode(&bytes[..len]);
        }
    }

    #[test]
    fn tensor_payloads_preserve_exact_bits() {
        let vals = vec![0.1f32, -0.0, f32::MIN_POSITIVE, 1e30, f32::NAN];
        let t = Tensor::from_vec(vals.clone(), &[5]).unwrap();
        let mut w = ByteWriter::new();
        put_tensor(&mut w, &t);
        let bytes = w.into_bytes();
        let back = get_tensor(&mut ByteReader::new(&bytes)).unwrap();
        let got = back.as_f32().unwrap();
        for (a, b) in vals.iter().zip(got) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn unknown_pass_names_intern_without_aliasing_known_ones() {
        assert_eq!(intern("cse".to_string()), "cse");
        let leaked = intern("future_pass".to_string());
        assert_eq!(leaked, "future_pass");
    }
}
