//! Ergonomic graph construction with name scopes.

use crate::ir::{Graph, Node, NodeId, OpKind, SubGraph};
use autograph_pylang::Span;
use autograph_tensor::{DType, Tensor};

/// Builds a [`Graph`] incrementally. Node names receive the current scope
/// prefix (the function-wrappers pass pushes a scope per converted
/// function, making staged graphs readable).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
    scopes: Vec<String>,
    counter: u64,
    current_span: Span,
}

impl GraphBuilder {
    /// A fresh, empty builder.
    pub fn new() -> GraphBuilder {
        GraphBuilder::default()
    }

    /// Set the user-source span stamped on subsequently added nodes
    /// (the staging half of the Appendix B source map).
    pub fn set_span(&mut self, span: Span) {
        self.current_span = span;
    }

    /// Push a name scope (e.g. the converted function's name).
    pub fn push_scope(&mut self, name: &str) {
        self.scopes.push(name.to_string());
    }

    /// Pop the innermost name scope.
    pub fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    /// Add a node and return its id.
    pub fn add(&mut self, op: OpKind, inputs: Vec<NodeId>) -> NodeId {
        self.counter += 1;
        let mut name = String::new();
        for s in &self.scopes {
            name.push_str(s);
            name.push('/');
        }
        name.push_str(op.mnemonic());
        name.push('_');
        name.push_str(&self.counter.to_string());
        self.graph
            .nodes
            .push(Node::staged(op, inputs, name, self.current_span));
        self.graph.nodes.len() - 1
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.graph.nodes.len()
    }

    /// Whether no nodes were added yet.
    pub fn is_empty(&self) -> bool {
        self.graph.nodes.is_empty()
    }

    /// Consume the builder and return the finished graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    /// Borrow the graph under construction.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    // ---- leaves ------------------------------------------------------------

    /// Named feed point.
    pub fn placeholder(&mut self, name: &str) -> NodeId {
        self.add(
            OpKind::Placeholder {
                name: name.to_string(),
            },
            vec![],
        )
    }

    /// Embedded constant.
    pub fn constant(&mut self, value: Tensor) -> NodeId {
        self.add(OpKind::Const(value), vec![])
    }

    /// Scalar f32 constant.
    pub fn scalar(&mut self, v: f32) -> NodeId {
        self.constant(Tensor::scalar_f32(v))
    }

    /// Stateful variable with an initial value; reads the session store.
    pub fn variable(&mut self, name: &str, init: Tensor) -> NodeId {
        if !self.graph.variables.iter().any(|(n, _)| n == name) {
            self.graph.variables.push((name.to_string(), init));
        }
        self.add(
            OpKind::Variable {
                name: name.to_string(),
            },
            vec![],
        )
    }

    /// Write `value` into variable `name`; returns the written value.
    pub fn assign(&mut self, name: &str, value: NodeId) -> NodeId {
        self.add(
            OpKind::Assign {
                name: name.to_string(),
            },
            vec![value],
        )
    }

    // ---- common binary/unary shorthands -------------------------------------

    /// `a + b`.
    pub fn add_op(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Add, vec![a, b])
    }

    /// `a - b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Sub, vec![a, b])
    }

    /// `a * b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Mul, vec![a, b])
    }

    /// `a / b`.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::Div, vec![a, b])
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.add(OpKind::MatMul, vec![a, b])
    }

    /// `tanh(a)`.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        self.add(OpKind::Tanh, vec![a])
    }

    /// `relu(a)`.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        self.add(OpKind::Relu, vec![a])
    }

    /// `sigmoid(a)`.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        self.add(OpKind::Sigmoid, vec![a])
    }

    /// Cast to dtype.
    pub fn cast(&mut self, a: NodeId, dtype: DType) -> NodeId {
        self.add(OpKind::Cast(dtype), vec![a])
    }

    /// Functional conditional.
    pub fn cond(
        &mut self,
        pred: NodeId,
        captures: Vec<NodeId>,
        then_g: SubGraph,
        else_g: SubGraph,
    ) -> NodeId {
        let mut inputs = vec![pred];
        inputs.extend(captures);
        self.add(OpKind::Cond { then_g, else_g }, inputs)
    }

    /// Functional while loop. Returns the node whose value is the final
    /// state tuple; project with [`GraphBuilder::tuple_get`].
    pub fn while_loop(&mut self, init: Vec<NodeId>, cond_g: SubGraph, body_g: SubGraph) -> NodeId {
        self.add(
            OpKind::While {
                cond_g,
                body_g,
                max_iters: None,
            },
            init,
        )
    }

    /// Project element `i` of a tuple-valued node.
    pub fn tuple_get(&mut self, tuple: NodeId, i: usize) -> NodeId {
        self.add(OpKind::TupleGet(i), vec![tuple])
    }

    /// Group effectful nodes (returns the value of the last input).
    pub fn group(&mut self, deps: Vec<NodeId>) -> NodeId {
        self.add(OpKind::Group, deps)
    }
}

/// Builds a [`SubGraph`] for `cond`/`while` bodies: a nested builder whose
/// parameters are pre-created `Param` nodes.
#[derive(Debug)]
pub struct SubGraphBuilder {
    /// The inner builder; add body nodes through it.
    pub b: GraphBuilder,
    num_params: usize,
}

impl SubGraphBuilder {
    /// Start a subgraph with `num_params` parameters; returns the builder
    /// and the parameter node ids.
    pub fn new(num_params: usize) -> (SubGraphBuilder, Vec<NodeId>) {
        let mut b = GraphBuilder::new();
        let params: Vec<NodeId> = (0..num_params)
            .map(|i| b.add(OpKind::Param(i), vec![]))
            .collect();
        (SubGraphBuilder { b, num_params }, params)
    }

    /// Finish, declaring the output nodes.
    pub fn finish(self, outputs: Vec<NodeId>) -> SubGraph {
        SubGraph {
            graph: self.b.finish(),
            num_params: self.num_params,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_scoped_and_unique() {
        let mut b = GraphBuilder::new();
        b.push_scope("f");
        let a = b.scalar(1.0);
        let c = b.scalar(2.0);
        b.pop_scope();
        let d = b.add_op(a, c);
        let g = b.finish();
        assert!(g.nodes[a].name.starts_with("f/const_"));
        assert_ne!(g.nodes[a].name, g.nodes[c].name);
        assert!(g.nodes[d].name.starts_with("add_"));
    }

    #[test]
    fn variables_registered_once() {
        let mut b = GraphBuilder::new();
        b.variable("w", Tensor::scalar_f32(0.0));
        b.variable("w", Tensor::scalar_f32(1.0));
        let g = b.finish();
        assert_eq!(g.variables.len(), 1);
        assert_eq!(g.variables[0].1.scalar_value_f32().unwrap(), 0.0);
    }

    #[test]
    fn span_stamped() {
        let mut b = GraphBuilder::new();
        b.set_span(Span::new(7, 3));
        let n = b.scalar(1.0);
        assert_eq!(b.graph().nodes[n].span, Span::new(7, 3));
    }

    #[test]
    fn subgraph_builder_params() {
        let (mut sb, params) = SubGraphBuilder::new(2);
        assert_eq!(params.len(), 2);
        let sum = sb.b.add_op(params[0], params[1]);
        let sub = sb.finish(vec![sum]);
        assert_eq!(sub.num_params, 2);
        assert_eq!(sub.outputs, vec![sum]);
        assert!(matches!(sub.graph.nodes[params[0]].op, OpKind::Param(0)));
    }
}
