//! Lowering: from a compiled execution plan to a register-based bytecode
//! [`Program`] for the VM in [`crate::vm`].
//!
//! The interpreter in [`crate::exec`] walks `graph.nodes` per dispatch:
//! every node evaluation re-reads the node, matches on its op, and
//! gathers inputs through an `Option<GValue>` side table. This pass does
//! all of that work once, at plan-compile time:
//!
//! * every materialized node gets a dense **register** (value slots are
//!   sized from the plan, so a frame is one `Vec<GValue>`);
//! * constants move into a **constant pool** (an instruction holds the
//!   pool index; execution is one `Arc` bump);
//! * ops are **pre-resolved**: each instruction carries its `OpKind`
//!   (or a fused kernel) plus the node name/span/mnemonic needed for
//!   error attribution, fault sites, observability and cost reporting —
//!   no graph lookups at run time;
//! * `While`/`Cond` become explicit control instructions referencing
//!   sub-procedures compiled from their (pruned) subgraphs;
//! * chains of elementwise ops collapse into single
//!   [`autograph_tensor::fused::FusedSpec`] loop kernels, with a
//!   `cover` table mapping the fused kernel back to every source node it
//!   absorbed (spans survive fusion — the provenance/explain layer and
//!   the chaos fault sites keep working);
//! * each instruction lists the registers whose **last use** it is, so
//!   the VM can recycle dead buffers into its arena (loop-carried
//!   temporaries stop hitting the allocator).
//!
//! Lowering is infallible: anything without a better encoding lowers to
//! a generic `Op` instruction that dispatches through the same kernel
//! table as the interpreter.
//!
//! ## Fusion grouping rules
//!
//! A node is absorbed into its consumer's fused group only when all of:
//! it maps to a [`FusedOp`]; it has exactly one consumer inside the same
//! procedure (tree fusion — per-element evaluation never duplicates
//! work); that consumer is itself fusable; it is not a subgraph output,
//! a top-level fetch, or an effect root. Groups respect the spec size
//! limits; a too-large group demotes gracefully into smaller ones.
//! Dtype/shape eligibility is checked per execution by the VM, which
//! falls back to exact op-by-op dispatch when it does not hold.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::exec::subgraph_order;
use crate::ir::{Graph, NodeId, OpKind, SubGraph};
use autograph_pylang::Span;
use autograph_tensor::fused::{FusedOp, FusedSpec};
use autograph_tensor::Tensor;
use std::collections::HashMap;

/// A register index inside one procedure's frame.
pub(crate) type Reg = u32;

/// A lowered plan: procedures (index 0 is the top level) plus the
/// constant pool they share.
#[derive(Debug)]
pub(crate) struct Program {
    pub procs: Vec<Proc>,
    pub pool: Vec<Tensor>,
    /// Top-level node id → register, for resolving run-time fetches.
    pub reg_of_node: Vec<Option<Reg>>,
}

/// One compiled procedure: the top level or a `While`/`Cond` subgraph.
#[derive(Debug)]
pub(crate) struct Proc {
    pub code: Vec<Instr>,
    /// Frame size in registers.
    pub nregs: usize,
    /// Declared outputs (empty for the top level, which serves fetches
    /// through [`Program::reg_of_node`]).
    pub outputs: Vec<Reg>,
    /// Expected argument count (subgraph procedures).
    pub num_params: usize,
}

/// One bytecode instruction. Name/span/mnemonic are carried inline so
/// execution never consults the graph.
#[derive(Debug)]
pub(crate) struct Instr {
    pub kind: IKind,
    pub dst: Reg,
    pub srcs: Vec<Reg>,
    /// Registers whose last use was this instruction — freed (and
    /// recycled into the arena) right after it executes. Populated only
    /// in subgraph procedures; the top level keeps every value for
    /// fetches, like the interpreter.
    pub free_after: Vec<Reg>,
    /// The node this instruction materializes (id within its own
    /// graph/subgraph; meaningful for cost collection at the top level).
    pub node: NodeId,
    pub name: String,
    pub span: Span,
    pub mnemonic: &'static str,
}

/// Instruction operations.
#[derive(Debug)]
pub(crate) enum IKind {
    /// Load a constant-pool entry.
    Const(usize),
    /// Read a feed by placeholder name.
    Feed(String),
    /// Read a variable.
    ReadVar(String),
    /// Write `srcs[0]` to a variable (and yield it).
    Assign(String),
    /// Bind subgraph parameter `i` (no dispatch counting, mirroring the
    /// interpreter's param short-circuit).
    Param(usize),
    /// A `Param` op at the top level — errors exactly like the
    /// interpreter.
    ParamTop(usize),
    /// Yield the last input (or an empty tuple).
    Group,
    /// A pure op dispatched through the kernel table.
    Op(OpKind),
    /// A fused chain of elementwise ops.
    Fused(FusedGroup),
    /// Functional conditional over two sub-procedures.
    Cond { then_p: usize, else_p: usize },
    /// Functional loop over two sub-procedures.
    While {
        cond_p: usize,
        body_p: usize,
        max_iters: Option<u64>,
    },
}

/// A fused elementwise group: the single-loop kernel plus the covered
/// source nodes (in execution order, root last) for fault/obs/cost
/// parity and exact op-by-op fallback.
#[derive(Debug)]
pub(crate) struct FusedGroup {
    pub spec: FusedSpec,
    pub cover: Vec<CoverOp>,
}

/// One node absorbed by a fused kernel.
#[derive(Debug)]
pub(crate) struct CoverOp {
    pub op: OpKind,
    /// The op's inputs, as either external registers or earlier cover
    /// entries — what the fallback path evaluates.
    pub args: Vec<CoverArg>,
    pub node: NodeId,
    pub name: String,
    pub span: Span,
    pub mnemonic: &'static str,
}

/// An argument of a covered op.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CoverArg {
    /// Index into the fused instruction's `srcs`.
    Ext(usize),
    /// Index into the instruction's `cover` list (an absorbed
    /// intermediate).
    Int(usize),
}

/// The elementwise `FusedOp` for an `OpKind`, when it is fusable.
fn fusable(op: &OpKind) -> Option<FusedOp> {
    match op {
        OpKind::Add => Some(FusedOp::Add),
        OpKind::Sub => Some(FusedOp::Sub),
        OpKind::Mul => Some(FusedOp::Mul),
        OpKind::Div => Some(FusedOp::Div),
        OpKind::FloorDiv => Some(FusedOp::FloorDiv),
        OpKind::Mod => Some(FusedOp::Mod),
        OpKind::Pow => Some(FusedOp::Pow),
        OpKind::Maximum => Some(FusedOp::Maximum),
        OpKind::Minimum => Some(FusedOp::Minimum),
        OpKind::Neg => Some(FusedOp::Neg),
        OpKind::Abs => Some(FusedOp::Abs),
        OpKind::Sqrt => Some(FusedOp::Sqrt),
        OpKind::Exp => Some(FusedOp::Exp),
        OpKind::Log => Some(FusedOp::Log),
        OpKind::Square => Some(FusedOp::Square),
        OpKind::Tanh => Some(FusedOp::Tanh),
        OpKind::Sigmoid => Some(FusedOp::Sigmoid),
        OpKind::Relu => Some(FusedOp::Relu),
        _ => None,
    }
}

/// Lower a plan into a bytecode program. `order` is the plan's
/// topological node order; `fetches` pins the registers a later run may
/// ask for (fusion never absorbs a fetchable node).
pub(crate) fn compile(graph: &Graph, order: &[NodeId], fetches: &[NodeId]) -> Program {
    let mut b = ProgramBuilder {
        procs: Vec::new(),
        pool: Vec::new(),
    };
    // reserve index 0 for the top level (subprocs get appended during
    // its compilation, so placeholder-swap at the end)
    b.procs.push(Proc {
        code: Vec::new(),
        nregs: 0,
        outputs: Vec::new(),
        num_params: 0,
    });
    let (proc, reg_of) = b.compile_proc(graph, order, &[], 0, true, fetches);
    b.procs[0] = proc;
    let mut reg_of_node = vec![None; graph.nodes.len()];
    for (id, reg) in reg_of {
        reg_of_node[id] = Some(reg);
    }
    Program {
        procs: b.procs,
        pool: b.pool,
        reg_of_node,
    }
}

struct ProgramBuilder {
    procs: Vec<Proc>,
    pool: Vec<Tensor>,
}

impl ProgramBuilder {
    /// Compile a subgraph into a new procedure, returning its index.
    fn compile_sub(&mut self, sub: &SubGraph) -> usize {
        let order = subgraph_order(sub);
        let idx = self.procs.len();
        // reserve the slot first so nested subgraphs allocate after it
        self.procs.push(Proc {
            code: Vec::new(),
            nregs: 0,
            outputs: Vec::new(),
            num_params: 0,
        });
        let (proc, _) =
            self.compile_proc(&sub.graph, &order, &sub.outputs, sub.num_params, false, &[]);
        self.procs[idx] = proc;
        idx
    }

    /// Compile one procedure: fusion grouping, then instruction
    /// emission, then last-use analysis.
    fn compile_proc(
        &mut self,
        graph: &Graph,
        order: &[NodeId],
        outputs: &[NodeId],
        num_params: usize,
        top_level: bool,
        fetches: &[NodeId],
    ) -> (Proc, HashMap<NodeId, Reg>) {
        let n = graph.nodes.len();
        let mut in_order = vec![false; n];
        for &id in order {
            in_order[id] = true;
        }
        let mut pinned = vec![false; n];
        for &o in outputs.iter().chain(fetches.iter()) {
            if o < n {
                pinned[o] = true;
            }
        }

        // data-consumer counts within this procedure
        let mut consumers = vec![0usize; n];
        let mut consumer_of = vec![0usize; n];
        for &id in order {
            for &i in &graph.nodes[id].inputs {
                if in_order[i] {
                    consumers[i] += 1;
                    consumer_of[i] = id;
                }
            }
        }

        // a node fuses upward into its unique consumer when both ends
        // are elementwise and nothing pins its value
        let mut fuse_up = vec![false; n];
        for &id in order {
            if pinned[id] || consumers[id] != 1 {
                continue;
            }
            if fusable(&graph.nodes[id].op).is_none() {
                continue;
            }
            if fusable(&graph.nodes[consumer_of[id]].op).is_none() {
                continue;
            }
            fuse_up[id] = true;
        }

        // group assembly, highest root first: a root whose group busts
        // the spec limits demotes its direct fused inputs, which then
        // get their own chance at being (smaller) roots
        let mut covered = vec![false; n];
        let mut groups: HashMap<NodeId, FusedGroup> = HashMap::new();
        for &root in order.iter().rev() {
            if fuse_up[root] || covered[root] || fusable(&graph.nodes[root].op).is_none() {
                continue;
            }
            let mut members: Vec<NodeId> = Vec::new();
            collect_members(graph, root, &fuse_up, &mut members);
            if members.is_empty() {
                continue;
            }
            match build_group(graph, root, &members) {
                Some(group) => {
                    for &m in &members {
                        covered[m] = true;
                    }
                    groups.insert(root, group);
                }
                None => {
                    // demote: the root materializes; its inputs become
                    // root candidates of their own subtrees
                    for &i in &graph.nodes[root].inputs {
                        if i < n {
                            fuse_up[i] = false;
                        }
                    }
                }
            }
        }

        // emission
        let mut reg_of: HashMap<NodeId, Reg> = HashMap::new();
        let mut next_reg: Reg = 0;
        let mut code: Vec<Instr> = Vec::new();
        for &id in order {
            if covered[id] {
                continue;
            }
            let node = &graph.nodes[id];
            let (kind, srcs) = match &node.op {
                OpKind::Const(t) => {
                    let p = self.pool.len();
                    self.pool.push(t.clone());
                    (IKind::Const(p), Vec::new())
                }
                OpKind::Placeholder { name } => (IKind::Feed(name.clone()), Vec::new()),
                OpKind::Variable { name } => (IKind::ReadVar(name.clone()), Vec::new()),
                OpKind::Assign { name } => (
                    IKind::Assign(name.clone()),
                    gather_regs(&node.inputs, &reg_of),
                ),
                OpKind::Param(i) => {
                    let kind = if top_level {
                        IKind::ParamTop(*i)
                    } else {
                        IKind::Param(*i)
                    };
                    (kind, Vec::new())
                }
                OpKind::Group => (IKind::Group, gather_regs(&node.inputs, &reg_of)),
                OpKind::Cond { then_g, else_g } => {
                    let then_p = self.compile_sub(then_g);
                    let else_p = self.compile_sub(else_g);
                    (
                        IKind::Cond { then_p, else_p },
                        gather_regs(&node.inputs, &reg_of),
                    )
                }
                OpKind::While {
                    cond_g,
                    body_g,
                    max_iters,
                } => {
                    let cond_p = self.compile_sub(cond_g);
                    let body_p = self.compile_sub(body_g);
                    (
                        IKind::While {
                            cond_p,
                            body_p,
                            max_iters: *max_iters,
                        },
                        gather_regs(&node.inputs, &reg_of),
                    )
                }
                _ => match groups.remove(&id) {
                    Some(group) => {
                        // external inputs were recorded as node ids in
                        // slot order; resolve them to registers now
                        let srcs = group
                            .ext_nodes(graph)
                            .iter()
                            .map(|e| reg_of.get(e).copied().unwrap_or(Reg::MAX))
                            .collect();
                        (IKind::Fused(group), srcs)
                    }
                    None => (
                        IKind::Op(node.op.clone()),
                        gather_regs(&node.inputs, &reg_of),
                    ),
                },
            };
            let dst = next_reg;
            next_reg += 1;
            reg_of.insert(id, dst);
            code.push(Instr {
                kind,
                dst,
                srcs,
                free_after: Vec::new(),
                node: id,
                name: node.name.clone(),
                span: node.span,
                mnemonic: node.op.mnemonic(),
            });
        }

        let out_regs: Vec<Reg> = outputs
            .iter()
            .map(|o| reg_of.get(o).copied().unwrap_or(Reg::MAX))
            .collect();

        // last-use analysis: only subgraph frames free registers (the
        // top level serves arbitrary fetch subsets, like the
        // interpreter's value table)
        if !top_level {
            let mut last_use: Vec<Option<usize>> = vec![None; next_reg as usize];
            let mut def_at: Vec<usize> = vec![0; next_reg as usize];
            for (idx, instr) in code.iter().enumerate() {
                def_at[instr.dst as usize] = idx;
                for &s in &instr.srcs {
                    last_use[s as usize] = Some(idx);
                }
            }
            let mut is_out = vec![false; next_reg as usize];
            for &r in &out_regs {
                if (r as usize) < is_out.len() {
                    is_out[r as usize] = true;
                }
            }
            for r in 0..next_reg as usize {
                if is_out[r] {
                    continue;
                }
                let at = last_use[r].unwrap_or(def_at[r]);
                code[at].free_after.push(r as Reg);
            }
        }

        (
            Proc {
                code,
                nregs: next_reg as usize,
                outputs: out_regs,
                num_params,
            },
            reg_of,
        )
    }
}

/// Registers for a node's inputs (all must be materialized).
fn gather_regs(inputs: &[NodeId], reg_of: &HashMap<NodeId, Reg>) -> Vec<Reg> {
    inputs
        .iter()
        .map(|i| reg_of.get(i).copied().unwrap_or(Reg::MAX))
        .collect()
}

/// DFS from a fused root, collecting every node that fuses (transitively)
/// into it.
fn collect_members(graph: &Graph, at: NodeId, fuse_up: &[bool], members: &mut Vec<NodeId>) {
    for &i in &graph.nodes[at].inputs {
        if i < fuse_up.len() && fuse_up[i] {
            members.push(i);
            collect_members(graph, i, fuse_up, members);
        }
    }
}

impl FusedGroup {
    /// The external input node ids, in slot order (parallel to the
    /// instruction's `srcs`). Recomputed from the cover's `Ext` args.
    fn ext_nodes(&self, graph: &Graph) -> Vec<NodeId> {
        let mut slots: Vec<NodeId> = Vec::new();
        let in_cover = |id: NodeId| self.cover.iter().any(|c| c.node == id);
        for c in &self.cover {
            for (k, &input) in graph.nodes[c.node].inputs.iter().enumerate() {
                if let Some(CoverArg::Ext(slot)) = c.args.get(k).copied() {
                    debug_assert!(!in_cover(input));
                    if slots.len() <= slot {
                        slots.resize(slot + 1, input);
                    }
                    slots[slot] = input;
                }
            }
        }
        slots
    }
}

/// Build the postfix spec + cover table for a root and its members.
/// Returns `None` when the group exceeds the fused-spec limits.
fn build_group(graph: &Graph, root: NodeId, members: &[NodeId]) -> Option<FusedGroup> {
    // cover in execution order (ascending id; the root is last because
    // members are its transitive inputs)
    let mut cover_ids: Vec<NodeId> = members.to_vec();
    cover_ids.sort_unstable();
    cover_ids.dedup();
    cover_ids.push(root);
    let cover_index: HashMap<NodeId, usize> = cover_ids
        .iter()
        .enumerate()
        .map(|(k, &id)| (id, k))
        .collect();

    // postfix emission by recursion over the tree
    let mut ops: Vec<FusedOp> = Vec::new();
    let mut slot_of: HashMap<NodeId, usize> = HashMap::new();
    let mut slot_order: Vec<NodeId> = Vec::new();
    fn emit(
        graph: &Graph,
        id: NodeId,
        cover_index: &HashMap<NodeId, usize>,
        ops: &mut Vec<FusedOp>,
        slot_of: &mut HashMap<NodeId, usize>,
        slot_order: &mut Vec<NodeId>,
    ) -> Option<()> {
        for &i in &graph.nodes[id].inputs {
            if cover_index.contains_key(&i) && i != id {
                emit(graph, i, cover_index, ops, slot_of, slot_order)?;
            } else {
                let next = slot_of.len();
                let slot = *slot_of.entry(i).or_insert(next);
                if slot == next {
                    slot_order.push(i);
                }
                ops.push(FusedOp::Input(u8::try_from(slot).ok()?));
            }
        }
        ops.push(fusable(&graph.nodes[id].op)?);
        Some(())
    }
    emit(
        graph,
        root,
        &cover_index,
        &mut ops,
        &mut slot_of,
        &mut slot_order,
    )?;
    let spec = FusedSpec::new(ops, slot_order.len())?;

    let cover: Vec<CoverOp> = cover_ids
        .iter()
        .map(|&id| {
            let node = &graph.nodes[id];
            let args = node
                .inputs
                .iter()
                .map(|i| match cover_index.get(i) {
                    Some(&k) if *i != id => CoverArg::Int(k),
                    _ => CoverArg::Ext(*slot_of.get(i).unwrap_or(&usize::MAX)),
                })
                .collect();
            CoverOp {
                op: node.op.clone(),
                args,
                node: id,
                name: node.name.clone(),
                span: node.span,
                mnemonic: node.op.mnemonic(),
            }
        })
        .collect();
    Some(FusedGroup { spec, cover })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::exec::Plan;

    #[test]
    fn elementwise_chain_fuses_into_one_instruction() {
        // tanh((x + y) * y) — add and mul are single-consumer, so the
        // whole chain collapses into one fused instr with 3 cover ops
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let y = b.placeholder("y");
        let s = b.add_op(x, y);
        let m = b.mul(s, y);
        let t = b.add(OpKind::Tanh, vec![m]);
        let g = b.finish();
        let plan = Plan::compile(&g, &[t]).unwrap();
        let prog = compile(&g, plan.order(), &[t]);
        let fused: Vec<&Instr> = prog.procs[0]
            .code
            .iter()
            .filter(|i| matches!(i.kind, IKind::Fused(_)))
            .collect();
        assert_eq!(fused.len(), 1);
        if let IKind::Fused(group) = &fused[0].kind {
            assert_eq!(group.cover.len(), 3);
            assert_eq!(group.cover.last().unwrap().node, t);
            assert_eq!(group.spec.num_inputs(), 2);
        }
        // the intermediates are not materialized
        assert!(prog.reg_of_node[s].is_none());
        assert!(prog.reg_of_node[m].is_none());
        assert!(prog.reg_of_node[t].is_some());
    }

    #[test]
    fn fetched_intermediates_stay_materialized() {
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let y = b.placeholder("y");
        let s = b.add_op(x, y);
        let t = b.add(OpKind::Tanh, vec![s]);
        let g = b.finish();
        let plan = Plan::compile(&g, &[s, t]).unwrap();
        let prog = compile(&g, plan.order(), &[s, t]);
        assert!(prog.reg_of_node[s].is_some(), "fetched node must be pinned");
        assert!(prog.reg_of_node[t].is_some());
        assert!(!prog.procs[0]
            .code
            .iter()
            .any(|i| matches!(&i.kind, IKind::Fused(g) if g.cover.iter().any(|c| c.node == s))));
    }

    #[test]
    fn multi_consumer_values_are_not_absorbed() {
        // d = (x+y); out = d * d consumes d twice → d materializes
        let mut b = GraphBuilder::new();
        let x = b.placeholder("x");
        let y = b.placeholder("y");
        let d = b.add_op(x, y);
        let out = b.mul(d, d);
        let g = b.finish();
        let plan = Plan::compile(&g, &[out]).unwrap();
        let prog = compile(&g, plan.order(), &[out]);
        assert!(prog.reg_of_node[d].is_some());
    }

    #[test]
    fn constants_move_into_the_pool() {
        let mut b = GraphBuilder::new();
        let a = b.scalar(2.0);
        let c = b.scalar(3.0);
        let m = b.matmul(a, c); // not fusable; consts materialize
        let g = b.finish();
        let plan = Plan::compile(&g, &[m]).unwrap();
        let prog = compile(&g, plan.order(), &[m]);
        assert_eq!(prog.pool.len(), 2);
        assert_eq!(
            prog.procs[0]
                .code
                .iter()
                .filter(|i| matches!(i.kind, IKind::Const(_)))
                .count(),
            2
        );
    }

    #[test]
    fn while_lowering_produces_sub_procedures_with_frees() {
        use crate::builder::SubGraphBuilder;
        let mut b = GraphBuilder::new();
        let i0 = b.scalar(0.0);
        let (mut cb, cp) = SubGraphBuilder::new(1);
        let ten = cb.b.scalar(10.0);
        let lt = cb.b.add(OpKind::Less, vec![cp[0], ten]);
        let cond_g = cb.finish(vec![lt]);
        let (mut bb, bp) = SubGraphBuilder::new(1);
        let one = bb.b.scalar(1.0);
        let i1 = bb.b.add_op(bp[0], one);
        let body_g = bb.finish(vec![i1]);
        let w = b.while_loop(vec![i0], cond_g, body_g);
        let g = b.finish();
        let plan = Plan::compile(&g, &[w]).unwrap();
        let prog = compile(&g, plan.order(), &[w]);
        assert_eq!(prog.procs.len(), 3, "top level + cond + body");
        let top_while = prog.procs[0]
            .code
            .iter()
            .find(|i| matches!(i.kind, IKind::While { .. }));
        assert!(top_while.is_some());
        // subgraph frames free their non-output registers
        let frees: usize = prog.procs[1..]
            .iter()
            .flat_map(|p| p.code.iter())
            .map(|i| i.free_after.len())
            .sum();
        assert!(frees > 0, "loop frames must recycle dead registers");
        // the top level never frees (fetch semantics)
        assert!(prog.procs[0].code.iter().all(|i| i.free_after.is_empty()));
    }
}
