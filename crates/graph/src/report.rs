//! Per-run structured reports: memory accounting, scheduler
//! utilization, and critical-path analysis over the executed plan.
//!
//! When [`crate::Session::set_reporting`] is on, every run collects
//! per-node self-times and allocation deltas (a [`Collector`] threaded
//! through [`crate::run::RunCtx`]), diffs the tensor memory ledger
//! (`autograph_tensor::mem`) and the worker-pool meters
//! (`autograph_par::pool_snapshot`) around the run, and folds the
//! per-node self-times over the plan DAG — data edges plus the
//! scheduler's control edges — to find the critical path. The result is
//! a [`RunReport`] with a JSON serialization (parseable by the
//! `autograph-report` tool) and a human-readable text rendering.
//!
//! Attribution notes: node self-times are measured around each
//! *top-level plan node* — a `While`/`Cond` node's time includes its
//! whole subgraph execution. Per-node allocation is attributed via a
//! thread-local ledger, so bytes allocated by a nested parallel kernel
//! on *other* worker threads count toward the run's totals but not the
//! node's line item. Memory and pool counters are process-wide;
//! concurrent reporting sessions see each other's traffic.

use crate::ir::{Graph, NodeId};
use autograph_pylang::Span;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-node cost accumulators for one run, indexed by `NodeId`.
/// Atomics because the wavefront scheduler records from worker threads.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    self_ns: Vec<AtomicU64>,
    alloc_bytes: Vec<AtomicU64>,
    evals: Vec<AtomicU64>,
}

impl Collector {
    pub(crate) fn new(nodes: usize) -> Collector {
        Collector {
            self_ns: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            alloc_bytes: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
            evals: (0..nodes).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one evaluation of `id`: wall time and thread-local
    /// allocation delta.
    pub(crate) fn record(&self, id: NodeId, self_ns: u64, alloc_bytes: u64) {
        if id < self.self_ns.len() {
            self.self_ns[id].fetch_add(self_ns, Ordering::Relaxed);
            self.alloc_bytes[id].fetch_add(alloc_bytes, Ordering::Relaxed);
            self.evals[id].fetch_add(1, Ordering::Relaxed);
        }
    }

    fn self_ns_vec(&self) -> Vec<u64> {
        self.self_ns
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

/// Memory-ledger delta for one run (see `autograph_tensor::mem`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemReport {
    /// Bytes allocated during the run.
    pub allocated_bytes: u64,
    /// Bytes freed during the run.
    pub freed_bytes: u64,
    /// Live bytes at run start (counted allocations only).
    pub live_bytes_start: u64,
    /// Live bytes at run end; `end - start` is what the run retained
    /// (variables, fetched outputs).
    pub live_bytes_end: u64,
    /// Peak working set during the run.
    pub peak_bytes: u64,
    /// Counted allocations during the run.
    pub allocs: u64,
    /// Counted frees during the run.
    pub frees: u64,
}

/// One pool thread's share of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Thread label (`par-worker-N`, or the helping caller thread's name).
    pub label: String,
    /// Nanoseconds this thread spent executing pool tasks.
    pub busy_ns: u64,
    /// Tasks this thread executed.
    pub tasks: u64,
    /// `busy_ns / wall_ns`.
    pub utilization: f64,
}

/// Scheduler utilization for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedReport {
    /// Threads whose metered counters advanced during the run.
    pub workers: Vec<WorkerReport>,
    /// Aggregate utilization: total busy time across workers divided by
    /// `threads × wall`. 0 on the sequential path (no pool tasks).
    pub utilization: f64,
    /// Largest ready-queue depth observed at injection.
    pub queue_depth_max: u64,
    /// Mean ready-queue depth over injections.
    pub queue_depth_mean: f64,
    /// Tasks injected into the pool during the run.
    pub tasks_injected: u64,
}

/// One node on the critical path (or in the per-node cost table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeCost {
    /// Node id in the session graph.
    pub node: NodeId,
    /// The node's staged name.
    pub name: String,
    /// Op mnemonic.
    pub op: &'static str,
    /// The user-source span that staged the node (synthetic when the
    /// node has no source origin), threading the provenance chain into
    /// cost data so time folds back onto source lines.
    pub span: Span,
    /// Accumulated self-time (a `While` node includes its subgraphs).
    pub self_ns: u64,
    /// Bytes attributed to this node via the thread-local ledger.
    pub alloc_bytes: u64,
    /// Times the node was evaluated this run.
    pub evals: u64,
}

/// The longest self-time-weighted chain through the plan DAG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// The chain, in execution order.
    pub nodes: Vec<NodeCost>,
    /// Sum of self-times along the chain.
    pub path_ns: u64,
    /// `path_ns / wall_ns` — how much of the run the chain explains.
    pub share_of_wall: f64,
    /// Amdahl-style bound: `total_self_ns / path_ns`. No schedule can
    /// beat this speedup over the sequential sum, whatever the thread
    /// count.
    pub speedup_bound: f64,
}

/// A structured account of one `Session::run`: where the time, memory
/// and parallelism went. Retrieved via `Session::last_report`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Wall time of the run.
    pub wall_ns: u64,
    /// Resolved thread count the run used.
    pub threads: usize,
    /// Whether the run returned Ok.
    pub succeeded: bool,
    /// The error rendering for a failed run.
    pub error: Option<String>,
    /// Nodes dispatched (both executors, subgraphs included).
    pub nodes_executed: u64,
    /// Staged `While` iterations completed.
    pub while_iters: u64,
    /// Memory-ledger delta.
    pub mem: MemReport,
    /// Worker-pool utilization.
    pub sched: SchedReport,
    /// Longest chain through the plan DAG.
    pub critical_path: CriticalPath,
    /// Sum of all top-level node self-times. At threads=1 this tracks
    /// wall time closely (executor overhead excluded).
    pub total_self_ns: u64,
    /// Per-node costs, sorted by self-time descending.
    pub node_costs: Vec<NodeCost>,
}

pub(crate) struct ReportInputs<'a> {
    pub graph: &'a Graph,
    pub order: &'a [NodeId],
    pub collector: &'a Collector,
    pub wall_ns: u64,
    pub threads: usize,
    pub succeeded: bool,
    pub error: Option<String>,
    pub nodes_executed: u64,
    pub while_iters: u64,
    pub mem_before: autograph_tensor::mem::MemSnapshot,
    pub mem_after: autograph_tensor::mem::MemSnapshot,
    pub pool_before: autograph_par::PoolSnapshot,
    pub pool_after: autograph_par::PoolSnapshot,
}

pub(crate) fn build(inp: ReportInputs<'_>) -> RunReport {
    let self_ns = inp.collector.self_ns_vec();
    let total_self_ns: u64 = inp.order.iter().map(|&id| self_ns[id]).sum();

    let node_cost = |id: NodeId| NodeCost {
        node: id,
        name: inp.graph.nodes[id].name.clone(),
        op: inp.graph.nodes[id].op.mnemonic(),
        span: inp.graph.nodes[id].span,
        self_ns: self_ns[id],
        alloc_bytes: inp.collector.alloc_bytes[id].load(Ordering::Relaxed),
        evals: inp.collector.evals[id].load(Ordering::Relaxed),
    };

    let mut node_costs: Vec<NodeCost> = inp
        .order
        .iter()
        .map(|&id| node_cost(id))
        .filter(|c| c.evals > 0)
        .collect();
    node_costs.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.node.cmp(&b.node)));

    let critical_path = critical_path(
        inp.graph,
        inp.order,
        &self_ns,
        total_self_ns,
        inp.wall_ns,
        &node_cost,
    );

    let mem = MemReport {
        allocated_bytes: inp
            .mem_after
            .allocated_bytes
            .saturating_sub(inp.mem_before.allocated_bytes),
        freed_bytes: inp
            .mem_after
            .freed_bytes
            .saturating_sub(inp.mem_before.freed_bytes),
        live_bytes_start: inp.mem_before.live_bytes,
        live_bytes_end: inp.mem_after.live_bytes,
        peak_bytes: inp.mem_after.peak_bytes,
        allocs: inp.mem_after.allocs.saturating_sub(inp.mem_before.allocs),
        frees: inp.mem_after.frees.saturating_sub(inp.mem_before.frees),
    };

    let sched = sched_report(&inp.pool_before, &inp.pool_after, inp.wall_ns, inp.threads);

    RunReport {
        wall_ns: inp.wall_ns,
        threads: inp.threads,
        succeeded: inp.succeeded,
        error: inp.error,
        nodes_executed: inp.nodes_executed,
        while_iters: inp.while_iters,
        mem,
        sched,
        critical_path,
        total_self_ns,
        node_costs,
    }
}

fn sched_report(
    before: &autograph_par::PoolSnapshot,
    after: &autograph_par::PoolSnapshot,
    wall_ns: u64,
    threads: usize,
) -> SchedReport {
    // the worker registry only ever appends, so `before` is a prefix of
    // `after` and per-index diffs line up
    let mut workers = Vec::new();
    let mut busy_total = 0u64;
    for (i, w) in after.workers.iter().enumerate() {
        let (busy0, tasks0) = before
            .workers
            .get(i)
            .map(|b| (b.busy_ns, b.tasks))
            .unwrap_or((0, 0));
        let busy_ns = w.busy_ns.saturating_sub(busy0);
        let tasks = w.tasks.saturating_sub(tasks0);
        if busy_ns == 0 && tasks == 0 {
            continue;
        }
        busy_total += busy_ns;
        workers.push(WorkerReport {
            label: w.label.clone(),
            busy_ns,
            tasks,
            utilization: ratio(busy_ns as f64, wall_ns as f64),
        });
    }
    let samples = after.queue_samples.saturating_sub(before.queue_samples);
    let depth_sum = after.queue_depth_sum.saturating_sub(before.queue_depth_sum);
    SchedReport {
        workers,
        utilization: ratio(busy_total as f64, wall_ns as f64 * threads.max(1) as f64),
        // max is cumulative (not resettable per-run); report it only if
        // this run injected anything, otherwise it describes other runs
        queue_depth_max: if samples > 0 {
            after.queue_depth_max
        } else {
            0
        },
        queue_depth_mean: ratio(depth_sum as f64, samples as f64),
        tasks_injected: after.injected_tasks.saturating_sub(before.injected_tasks),
    }
}

fn ratio(num: f64, den: f64) -> f64 {
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

/// Longest path over the plan DAG, weighting each node by its measured
/// self-time. Edges are the data inputs plus the scheduler's
/// per-resource control edges, so the chain reflects what the parallel
/// executor actually must serialize.
fn critical_path(
    graph: &Graph,
    order: &[NodeId],
    self_ns: &[u64],
    total_self_ns: u64,
    wall_ns: u64,
    node_cost: &dyn Fn(NodeId) -> NodeCost,
) -> CriticalPath {
    if order.is_empty() {
        return CriticalPath::default();
    }
    let n = graph.nodes.len();
    let (consumers, _) = crate::sched::edge_lists(graph, order);
    let mut dist: Vec<u64> = vec![0; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    for &id in order {
        dist[id] = dist[id].max(self_ns[id]);
        for &c in &consumers[id] {
            let through = dist[id] + self_ns[c];
            if through > dist[c] {
                dist[c] = through;
                prev[c] = Some(id);
            }
        }
    }
    let mut end = order[0];
    for &id in order {
        if dist[id] > dist[end] {
            end = id;
        }
    }
    let mut chain = vec![end];
    while let Some(p) = prev[chain[chain.len() - 1]] {
        chain.push(p);
    }
    chain.reverse();
    let path_ns = dist[end];
    CriticalPath {
        nodes: chain.into_iter().map(node_cost).collect(),
        path_ns,
        share_of_wall: ratio(path_ns as f64, wall_ns as f64),
        speedup_bound: if path_ns > 0 {
            total_self_ns as f64 / path_ns as f64
        } else {
            1.0
        },
    }
}

// ---- serialization ---------------------------------------------------------

/// Escape a string as a JSON literal (quotes included).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a finite nonnegative JSON number from an `f64`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0".to_string()
    }
}

fn node_cost_json(c: &NodeCost) -> String {
    format!(
        "{{\"node\":{},\"name\":{},\"op\":{},\"line\":{},\"col\":{},\"self_ns\":{},\"alloc_bytes\":{},\"evals\":{}}}",
        c.node,
        esc(&c.name),
        esc(c.op),
        c.span.line,
        c.span.col,
        c.self_ns,
        c.alloc_bytes,
        c.evals
    )
}

impl RunReport {
    /// Serialize as a self-contained JSON document (the format
    /// `autograph-report` consumes).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"kind\":\"autograph_run_report\",\"version\":1");
        out.push_str(&format!(",\"wall_ns\":{}", self.wall_ns));
        out.push_str(&format!(",\"threads\":{}", self.threads));
        out.push_str(&format!(",\"succeeded\":{}", self.succeeded));
        match &self.error {
            Some(e) => out.push_str(&format!(",\"error\":{}", esc(e))),
            None => out.push_str(",\"error\":null"),
        }
        out.push_str(&format!(",\"nodes_executed\":{}", self.nodes_executed));
        out.push_str(&format!(",\"while_iters\":{}", self.while_iters));
        out.push_str(&format!(
            ",\"mem\":{{\"allocated_bytes\":{},\"freed_bytes\":{},\"live_bytes_start\":{},\"live_bytes_end\":{},\"peak_bytes\":{},\"allocs\":{},\"frees\":{}}}",
            self.mem.allocated_bytes,
            self.mem.freed_bytes,
            self.mem.live_bytes_start,
            self.mem.live_bytes_end,
            self.mem.peak_bytes,
            self.mem.allocs,
            self.mem.frees
        ));
        out.push_str(&format!(
            ",\"sched\":{{\"utilization\":{},\"queue_depth_max\":{},\"queue_depth_mean\":{},\"tasks_injected\":{},\"workers\":[",
            num(self.sched.utilization),
            self.sched.queue_depth_max,
            num(self.sched.queue_depth_mean),
            self.sched.tasks_injected
        ));
        for (i, w) in self.sched.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"busy_ns\":{},\"tasks\":{},\"utilization\":{}}}",
                esc(&w.label),
                w.busy_ns,
                w.tasks,
                num(w.utilization)
            ));
        }
        out.push_str("]}");
        out.push_str(&format!(
            ",\"critical_path\":{{\"path_ns\":{},\"share_of_wall\":{},\"speedup_bound\":{},\"nodes\":[",
            self.critical_path.path_ns,
            num(self.critical_path.share_of_wall),
            num(self.critical_path.speedup_bound)
        ));
        for (i, c) in self.critical_path.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&node_cost_json(c));
        }
        out.push_str("]}");
        out.push_str(&format!(",\"total_self_ns\":{}", self.total_self_ns));
        out.push_str(",\"node_costs\":[");
        for (i, c) in self.node_costs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&node_cost_json(c));
        }
        out.push_str("]}");
        out
    }

    /// Render a human-readable multi-section summary.
    pub fn render_text(&self) -> String {
        fn ms(ns: u64) -> String {
            format!("{:.3}ms", ns as f64 / 1e6)
        }
        fn kb(b: u64) -> String {
            if b >= 1 << 20 {
                format!("{:.2}MiB", b as f64 / (1 << 20) as f64)
            } else {
                format!("{:.1}KiB", b as f64 / 1024.0)
            }
        }
        let mut out = String::new();
        out.push_str(&format!(
            "run report: wall {} · threads {} · {}\n",
            ms(self.wall_ns),
            self.threads,
            if self.succeeded {
                "ok".to_string()
            } else {
                format!(
                    "FAILED: {}",
                    self.error.as_deref().unwrap_or("unknown error")
                )
            }
        ));
        out.push_str(&format!(
            "  nodes executed {} · while iters {} · node self-time total {}\n",
            self.nodes_executed,
            self.while_iters,
            ms(self.total_self_ns)
        ));
        out.push_str(&format!(
            "memory: peak {} · allocated {} in {} allocs · freed {} · retained {}\n",
            kb(self.mem.peak_bytes),
            kb(self.mem.allocated_bytes),
            self.mem.allocs,
            kb(self.mem.freed_bytes),
            kb(self
                .mem
                .live_bytes_end
                .saturating_sub(self.mem.live_bytes_start)),
        ));
        out.push_str(&format!(
            "scheduler: utilization {:.1}% · {} tasks injected · queue depth max {} mean {:.1}\n",
            self.sched.utilization * 100.0,
            self.sched.tasks_injected,
            self.sched.queue_depth_max,
            self.sched.queue_depth_mean,
        ));
        for w in &self.sched.workers {
            out.push_str(&format!(
                "  {:<16} busy {} ({:.1}%) · {} tasks\n",
                w.label,
                ms(w.busy_ns),
                w.utilization * 100.0,
                w.tasks
            ));
        }
        out.push_str(&format!(
            "critical path: {} of wall ({:.1}%) · speedup bound {:.2}x\n",
            ms(self.critical_path.path_ns),
            self.critical_path.share_of_wall * 100.0,
            self.critical_path.speedup_bound,
        ));
        for c in &self.critical_path.nodes {
            out.push_str(&format!(
                "  {:>6} {:<24} {:<10} {:<8} {}\n",
                c.node,
                truncate(&c.name, 24),
                c.op,
                c.span.to_string(),
                ms(c.self_ns)
            ));
        }
        out.push_str("top nodes by self-time:\n");
        for c in self.node_costs.iter().take(10) {
            out.push_str(&format!(
                "  {:>6} {:<24} {:<10} {:<8} {} · {} · {} evals\n",
                c.node,
                truncate(&c.name, 24),
                c.op,
                c.span.to_string(),
                ms(c.self_ns),
                kb(c.alloc_bytes),
                c.evals
            ));
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> (Graph, Vec<NodeId>) {
        // a -> b, a -> c, (b,c) -> d : two parallel arms
        let mut b = GraphBuilder::new();
        let a = b.scalar(1.0);
        let x = b.add_op(a, a);
        let y = b.mul(a, a);
        let d = b.add_op(x, y);
        (b.finish(), vec![a, x, y, d])
    }

    #[test]
    fn critical_path_picks_heavier_arm() {
        let (g, ids) = diamond();
        let order: Vec<NodeId> = (0..g.nodes.len()).collect();
        let mut self_ns = vec![0u64; g.nodes.len()];
        self_ns[ids[0]] = 10;
        self_ns[ids[1]] = 100; // heavy arm
        self_ns[ids[2]] = 5;
        self_ns[ids[3]] = 20;
        let total: u64 = self_ns.iter().sum();
        let cost = |id: NodeId| NodeCost {
            node: id,
            name: g.nodes[id].name.clone(),
            op: g.nodes[id].op.mnemonic(),
            span: g.nodes[id].span,
            self_ns: self_ns[id],
            alloc_bytes: 0,
            evals: 1,
        };
        let cp = critical_path(&g, &order, &self_ns, total, 200, &cost);
        assert_eq!(cp.path_ns, 10 + 100 + 20);
        let chain: Vec<NodeId> = cp.nodes.iter().map(|c| c.node).collect();
        assert_eq!(chain, vec![ids[0], ids[1], ids[3]]);
        assert!((cp.speedup_bound - total as f64 / 130.0).abs() < 1e-9);
        assert!((cp.share_of_wall - 130.0 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn report_json_parses_and_text_renders() {
        let report = RunReport {
            wall_ns: 1_000_000,
            threads: 4,
            succeeded: true,
            error: None,
            nodes_executed: 12,
            while_iters: 3,
            mem: MemReport {
                allocated_bytes: 4096,
                freed_bytes: 2048,
                live_bytes_start: 100,
                live_bytes_end: 2148,
                peak_bytes: 4196,
                allocs: 7,
                frees: 3,
            },
            sched: SchedReport {
                workers: vec![WorkerReport {
                    label: "par-worker-0".to_string(),
                    busy_ns: 900_000,
                    tasks: 11,
                    utilization: 0.9,
                }],
                utilization: 0.225,
                queue_depth_max: 5,
                queue_depth_mean: 2.5,
                tasks_injected: 11,
            },
            critical_path: CriticalPath {
                nodes: vec![NodeCost {
                    node: 2,
                    name: "matmul \"weird\"".to_string(),
                    op: "matmul",
                    span: Span::new(3, 7),
                    self_ns: 600_000,
                    alloc_bytes: 1024,
                    evals: 1,
                }],
                path_ns: 600_000,
                share_of_wall: 0.6,
                speedup_bound: 1.5,
            },
            total_self_ns: 900_000,
            node_costs: vec![],
        };
        let doc = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(doc["kind"].as_str(), Some("autograph_run_report"));
        assert_eq!(doc["wall_ns"].as_u64(), Some(1_000_000));
        assert_eq!(doc["mem"]["peak_bytes"].as_u64(), Some(4196));
        assert_eq!(doc["sched"]["workers"][0]["tasks"].as_u64(), Some(11));
        assert_eq!(
            doc["critical_path"]["nodes"][0]["name"].as_str(),
            Some("matmul \"weird\"")
        );
        assert_eq!(doc["critical_path"]["nodes"][0]["line"].as_u64(), Some(3));
        assert_eq!(doc["critical_path"]["nodes"][0]["col"].as_u64(), Some(7));
        assert!(doc["sched"]["utilization"].as_f64().unwrap() > 0.2);
        let text = report.render_text();
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("utilization"), "{text}");

        // failed-run rendering stays well-formed
        let failed = RunReport {
            succeeded: false,
            error: Some("deadline \"exceeded\"\n".to_string()),
            ..report
        };
        let doc = serde_json::from_str(&failed.to_json()).expect("valid JSON");
        assert_eq!(doc["succeeded"].as_bool(), Some(false));
        assert_eq!(doc["error"].as_str(), Some("deadline \"exceeded\"\n"));
        assert!(failed.render_text().contains("FAILED"));
    }
}
