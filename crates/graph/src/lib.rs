//! # autograph-graph
//!
//! A TensorFlow-like dataflow-graph IR and executor: the staging target of
//! the AutoGraph reproduction.
//!
//! * [`ir`] — the graph data structure: nodes, ops, subgraphs;
//! * [`builder`] — an ergonomic [`builder::GraphBuilder`]
//!   with name scopes;
//! * [`ops`] — kernel implementations (dispatching to `autograph-tensor`);
//! * [`exec`] — the evaluator, including functional control flow
//!   (`Cond`, `While`) and `TensorArray` semantics;
//! * [`session`] — [`session::Session`]: compiled execution plans,
//!   feeds/fetches, stateful variables (the `tf.Session.run` analog);
//! * [`grad`] — symbolic reverse-mode differentiation, building gradient
//!   nodes into the same graph (what enables in-graph SGD, Table 2);
//! * [`optimize`] — whole-program graph optimizations: constant folding,
//!   common-subexpression elimination, dead-code elimination;
//! * [`report`] — per-run [`report::RunReport`]s: memory accounting,
//!   scheduler utilization, and critical-path analysis;
//! * [`shapes`] — static shape inference + staging-time validation (the
//!   Appendix B future-work extension).
//!
//! ## Example
//!
//! ```
//! use autograph_graph::builder::GraphBuilder;
//! use autograph_graph::session::Session;
//! use autograph_tensor::Tensor;
//!
//! let mut g = GraphBuilder::new();
//! let x = g.placeholder("x");
//! let two = g.constant(Tensor::scalar_f32(2.0));
//! let y = g.mul(x, two);
//! let graph = g.finish();
//!
//! let mut sess = Session::new(graph);
//! let out = sess.run(&[("x", Tensor::scalar_f32(21.0))], &[y])?;
//! assert_eq!(out[0].scalar_value_f32()?, 42.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod artifact;
pub mod builder;
pub(crate) mod compile;
pub mod error;
pub mod exec;
pub mod grad;
pub mod ir;
pub mod ops;
pub mod optimize;
pub mod report;
pub mod run;
pub(crate) mod sched;
pub mod session;
pub mod shapes;
pub(crate) mod vm;

pub use artifact::CompiledUnit;
pub use builder::GraphBuilder;
pub use error::{ErrorKind, GraphError};
pub use ir::{Graph, NodeId, OpKind, PassRecord, ProvSource, SubGraph};
pub use optimize::{ElimRecord, OptTrace};
pub use report::{CriticalPath, MemReport, NodeCost, RunReport, SchedReport, WorkerReport};
pub use run::{CancelToken, RunOptions};
pub use session::{set_default_exec_mode, ExecMode, NodeSelfTime, Session, SessionStats};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
